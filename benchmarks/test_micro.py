"""Micro-benchmarks of the search hot path.

Classic pytest-benchmark timing (many rounds) of the operations the
engine performs millions of times: child-state creation, lower-bound
evaluation, and the polynomial substrates (EDF, list scheduling).  These
are the numbers to watch when optimizing the engine.
"""

import pytest

from repro.core import LB0, LB1, LB2, BnBParameters, BranchAndBound, root_state
from repro.core.resources import ResourceBounds
from repro.model import compile_problem, shared_bus_platform
from repro.scheduling import edf_schedule, hlfet_schedule
from repro.workload import generate_task_graph, paper_spec


@pytest.fixture(scope="module")
def prob():
    graph = generate_task_graph(paper_spec(), seed=1)
    return compile_problem(graph, shared_bus_platform(3))


@pytest.fixture(scope="module")
def midstate(prob):
    st = root_state(prob)
    while st.level < prob.n // 2:
        st = st.child(st.ready_tasks()[0], st.level % prob.m)
    return st


@pytest.mark.benchmark(group="micro")
def test_child_state_creation(benchmark, prob, midstate):
    task = midstate.ready_tasks()[0]
    benchmark(midstate.child, task, 0)


@pytest.mark.benchmark(group="micro")
def test_lb0_evaluation(benchmark, midstate):
    benchmark(LB0().evaluate, midstate)


@pytest.mark.benchmark(group="micro")
def test_lb1_evaluation(benchmark, midstate):
    benchmark(LB1().evaluate, midstate)


@pytest.mark.benchmark(group="micro")
def test_lb2_evaluation(benchmark, midstate):
    benchmark(LB2().evaluate, midstate)


@pytest.mark.benchmark(group="micro")
def test_signature_incremental(benchmark, prob, midstate):
    """Placement + O(1) signature update — the transposition hot path."""
    task = midstate.ready_tasks()[0]

    def place_and_sign():
        return midstate.child(task, 0).signature()

    benchmark(place_and_sign)


@pytest.mark.benchmark(group="micro")
def test_signature_probe_without_child(benchmark, prob, midstate):
    """The fused path's child-free probe arithmetic alone."""
    from repro.core.transposition import child_signature

    task = midstate.ready_tasks()[0]
    child = midstate.child(task, 0)
    start = child.start[task]
    benchmark(child_signature, midstate, task, 0, start)


@pytest.mark.benchmark(group="micro")
def test_signature_from_scratch(benchmark, prob, midstate):
    """Full accumulator rebuild — what every placement would cost
    without the incremental update."""
    child = midstate.child(midstate.ready_tasks()[0], 0)
    benchmark(child.signature_from_scratch)


@pytest.mark.benchmark(group="micro")
def test_edf_schedule(benchmark, prob):
    benchmark(edf_schedule, prob)


@pytest.mark.benchmark(group="micro")
def test_hlfet_schedule(benchmark, prob):
    benchmark(hlfet_schedule, prob)


@pytest.mark.benchmark(group="micro")
def test_compile_problem(benchmark):
    graph = generate_task_graph(paper_spec(), seed=2)
    plat = shared_bus_platform(3)
    benchmark(compile_problem, graph, plat)


# ---------------------------------------------------------------------------
# Batch kernels (array engine hot path)
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def batch_inputs(prob, midstate):
    """One realistic expansion batch: every ready task x every proc."""
    import numpy as np

    from repro.core.arena import ArenaProblem

    ap = ArenaProblem(prob)
    tasks = np.asarray(midstate.ready_tasks(), dtype=np.int64)
    procs = np.arange(prob.m, dtype=np.int64)
    proc_row = np.asarray(midstate.proc_of, dtype=np.int8)
    finish_row = np.asarray(midstate.finish, dtype=np.float64)
    avail_row = np.asarray(midstate.avail, dtype=np.float64)
    return ap, proc_row, finish_row, avail_row, tasks, procs


@pytest.mark.benchmark(group="micro-batch")
def test_batch_earliest_starts(benchmark, batch_inputs):
    from repro.core.expand import batch_earliest_starts

    ap, proc_row, finish_row, avail_row, tasks, procs = batch_inputs
    S, F = benchmark(
        batch_earliest_starts, ap, proc_row, finish_row, avail_row,
        tasks, procs,
    )
    assert S.shape == (len(tasks), len(procs))
    assert (F >= S).all()


@pytest.mark.benchmark(group="micro-batch")
def test_batch_admission(benchmark, batch_inputs):
    import math

    from repro.core.expand import batch_admission, batch_earliest_starts

    ap, proc_row, finish_row, avail_row, tasks, procs = batch_inputs
    S, F = batch_earliest_starts(
        ap, proc_row, finish_row, avail_row, tasks, procs
    )
    skip, floor = benchmark(
        batch_admission, ap, S, F, tasks, -math.inf, math.inf, True,
        ap.domain.exact,
    )
    assert skip.shape == floor.shape == S.shape


@pytest.mark.benchmark(group="micro-batch")
def test_batch_bound_repair(benchmark, batch_inputs):
    """lmin update + LB1 fast-path classification for one batch."""
    import numpy as np

    from repro.core.expand import batch_lb_fast, batch_lmin

    ap, proc_row, finish_row, avail_row, tasks, procs = batch_inputs
    est_tasks = avail_row.min() + ap.wcet[tasks] * 0.0
    F = (avail_row.min() + ap.wcet[tasks])[:, None].repeat(
        len(procs), axis=1
    )
    floor = F - 1.0
    parent_lmin = float(avail_row.min())
    nmin = int(np.count_nonzero(avail_row == parent_lmin))
    lmin2 = float(np.partition(avail_row, 1)[1]) if len(avail_row) > 1 \
        else parent_lmin

    def repair():
        lmin, changed = batch_lmin(avail_row, parent_lmin, nmin, lmin2, F)
        return batch_lb_fast(
            est_tasks, F, floor.copy(), True, changed, F, lmin
        )

    fast, _ = benchmark(repair)
    assert fast.shape == F.shape


@pytest.mark.benchmark(group="micro")
def test_full_solve_small_instance(benchmark):
    """End-to-end solve of one fixed moderately hard instance."""
    from repro.workload import scaled_spec

    # Seed 11 is a genuinely hard instance (~2k generated vertices).
    graph = generate_task_graph(scaled_spec(), seed=11)
    prob = compile_problem(graph, shared_bus_platform(2))
    params = BnBParameters.paper_default(
        resources=ResourceBounds(max_vertices=100_000)
    )

    def solve_once():
        return BranchAndBound(params).solve(prob)

    result = benchmark(solve_once)
    assert result.found_solution


@pytest.mark.benchmark(group="micro")
@pytest.mark.parametrize("engine", ["array", "array-numpy"])
def test_full_solve_small_instance_array(benchmark, engine):
    """The same instance through the array engines (compare groups)."""
    from repro.workload import scaled_spec

    graph = generate_task_graph(scaled_spec(), seed=11)
    prob = compile_problem(graph, shared_bus_platform(2))
    params = BnBParameters.paper_default(
        resources=ResourceBounds(max_vertices=100_000), engine=engine
    )

    def solve_once():
        return BranchAndBound(params).solve(prob)

    result = benchmark(solve_once)
    assert result.found_solution
