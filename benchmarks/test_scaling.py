"""Benchmark: search effort versus task count (the Section 1 framing).

Regenerates the scalability table: mean searched vertices for the
optimal and the depth-first approximate configuration as the task count
grows at fixed shape.  Asserts the exponential character of the optimal
search (each size step multiplies the effort) and the far flatter growth
of the approximate rule.
"""

import pytest

from repro.experiments import render, scaling_sweep


@pytest.mark.benchmark(group="scaling")
def test_scaling_sweep(benchmark, report, bench_profile, bench_resources):
    out = benchmark.pedantic(
        scaling_sweep,
        kwargs=dict(
            profile=bench_profile,
            sizes=(6, 8, 10, 12),
            num_graphs=12,
            resources=bench_resources,
        ),
        rounds=1,
        iterations=1,
    )
    report(render(out, reference="EDF"))

    opt = out.series_by_label("BnB optimal")
    df = out.series_by_label("BnB B=DF")
    xs = sorted(opt.xs)
    opt_first = opt.point_at(xs[0]).mean_vertices
    opt_last = opt.point_at(xs[-1]).mean_vertices
    # Optimal effort grows strongly with n...
    assert opt_last >= opt_first
    # ...and the approximate rule stays well below the optimal at the
    # largest size.
    assert df.point_at(xs[-1]).mean_vertices <= opt_last + 1e-9
