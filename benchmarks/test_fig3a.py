"""Benchmark regenerating Figure 3(a): vertex selection rule LLB vs LIFO.

Prints the two plot tables (searched vertices, maximum task lateness vs
system size) with the EDF reference, and asserts the paper's shape:
LIFO generates fewer vertices than LLB at every system size while both
reach the same optimal lateness, at or below EDF's.
"""

import pytest

from repro.experiments import EDF_LABEL, fig3a, render, series_ratio


@pytest.mark.benchmark(group="fig3a")
def test_fig3a_selection_rule(
    benchmark, report, bench_profile, bench_graphs, bench_resources
):
    out = benchmark.pedantic(
        fig3a,
        kwargs=dict(
            profile=bench_profile,
            num_graphs=bench_graphs,
            resources=bench_resources,
        ),
        rounds=1,
        iterations=1,
    )
    report(render(out, reference=EDF_LABEL))

    lifo = out.series_by_label("BnB S=LIFO")
    llb = out.series_by_label("BnB S=LLB")
    edf = out.series_by_label(EDF_LABEL)
    for x in lifo.xs:
        # Upper plot: LIFO at or below LLB at every system size.
        assert lifo.point_at(x).mean_vertices <= llb.point_at(x).mean_vertices + 1e-9
        # Lower plot: identical optimal lateness, <= EDF.
        assert lifo.point_at(x).mean_lateness == pytest.approx(
            llb.point_at(x).mean_lateness
        )
        assert (
            lifo.point_at(x).mean_lateness
            <= edf.point_at(x).mean_lateness + 1e-9
        )
    # Aggregate headline: LLB searches a multiple of LIFO's vertices
    # (the paper reports >10x; the scaled workload keeps the direction
    # and typically a several-fold gap).
    assert series_ratio(out, "BnB S=LLB", "BnB S=LIFO") > 1.0
    # Memory shape (Section 6 thrashing): LLB's peak active set larger.
    for x in lifo.xs:
        assert (
            lifo.point_at(x).extras["peak_active"]
            <= llb.point_at(x).extras["peak_active"] + 1e-9
        )
