"""Benchmark: anytime convergence of LIFO vs LLB (Figure 3(a) mechanism).

With no initial upper bound, depth-first selection produces its first
complete schedule after roughly one dive (~n x m expansions) and keeps
improving, while best-first must exhaust the shallow low-bound frontier
before reaching any goal vertex.  This is the observable mechanism
behind the paper's order-of-magnitude LIFO advantage and its
virtual-memory anecdote.
"""

import pytest

from repro.experiments import anytime_convergence, render


@pytest.mark.benchmark(group="anytime")
def test_anytime_convergence(
    benchmark, report, bench_profile, bench_graphs, bench_resources
):
    out = benchmark.pedantic(
        anytime_convergence,
        kwargs=dict(
            profile=bench_profile,
            processors=(2,),
            num_graphs=bench_graphs,
            resources=bench_resources,
        ),
        rounds=1,
        iterations=1,
    )
    lines = [render(out)]
    lifo = out.series_by_label("BnB S=LIFO U=none").point_at(2.0)
    llb = out.series_by_label("BnB S=LLB U=none").point_at(2.0)
    lines.append("-- vertices to first incumbent (mean)")
    lines.append(
        f"   LIFO {lifo.extras['to_first_incumbent']:.0f}  "
        f"LLB {llb.extras['to_first_incumbent']:.0f}"
    )
    report("\n".join(lines))
    # The headline: LIFO finds a complete schedule orders of magnitude
    # earlier than LLB.
    assert (
        lifo.extras["to_first_incumbent"] * 10
        <= llb.extras["to_first_incumbent"]
    )
