"""Benchmarks for the design-choice ablations (ours, beyond the paper).

Each quantifies one knob the paper fixed or left unused, against the
paper's configuration on the same workloads.
"""

import pytest

from repro.experiments import (
    bound_extension_ablation,
    child_order_ablation,
    dominance_ablation,
    elimination_ablation,
    render,
    series_ratio,
    symmetry_ablation,
)


@pytest.mark.benchmark(group="ablations")
def test_dominance_ablation(
    benchmark, report, bench_profile, bench_graphs, bench_resources
):
    out = benchmark.pedantic(
        dominance_ablation,
        kwargs=dict(
            profile=bench_profile,
            num_graphs=bench_graphs,
            resources=bench_resources,
        ),
        rounds=1,
        iterations=1,
    )
    report(render(out, reference="D=none"))
    none_s = out.series_by_label("D=none")
    dom_s = out.series_by_label("D=state")
    for x in none_s.xs:
        assert dom_s.point_at(x).mean_vertices <= none_s.point_at(x).mean_vertices + 1e-9
        assert dom_s.point_at(x).mean_lateness == pytest.approx(
            none_s.point_at(x).mean_lateness
        )


@pytest.mark.benchmark(group="ablations")
def test_symmetry_ablation(
    benchmark, report, bench_profile, bench_graphs, bench_resources
):
    out = benchmark.pedantic(
        symmetry_ablation,
        kwargs=dict(
            profile=bench_profile,
            num_graphs=bench_graphs,
            resources=bench_resources,
        ),
        rounds=1,
        iterations=1,
    )
    report(render(out, reference="sym=off"))
    off = out.series_by_label("sym=off")
    on = out.series_by_label("sym=on")
    for x in off.xs:
        assert on.point_at(x).mean_vertices <= off.point_at(x).mean_vertices + 1e-9
        assert on.point_at(x).mean_lateness == pytest.approx(
            off.point_at(x).mean_lateness
        )
    # Symmetry breaking should matter more with more processors.
    xs = sorted(off.xs)
    gain_small = series_ratio(out, "sym=off", "sym=on", x=xs[0])
    gain_large = series_ratio(out, "sym=off", "sym=on", x=xs[-1])
    assert gain_large >= gain_small - 0.10


@pytest.mark.benchmark(group="ablations")
def test_child_order_ablation(
    benchmark, report, bench_profile, bench_graphs, bench_resources
):
    out = benchmark.pedantic(
        child_order_ablation,
        kwargs=dict(
            profile=bench_profile,
            num_graphs=bench_graphs,
            resources=bench_resources,
        ),
        rounds=1,
        iterations=1,
    )
    report(render(out, reference="order=generation"))
    gen = out.series_by_label("order=generation")
    best = out.series_by_label("order=best-last")
    for x in gen.xs:
        assert best.point_at(x).mean_lateness == pytest.approx(
            gen.point_at(x).mean_lateness
        )


@pytest.mark.benchmark(group="ablations")
def test_lb2_ablation(
    benchmark, report, bench_profile, bench_graphs, bench_resources
):
    out = benchmark.pedantic(
        bound_extension_ablation,
        kwargs=dict(
            profile=bench_profile,
            num_graphs=bench_graphs,
            resources=bench_resources,
        ),
        rounds=1,
        iterations=1,
    )
    report(render(out, reference="L=LB1"))
    lb1 = out.series_by_label("L=LB1")
    lb2 = out.series_by_label("L=LB2")
    for x in lb1.xs:
        assert lb2.point_at(x).mean_vertices <= lb1.point_at(x).mean_vertices + 1e-9
        assert lb2.point_at(x).mean_lateness == pytest.approx(
            lb1.point_at(x).mean_lateness
        )


@pytest.mark.benchmark(group="ablations")
def test_elimination_ablation(benchmark, report, bench_resources):
    # Exhaustive enumeration: tiny profile regardless of the env knob.
    out = benchmark.pedantic(
        elimination_ablation,
        kwargs=dict(profile="tiny", num_graphs=8, resources=bench_resources),
        rounds=1,
        iterations=1,
    )
    report(render(out, reference="E=U/DBAS"))
    udbas = out.series_by_label("E=U/DBAS")
    none_s = out.series_by_label("E=none")
    for x in udbas.xs:
        assert udbas.point_at(x).mean_vertices <= none_s.point_at(x).mean_vertices + 1e-9
        assert udbas.point_at(x).mean_lateness == pytest.approx(
            none_s.point_at(x).mean_lateness
        )


@pytest.mark.benchmark(group="ablations")
def test_selection_tiebreak_ablation(
    benchmark, report, bench_profile, bench_graphs, bench_resources
):
    from repro.experiments import selection_tiebreak_ablation

    out = benchmark.pedantic(
        selection_tiebreak_ablation,
        kwargs=dict(
            profile=bench_profile,
            num_graphs=bench_graphs,
            resources=bench_resources,
        ),
        rounds=1,
        iterations=1,
    )
    report(render(out, reference="S=LLB"))
    llb = out.series_by_label("S=LLB")
    llbd = out.series_by_label("S=LLB-D")
    lifo = out.series_by_label("S=LIFO")
    for x in llb.xs:
        # Depth-biased ties never cost more than generation-order ties,
        # and all three reach the same optimum.
        assert llbd.point_at(x).mean_vertices <= llb.point_at(x).mean_vertices + 1e-9
        assert llbd.point_at(x).mean_lateness == pytest.approx(
            llb.point_at(x).mean_lateness
        )
        assert lifo.point_at(x).mean_lateness == pytest.approx(
            llb.point_at(x).mean_lateness
        )
