"""Benchmark regenerating Figure 3(b): lower-bound function LB0 vs LB1.

Shape asserted: LB1 searches no more vertices than LB0 everywhere, the
relative advantage is largest on the smallest system and decays as
processors are added (the contention term stops binding), and both
reach the same optimal lateness.
"""

import pytest

from repro.experiments import EDF_LABEL, fig3b, render, series_ratio


@pytest.mark.benchmark(group="fig3b")
def test_fig3b_lower_bound(
    benchmark, report, bench_profile, bench_graphs, bench_resources
):
    out = benchmark.pedantic(
        fig3b,
        kwargs=dict(
            profile=bench_profile,
            num_graphs=bench_graphs,
            resources=bench_resources,
        ),
        rounds=1,
        iterations=1,
    )
    report(render(out, reference=EDF_LABEL))

    lb0 = out.series_by_label("BnB L=LB0")
    lb1 = out.series_by_label("BnB L=LB1")
    for x in lb1.xs:
        assert lb1.point_at(x).mean_vertices <= lb0.point_at(x).mean_vertices + 1e-9
        assert lb1.point_at(x).mean_lateness == pytest.approx(
            lb0.point_at(x).mean_lateness
        )
    # Convergence: the LB0/LB1 ratio at the smallest system is at least
    # the ratio at the largest.
    xs = sorted(lb1.xs)
    small = series_ratio(out, "BnB L=LB0", "BnB L=LB1", x=xs[0])
    large = series_ratio(out, "BnB L=LB0", "BnB L=LB1", x=xs[-1])
    assert small >= large - 0.05
