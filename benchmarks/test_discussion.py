"""Benchmarks regenerating the four Section 6 claims (no figures in the
paper — the tables printed here are the reconstructed artifacts)."""

import pytest

from repro.experiments import (
    ccr_sweep,
    memory_behaviour,
    parallelism_sweep,
    render,
    series_ratio,
    upper_bound_impact,
)


@pytest.mark.benchmark(group="discussion")
def test_parallelism_sweep(
    benchmark, report, bench_profile, bench_graphs, bench_resources
):
    """More task-graph parallelism => the contention-aware LB1 helps more."""
    out = benchmark.pedantic(
        parallelism_sweep,
        kwargs=dict(
            profile=bench_profile,
            num_graphs=bench_graphs,
            resources=bench_resources,
        ),
        rounds=1,
        iterations=1,
    )
    report(render(out, reference="BnB L=LB1"))
    xs = sorted(out.series_by_label("BnB L=LB1").xs)
    ratios = [
        series_ratio(out, "BnB L=LB0", "BnB L=LB1", x=x) for x in xs
    ]
    # LB1 never worse anywhere; the widest shape shows the largest gain.
    assert all(r >= 1.0 - 1e-9 for r in ratios)
    assert max(ratios) == ratios[-1] or ratios[-1] >= ratios[0]


@pytest.mark.benchmark(group="discussion")
def test_ccr_sweep(
    benchmark, report, bench_profile, bench_graphs, bench_resources
):
    """Lower CCR => more accurate bounds => fewer searched vertices."""
    out = benchmark.pedantic(
        ccr_sweep,
        kwargs=dict(
            profile=bench_profile,
            num_graphs=bench_graphs,
            resources=bench_resources,
        ),
        rounds=1,
        iterations=1,
    )
    report(render(out))
    series = out.series_by_label("BnB LIFO/LB1")
    xs = sorted(series.xs)
    lo = series.point_at(xs[0]).mean_vertices
    hi = series.point_at(xs[-1]).mean_vertices
    assert lo <= hi + 1e-9


@pytest.mark.benchmark(group="discussion")
def test_upper_bound_impact(
    benchmark, report, bench_profile, bench_graphs, bench_resources
):
    """EDF-seeded U beats the naive positive constant (paper: >200%)."""
    out = benchmark.pedantic(
        upper_bound_impact,
        kwargs=dict(
            profile=bench_profile,
            num_graphs=bench_graphs,
            resources=bench_resources,
        ),
        rounds=1,
        iterations=1,
    )
    report(render(out, reference="BnB U=EDF"))
    # Direction under LIFO; magnitude (the paper's >200% = >3x fewer
    # vertices) under LLB, where the initial incumbent gates all pruning.
    assert series_ratio(out, "BnB U=naive", "BnB U=EDF") > 1.0
    assert series_ratio(out, "BnB LLB U=naive", "BnB LLB U=EDF") > 3.0
    # Same optima either way.
    edf_s = out.series_by_label("BnB U=EDF")
    naive_s = out.series_by_label("BnB U=naive")
    for x in edf_s.xs:
        assert edf_s.point_at(x).mean_lateness == pytest.approx(
            naive_s.point_at(x).mean_lateness
        )


@pytest.mark.benchmark(group="discussion")
def test_memory_behaviour(
    benchmark, report, bench_profile, bench_graphs, bench_resources
):
    """Peak active-set size: the modern proxy for the thrashing anecdote."""
    out = benchmark.pedantic(
        memory_behaviour,
        kwargs=dict(
            profile=bench_profile,
            num_graphs=bench_graphs,
            resources=bench_resources,
        ),
        rounds=1,
        iterations=1,
    )
    lines = [render(out)]
    lifo = out.series_by_label("BnB S=LIFO")
    llb = out.series_by_label("BnB S=LLB")
    lines.append("-- peak active-set size (mean)")
    for x in sorted(lifo.xs):
        a = lifo.point_at(x).extras["peak_active"]
        b = llb.point_at(x).extras["peak_active"]
        lines.append(f"   m={x:g}: LIFO {a:.1f}  LLB {b:.1f}")
        assert a <= b + 1e-9
    report("\n".join(lines))
