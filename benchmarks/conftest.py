"""Benchmark-suite configuration.

Environment knobs (so the same suite scales from CI smoke runs to
paper-size reproductions):

* ``REPRO_BENCH_PROFILE`` — workload profile: ``tiny``, ``scaled``
  (default) or ``paper`` (the exact Section 4.1 sizes; slow in pure
  Python).
* ``REPRO_BENCH_GRAPHS`` — random graphs per plotted point (default 15).
* ``REPRO_BENCH_MAXVERT`` — per-solve generated-vertex cap (default
  250k; capped runs are counted and reported as truncated).

Every figure benchmark prints the regenerated plot tables (the same
rows/series the paper reports) through the ``report`` fixture, so a
benchmark run doubles as the EXPERIMENTS.md data source.
"""

from __future__ import annotations

import os

import pytest

from repro.core import ResourceBounds

PROFILE = os.environ.get("REPRO_BENCH_PROFILE", "scaled")
NUM_GRAPHS = int(os.environ.get("REPRO_BENCH_GRAPHS", "20"))
MAX_VERTICES = float(os.environ.get("REPRO_BENCH_MAXVERT", "250000"))
RESOURCES = ResourceBounds(max_vertices=MAX_VERTICES, time_limit=30.0)

_collected: list[str] = []


@pytest.fixture
def bench_profile() -> str:
    return PROFILE


@pytest.fixture
def bench_graphs() -> int:
    return NUM_GRAPHS


@pytest.fixture
def bench_resources() -> ResourceBounds:
    return RESOURCES


@pytest.fixture
def report():
    """Collects rendered experiment tables; printed at session end."""

    def _add(text: str) -> None:
        _collected.append(text)
        print("\n" + text)

    return _add


def pytest_sessionfinish(session, exitstatus):
    if _collected:
        term = session.config.pluginmanager.get_plugin("terminalreporter")
        if term is not None:
            term.write_sep("=", "regenerated paper artifacts")
            for text in _collected:
                term.write_line(text)
                term.write_line("")
