"""Benchmark regenerating Figure 3(c): approximation strategies.

Curves: B=DF and B=BF1 (approximate, no guarantee), BFn @ BR=10%
(near-optimal with guarantee), BFn @ BR=0% (optimal), EDF reference.

Shape asserted: the single-task rules are the cheapest, BR=10% saves
vertices over BR=0%, approximate lateness is never better than optimal
and within the BR band for the guaranteed configuration.
"""

import pytest

from repro.experiments import EDF_LABEL, fig3c, render, series_ratio


@pytest.mark.benchmark(group="fig3c")
def test_fig3c_approximation(
    benchmark, report, bench_profile, bench_graphs, bench_resources
):
    out = benchmark.pedantic(
        fig3c,
        kwargs=dict(
            profile=bench_profile,
            num_graphs=bench_graphs,
            resources=bench_resources,
        ),
        rounds=1,
        iterations=1,
    )
    report(render(out, reference="BnB BR=0%"))

    df = out.series_by_label("BnB B=DF")
    bf1 = out.series_by_label("BnB B=BF1")
    br10 = out.series_by_label("BnB BR=10%")
    opt = out.series_by_label("BnB BR=0%")
    for x in opt.xs:
        # Upper plot: approximate rules far cheaper than the optimal.
        assert df.point_at(x).mean_vertices <= opt.point_at(x).mean_vertices + 1e-9
        assert bf1.point_at(x).mean_vertices <= opt.point_at(x).mean_vertices + 1e-9
        # BR=10% saves vertices over BR=0%.
        assert br10.point_at(x).mean_vertices <= opt.point_at(x).mean_vertices + 1e-9
        # Lower plot: optimal lateness is the floor.
        for series in (df, bf1, br10):
            assert (
                series.point_at(x).mean_lateness
                >= opt.point_at(x).mean_lateness - 1e-9
            )
        # Near-optimal stays close to optimal (within the 10% band on
        # the mean, with a small absolute slack for near-zero means).
        gap = br10.point_at(x).mean_lateness - opt.point_at(x).mean_lateness
        assert gap <= 0.10 * abs(br10.point_at(x).mean_lateness) + 0.5
    # Aggregate: the optimal search costs a multiple of the approximate.
    assert series_ratio(out, "BnB BR=0%", "BnB B=DF") >= 1.0
    assert series_ratio(out, "BnB BR=0%", "BnB B=BF1") >= 1.0
