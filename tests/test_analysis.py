"""Unit tests for repro.analysis (confidence, metrics, aggregate)."""

import math

import pytest

from repro.analysis import (
    ConfidenceTarget,
    PointAccumulator,
    RunningStats,
    Series,
    confidence_interval,
    geometric_mean,
    lateness_improvement,
    run_until_confident,
    schedule_metrics,
    student_t_quantile,
    vertex_ratio,
)
from repro.errors import ConfigurationError
from repro.model import Schedule, shared_bus_platform

from conftest import make_diamond


class TestRunningStats:
    def test_mean_and_variance(self):
        s = RunningStats([2.0, 4.0, 6.0])
        assert s.count == 3
        assert s.mean == pytest.approx(4.0)
        assert s.variance == pytest.approx(4.0)
        assert s.stddev == pytest.approx(2.0)
        assert s.minimum == 2.0 and s.maximum == 6.0

    def test_single_sample_zero_variance(self):
        s = RunningStats([5.0])
        assert s.variance == 0.0
        assert s.stderr == 0.0

    def test_matches_naive_computation(self):
        import statistics

        data = [1.5, 2.25, -3.0, 8.0, 0.0, 4.5]
        s = RunningStats(data)
        assert s.mean == pytest.approx(statistics.mean(data))
        assert s.variance == pytest.approx(statistics.variance(data))


class TestStudentT:
    def test_known_values(self):
        assert student_t_quantile(0.90, 1) == pytest.approx(6.314)
        assert student_t_quantile(0.95, 10) == pytest.approx(2.228)
        assert student_t_quantile(0.99, 5) == pytest.approx(4.032)

    def test_large_df_falls_back_to_normal(self):
        assert student_t_quantile(0.95, 1000) == pytest.approx(1.960)

    def test_bad_inputs_rejected(self):
        with pytest.raises(ConfigurationError):
            student_t_quantile(0.95, 0)
        with pytest.raises(ConfigurationError):
            student_t_quantile(0.42, 5)

    def test_ci_infinite_below_two_samples(self):
        assert math.isinf(confidence_interval(RunningStats([1.0])))

    def test_ci_shrinks_with_samples(self):
        tight = RunningStats([10.0, 10.1, 9.9] * 10)
        loose = RunningStats([10.0, 10.1, 9.9])
        assert confidence_interval(tight) < confidence_interval(loose)


class TestConfidenceTarget:
    def test_satisfied_on_tight_data(self):
        target = ConfidenceTarget(level=0.90, rel_error=0.10, min_runs=3)
        s = RunningStats([100.0, 101.0, 99.0, 100.5])
        assert target.satisfied(s)

    def test_not_satisfied_below_min_runs(self):
        target = ConfidenceTarget(min_runs=10)
        s = RunningStats([100.0] * 5)
        assert not target.satisfied(s)

    def test_run_until_confident_stops_early(self):
        calls = []

        def sample(k):
            calls.append(k)
            return 50.0 + (k % 2) * 0.01

        stats = run_until_confident(
            sample, ConfidenceTarget(min_runs=5, max_runs=100)
        )
        assert stats.count == 5
        assert calls == list(range(5))

    def test_run_until_confident_respects_cap(self):
        import random

        rng = random.Random(0)
        stats = run_until_confident(
            lambda k: rng.uniform(0, 1000),
            ConfidenceTarget(min_runs=3, max_runs=12, rel_error=0.001),
        )
        assert stats.count == 12

    def test_bad_target_rejected(self):
        with pytest.raises(ConfigurationError):
            ConfidenceTarget(rel_error=0.0)
        with pytest.raises(ConfigurationError):
            ConfidenceTarget(min_runs=1)
        with pytest.raises(ConfigurationError):
            ConfidenceTarget(min_runs=10, max_runs=5)


class TestScheduleMetrics:
    def _schedule(self):
        g = make_diamond(msg=4.0)
        s = Schedule(g, shared_bus_platform(2))
        s.place("src", 0, 0.0)
        s.place("left", 0, 2.0)
        s.place("right", 1, 6.0)
        s.place("sink", 0, 17.0)
        return s

    def test_metrics(self):
        m = schedule_metrics(self._schedule())
        assert m.makespan == 20.0
        assert m.max_lateness == pytest.approx(-80.0)
        assert m.missed_deadlines == 0
        assert m.remote_messages == 2  # src->right, right->sink
        assert m.communication_time == 8.0
        busy = 2.0 + 5.0 + 7.0 + 3.0
        assert m.utilization == pytest.approx(busy / 40.0)
        assert m.total_idle == pytest.approx(40.0 - busy)

    def test_lateness_improvement(self):
        # EDF -10, B&B -10.5: 5% better.
        assert lateness_improvement(-10.0, -10.5) == pytest.approx(0.05)
        assert lateness_improvement(10.0, 9.0) == pytest.approx(0.10)
        assert lateness_improvement(0.0, -1.0) == 0.0

    def test_vertex_ratio(self):
        assert vertex_ratio(1000.0, 100.0) == 10.0
        assert vertex_ratio(100.0, 0.0) == math.inf
        assert vertex_ratio(0.0, 0.0) == 1.0

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 100.0]) == pytest.approx(10.0)
        assert geometric_mean([]) == 0.0
        with pytest.raises(ValueError):
            geometric_mean([1.0, -1.0])


class TestAggregate:
    def test_accumulator_freeze(self):
        acc = PointAccumulator()
        for v, l in [(100, -1.0), (200, -2.0), (150, -1.5)]:
            acc.add(v, l, peak_active=v / 10)
        p = acc.freeze(x=2.0)
        assert p.runs == 3
        assert p.mean_vertices == pytest.approx(150.0)
        assert p.mean_lateness == pytest.approx(-1.5)
        assert p.extras["peak_active"] == pytest.approx(15.0)
        assert p.ci_vertices > 0

    def test_series_point_lookup(self):
        acc = PointAccumulator()
        acc.add(1, 0)
        acc.add(2, 0)
        s = Series(label="a", points=(acc.freeze(2.0),))
        assert s.point_at(2.0).runs == 2
        assert s.xs == (2.0,)
        with pytest.raises(KeyError):
            s.point_at(3.0)
