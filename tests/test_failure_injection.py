"""Failure injection: every checker must catch every mutation.

A validity checker is only trustworthy if it *fails* on broken inputs.
These tests take correct artifacts (optimal schedules, consistent
states, valid STG text) and corrupt them in targeted ways, asserting
the corresponding checker flags each corruption.
"""

import pytest

from repro.core import BnBParameters, BranchAndBound
from repro.errors import InvalidScheduleError, SerializationError
from repro.io import parse_stg
from repro.model import Schedule, compile_problem, shared_bus_platform
from repro.workload import generate_task_graph, tiny_spec


@pytest.fixture(params=range(3))
def optimal_schedule(request):
    g = generate_task_graph(tiny_spec(), seed=request.param)
    prob = compile_problem(g, shared_bus_platform(2))
    res = BranchAndBound(BnBParameters()).solve(prob)
    sched = res.schedule()
    sched.validate()
    return sched


def rebuild_with(schedule: Schedule, **overrides) -> Schedule:
    """Copy a schedule, overriding (processor, start) for some tasks."""
    out = Schedule(schedule.graph, schedule.platform)
    for e in schedule.entries:
        proc, start = overrides.get(e.task, (e.processor, e.start))
        out.place(e.task, proc, start)
    return out


class TestScheduleMutations:
    def test_shifting_a_task_before_its_arrival_is_caught(self, optimal_schedule):
        # Find a task with a positive arrival time and start it earlier.
        for e in optimal_schedule.entries:
            arrival = optimal_schedule.graph.task(e.task).arrival(1)
            if arrival > 1.0:
                broken = rebuild_with(
                    optimal_schedule, **{e.task: (e.processor, arrival - 1.0)}
                )
                violations = broken.violations()
                assert violations, "early start not caught"
                return
        pytest.skip("no task with positive arrival in this instance")

    def test_swapping_processor_without_comm_is_caught(self, optimal_schedule):
        # Move a consumer with a remote-message-free predecessor onto a
        # different processor at the same start: the message cost is no
        # longer covered.
        g = optimal_schedule.graph
        for ch in g.channels:
            if ch.message_size <= 0:
                continue
            ep = optimal_schedule.entry(ch.src)
            ec = optimal_schedule.entry(ch.dst)
            if ep.processor == ec.processor and ec.start < ep.finish + 1.0:
                other = 1 - ec.processor
                broken = rebuild_with(
                    optimal_schedule, **{ch.dst: (other, ec.start)}
                )
                assert broken.violations(), "missing message gap not caught"
                return
        pytest.skip("no tight co-located message in this instance")

    def test_overlapping_two_tasks_is_caught(self, optimal_schedule):
        line = None
        for p in optimal_schedule.platform.processors:
            tl = optimal_schedule.timeline(p)
            if len(tl) >= 2:
                line = tl
                break
        if line is None:
            pytest.skip("no processor with two tasks")
        first, second = line[0], line[1]
        broken = rebuild_with(
            optimal_schedule,
            **{second.task: (second.processor, first.start + 1e-3)},
        )
        assert broken.violations(), "overlap not caught"

    def test_validate_raises_with_all_violations(self, optimal_schedule):
        e = optimal_schedule.entries[-1]
        broken = rebuild_with(optimal_schedule, **{e.task: (e.processor, -50.0)})
        with pytest.raises(InvalidScheduleError) as exc:
            broken.validate()
        assert exc.value.violations

    def test_unmutated_schedule_stays_clean(self, optimal_schedule):
        assert rebuild_with(optimal_schedule).violations() == []


class TestEngineInvariants:
    @pytest.mark.parametrize("seed", range(4))
    def test_stats_accounting_consistent(self, seed):
        g = generate_task_graph(tiny_spec(), seed=seed)
        prob = compile_problem(g, shared_bus_platform(2))
        res = BranchAndBound(BnBParameters()).solve(prob)
        st = res.stats
        # Every generated vertex is the root, a goal, pruned somewhere,
        # explored, or still sitting in the frontier at termination.
        assert st.explored <= st.generated
        assert st.goals_evaluated <= st.generated
        assert st.pruned_total + st.explored + st.goals_evaluated <= (
            st.generated + st.dropped_resource + st.peak_active + 1
        )
        assert st.incumbent_updates <= st.goals_evaluated


class TestSTGMutations:
    GOOD = "3\n0 5 0\n1 5 1 0\n2 5 1 1\n"

    def test_good_parses(self):
        assert len(parse_stg(self.GOOD)) == 3

    @pytest.mark.parametrize(
        "mutation",
        [
            lambda t: t.replace("3\n", "99\n"),          # wrong count
            lambda t: t.replace("1 5 1 0", "1 5 1 7"),   # dangling pred
            lambda t: t.replace("2 5 1 1", "2 5 2 1"),   # missing pred id
            lambda t: t + "1 5 0\n",                      # duplicate id
        ],
    )
    def test_mutations_rejected(self, mutation):
        with pytest.raises(SerializationError):
            parse_stg(mutation(self.GOOD))
