"""Struct-of-arrays arena: slots, growth, adoption and the cost domain.

The arena is the array engines' state store; these tests pin its three
contracts in isolation from any engine:

* *round-trip* — ``adopt`` followed by ``materialize`` reproduces the
  original :class:`~repro.core.state.SearchState` field for field, and
  :class:`~repro.core.arena.ArenaState` delegates every accessor to
  exactly those values (growth and slot reuse must not disturb them);
* *serialization* — an arena-backed state pickles as its materialized
  flat state, so checkpoints and the parallel wire format never carry
  (or depend on) an arena, and a checkpoint written by the array engine
  resumes on any engine;
* *integer scaling* — :func:`~repro.core.arena.analyze_cost_domain`
  certifies exactness only when the documented certificate holds, and
  ``as_integer``/``from_integer`` are mutually inverse and
  order-preserving on certified domains.
"""

from __future__ import annotations

import math
import pickle
import random

import pytest

from repro.core import (
    BnBParameters,
    BranchAndBound,
    ResourceBounds,
    SolveStatus,
    root_state,
)
from repro.core.arena import (
    ArenaProblem,
    ArenaState,
    StateArena,
    analyze_cost_domain,
)
from repro.core.bounds import TrivialBound
from repro.core.checkpoint import Checkpointer, load_checkpoint
from repro.core.state import SearchState
from repro.model import Task, TaskGraph, compile_problem, shared_bus_platform
from repro.workload import WorkloadSpec, generate_task_graph

from conftest import make_diamond, make_forkjoin

SPEC = WorkloadSpec(num_tasks=(6, 9), depth=(2, 4))


def _problem(seed: int = 0, m: int = 2):
    return compile_problem(
        generate_task_graph(SPEC, seed=seed), shared_bus_platform(m)
    )


def _random_states(problem, rng, walks=4):
    """Every state along a few random root-to-goal branches."""
    states = []
    for _ in range(walks):
        state = root_state(problem)
        states.append(state)
        while not state.is_goal:
            task = rng.choice(state.ready_tasks())
            state = state.child(task, rng.randrange(problem.m))
            states.append(state)
    return states


_FIELDS = (
    "scheduled_mask", "ready_mask", "level", "scheduled_lateness",
    "last_task", "last_proc", "proc_of", "start", "finish", "avail",
)


def _assert_same_state(got: SearchState, want: SearchState):
    for attr in _FIELDS:
        assert getattr(got, attr) == getattr(want, attr), attr
    assert got.min_avail() == want.min_avail()
    assert got.signature() == want.signature()


# ---------------------------------------------------------------------------
# Adopt / materialize round-trip
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", range(3))
@pytest.mark.parametrize("track_est", [False, True], ids=["plain", "est"])
def test_adopt_materialize_roundtrip(seed, track_est):
    problem = _problem(seed)
    arena = StateArena(ArenaProblem(problem), track_est=track_est)
    rng = random.Random(seed)
    states = _random_states(problem, rng)
    est = [0.0] * problem.n if track_est else None
    slots = [arena.adopt(s, est=est, estart=est) for s in states]
    # Materialize in a scrambled order: slots must be independent.
    order = list(range(len(states)))
    rng.shuffle(order)
    for i in order:
        _assert_same_state(arena.materialize(slots[i]), states[i])


def test_growth_preserves_every_live_slot():
    problem = _problem(1)
    arena = StateArena(ArenaProblem(problem), track_est=False, capacity=4)
    rng = random.Random(1)
    walk = _random_states(problem, rng, walks=2)
    initial_cap, initial_version = arena.cap, arena.version
    # Keep adopting until the arena has doubled at least twice; every
    # previously-adopted row must survive each reallocation untouched.
    states, slots = [], []
    while arena.cap < 4 * initial_cap:
        for state in walk:
            states.append(state)
            slots.append(arena.adopt(state))
    assert arena.version > initial_version
    for slot, state in zip(slots, states):
        _assert_same_state(arena.materialize(slot), state)


def test_free_slots_are_reused_before_growth():
    problem = _problem(2)
    arena = StateArena(ArenaProblem(problem), track_est=False)
    root = root_state(problem)
    slots = [arena.adopt(root) for _ in range(8)]
    cap = arena.cap
    live = arena.live
    for slot in slots[4:]:
        arena.free(slot)
    assert arena.live == live - 4
    again = [arena.alloc() for _ in range(4)]
    assert sorted(again) == sorted(slots[4:])
    assert arena.cap == cap, "freed slots must be recycled, not grown past"


# ---------------------------------------------------------------------------
# ArenaState delegation
# ---------------------------------------------------------------------------


def test_arena_state_delegates_to_materialized_state():
    problem = _problem(0, m=3)
    arena = StateArena(ArenaProblem(problem), track_est=False)
    rng = random.Random(3)
    for state in _random_states(problem, rng, walks=2):
        handle = ArenaState(arena, arena.adopt(state))
        assert handle.problem is problem
        for attr in _FIELDS:
            assert getattr(handle, attr) == getattr(state, attr), attr
        assert handle.is_goal == state.is_goal
        assert list(handle.ready_tasks()) == list(state.ready_tasks())
        for task in range(problem.n):
            assert handle.is_ready(task) == (
                bool((state.ready_mask >> task) & 1)
            )
        assert handle.min_avail() == state.min_avail()
        assert handle.signature() == state.signature()
        if not state.is_goal:
            task = state.ready_tasks()[0]
            _assert_same_state(handle.child(task, 0), state.child(task, 0))


def test_arena_state_pickles_as_flat_search_state():
    problem = _problem(1)
    arena = StateArena(ArenaProblem(problem), track_est=False)
    rng = random.Random(4)
    for state in _random_states(problem, rng, walks=2):
        handle = ArenaState(arena, arena.adopt(state))
        clone = pickle.loads(pickle.dumps(handle))
        assert type(clone) is SearchState
        _assert_same_state(clone, state)


# ---------------------------------------------------------------------------
# Checkpoints written by the array engine
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("engine", ["array", "array-numpy"])
def test_array_engine_checkpoint_resumes_on_any_engine(tmp_path, engine):
    """Kill-resume differential across engines.

    A checkpoint captured mid-search under an array engine must resume
    to the full-run answer — on the object engine too, since snapshots
    carry flat states only.
    """
    problem = _problem(5)
    # The trivial bound barely prunes, so the 60-vertex cap genuinely
    # interrupts the search mid-frontier (~7.8k vertices uncapped).
    base = BnBParameters(engine=engine, lower_bound=TrivialBound())
    full = BranchAndBound(base).solve(problem)

    path = tmp_path / "cp.pkl"
    capped = base.evolve(resources=ResourceBounds(max_vertices=60))
    partial = BranchAndBound(capped).solve(
        problem, checkpoint=Checkpointer(str(path), every=10)
    )
    assert partial.status is SolveStatus.TRUNCATED
    snap = load_checkpoint(str(path))
    assert snap.frontier
    for resume_engine in ("object", engine):
        resumed = BranchAndBound(
            base.evolve(engine=resume_engine)
        ).solve(problem, resume=snap)
        assert resumed.best_cost == full.best_cost
        assert resumed.proc_of == full.proc_of
        assert resumed.start == full.start


# ---------------------------------------------------------------------------
# Cost-domain certificate
# ---------------------------------------------------------------------------


def _graph_with_wcets(wcet: float, deadline: float = 400.0) -> TaskGraph:
    g = TaskGraph(name="domain")
    for i in range(4):
        g.add_task(Task(name=f"t{i}", wcet=wcet, relative_deadline=deadline))
    g.add_edge("t0", "t1", message_size=2.0)
    g.add_edge("t0", "t2", message_size=4.0)
    g.add_edge("t1", "t3", message_size=1.0)
    return g


def test_integer_durations_certify_exact():
    problem = compile_problem(make_diamond(), shared_bus_platform(2))
    domain = analyze_cost_domain(problem)
    assert domain.exact
    assert domain.terms == 2 * problem.n + 4


def test_roundtrip_and_order_on_certified_domain():
    problem = compile_problem(make_forkjoin(), shared_bus_platform(2))
    domain = analyze_cost_domain(problem)
    assert domain.exact
    step = 2.0 ** -domain.scale_bits
    rng = random.Random(5)
    values = sorted(
        rng.randrange(-(1 << 20), 1 << 20) * step for _ in range(200)
    )
    scaled = [domain.as_integer(v) for v in values]
    assert scaled == sorted(scaled), "scaling must preserve order"
    for v, s in zip(values, scaled):
        assert domain.from_integer(s) == v


def test_as_integer_rejects_off_grid_values():
    problem = compile_problem(make_diamond(), shared_bus_platform(2))
    domain = analyze_cost_domain(problem)
    assert domain.exact
    off_grid = 2.0 ** -(domain.scale_bits + 1)
    with pytest.raises(ValueError):
        domain.as_integer(off_grid)
    with pytest.raises(ValueError):
        domain.as_integer(math.inf)


def test_fine_grained_durations_fail_the_certificate():
    # 0.1 is dyadic as a float but with 55 fractional bits; the summed
    # magnitude bound then overflows 2**53, so exactness must be denied.
    problem = compile_problem(
        _graph_with_wcets(0.1, deadline=1.0), shared_bus_platform(2)
    )
    assert not analyze_cost_domain(problem).exact


def test_huge_magnitudes_fail_the_certificate():
    problem = compile_problem(
        _graph_with_wcets(2.0 ** 60, deadline=2.0 ** 61),
        shared_bus_platform(2),
    )
    domain = analyze_cost_domain(problem)
    assert domain.scale_bits == 0
    assert not domain.exact


def test_certificate_never_blocks_solving():
    """Inexact domains stay solvable (margin semantics, same answer)."""
    problem = compile_problem(
        _graph_with_wcets(0.1, deadline=1.0), shared_bus_platform(2)
    )
    results = {
        engine: BranchAndBound(
            BnBParameters(engine=engine)
        ).solve(problem)
        for engine in ("object", "array", "array-numpy")
    }
    costs = {r.best_cost for r in results.values()}
    gens = {r.stats.generated for r in results.values()}
    assert len(costs) == 1 and len(gens) == 1
