"""Tests for the experiment harness (runner, figures, report, registry).

The figure experiments run on the tiny profile with few graphs: they
exercise the full pipeline (generation -> solving -> aggregation ->
rendering) without attempting the paper-scale statistics — those live in
the benchmark suite.
"""

import math

import pytest

from repro.core import BnBParameters, ResourceBounds
from repro.errors import ConfigurationError
from repro.experiments import (
    Cell,
    EDF_LABEL,
    EXPERIMENTS,
    default_resources,
    fig3a,
    format_ratios,
    format_table,
    get_experiment,
    render,
    run_by_name,
    run_experiment,
    series_ratio,
    upper_bound_impact,
)
from repro.workload import tiny_spec

FAST_RB = ResourceBounds(max_vertices=30_000, time_limit=10.0)


@pytest.fixture(scope="module")
def small_output():
    cells = [Cell(x=float(m), spec=tiny_spec(), processors=m) for m in (2, 3)]
    return run_experiment(
        name="unit",
        description="unit-test sweep",
        x_label="processors",
        cells=cells,
        strategies={
            "LIFO": BnBParameters.paper_lifo(resources=FAST_RB),
            "LLB": BnBParameters.paper_llb(resources=FAST_RB),
        },
        num_graphs=5,
        base_seed=0,
    )


class TestRunner:
    def test_series_labels(self, small_output):
        assert small_output.labels == (EDF_LABEL, "LIFO", "LLB")

    def test_points_cover_all_x(self, small_output):
        for s in small_output.series:
            assert s.xs == (2.0, 3.0)

    def test_runs_counted(self, small_output):
        for s in small_output.series:
            for p in s.points:
                assert p.runs == 5

    def test_edf_vertices_equal_task_count(self, small_output):
        edf = small_output.series_by_label(EDF_LABEL)
        for p in edf.points:
            lo, hi = tiny_spec().num_tasks
            assert lo <= p.mean_vertices <= hi

    def test_optimal_lateness_never_above_edf(self, small_output):
        edf = small_output.series_by_label(EDF_LABEL)
        lifo = small_output.series_by_label("LIFO")
        for x in (2.0, 3.0):
            assert (
                lifo.point_at(x).mean_lateness
                <= edf.point_at(x).mean_lateness + 1e-9
            )

    def test_selection_rules_same_lateness(self, small_output):
        lifo = small_output.series_by_label("LIFO")
        llb = small_output.series_by_label("LLB")
        for x in (2.0, 3.0):
            assert lifo.point_at(x).mean_lateness == pytest.approx(
                llb.point_at(x).mean_lateness
            )

    def test_metadata(self, small_output):
        assert small_output.metadata["num_graphs"] == 5
        assert small_output.metadata["base_seed"] == 0
        assert len(small_output.metadata["cells"]) == 2

    def test_unknown_series_raises(self, small_output):
        with pytest.raises(KeyError):
            small_output.series_by_label("nope")

    def test_parallel_workers_match_sequential(self, small_output):
        cells = [Cell(x=2.0, spec=tiny_spec(), processors=2)]
        seq = run_experiment(
            "p", "", "m", cells,
            {"LIFO": BnBParameters.paper_lifo(resources=FAST_RB)},
            num_graphs=4, workers=0,
        )
        par = run_experiment(
            "p", "", "m", cells,
            {"LIFO": BnBParameters.paper_lifo(resources=FAST_RB)},
            num_graphs=4, workers=2,
        )
        a = seq.series_by_label("LIFO").point_at(2.0)
        b = par.series_by_label("LIFO").point_at(2.0)
        assert a.mean_vertices == pytest.approx(b.mean_vertices)
        assert a.mean_lateness == pytest.approx(b.mean_lateness)


class TestReport:
    def test_format_table_mentions_everything(self, small_output):
        text = format_table(small_output)
        assert "searched vertices" in text
        assert "maximum task lateness" in text
        assert "LIFO" in text and "LLB" in text and EDF_LABEL in text
        assert "unit-test sweep" in text

    def test_format_ratios(self, small_output):
        text = format_ratios(small_output, EDF_LABEL)
        assert "LIFO" in text and "vertices" in text

    def test_series_ratio(self, small_output):
        r = series_ratio(small_output, "LLB", "LIFO")
        assert r >= 1.0  # LLB never searches fewer vertices here
        r2 = series_ratio(small_output, "LLB", "LIFO", x=2.0)
        assert r2 > 0

    def test_render_with_and_without_reference(self, small_output):
        assert "ratios" in render(small_output, reference=EDF_LABEL)
        assert "ratios" not in render(small_output)


class TestRegistry:
    def test_all_design_md_experiments_registered(self):
        expected = {
            "fig3a", "fig3b", "fig3c",
            "disc-parallelism", "disc-ccr", "disc-upper-bound", "disc-memory",
            "scaling", "anytime",
            "abl-dominance", "abl-symmetry", "abl-child-order", "abl-lb2",
            "abl-elimination", "abl-selection-tiebreak",
        }
        assert expected == set(EXPERIMENTS)

    def test_get_unknown_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown experiment"):
            get_experiment("fig9z")

    def test_run_by_name(self):
        out = run_by_name(
            "fig3b", profile="tiny", processors=(2,), num_graphs=3,
            resources=FAST_RB,
        )
        assert out.name == "fig3b"
        assert {s.label for s in out.series} == {
            EDF_LABEL, "BnB L=LB0", "BnB L=LB1",
        }

    def test_default_resources_profiles(self):
        assert default_resources("paper").max_vertices > default_resources(
            "scaled"
        ).max_vertices
        assert default_resources("tiny").bounded


class TestFigureExperiments:
    def test_fig3a_structure(self):
        out = fig3a(profile="tiny", processors=(2,), num_graphs=3,
                    resources=FAST_RB)
        assert {s.label for s in out.series} == {
            EDF_LABEL, "BnB S=LLB", "BnB S=LIFO",
        }
        llb = out.series_by_label("BnB S=LLB").point_at(2.0)
        lifo = out.series_by_label("BnB S=LIFO").point_at(2.0)
        # Same optimal lateness, LLB never cheaper.
        assert llb.mean_lateness == pytest.approx(lifo.mean_lateness)
        assert llb.mean_vertices >= lifo.mean_vertices - 1e-9

    def test_upper_bound_impact_structure(self):
        out = upper_bound_impact(
            profile="tiny", processors=(2,), num_graphs=3, resources=FAST_RB,
        )
        edf_seeded = out.series_by_label("BnB U=EDF").point_at(2.0)
        naive = out.series_by_label("BnB U=naive").point_at(2.0)
        assert naive.mean_vertices >= edf_seeded.mean_vertices - 1e-9
        # The naive run must still find the same optimum.
        assert naive.mean_lateness == pytest.approx(edf_seeded.mean_lateness)


class TestScalingExperiment:
    def test_scaling_structure(self):
        from repro.experiments import scaling_sweep

        out = scaling_sweep(
            profile="tiny", sizes=(4, 6), num_graphs=3, resources=FAST_RB,
        )
        assert out.name == "scaling"
        assert {s.label for s in out.series} == {
            EDF_LABEL, "BnB optimal", "BnB B=DF",
        }
        opt = out.series_by_label("BnB optimal")
        assert opt.xs == (4.0, 6.0)
        # EDF reference vertices track the task count exactly.
        edf = out.series_by_label(EDF_LABEL)
        assert edf.point_at(4.0).mean_vertices == pytest.approx(4.0)
        assert edf.point_at(6.0).mean_vertices == pytest.approx(6.0)


class TestAnytimeExperiment:
    def test_anytime_structure(self):
        from repro.experiments import anytime_convergence

        out = anytime_convergence(
            profile="tiny", processors=(2,), num_graphs=4, resources=FAST_RB,
        )
        assert out.name == "anytime"
        lifo = out.series_by_label("BnB S=LIFO U=none").point_at(2.0)
        llb = out.series_by_label("BnB S=LLB U=none").point_at(2.0)
        # Depth-first reaches a first incumbent no later than best-first.
        assert (
            lifo.extras["to_first_incumbent"]
            <= llb.extras["to_first_incumbent"] + 1e-9
        )
        assert "failed_runs" in out.metadata


class TestAdaptiveReplication:
    def test_confidence_target_drives_replication(self):
        from repro.analysis import ConfidenceTarget
        from repro.experiments.runner import run_experiment as run

        cells = [Cell(x=2.0, spec=tiny_spec(), processors=2)]
        target = ConfidenceTarget(
            level=0.90, rel_error=0.50, min_runs=3, max_runs=25
        )
        out = run(
            "adaptive", "", "m", cells,
            {"LIFO": BnBParameters.paper_lifo(resources=FAST_RB)},
            confidence=target,
        )
        runs = out.series_by_label("LIFO").point_at(2.0).runs
        assert 3 <= runs <= 25
        assert out.metadata["adaptive"] is True
        assert out.metadata["num_graphs"][2.0] == runs

    def test_tight_target_hits_max_runs(self):
        from repro.analysis import ConfidenceTarget
        from repro.experiments.runner import run_experiment as run

        cells = [Cell(x=2.0, spec=tiny_spec(), processors=2)]
        target = ConfidenceTarget(
            level=0.95, rel_error=0.0001, min_runs=3, max_runs=8
        )
        out = run(
            "adaptive", "", "m", cells,
            {"LIFO": BnBParameters.paper_lifo(resources=FAST_RB)},
            confidence=target,
        )
        assert out.series_by_label("LIFO").point_at(2.0).runs == 8
