"""Unit tests for repro.scheduling.heuristics."""

import random

import pytest

from repro.model import compile_problem, shared_bus_platform
from repro.scheduling import (
    HEURISTICS,
    best_heuristic_schedule,
    depth_first_schedule,
    hlfet_schedule,
    least_laxity_schedule,
    level_order_schedule,
    random_order_schedule,
)
from repro.workload import generate_task_graph, scaled_spec

from conftest import make_diamond, make_forkjoin


@pytest.fixture(params=sorted(HEURISTICS))
def heuristic(request):
    return HEURISTICS[request.param]


@pytest.fixture
def problems():
    plat = shared_bus_platform(2)
    graphs = [make_diamond(), make_forkjoin(3)] + [
        generate_task_graph(scaled_spec(), seed=s) for s in range(3)
    ]
    return [compile_problem(g, plat) for g in graphs]


class TestAllHeuristics:
    def test_produce_consistent_complete_schedules(self, heuristic, problems):
        for prob in problems:
            res = heuristic(prob)
            sched = res.to_schedule()
            assert sched.is_complete
            assert sched.violations() == []

    def test_cost_matches_materialized_schedule(self, heuristic, problems):
        for prob in problems:
            res = heuristic(prob)
            assert res.max_lateness == pytest.approx(
                res.to_schedule().max_lateness()
            )

    def test_order_is_topological(self, heuristic, problems):
        for prob in problems:
            res = heuristic(prob)
            seen = set()
            for t in res.order:
                for j, _ in prob.pred_edges[t]:
                    assert j in seen
                seen.add(t)

    def test_deterministic(self, heuristic, problems):
        prob = problems[0]
        assert heuristic(prob).proc_of == heuristic(prob).proc_of


class TestSpecificHeuristics:
    def test_hlfet_schedules_critical_branch_first(self):
        prob = compile_problem(make_diamond(), shared_bus_platform(2))
        res = hlfet_schedule(prob)
        order = list(res.order)
        # "right" (bottom level 10) before "left" (bottom level 8).
        assert order.index(prob.index["right"]) < order.index(prob.index["left"])

    def test_depth_first_uses_df_order(self):
        prob = compile_problem(make_diamond(), shared_bus_platform(2))
        res = depth_first_schedule(prob)
        df = [prob.index[n] for n in prob.graph.depth_first_order()]
        assert list(res.order) == df

    def test_level_order_uses_level_order(self):
        prob = compile_problem(make_forkjoin(3), shared_bus_platform(2))
        res = level_order_schedule(prob)
        lv = [prob.index[n] for n in prob.graph.level_order()]
        assert list(res.order) == lv

    def test_random_order_seeded(self):
        prob = compile_problem(make_forkjoin(4), shared_bus_platform(2))
        a = random_order_schedule(prob, random.Random(7))
        b = random_order_schedule(prob, random.Random(7))
        c = random_order_schedule(prob, random.Random(8))
        assert a.order == b.order
        assert a.order != c.order or a.proc_of != c.proc_of

    def test_least_laxity_runs(self):
        prob = compile_problem(make_forkjoin(3), shared_bus_platform(2))
        res = least_laxity_schedule(prob)
        assert res.to_schedule().violations() == []


class TestPortfolio:
    def test_best_heuristic_is_min_over_registry(self, problems):
        for prob in problems:
            best = best_heuristic_schedule(prob)
            costs = [h(prob).max_lateness for h in HEURISTICS.values()]
            assert best.max_lateness == pytest.approx(min(costs))

    def test_registry_names(self):
        assert "edf" in HEURISTICS
        assert "hlfet" in HEURISTICS
        assert len(HEURISTICS) >= 5
