"""Differential suite: the engine vs. the independent exhaustive oracle.

Fifty fixed-seed instances (44 generated DAGs plus six handcrafted
shapes), every one small enough for :func:`oracle.oracle_optimum` to
enumerate completely.  Four *core* instances run the full
``B x S x E x L`` parameter matrix (160 combinations); the rest cycle
through the matrix deterministically, so every combination is exercised
on several graphs per run.

What is asserted per cell:

* the reported cost is *real* — recomputed from the returned schedule
  by the oracle's own arithmetic, and the schedule passes the
  independent validity checker;
* under an optimal branching rule (BFn, AO) the cost equals the oracle
  optimum for **every** selection rule, elimination rule and lower
  bound — selection changes order, elimination changes work, bounds
  change pruning, none may change the answer;
* under the approximate rules (BF1, DF) the cost is sandwiched between
  the oracle optimum and the initial upper bound (they search a
  restricted tree, so equality is not a theorem — asserting it would
  encode a falsehood).

Unpruned cells (E = none) enumerate the entire tree, so they are kept
to instances of at most five tasks.
"""

from __future__ import annotations

import itertools

import pytest

from repro.core import BnBParameters, BranchAndBound
from repro.core.bounds import LOWER_BOUNDS
from repro.core.branching import BRANCHING_RULES
from repro.core.elimination import ELIMINATION_RULES
from repro.core.selection import SELECTION_RULES
from repro.model import compile_problem, shared_bus_platform
from repro.workload import WorkloadSpec, generate_task_graph

from conftest import (
    make_chain,
    make_diamond,
    make_forkjoin,
    make_independent,
)
from oracle import oracle_optimum, oracle_schedule_cost

SPEC = WorkloadSpec(num_tasks=(4, 6), depth=(2, 4))
NUM_RANDOM = 44

#: Full E-off enumeration is the whole tree; cap those cells here.
MAX_TASKS_UNPRUNED = 5


def _instances():
    probs = []
    for seed in range(NUM_RANDOM):
        graph = generate_task_graph(SPEC, seed=seed)
        m = 3 if len(graph) <= 4 else 2
        probs.append(compile_problem(graph, shared_bus_platform(m)))
    for graph, m in (
        (make_chain(), 2),
        (make_diamond(), 2),
        (make_diamond(), 3),
        (make_forkjoin(), 2),
        (make_independent(), 2),
        (make_independent(), 3),
    ):
        probs.append(compile_problem(graph, shared_bus_platform(m)))
    return probs


PROBLEMS = _instances()

COMBOS = list(
    itertools.product(
        sorted(BRANCHING_RULES),
        sorted(SELECTION_RULES),
        sorted(ELIMINATION_RULES),
        sorted(LOWER_BOUNDS),
    )
)

#: Core instances get the complete 160-combination matrix: the first
#: three random draws small enough to allow E = none everywhere, plus
#: one handcrafted three-processor shape.
CORE = [
    i for i in range(NUM_RANDOM) if PROBLEMS[i].n <= MAX_TASKS_UNPRUNED
][:3] + [NUM_RANDOM + 2]

_oracle_cache: dict[int, float] = {}


def _oracle(idx: int) -> float:
    if idx not in _oracle_cache:
        _oracle_cache[idx] = oracle_optimum(PROBLEMS[idx])
    return _oracle_cache[idx]


def _case_id(idx: int, combo) -> str:
    b, s, e, l = combo
    return f"g{idx:02d}-{b}-{s}-{e.replace('/', '')}-{l}"


CASES = [(i, combo) for i in CORE for combo in COMBOS] + [
    (i, COMBOS[i % len(COMBOS)])
    for i in range(len(PROBLEMS))
    if i not in CORE
]


@pytest.mark.parametrize(
    "idx,combo", CASES, ids=[_case_id(i, c) for i, c in CASES]
)
def test_engine_matches_oracle(idx, combo):
    branching, selection, elimination, bound = combo
    problem = PROBLEMS[idx]
    if elimination == "none" and problem.n > MAX_TASKS_UNPRUNED:
        pytest.skip("unpruned full enumeration kept to small instances")
    params = BnBParameters(
        branching=BRANCHING_RULES[branching](),
        selection=SELECTION_RULES[selection](),
        elimination=ELIMINATION_RULES[elimination](),
        lower_bound=LOWER_BOUNDS[bound](),
    )
    result = BranchAndBound(params).solve(problem)
    optimum = _oracle(idx)

    assert result.found_solution
    assert oracle_schedule_cost(
        problem, result.proc_of, result.start
    ) == pytest.approx(result.best_cost, abs=1e-9)
    result.schedule().validate()

    if params.branching.guarantees_optimal:
        assert result.best_cost == pytest.approx(optimum, abs=1e-9)
    else:
        assert result.best_cost >= optimum - 1e-9
        assert result.best_cost <= result.initial_upper_bound + 1e-9


def test_matrix_coverage():
    """Every ⟨B,S,E,L⟩ combination appears in the parametrized cases."""
    covered = {combo for _, combo in CASES}
    assert covered == set(COMBOS)


def test_core_instances_are_unpruned_capable():
    assert len(CORE) == 4
    for idx in CORE:
        assert PROBLEMS[idx].n <= MAX_TASKS_UNPRUNED
