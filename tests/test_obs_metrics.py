"""Unit tests for repro.obs.metrics and the engine's standard instruments."""

import json
import math

import pytest

from repro.core import BnBParameters, BranchAndBound
from repro.model import compile_problem, shared_bus_platform
from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Observability,
)
from repro.workload import generate_task_graph, scaled_spec


@pytest.fixture
def hard_problem():
    return compile_problem(
        generate_task_graph(scaled_spec(), seed=0), shared_bus_platform(2)
    )


class TestInstruments:
    def test_counter_monotone(self):
        c = Counter("x_total")
        c.inc()
        c.inc(4)
        assert c.value == 5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_set_and_inc(self):
        g = Gauge("x")
        g.set(3.5)
        g.inc(-1.5)
        assert g.value == 2.0

    def test_histogram_buckets_and_mean(self):
        h = Histogram("h", buckets=(1.0, 10.0, 100.0))
        for v in (0.5, 5.0, 50.0, 500.0):
            h.observe(v)
        assert h.count == 4
        assert h.sum == pytest.approx(555.5)
        assert h.bucket_counts == [1, 1, 1, 1]
        assert h.mean == pytest.approx(555.5 / 4)

    def test_histogram_boundary_value_lands_in_its_bucket(self):
        h = Histogram("h", buckets=(1.0, 10.0))
        h.observe(1.0)  # le="1" includes exactly 1.0
        assert h.bucket_counts == [1, 0, 0]

    def test_invalid_names_rejected(self):
        with pytest.raises(ValueError):
            Counter("bad name")
        with pytest.raises(ValueError):
            Gauge("")


class TestRegistry:
    def test_get_or_create_idempotent(self):
        reg = MetricsRegistry()
        a = reg.counter("c_total")
        b = reg.counter("c_total")
        assert a is b
        with pytest.raises(ValueError):
            reg.gauge("c_total")  # kind conflict

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("c_total").inc(2)
        reg.gauge("g").set(7)
        reg.histogram("h", buckets=(1.0,)).observe(0.5)
        snap = reg.snapshot()
        assert snap["c_total"] == {"type": "counter", "value": 2}
        assert snap["g"] == {"type": "gauge", "value": 7}
        assert snap["h"]["count"] == 1
        assert snap["h"]["buckets"]["+Inf"] == 0
        json.dumps(snap)  # JSON-serializable throughout

    def test_prometheus_exposition_format(self):
        reg = MetricsRegistry()
        reg.counter("c_total", "a counter").inc(3)
        reg.histogram("h", buckets=(1.0, 2.0)).observe(1.5)
        text = reg.to_prometheus()
        assert "# HELP c_total a counter" in text
        assert "# TYPE c_total counter" in text
        assert "c_total 3" in text
        # Histogram buckets are cumulative and end with +Inf.
        assert 'h_bucket{le="1"} 0' in text
        assert 'h_bucket{le="2"} 1' in text
        assert 'h_bucket{le="+Inf"} 1' in text
        assert "h_sum 1.5" in text
        assert "h_count 1" in text

    def test_write_by_extension(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("c_total").inc()
        jpath = tmp_path / "m.json"
        ppath = tmp_path / "m.prom"
        reg.write(str(jpath))
        reg.write(str(ppath))
        assert json.loads(jpath.read_text())["c_total"]["value"] == 1
        assert "# TYPE c_total counter" in ppath.read_text()


class TestEngineMetrics:
    def test_counters_match_search_stats(self, hard_problem):
        reg = MetricsRegistry()
        res = BranchAndBound(
            BnBParameters(), obs=Observability(metrics=reg)
        ).solve(hard_problem)
        snap = reg.snapshot()
        stats = res.stats
        assert snap["bnb_generated_vertices_total"]["value"] == stats.generated
        assert snap["bnb_explored_vertices_total"]["value"] == stats.explored
        assert (
            snap["bnb_pruned_children_total"]["value"] == stats.pruned_children
        )
        assert snap["bnb_solves_total"]["value"] == 1
        assert snap["bnb_peak_active_set_size"]["value"] == stats.peak_active
        assert snap["bnb_elapsed_seconds"]["value"] == pytest.approx(
            stats.elapsed
        )

    def test_histograms_observe_every_explore(self, hard_problem):
        reg = MetricsRegistry()
        res = BranchAndBound(
            BnBParameters(), obs=Observability(metrics=reg)
        ).solve(hard_problem)
        h = reg["bnb_active_set_size_distribution"]
        assert h.count == res.stats.explored
        gap = reg["bnb_lower_bound_gap"]
        # EDF provides a finite incumbent from the start, so the gap
        # histogram sees every explored vertex too.
        assert gap.count == res.stats.explored
        assert not math.isnan(gap.mean)

    def test_counters_accumulate_across_solves(self, hard_problem):
        reg = MetricsRegistry()
        solver = BranchAndBound(BnBParameters(), obs=Observability(metrics=reg))
        r1 = solver.solve(hard_problem)
        r2 = solver.solve(hard_problem)
        snap = reg.snapshot()
        assert snap["bnb_solves_total"]["value"] == 2
        assert (
            snap["bnb_generated_vertices_total"]["value"]
            == r1.stats.generated + r2.stats.generated
        )
