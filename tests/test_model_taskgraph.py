"""Unit tests for repro.model.taskgraph."""

import pytest

from repro.errors import CycleError, ModelError, UnknownChannelError, UnknownTaskError
from repro.model import Channel, Task, TaskGraph

from conftest import make_chain, make_diamond, make_forkjoin, make_independent


def simple_graph() -> TaskGraph:
    g = TaskGraph(name="g")
    for name, c in [("a", 1.0), ("b", 2.0), ("c", 3.0), ("d", 4.0)]:
        g.add_task(Task(name=name, wcet=c))
    g.add_edge("a", "b", message_size=1.0)
    g.add_edge("a", "c", message_size=2.0)
    g.add_edge("b", "d", message_size=3.0)
    g.add_edge("c", "d", message_size=4.0)
    return g


class TestConstruction:
    def test_add_and_lookup(self):
        g = simple_graph()
        assert len(g) == 4
        assert g.num_arcs == 4
        assert g.task("a").wcet == 1.0
        assert g.channel("a", "b").message_size == 1.0
        assert "a" in g
        assert "zz" not in g

    def test_duplicate_task_rejected(self):
        g = TaskGraph()
        g.add_task(Task(name="a", wcet=1.0))
        with pytest.raises(ModelError, match="duplicate task"):
            g.add_task(Task(name="a", wcet=2.0))

    def test_duplicate_channel_rejected(self):
        g = simple_graph()
        with pytest.raises(ModelError, match="duplicate channel"):
            g.add_edge("a", "b")

    def test_channel_to_unknown_task_rejected(self):
        g = simple_graph()
        with pytest.raises(UnknownTaskError):
            g.add_edge("a", "zz")
        with pytest.raises(UnknownTaskError):
            g.add_edge("zz", "a")

    def test_unknown_lookups_raise(self):
        g = simple_graph()
        with pytest.raises(UnknownTaskError):
            g.task("zz")
        with pytest.raises(UnknownChannelError):
            g.channel("a", "d")
        with pytest.raises(UnknownTaskError):
            g.successors("zz")

    def test_cycle_rejected_immediately(self):
        g = simple_graph()
        with pytest.raises(CycleError) as exc:
            g.add_edge("d", "a")
        # The reported cycle walks a -> ... -> d -> a.
        assert exc.value.cycle[0] == "a"
        assert exc.value.cycle[-1] == "a"
        # Graph unchanged by the failed insertion.
        assert g.num_arcs == 4
        g.validate()

    def test_two_node_cycle_rejected(self):
        g = TaskGraph()
        g.add_task(Task(name="a", wcet=1.0))
        g.add_task(Task(name="b", wcet=1.0))
        g.add_edge("a", "b")
        with pytest.raises(CycleError):
            g.add_edge("b", "a")

    def test_copy_is_independent(self):
        g = simple_graph()
        h = g.copy()
        h.add_task(Task(name="e", wcet=1.0))
        assert "e" in h and "e" not in g


class TestAdjacency:
    def test_direct_neighbours(self):
        g = simple_graph()
        assert g.successors("a") == ["b", "c"]
        assert g.predecessors("d") == ["b", "c"]
        assert g.in_degree("a") == 0
        assert g.out_degree("a") == 2

    def test_inputs_outputs(self):
        g = simple_graph()
        assert g.input_tasks == ["a"]
        assert g.output_tasks == ["d"]
        indep = make_independent(3)
        assert len(indep.input_tasks) == 3
        assert len(indep.output_tasks) == 3

    def test_precedes_is_transitive(self):
        g = simple_graph()
        assert g.precedes("a", "d")
        assert g.precedes("a", "b")
        assert not g.precedes("d", "a")
        assert not g.precedes("b", "c")
        assert not g.precedes("a", "a")  # irreflexive

    def test_ancestors_descendants(self):
        g = simple_graph()
        assert g.ancestors("d") == {"a", "b", "c"}
        assert g.descendants("a") == {"b", "c", "d"}
        assert g.ancestors("a") == set()


class TestOrders:
    def test_topological_order_valid(self):
        g = simple_graph()
        order = g.topological_order()
        pos = {n: i for i, n in enumerate(order)}
        for ch in g.channels:
            assert pos[ch.src] < pos[ch.dst]

    def test_depth_first_order_is_topological(self):
        for g in [simple_graph(), make_diamond(), make_forkjoin(4), make_chain(6)]:
            order = g.depth_first_order()
            assert sorted(order) == sorted(g.task_names)
            pos = {n: i for i, n in enumerate(order)}
            for ch in g.channels:
                assert pos[ch.src] < pos[ch.dst]

    def test_depth_first_order_descends_chains(self):
        # On two independent chains the DF order emits one full chain
        # before starting the other.
        g = TaskGraph()
        for name in ["a0", "a1", "a2", "b0", "b1", "b2"]:
            g.add_task(Task(name=name, wcet=1.0))
        g.add_edge("a0", "a1")
        g.add_edge("a1", "a2")
        g.add_edge("b0", "b1")
        g.add_edge("b1", "b2")
        assert g.depth_first_order() == ["a0", "a1", "a2", "b0", "b1", "b2"]

    def test_level_order_is_topological_and_breadth_first(self):
        g = make_forkjoin(3)
        order = g.level_order()
        pos = {n: i for i, n in enumerate(order)}
        for ch in g.channels:
            assert pos[ch.src] < pos[ch.dst]
        # All middle tasks precede the sink and follow the source.
        assert order[0] == "src"
        assert order[-1] == "sink"

    def test_level_order_ties_broken_by_bottom_level(self):
        # Two parallel tasks at the same depth: the more critical one
        # (larger computation bottom level) comes first.
        g = make_diamond()
        order = g.level_order()
        assert order.index("right") < order.index("left")  # 7 > 5


class TestLevels:
    def test_hop_levels(self):
        g = make_diamond()
        assert g.top_level_hops() == {"src": 0, "left": 1, "right": 1, "sink": 2}
        assert g.bottom_level_hops() == {"src": 2, "left": 1, "right": 1, "sink": 0}

    def test_weighted_levels_no_comm(self):
        g = make_diamond()
        top = g.top_level(include_comm=False)
        assert top["src"] == 2.0
        assert top["left"] == 7.0
        assert top["right"] == 9.0
        assert top["sink"] == 12.0
        bot = g.bottom_level(include_comm=False)
        assert bot["sink"] == 3.0
        assert bot["src"] == 2.0 + 7.0 + 3.0

    def test_weighted_levels_with_comm(self):
        g = make_diamond(msg=4.0)
        top = g.top_level(include_comm=True, delay=1.0)
        assert top["sink"] == 2.0 + 4.0 + 7.0 + 4.0 + 3.0
        # Doubling the nominal delay doubles the message terms.
        top2 = g.top_level(include_comm=True, delay=2.0)
        assert top2["sink"] == 2.0 + 8.0 + 7.0 + 8.0 + 3.0

    def test_critical_path(self):
        g = make_diamond()
        assert g.critical_path(include_comm=False) == ["src", "right", "sink"]
        assert g.critical_path_length(include_comm=False) == 12.0

    def test_critical_path_on_chain_is_whole_chain(self):
        g = make_chain(5)
        assert g.critical_path() == [f"c{i}" for i in range(5)]


class TestMetrics:
    def test_depth_and_widths(self):
        g = make_forkjoin(3)
        assert g.depth == 3
        assert g.level_widths() == [1, 3, 1]
        assert g.width == 3

    def test_parallelism(self):
        g = make_independent(4)
        # No precedence: critical path is the longest single task.
        assert g.parallelism() == pytest.approx(
            sum(4.0 + i for i in range(4)) / 7.0
        )

    def test_total_workload_and_volume(self):
        g = make_diamond(msg=4.0)
        assert g.total_workload == 17.0
        assert g.total_message_volume == 16.0

    def test_ccr(self):
        g = make_diamond(msg=4.0)
        # mean msg cost 4, mean exec 17/4.
        assert g.communication_to_computation_ratio() == pytest.approx(
            4.0 / (17.0 / 4.0)
        )

    def test_empty_graph_metrics(self):
        g = TaskGraph()
        assert g.depth == 0
        assert g.width == 0
        assert g.critical_path() == []
        assert g.critical_path_length() == 0.0


class TestPaths:
    def test_paths_between(self):
        g = make_diamond()
        paths = g.paths_between("src", "sink")
        assert sorted(map(tuple, paths)) == [
            ("src", "left", "sink"),
            ("src", "right", "sink"),
        ]

    def test_paths_between_no_path(self):
        g = make_independent(2)
        assert g.paths_between("i0", "i1") == []

    def test_paths_limit(self):
        g = make_diamond()
        with pytest.raises(ModelError, match="paths"):
            g.paths_between("src", "sink", limit=1)


class TestMutation:
    def test_replace_task(self):
        g = simple_graph()
        g.replace_task(Task(name="a", wcet=99.0))
        assert g.task("a").wcet == 99.0
        assert g.num_arcs == 4

    def test_replace_unknown_rejected(self):
        g = simple_graph()
        with pytest.raises(UnknownTaskError):
            g.replace_task(Task(name="zz", wcet=1.0))

    def test_with_tasks_returns_new_graph(self):
        g = simple_graph()
        h = g.with_tasks({"a": Task(name="a", wcet=50.0)})
        assert h.task("a").wcet == 50.0
        assert g.task("a").wcet == 1.0
        assert h.task_names == g.task_names

    def test_with_tasks_unknown_rejected(self):
        g = simple_graph()
        with pytest.raises(UnknownTaskError):
            g.with_tasks({"zz": Task(name="zz", wcet=1.0)})

    def test_caches_invalidated_on_mutation(self):
        g = simple_graph()
        assert g.depth == 3
        g.add_task(Task(name="e", wcet=1.0))
        g.add_edge("d", "e")
        assert g.depth == 4
