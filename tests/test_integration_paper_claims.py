"""Integration tests: the paper's qualitative claims on small ensembles.

These are fast, directional versions of the benchmark experiments: they
assert the *inequalities* the paper reports (who wins), leaving the
magnitude measurements to ``benchmarks/``.  Ensembles are chosen large
enough that the aggregate direction is stable across the seeded runs.
"""

import pytest

from repro.core import BnBParameters, BranchAndBound, ResourceBounds
from repro.model import compile_problem, shared_bus_platform
from repro.scheduling import edf_schedule
from repro.workload import generate_task_graph, scaled_spec

RB = ResourceBounds(max_vertices=300_000, time_limit=20.0)
SEEDS = range(16)


@pytest.fixture(scope="module")
def problems_m2():
    spec = scaled_spec()
    return [
        compile_problem(generate_task_graph(spec, seed=s), shared_bus_platform(2))
        for s in SEEDS
    ]


@pytest.fixture(scope="module")
def problems_m3():
    spec = scaled_spec()
    return [
        compile_problem(generate_task_graph(spec, seed=s), shared_bus_platform(3))
        for s in SEEDS
    ]


def total_vertices(problems, params):
    return sum(
        BranchAndBound(params).solve(p).stats.generated for p in problems
    )


class TestContributionC1SelectionRule:
    """LIFO outperforms LLB (Section 5.1)."""

    def test_lifo_searches_fewer_vertices(self, problems_m2):
        lifo = total_vertices(problems_m2, BnBParameters.paper_lifo(resources=RB))
        llb = total_vertices(problems_m2, BnBParameters.paper_llb(resources=RB))
        assert lifo < llb

    def test_lifo_uses_less_memory(self, problems_m2):
        peak_lifo = peak_llb = 0
        for p in problems_m2:
            peak_lifo += BranchAndBound(
                BnBParameters.paper_lifo(resources=RB)
            ).solve(p).stats.peak_active
            peak_llb += BranchAndBound(
                BnBParameters.paper_llb(resources=RB)
            ).solve(p).stats.peak_active
        # The Section 6 thrashing observation: LLB's active set is far
        # larger (it wades through the shallow lb-plateau breadth-first).
        assert peak_lifo < peak_llb

    def test_both_reach_same_optimum(self, problems_m2):
        for p in problems_m2:
            a = BranchAndBound(BnBParameters.paper_lifo(resources=RB)).solve(p)
            b = BranchAndBound(BnBParameters.paper_llb(resources=RB)).solve(p)
            assert a.best_cost == pytest.approx(b.best_cost)


class TestContributionC2LowerBound:
    """LB1 helps most when parallelism cannot be exploited (Section 5.2)."""

    def test_lb1_never_searches_more(self, problems_m2):
        for p in problems_m2:
            lb1 = BranchAndBound(BnBParameters.paper_lb1(resources=RB)).solve(p)
            lb0 = BranchAndBound(BnBParameters.paper_lb0(resources=RB)).solve(p)
            assert lb1.stats.generated <= lb0.stats.generated

    def test_lb1_gap_shrinks_with_more_processors(self, problems_m2, problems_m3):
        def ratio(problems):
            lb0 = total_vertices(problems, BnBParameters.paper_lb0(resources=RB))
            lb1 = total_vertices(problems, BnBParameters.paper_lb1(resources=RB))
            return lb0 / lb1

        # The adaptive term binds harder on the small system.
        assert ratio(problems_m2) >= ratio(problems_m3) - 0.05


class TestContributionC3Approximation:
    """Approximate rules trade lateness for vertices (Section 5.3)."""

    def test_single_task_rules_are_cheaper(self, problems_m3):
        bfn = total_vertices(problems_m3, BnBParameters.paper_default(resources=RB))
        df = total_vertices(problems_m3, BnBParameters.approximate_df(resources=RB))
        bf1 = total_vertices(problems_m3, BnBParameters.approximate_bf1(resources=RB))
        assert df < bfn
        assert bf1 < bfn

    def test_approximate_lateness_no_better_than_optimal(self, problems_m2):
        for p in problems_m2:
            opt = BranchAndBound(BnBParameters.paper_default(resources=RB)).solve(p)
            df = BranchAndBound(BnBParameters.approximate_df(resources=RB)).solve(p)
            assert df.best_cost >= opt.best_cost - 1e-9

    def test_br10_saves_vertices_at_bounded_cost(self, problems_m2):
        exact_total = near_total = 0
        for p in problems_m2:
            exact = BranchAndBound(BnBParameters.paper_default(resources=RB)).solve(p)
            near = BranchAndBound(
                BnBParameters.near_optimal(0.10, resources=RB)
            ).solve(p)
            exact_total += exact.stats.generated
            near_total += near.stats.generated
            assert near.best_cost <= exact.best_cost + 0.10 * abs(near.best_cost) + 1e-9
        assert near_total <= exact_total


class TestEDFBaseline:
    """The B&B improves on greedy EDF (Figure 3, lower plots)."""

    def test_optimal_beats_or_ties_edf_everywhere(self, problems_m2):
        improved = 0
        for p in problems_m2:
            opt = BranchAndBound(BnBParameters.paper_default(resources=RB)).solve(p)
            edf = edf_schedule(p)
            assert opt.best_cost <= edf.max_lateness + 1e-9
            if opt.best_cost < edf.max_lateness - 1e-9:
                improved += 1
        # On a meaningful fraction of instances the improvement is strict.
        assert improved >= 1


class TestSection6UpperBound:
    """EDF-seeded upper bound beats a naive constant (Section 6)."""

    def test_seeded_upper_bound_prunes_more(self, problems_m2):
        from repro.core import ConstantUpperBound

        seeded = total_vertices(
            problems_m2, BnBParameters.paper_default(resources=RB)
        )
        naive = total_vertices(
            problems_m2,
            BnBParameters.paper_default(
                resources=RB, upper_bound=ConstantUpperBound(1000.0)
            ),
        )
        assert seeded < naive
