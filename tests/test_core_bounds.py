"""Unit tests for repro.core.bounds (LB0, LB1, LB2, trivial)."""

import math

import pytest

from repro.core import LB0, LB1, LB2, LOWER_BOUNDS, TrivialBound, root_state
from repro.model import Task, TaskGraph, compile_problem, shared_bus_platform
from repro.workload import generate_task_graph, scaled_spec

from conftest import brute_force_optimum, make_chain, make_diamond, make_forkjoin


@pytest.fixture
def prob():
    return compile_problem(make_diamond(msg=4.0), shared_bus_platform(2))


def all_states(prob, limit=4000):
    """Enumerate every search state of a small problem."""
    out = []
    stack = [root_state(prob)]
    while stack and len(out) < limit:
        st = stack.pop()
        out.append(st)
        if not st.is_goal:
            for t in st.ready_tasks():
                for q in range(prob.m):
                    stack.append(st.child(t, q))
    return out


class TestLB0:
    def test_root_bound_is_critical_path_lateness(self, prob):
        # est(src)=2, est(left)=7, est(right)=9, est(sink)=12 (no comm).
        assert LB0().evaluate(root_state(prob)) == pytest.approx(12.0 - 100.0)

    def test_goal_bound_is_exact_cost(self, prob):
        st = root_state(prob)
        for name in ["src", "left", "right", "sink"]:
            st = st.child(prob.index[name], 0)
        assert LB0().evaluate(st) == pytest.approx(st.scheduled_lateness)

    def test_respects_arrivals(self):
        g = TaskGraph()
        g.add_task(Task(name="a", wcet=2.0, phase=10.0, relative_deadline=5.0))
        prob = compile_problem(g, shared_bus_platform(1))
        # est = arrival + c = 12, deadline 15.
        assert LB0().evaluate(root_state(prob)) == pytest.approx(-3.0)

    def test_scheduled_tasks_use_actual_finish(self, prob):
        st = root_state(prob).child(prob.index["src"], 0)
        st = st.child(prob.index["left"], 1)  # pays comm: finish 11
        lb = LB0().evaluate(st)
        # sink estimate via left: max(11, 0) + 3 = 14 > via right 12.
        assert lb == pytest.approx(14.0 - 100.0)


class TestLB1:
    def test_equals_lb0_at_root(self, prob):
        root = root_state(prob)
        assert LB1().evaluate(root) == LB0().evaluate(root)

    def test_contention_term_binds(self):
        # Two independent tasks, one processor: after placing the first,
        # the other cannot start before l_min even with arrival 0.
        g = TaskGraph()
        g.add_task(Task(name="a", wcet=10.0, relative_deadline=50.0))
        g.add_task(Task(name="b", wcet=10.0, relative_deadline=50.0))
        prob1 = compile_problem(g, shared_bus_platform(1))
        st = root_state(prob1).child(0, 0)
        # LB0 thinks b can finish at 10; LB1 knows it starts >= 10.
        assert LB0().evaluate(st) == pytest.approx(-40.0)
        assert LB1().evaluate(st) == pytest.approx(-30.0)

    def test_free_processor_neutralizes_lmin(self):
        g = TaskGraph()
        g.add_task(Task(name="a", wcet=10.0, relative_deadline=50.0))
        g.add_task(Task(name="b", wcet=10.0, relative_deadline=50.0))
        prob2 = compile_problem(g, shared_bus_platform(2))
        st = root_state(prob2).child(0, 0)
        assert LB1().evaluate(st) == LB0().evaluate(st)

    def test_dominates_lb0_everywhere(self):
        for factory in (make_diamond, make_forkjoin):
            prob = compile_problem(factory(), shared_bus_platform(2))
            lb0, lb1 = LB0(), LB1()
            for st in all_states(prob, limit=800):
                assert lb1.evaluate(st) >= lb0.evaluate(st) - 1e-12


class TestLB2:
    def test_dominates_lb1_everywhere(self):
        for factory in (make_diamond, make_forkjoin):
            prob = compile_problem(factory(), shared_bus_platform(2))
            lb1, lb2 = LB1(), LB2()
            for st in all_states(prob, limit=800):
                assert lb2.evaluate(st) >= lb1.evaluate(st) - 1e-12

    def test_accounts_for_unavoidable_communication(self, prob):
        # src on p0; left forced on p1 by availability? No: LB2 takes the
        # min over processors, so with p0 free there is no forced comm.
        st = root_state(prob).child(prob.index["src"], 0)
        assert LB2().evaluate(st) >= LB1().evaluate(st)

    def test_goal_bound_exact(self, prob):
        st = root_state(prob)
        for name in ["src", "left", "right", "sink"]:
            st = st.child(prob.index[name], 0)
        assert LB2().evaluate(st) == pytest.approx(st.scheduled_lateness)


class TestSoundness:
    """Every bound must lower-bound the best completion cost."""

    @pytest.mark.parametrize("bound_name", ["LB0", "LB1", "LB2", "trivial"])
    def test_bound_never_exceeds_best_descendant(self, bound_name):
        bound = LOWER_BOUNDS[bound_name]()
        for factory, m in [(make_diamond, 2), (make_forkjoin, 2)]:
            prob = compile_problem(factory(), shared_bus_platform(m))

            best_below = {}

            def walk(st):
                if st.is_goal:
                    cost = st.scheduled_lateness
                else:
                    cost = math.inf
                    for t in st.ready_tasks():
                        for q in range(prob.m):
                            cost = min(cost, walk(st.child(t, q)))
                key = id(st)
                best_below[key] = cost
                assert bound.evaluate(st) <= cost + 1e-9, (
                    f"{bound_name} overshoots at level {st.level}"
                )
                return cost

            walk(root_state(prob))

    @pytest.mark.parametrize("bound_name", ["LB0", "LB1", "LB2"])
    @pytest.mark.parametrize("seed", [0, 5])
    def test_root_bound_below_brute_force_optimum(self, bound_name, seed):
        spec = scaled_spec(num_tasks=(6, 7), depth=(3, 4))
        g = generate_task_graph(spec, seed=seed)
        prob = compile_problem(g, shared_bus_platform(2))
        opt = brute_force_optimum(prob)
        lb = LOWER_BOUNDS[bound_name]().evaluate(root_state(prob))
        assert lb <= opt + 1e-9


class TestTrivialBound:
    def test_returns_scheduled_lateness(self, prob):
        root = root_state(prob)
        assert TrivialBound().evaluate(root) == -math.inf
        st = root.child(prob.index["src"], 0)
        assert TrivialBound().evaluate(st) == st.scheduled_lateness

    def test_registry_complete(self):
        assert set(LOWER_BOUNDS) == {"LB0", "LB1", "LB2", "trivial"}

    def test_callable_interface(self, prob):
        root = root_state(prob)
        assert LB1()(root) == LB1().evaluate(root)
