"""Unit tests for repro.workload.deadline (the slicing pass)."""

import pytest

from repro.errors import DeadlineAssignmentError
from repro.model import TaskGraph
from repro.workload import (
    assign_deadlines,
    assign_deadlines_detailed,
    end_to_end_deadline,
)
from repro.workload.generator import generate_task_graph
from repro.workload.spec import PAPER_SPEC

from conftest import make_chain, make_diamond


class TestEndToEndDeadline:
    def test_workload_mode(self, diamond):
        # Sum of wcets = 17, laxity 1.5.
        assert end_to_end_deadline(diamond, 1.5) == pytest.approx(25.5)

    def test_critical_path_mode(self, diamond):
        e2e = end_to_end_deadline(
            diamond, 2.0, mode="critical-path", include_comm=False
        )
        assert e2e == pytest.approx(24.0)  # 2 * 12

    def test_bad_mode_rejected(self, diamond):
        with pytest.raises(DeadlineAssignmentError, match="mode"):
            end_to_end_deadline(diamond, 1.5, mode="nope")

    def test_bad_laxity_rejected(self, diamond):
        with pytest.raises(DeadlineAssignmentError, match="laxity"):
            end_to_end_deadline(diamond, 0.0)


class TestSlicing:
    def test_deadlines_monotone_along_chains(self):
        g = assign_deadlines(make_chain(5), laxity_ratio=1.5)
        for i in range(4):
            a, b = g.task(f"c{i}"), g.task(f"c{i+1}")
            assert a.absolute_deadline(1) < b.absolute_deadline(1)

    def test_windows_fit_execution(self):
        for seed in range(5):
            raw = generate_task_graph(PAPER_SPEC, seed=seed, assign_windows=False)
            g = assign_deadlines(raw, laxity_ratio=1.5)
            for t in g:
                assert t.relative_deadline >= t.wcet - 1e-9

    def test_contiguous_windows_nonoverlapping_along_chains(self):
        for seed in range(5):
            raw = generate_task_graph(PAPER_SPEC, seed=seed, assign_windows=False)
            g = assign_deadlines(raw, laxity_ratio=1.5, window_mode="contiguous")
            for ch in g.channels:
                pred, succ = g.task(ch.src), g.task(ch.dst)
                # Successor window starts no earlier than pred deadline.
                assert succ.arrival(1) >= pred.absolute_deadline(1) - 1e-9

    def test_tight_windows_are_scaled_slices(self):
        raw = make_chain(4, wcet=10.0, msg=0.0)
        det = assign_deadlines_detailed(
            raw, laxity_ratio=1.5, mode="critical-path", include_comm=False,
            window_mode="tight",
        )
        g = det.graph
        for t in g:
            assert t.relative_deadline == pytest.approx(10.0 * det.scale)

    def test_last_deadline_equals_end_to_end(self):
        raw = make_chain(4, wcet=10.0, msg=5.0)
        det = assign_deadlines_detailed(raw, laxity_ratio=1.5)
        last = det.graph.task("c3")
        assert last.absolute_deadline(1) == pytest.approx(det.end_to_end)

    def test_structure_preserved(self, diamond):
        g = assign_deadlines(diamond)
        assert g.task_names == diamond.task_names
        assert [(c.src, c.dst) for c in g.channels] == [
            (c.src, c.dst) for c in diamond.channels
        ]

    def test_original_graph_untouched(self, diamond):
        assign_deadlines(diamond)
        assert all(t.relative_deadline == 100.0 for t in diamond)

    def test_comm_inclusive_slices_grow_deadlines(self):
        raw = make_chain(4, wcet=10.0, msg=10.0)
        excl = assign_deadlines(raw, include_comm=False, mode="critical-path",
                                laxity_ratio=1.5)
        incl = assign_deadlines(raw, include_comm=True, mode="critical-path",
                                laxity_ratio=1.5)
        # With comm included, intermediate tasks sit later in the
        # end-to-end window (message slices precede them).
        assert incl.task("c1").absolute_deadline(1) > excl.task(
            "c1"
        ).absolute_deadline(1)


class TestStretching:
    def test_requested_below_critical_path_stretches(self):
        # Laxity over workload, but comm-inclusive paths exceed it.
        raw = make_chain(4, wcet=10.0, msg=40.0)
        det = assign_deadlines_detailed(raw, laxity_ratio=1.0, include_comm=True)
        assert det.was_stretched
        assert det.scale == pytest.approx(1.0)
        assert det.end_to_end > det.requested_end_to_end

    def test_no_stretch_when_laxity_sufficient(self):
        raw = make_chain(4, wcet=10.0, msg=0.0)
        det = assign_deadlines_detailed(raw, laxity_ratio=1.5)
        assert not det.was_stretched
        assert det.scale == pytest.approx(1.5)

    def test_empty_graph_rejected(self):
        with pytest.raises(DeadlineAssignmentError, match="empty"):
            assign_deadlines(TaskGraph())

    def test_bad_window_mode_rejected(self, diamond):
        with pytest.raises(DeadlineAssignmentError, match="window_mode"):
            assign_deadlines(diamond, window_mode="nope")
