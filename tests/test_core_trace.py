"""Unit tests for repro.core.trace and the engine tracing hooks."""

import pytest

from repro.core import (
    BnBParameters,
    BranchAndBound,
    LLBSelection,
    NoUpperBound,
    TraceRecorder,
)
from repro.model import compile_problem, shared_bus_platform
from repro.workload import generate_task_graph, scaled_spec

from conftest import make_diamond


@pytest.fixture
def hard_problem():
    # Seed 0 has a genuine search (~3k vertices at m=2).
    return compile_problem(
        generate_task_graph(scaled_spec(), seed=0), shared_bus_platform(2)
    )


class TestRecorderMechanics:
    def test_events_recorded(self, hard_problem):
        trace = TraceRecorder()
        res = BranchAndBound(BnBParameters(), trace=trace).solve(hard_problem)
        assert len(trace) == res.stats.explored
        assert len(trace.incumbents) == res.stats.incumbent_updates
        assert trace.initial_bound == pytest.approx(res.initial_upper_bound)

    def test_explore_events_monotone_steps(self, hard_problem):
        trace = TraceRecorder()
        BranchAndBound(BnBParameters(), trace=trace).solve(hard_problem)
        steps = [e.step for e in trace.explored]
        assert steps == sorted(steps)
        gens = [e.generated for e in trace.explored]
        assert all(b >= a for a, b in zip(gens, gens[1:]))

    def test_incumbent_costs_strictly_improve(self, hard_problem):
        trace = TraceRecorder()
        BranchAndBound(BnBParameters(), trace=trace).solve(hard_problem)
        costs = [e.cost for e in trace.incumbents]
        assert costs == sorted(costs, reverse=True)
        assert len(set(costs)) == len(costs)

    def test_final_incumbent_matches_result(self, hard_problem):
        trace = TraceRecorder()
        res = BranchAndBound(BnBParameters(), trace=trace).solve(hard_problem)
        if trace.incumbents:
            assert trace.incumbents[-1].cost == pytest.approx(res.best_cost)

    def test_explore_cap_bounds_memory(self, hard_problem):
        trace = TraceRecorder(max_explore_events=10)
        res = BranchAndBound(BnBParameters(), trace=trace).solve(hard_problem)
        assert len(trace.explored) == 10
        # Incumbent log stays complete past the cap.
        assert len(trace.incumbents) == res.stats.incumbent_updates

    def test_no_trace_is_default(self, hard_problem):
        solver = BranchAndBound(BnBParameters())
        assert solver.trace is None
        solver.solve(hard_problem)  # runs fine without recording


class TestAnytimeProfile:
    def test_profile_starts_at_initial_bound(self, hard_problem):
        trace = TraceRecorder()
        res = BranchAndBound(BnBParameters(), trace=trace).solve(hard_problem)
        profile = trace.anytime_profile()
        assert profile[0] == (0, res.initial_upper_bound)
        assert profile[-1][1] == pytest.approx(res.best_cost)

    def test_cost_at_interpolates(self, hard_problem):
        trace = TraceRecorder()
        res = BranchAndBound(BnBParameters(), trace=trace).solve(hard_problem)
        assert trace.cost_at(0) == pytest.approx(res.initial_upper_bound)
        assert trace.cost_at(10**9) == pytest.approx(res.best_cost)

    def test_lifo_converges_before_llb(self, hard_problem):
        """The anytime story behind Figure 3(a): with no initial bound,
        depth-first reaches its first incumbent after far fewer generated
        vertices than best-first (which must wade through the shallow
        frontier before reaching any goal)."""
        def first_incumbent(params):
            trace = TraceRecorder()
            BranchAndBound(params, trace=trace).solve(hard_problem)
            assert trace.incumbents
            return trace.incumbents[0].generated

        lifo = first_incumbent(BnBParameters(upper_bound=NoUpperBound()))
        llb = first_incumbent(
            BnBParameters(selection=LLBSelection(), upper_bound=NoUpperBound())
        )
        assert lifo < llb

    def test_max_level_and_mean_active(self, hard_problem):
        trace = TraceRecorder()
        BranchAndBound(BnBParameters(), trace=trace).solve(hard_problem)
        assert 0 < trace.max_level_reached() < hard_problem.n
        assert trace.mean_active_size() >= 0.0


class TestCsv:
    def test_csv_round_shape(self):
        prob = compile_problem(make_diamond(), shared_bus_platform(2))
        trace = TraceRecorder()
        BranchAndBound(BnBParameters(), trace=trace).solve(prob)
        csv = trace.to_csv()
        lines = csv.strip().splitlines()
        assert lines[0] == "step,generated,level,lower_bound,active_size"
        assert len(lines) == len(trace.explored) + 1
        if len(lines) > 1:
            assert lines[1].count(",") == 4
