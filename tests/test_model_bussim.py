"""Unit tests for repro.model.bussim (explicit shared-bus simulation)."""

import pytest

from repro.core import BnBParameters, BranchAndBound
from repro.errors import ModelError
from repro.model import Schedule, Task, TaskGraph, compile_problem, shared_bus_platform
from repro.model.bussim import simulate_bus
from repro.workload import generate_task_graph, tiny_spec

from conftest import make_diamond


def two_producers_one_bus() -> Schedule:
    """Two messages become ready simultaneously: the bus must serialize."""
    g = TaskGraph(name="contend")
    g.add_task(Task(name="a", wcet=2.0))
    g.add_task(Task(name="b", wcet=2.0))
    g.add_task(Task(name="x", wcet=1.0))
    g.add_task(Task(name="y", wcet=1.0))
    g.add_edge("a", "x", message_size=4.0)
    g.add_edge("b", "y", message_size=4.0)
    s = Schedule(g, shared_bus_platform(4))
    s.place("a", 0, 0.0)
    s.place("b", 1, 0.0)
    # Consumers on other processors, scheduled at the *nominal* arrival.
    s.place("x", 2, 6.0)
    s.place("y", 3, 6.0)
    return s


class TestBasics:
    def test_no_remote_messages_is_trivially_safe(self):
        g = make_diamond(msg=4.0)
        s = Schedule(g, shared_bus_platform(1))
        t = 0.0
        for name in ["src", "left", "right", "sink"]:
            s.place(name, 0, t)
            t = s.entry(name).finish
        sim = simulate_bus(s)
        assert sim.transfers == ()
        assert sim.is_safe
        assert sim.utilization == 0.0
        assert sim.contention_factor() == 1.0

    def test_incomplete_schedule_rejected(self):
        g = make_diamond()
        s = Schedule(g, shared_bus_platform(2))
        s.place("src", 0, 0.0)
        with pytest.raises(ModelError, match="complete"):
            simulate_bus(s)

    def test_unknown_policy_rejected(self):
        s = two_producers_one_bus()
        with pytest.raises(ModelError, match="policy"):
            simulate_bus(s, policy="round-robin")

    def test_single_message_matches_nominal(self):
        g = TaskGraph()
        g.add_task(Task(name="a", wcet=2.0))
        g.add_task(Task(name="x", wcet=1.0))
        g.add_edge("a", "x", message_size=5.0)
        s = Schedule(g, shared_bus_platform(2))
        s.place("a", 0, 0.0)
        s.place("x", 1, 7.0)
        sim = simulate_bus(s)
        (t,) = sim.transfers
        assert t.ready == 2.0
        assert t.start == 2.0
        assert t.finish == 7.0
        assert t.finish == t.nominal_arrival
        assert t.queueing_delay == 0.0
        assert sim.is_safe


class TestContention:
    def test_simultaneous_messages_serialize(self):
        sim = simulate_bus(two_producers_one_bus())
        a, b = sorted(sim.transfers, key=lambda t: t.start)
        assert a.start == 2.0 and a.finish == 6.0
        assert b.start == 6.0 and b.finish == 10.0
        assert b.queueing_delay == 4.0
        assert sim.max_queueing_delay == 4.0

    def test_contention_creates_violation(self):
        sim = simulate_bus(two_producers_one_bus())
        # Both consumers were scheduled at the nominal arrival 6.0, but
        # the second message only lands at 10.0.
        assert not sim.is_safe
        assert len(sim.violations) == 1
        assert "arrives at 10" in sim.violations[0]

    def test_contention_factor_reflects_queueing(self):
        sim = simulate_bus(two_producers_one_bus())
        # Second message: nominal time 4, realized 8 => factor 2.
        assert sim.contention_factor() == pytest.approx(2.0)

    def test_busy_time_and_utilization(self):
        sim = simulate_bus(two_producers_one_bus())
        assert sim.busy_time == pytest.approx(8.0)
        assert sim.horizon == pytest.approx(7.0)  # makespan of the tasks
        assert sim.utilization == pytest.approx(8.0 / 7.0)

    def test_fcfs_order_by_ready_time(self):
        g = TaskGraph()
        g.add_task(Task(name="late", wcet=3.0))
        g.add_task(Task(name="early", wcet=1.0))
        g.add_task(Task(name="lx", wcet=1.0))
        g.add_task(Task(name="ex", wcet=1.0))
        g.add_edge("late", "lx", message_size=2.0)
        g.add_edge("early", "ex", message_size=2.0)
        s = Schedule(g, shared_bus_platform(4))
        s.place("late", 0, 0.0)   # message ready at 3
        s.place("early", 1, 0.0)  # message ready at 1
        s.place("lx", 2, 10.0)
        s.place("ex", 3, 10.0)
        sim = simulate_bus(s, policy="fcfs")
        first = sim.transfers[0]
        assert first.src == "early"
        assert sim.is_safe

    def test_edf_policy_prefers_urgent_consumer(self):
        s = two_producers_one_bus()
        # Make y's consumer earlier than x's: EDF should ship b->y first.
        s.remove("x")
        s.remove("y")
        s.place("x", 2, 12.0)
        s.place("y", 3, 6.0)
        fcfs = simulate_bus(s, policy="fcfs")
        edf = simulate_bus(s, policy="edf")
        # FCFS ties break toward a->x (src order); EDF picks b->y.
        assert fcfs.transfers[0].src == "a"
        assert edf.transfers[0].src == "b"
        assert edf.is_safe
        assert not fcfs.is_safe

    def test_summary_renders(self):
        sim = simulate_bus(two_producers_one_bus())
        text = sim.summary()
        assert "transfers" in text and "VIOLATIONS" in text


class TestAgainstSolver:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_realized_arrival_never_before_nominal(self, seed):
        g = generate_task_graph(tiny_spec(), seed=seed)
        prob = compile_problem(g, shared_bus_platform(2))
        res = BranchAndBound(BnBParameters()).solve(prob)
        sim = simulate_bus(res.schedule())
        for t in sim.transfers:
            assert t.finish >= t.nominal_arrival - 1e-9
            assert t.start >= t.ready - 1e-9
        assert sim.contention_factor() >= 1.0
