"""Unit tests for repro.workload.spec."""

import pytest

from repro.errors import SpecificationError
from repro.workload import PAPER_SPEC, IntRange, WorkloadSpec


class TestIntRange:
    def test_contains_and_clamp(self):
        r = IntRange(2, 5)
        assert 2 in r and 5 in r and 6 not in r
        assert r.clamp(1) == 2
        assert r.clamp(9) == 5
        assert r.clamp(3) == 3

    def test_empty_range_rejected(self):
        with pytest.raises(SpecificationError):
            IntRange(5, 2)

    def test_sample_within(self):
        import random

        r = IntRange(1, 3)
        rng = random.Random(0)
        assert all(r.sample(rng) in r for _ in range(50))


class TestPaperSpec:
    def test_section_41_defaults(self):
        s = PAPER_SPEC
        assert s.num_tasks == (12, 16)
        assert s.depth == (8, 12)
        assert s.fan == (1, 3)
        assert s.mean_wcet == 20.0
        assert s.wcet_jitter == 0.99
        assert s.ccr == 1.0
        assert s.laxity_ratio == 1.5

    def test_wcet_bounds(self):
        lo, hi = PAPER_SPEC.wcet_bounds
        assert lo == pytest.approx(0.2)
        assert hi == pytest.approx(39.8)

    def test_mean_message_size_realizes_ccr(self):
        # CCR 1.0 at delay 1 => mean message size = mean wcet.
        assert PAPER_SPEC.mean_message_size == 20.0
        assert PAPER_SPEC.evolve(ccr=0.5).mean_message_size == 10.0
        assert PAPER_SPEC.evolve(nominal_delay=2.0).mean_message_size == 10.0


class TestValidation:
    def test_int_promoted_to_range(self):
        s = WorkloadSpec(num_tasks=10, depth=5)
        assert s.num_tasks == (10, 10)
        assert s.depth == (5, 5)

    def test_depth_beyond_tasks_rejected(self):
        with pytest.raises(SpecificationError, match="depth"):
            WorkloadSpec(num_tasks=(4, 6), depth=(8, 10))

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_tasks": (0, 3)},
            {"depth": (0, 2)},
            {"fan": (0, 3)},
            {"mean_wcet": 0.0},
            {"wcet_jitter": 1.0},
            {"wcet_jitter": -0.1},
            {"message_jitter": 1.5},
            {"ccr": -1.0},
            {"laxity_ratio": 0.0},
            {"nominal_delay": 0.0},
            {"window_mode": "weird"},
        ],
    )
    def test_invalid_knobs_rejected(self, kwargs):
        with pytest.raises(SpecificationError):
            WorkloadSpec(**kwargs)

    def test_evolve_changes_one_field(self):
        s = PAPER_SPEC.evolve(ccr=2.0)
        assert s.ccr == 2.0
        assert s.num_tasks == PAPER_SPEC.num_tasks
        # Original untouched.
        assert PAPER_SPEC.ccr == 1.0
