"""Unit tests for repro.core.state."""

import math

import pytest

from repro.core import root_state
from repro.errors import ModelError
from repro.model import compile_problem, shared_bus_platform

from conftest import make_diamond, make_forkjoin, make_independent


@pytest.fixture
def prob():
    return compile_problem(make_diamond(msg=4.0), shared_bus_platform(2))


class TestRootState:
    def test_empty_schedule(self, prob):
        st = root_state(prob)
        assert st.level == 0
        assert st.scheduled_mask == 0
        assert not st.is_goal
        assert st.proc_of == (-1, -1, -1, -1)
        assert st.avail == (0.0, 0.0)
        assert st.scheduled_lateness == -math.inf

    def test_ready_set_is_inputs(self, prob):
        st = root_state(prob)
        assert st.ready_tasks() == [prob.index["src"]]
        fj = compile_problem(make_independent(3), shared_bus_platform(2))
        assert root_state(fj).ready_tasks() == [0, 1, 2]


class TestChild:
    def test_child_places_task(self, prob):
        st = root_state(prob).child(prob.index["src"], 1)
        src = prob.index["src"]
        assert st.level == 1
        assert st.proc_of[src] == 1
        assert st.start[src] == 0.0
        assert st.finish[src] == 2.0
        assert st.avail == (0.0, 2.0)
        assert st.last_task == src and st.last_proc == 1

    def test_parent_unchanged(self, prob):
        root = root_state(prob)
        root.child(prob.index["src"], 0)
        assert root.level == 0
        assert root.proc_of == (-1,) * 4

    def test_ready_update(self, prob):
        st = root_state(prob).child(prob.index["src"], 0)
        assert set(st.ready_tasks()) == {prob.index["left"], prob.index["right"]}
        st2 = st.child(prob.index["left"], 0)
        assert set(st2.ready_tasks()) == {prob.index["right"]}
        st3 = st2.child(prob.index["right"], 1)
        assert set(st3.ready_tasks()) == {prob.index["sink"]}

    def test_not_ready_rejected(self, prob):
        with pytest.raises(ModelError, match="not ready"):
            root_state(prob).child(prob.index["sink"], 0)

    def test_goal_detection(self, prob):
        st = root_state(prob)
        for name in ["src", "left", "right", "sink"]:
            st = st.child(prob.index[name], 0)
        assert st.is_goal
        assert st.level == 4

    def test_communication_in_child_start(self, prob):
        st = root_state(prob).child(prob.index["src"], 0)
        local = st.child(prob.index["left"], 0)
        remote = st.child(prob.index["left"], 1)
        assert local.start[prob.index["left"]] == 2.0
        assert remote.start[prob.index["left"]] == 6.0

    def test_append_only_avail(self, prob):
        st = root_state(prob).child(prob.index["src"], 0)
        st = st.child(prob.index["left"], 0)
        # right on p0 must queue behind left even though it could start
        # earlier by precedence alone.
        st2 = st.child(prob.index["right"], 0)
        assert st2.start[prob.index["right"]] == 7.0

    def test_lateness_tracked_incrementally(self, prob):
        st = root_state(prob)
        for name in ["src", "left", "right", "sink"]:
            st = st.child(prob.index[name], 0)
        expected = max(
            st.finish[i] - prob.deadline[i] for i in range(prob.n)
        )
        assert st.scheduled_lateness == pytest.approx(expected)

    def test_min_avail(self, prob):
        st = root_state(prob)
        assert st.min_avail() == 0.0
        st = st.child(prob.index["src"], 0)
        assert st.min_avail() == 0.0
        st = st.child(prob.index["left"], 1)
        assert st.min_avail() == 2.0


class TestStateQueries:
    def test_is_scheduled_and_ready_flags(self, prob):
        st = root_state(prob).child(prob.index["src"], 0)
        assert st.is_scheduled(prob.index["src"])
        assert not st.is_scheduled(prob.index["left"])
        assert st.is_ready(prob.index["left"])
        assert not st.is_ready(prob.index["src"])

    def test_earliest_start_query_matches_child(self, prob):
        st = root_state(prob).child(prob.index["src"], 0)
        left = prob.index["left"]
        assert st.earliest_start(left, 1) == st.child(left, 1).start[left]

    def test_to_schedule(self, prob):
        st = root_state(prob).child(prob.index["src"], 0)
        st = st.child(prob.index["left"], 0)
        sched = st.to_schedule()
        assert len(sched) == 2
        assert sched.violations() == []


class TestCanonicalKey:
    def test_processor_permutation_collapses(self, prob):
        root = root_state(prob)
        a = root.child(prob.index["src"], 0)
        b = root.child(prob.index["src"], 1)
        assert a.canonical_key() == b.canonical_key()

    def test_distinct_assignments_distinct_keys(self, prob):
        root = root_state(prob).child(prob.index["src"], 0)
        same = root.child(prob.index["left"], 0)
        other = root.child(prob.index["left"], 1)
        assert same.canonical_key() != other.canonical_key()

    def test_key_is_hashable(self, prob):
        key = root_state(prob).canonical_key()
        hash(key)
