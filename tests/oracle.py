"""Independent exhaustive scheduling oracle for differential testing.

The oracle answers one question — the true minimum maximum lateness of
a compiled problem under the paper's append-only scheduling operation —
by enumerating every (ready task, processor) placement sequence with
its own bookkeeping.  It deliberately shares *nothing* with the search
engine beyond the immutable arrays of :class:`CompiledProblem`: no
``SearchState``, no bounds, no branching or elimination rules.  A bug
anywhere in the engine stack therefore cannot cancel out of a
differential comparison.

Feasible for ~7 tasks on 2 processors (``n! * m^n`` leaf sequences);
the suites keep instances at or below that.

The only shortcut is exact by a one-line argument: placements are
append-only, so a partial schedule's max lateness can never decrease as
tasks are added — a prefix already at or above the best known cost
cannot lead anywhere better and may be abandoned.  ``prune=False``
disables even that for a literal full enumeration.
"""

from __future__ import annotations

import math

__all__ = ["oracle_optimum", "oracle_schedule_cost"]


def oracle_optimum(problem, *, prune: bool = True) -> float:
    """Minimum max-lateness over every placement sequence."""
    n = problem.n
    m = problem.m
    wcet = problem.wcet
    arrival = problem.arrival
    deadline = problem.deadline
    pred_edges = problem.pred_edges
    delay = problem.delay

    proc_of = [-1] * n
    finish = [0.0] * n
    avail = [0.0] * m
    #: Unscheduled-predecessor counts; a task is ready at zero.
    missing = [len(pred_edges[i]) for i in range(n)]
    succ = [[j for j in range(n) for (p, _s) in pred_edges[j] if p == i]
            for i in range(n)]
    best = math.inf

    def place_and_recurse(placed: int, lateness: float) -> None:
        nonlocal best
        if placed == n:
            if lateness < best:
                best = lateness
            return
        for task in range(n):
            if proc_of[task] >= 0 or missing[task] != 0:
                continue
            for proc in range(m):
                start = arrival[task]
                if avail[proc] > start:
                    start = avail[proc]
                for j, size in pred_edges[task]:
                    ready = finish[j] + size * delay[proc_of[j]][proc]
                    if ready > start:
                        start = ready
                end = start + wcet[task]
                lat = end - deadline[task]
                new_lateness = lat if lat > lateness else lateness
                if prune and new_lateness >= best:
                    continue
                saved_avail = avail[proc]
                proc_of[task] = proc
                finish[task] = end
                avail[proc] = end
                for j in succ[task]:
                    missing[j] -= 1
                place_and_recurse(placed + 1, new_lateness)
                for j in succ[task]:
                    missing[j] += 1
                proc_of[task] = -1
                avail[proc] = saved_avail
    place_and_recurse(0, -math.inf)
    return best


def oracle_schedule_cost(problem, proc_of, start) -> float:
    """Max lateness of an explicit complete schedule, recomputed from
    scratch (used to cross-check costs the engine reports)."""
    best = -math.inf
    for i in range(problem.n):
        lat = start[i] + problem.wcet[i] - problem.deadline[i]
        if lat > best:
            best = lat
    return best
