"""The duplicate-free allocation-ordered state space (``B = AO``).

The load-bearing guarantee is *signature uniqueness*: during a full AO
solve, every generated state's canonical key — and its 64-bit canonical
signature — occurs **at most once**.  The property is recorded from
inside the engine (a recording lower bound sees every generated vertex,
root included) and checked on Hypothesis-drawn DAGs as well as on the
fixed hard instances; the same instances under the default rule with a
transposition table must report ``pruned_duplicate > 0`` (the classic
tree really does regenerate states) while AO reports exactly 0.

The rest of the file covers the two-phase mechanics (canonical
processor normalization, fixed allocation order, sleep-set pruning,
dead-end skipping), the configuration bans (AO admits no dominance
layer; AO vertices cannot be built from a plain ``root_state``), the
allocation-aware bound floor, the memory-limited frontier, and the
pinned head-to-head cells where the duplicate-free tree beats the
transposition table on generated vertices.
"""

from __future__ import annotations

import pytest
from hypothesis import given

from faultlib import hard_problem
from repro.core import (
    AOBranching,
    BnBParameters,
    BranchAndBound,
    LB1,
    MemoryLimitedSelection,
    NoElimination,
    SolveStatus,
    StateDominance,
    Vertex,
    ao_root_state,
    problem_fingerprint,
    root_state,
)
from repro.core.selection import _HybridFrontier
from repro.errors import ConfigurationError, ModelError
from repro.model import (
    Platform,
    Ring,
    Task,
    TaskGraph,
    compile_problem,
    shared_bus_platform,
)
from repro.workload import assign_deadlines

from test_properties import SETTINGS, compiled_problems


class RecordingLB1(LB1):
    """LB1 that logs every state the engine evaluates (i.e. generates)."""

    def __init__(self) -> None:
        super().__init__()
        self.keys: list[tuple] = []
        self.sigs: list[int] = []

    def evaluate(self, state) -> float:
        self.keys.append(state.canonical_key())
        self.sigs.append(state.signature())
        return super().evaluate(state)


def _solve_recorded(problem, **changes):
    bound = RecordingLB1()
    params = BnBParameters.dupfree(lower_bound=bound, **changes)
    result = BranchAndBound(params).solve(problem)
    return result, bound


def _assert_unique(bound: RecordingLB1) -> None:
    assert len(bound.keys) == len(set(bound.keys))
    assert len(bound.sigs) == len(set(bound.sigs))


def _two_tasks(procs: int = 2):
    g = TaskGraph(name="pair")
    g.add_task(Task(name="a", wcet=3.0))
    g.add_task(Task(name="b", wcet=2.0))
    return compile_problem(
        assign_deadlines(g, laxity_ratio=1.5), shared_bus_platform(procs)
    )


# ---------------------------------------------------------------------------
# Signature uniqueness (the tentpole property)
# ---------------------------------------------------------------------------


class TestSignatureUniqueness:
    @SETTINGS
    @given(prob=compiled_problems(max_tasks=6))
    def test_every_generated_state_occurs_at_most_once(self, prob):
        result, bound = _solve_recorded(prob)
        _assert_unique(bound)
        assert result.stats.pruned_duplicate == 0
        base = BranchAndBound(BnBParameters.paper_default()).solve(prob)
        assert result.best_cost == pytest.approx(base.best_cost, abs=1e-9)

    @SETTINGS
    @given(prob=compiled_problems(max_tasks=5))
    def test_uniqueness_survives_disabling_elimination(self, prob):
        # E = none enumerates the *entire* AO tree: uniqueness must be a
        # property of the branching rule, not a side effect of pruning.
        result, bound = _solve_recorded(prob, elimination=NoElimination())
        _assert_unique(bound)
        assert result.status is SolveStatus.OPTIMAL

    @pytest.mark.parametrize("seed", [0, 4, 5, 7])
    def test_uniqueness_on_hard_instances(self, seed):
        result, bound = _solve_recorded(hard_problem(seed=seed))
        _assert_unique(bound)
        assert result.status is SolveStatus.OPTIMAL

    def test_uniqueness_on_nonuniform_interconnect(self):
        # Ring(4) delays are label-sensitive (opposite corners are two
        # hops): no processor normalization in the allocation phase, and
        # label-exact signatures downstream.
        prob = compile_problem(
            hard_problem(seed=0).graph,
            Platform(num_processors=4, interconnect=Ring(4)),
        )
        result, bound = _solve_recorded(prob)
        _assert_unique(bound)
        ref = BranchAndBound(BnBParameters.paper_default()).solve(prob)
        assert result.best_cost == pytest.approx(ref.best_cost, abs=1e-9)

    @pytest.mark.parametrize("seed", [0, 4])
    def test_classic_tree_duplicates_where_ao_has_none(self, seed):
        """The cross-check the issue demands, on one and the same DAG."""
        problem = hard_problem(seed=seed)
        tt = BranchAndBound(
            BnBParameters.paper_default().with_transposition()
        ).solve(problem)
        ao = BranchAndBound(BnBParameters.dupfree()).solve(problem)
        assert tt.stats.pruned_duplicate > 0
        assert ao.stats.pruned_duplicate == 0
        assert ao.best_cost == pytest.approx(tt.best_cost, abs=1e-9)


# ---------------------------------------------------------------------------
# Head-to-head: generated vertices vs. the transposition table
# ---------------------------------------------------------------------------

#: Cells (processors, seed) where the allocation-ordered tree generates
#: no more vertices than the default rule with a transposition table.
#: This is *not* a theorem — with elimination off the AO space is the
#: strictly larger one (each partial placement recurs once per
#: compatible completion of the allocation, plus the allocation prefix
#: tree itself) — but with U/DBAS + LB1 + the allocation-aware floor it
#: holds wherever the search tree is non-trivial; the duplicate-rich
#: cells below see 3-5x reductions.  Duplicate-light counter-cells
#: exist (e.g. seeds 3, 7, 8 at m=2) and are reported honestly in the
#: PR 8 benchmark instead of being asserted away.
AO_BEATS_TT_CELLS = [
    (2, 0),
    (2, 1),
    (2, 4),
    (2, 9),
    (3, 0),
    (3, 1),
    (3, 3),
    (3, 4),
    (3, 9),
]


@pytest.mark.parametrize("procs,seed", AO_BEATS_TT_CELLS)
def test_dupfree_generates_no_more_than_transposition(procs, seed):
    problem = hard_problem(seed=seed, processors=procs)
    tt = BranchAndBound(
        BnBParameters.paper_default().with_transposition()
    ).solve(problem)
    ao = BranchAndBound(BnBParameters.dupfree()).solve(problem)
    assert tt.status is SolveStatus.OPTIMAL
    assert ao.status is SolveStatus.OPTIMAL
    assert ao.best_cost == pytest.approx(tt.best_cost, abs=1e-9)
    assert ao.stats.generated <= tt.stats.generated


# ---------------------------------------------------------------------------
# Two-phase mechanics
# ---------------------------------------------------------------------------


class TestAllocationPhase:
    def test_root_offers_only_first_processor_on_uniform(self):
        prob = _two_tasks(procs=3)
        rule = AOBranching().prepare(prob)
        root = rule.make_root()
        assert rule.placements(root) == [(0, 0)]

    def test_used_plus_first_unused(self):
        prob = _two_tasks(procs=3)
        rule = AOBranching().prepare(prob)
        st = rule.make_root().allocate(0)
        assert rule.placements(st) == [(1, 0), (1, 1)]

    def test_nonuniform_offers_every_processor(self):
        g = TaskGraph(name="pair")
        g.add_task(Task(name="a", wcet=3.0))
        g.add_task(Task(name="b", wcet=2.0))
        prob = compile_problem(
            assign_deadlines(g, laxity_ratio=1.5),
            Platform(num_processors=4, interconnect=Ring(4)),
        )
        assert prob.uniform_delay is None
        rule = AOBranching().prepare(prob)
        assert rule.placements(rule.make_root()) == [
            (0, 0),
            (0, 1),
            (0, 2),
            (0, 3),
        ]

    def test_noncanonical_allocation_rejected(self):
        prob = _two_tasks(procs=3)
        with pytest.raises(ModelError, match="non-canonical"):
            ao_root_state(prob).allocate(1)

    def test_allocation_order_is_fixed(self):
        prob = _two_tasks()
        root = ao_root_state(prob)
        later = root.alloc_order[1]
        with pytest.raises(ModelError, match="allocation order is fixed"):
            root.child(later, 0)

    def test_allocation_beyond_phase_rejected(self):
        prob = _two_tasks()
        st = ao_root_state(prob).allocate(0).allocate(0)
        with pytest.raises(ModelError, match="already complete"):
            st.allocate(0)

    def test_ordering_before_allocation_complete_rejected(self):
        prob = _two_tasks()
        st = ao_root_state(prob).allocate(0)
        with pytest.raises(ModelError, match="incomplete"):
            st.child_placed(0, 0, 0.0, 3.0)

    def test_floor_sees_serial_load(self):
        # Both tasks on one processor: some task finishes >= wcet_a +
        # wcet_b = 5 with deadline <= max deadline, so the floor must be
        # at least 5 - max(deadline).
        prob = _two_tasks()
        st = ao_root_state(prob).allocate(0).allocate(0)
        assert st.lb_floor >= 5.0 - max(prob.deadline)

    def test_floor_is_monotone_down_the_path(self):
        prob = hard_problem(seed=0)
        st = ao_root_state(prob)
        prev = st.lb_floor
        while st.alloc_count < prob.n:
            st = st.allocate(0)
            assert st.lb_floor >= prev
            prev = st.lb_floor


class TestOrderingPhase:
    def test_placement_pinned_to_allocated_processor(self):
        prob = _two_tasks()
        st = ao_root_state(prob).allocate(0).allocate(1)
        first = st.alloc_order[0]
        with pytest.raises(ModelError, match="allocated to processor"):
            st.child(first, 1 - st.alloc[first])

    def test_sleeping_task_cannot_be_placed(self):
        # Independent tasks on different processors commute; after the
        # higher-indexed move, the lower-indexed one is asleep.
        prob = _two_tasks()
        st = ao_root_state(prob).allocate(0).allocate(1)
        child = st.child(1, st.alloc[1])
        assert child.sleep_mask == 0b01
        with pytest.raises(ModelError, match="asleep"):
            child.child(0, st.alloc[0])

    def test_same_processor_moves_never_sleep(self):
        prob = _two_tasks()
        st = ao_root_state(prob).allocate(0).allocate(0)
        child = st.child(1, 0)
        assert child.sleep_mask == 0

    def test_dead_end_children_are_skipped(self):
        # With a on p0 and b on p1, branching b first would strand a in
        # the sleep set forever — the rule must not generate that child.
        prob = _two_tasks()
        rule = AOBranching().prepare(prob)
        st = rule.make_root().allocate(0).allocate(1)
        assert rule.placements(st) == [(0, 0)]

    def test_goal_children_always_live(self):
        prob = _two_tasks()
        rule = AOBranching().prepare(prob)
        st = rule.make_root().allocate(0).allocate(1).child(0, 0)
        assert rule.placements(st) == [(1, 1)]


class TestIdentity:
    def test_alloc_prefixes_have_distinct_signatures(self):
        prob = _two_tasks()
        root = ao_root_state(prob)
        a = root.allocate(0)
        b = a.allocate(0)
        c = a.allocate(1)
        sigs = {root.signature(), a.signature(), b.signature(), c.signature()}
        assert len(sigs) == 4
        # The placement half alone cannot tell them apart.
        assert root.sigacc == a.sigacc == b.sigacc == c.sigacc

    def test_signature_matches_from_scratch(self):
        prob = hard_problem(seed=0)
        st = ao_root_state(prob)
        while st.alloc_count < prob.n:
            st = st.allocate(st.alloc_count % prob.m if st.used_processors() else 0)
            assert st.signature() == st.signature_from_scratch()
        rule = AOBranching().prepare(prob)
        while not st.is_goal:
            t, q = rule.placements(st)[0]
            st = st.child(t, q)
            assert st.signature() == st.signature_from_scratch()

    def test_canonical_key_separates_phases(self):
        prob = _two_tasks()
        root = ao_root_state(prob)
        st = root.allocate(0)
        assert root.canonical_key() != st.canonical_key()

    def test_fingerprint_distinguishes_ao_from_default(self):
        prob = hard_problem(seed=0)
        assert problem_fingerprint(
            prob, BnBParameters.dupfree()
        ) != problem_fingerprint(prob, BnBParameters.paper_default())


# ---------------------------------------------------------------------------
# Configuration bans
# ---------------------------------------------------------------------------


class TestBans:
    def test_transposition_layer_refused(self):
        with pytest.raises(ConfigurationError, match="exactly once"):
            BnBParameters.dupfree().with_transposition()

    def test_state_dominance_refused(self):
        with pytest.raises(ConfigurationError, match="exactly once"):
            BnBParameters.dupfree(dominance=StateDominance())

    def test_plain_root_state_rejected(self):
        prob = _two_tasks()
        rule = AOBranching().prepare(prob)
        with pytest.raises(ConfigurationError, match="AOState"):
            rule.placements(root_state(prob))

    def test_prepared_ao_opts_out_of_fused_paths(self):
        prob = _two_tasks()
        assert AOBranching().prepare(prob).fused_compatible is False


# ---------------------------------------------------------------------------
# The memory-limited frontier (S = ML)
# ---------------------------------------------------------------------------


def _vertex(lb: float, seq: int) -> Vertex:
    return Vertex(state=None, lower_bound=lb, seq=seq)


class TestHybridFrontier:
    def test_best_first_under_the_cap(self):
        f = _HybridFrontier(cap=10)
        for lb, seq in [(5.0, 1), (3.0, 2), (4.0, 3)]:
            f.push(_vertex(lb, seq))
        assert [f.pop().lower_bound for _ in range(3)] == [3.0, 4.0, 5.0]
        assert f.pop() is None

    def test_newest_first_above_the_cap(self):
        f = _HybridFrontier(cap=1)
        for lb, seq in [(1.0, 1), (2.0, 2), (3.0, 3)]:
            f.push(_vertex(lb, seq))
        # live 3 > cap: drain newest; live 2 > cap: again; then best.
        assert [v.seq for v in (f.pop(), f.pop(), f.pop())] == [3, 2, 1]

    def test_prune_above_discards_both_heap_entries(self):
        f = _HybridFrontier(cap=10)
        for lb, seq in [(1.0, 1), (5.0, 2), (9.0, 3)]:
            f.push(_vertex(lb, seq))
        assert f.prune_above(5.0) == 2
        assert len(f) == 1
        assert f.pop().lower_bound == 1.0
        assert f.pop() is None

    def test_export_lists_live_vertices_best_first(self):
        f = _HybridFrontier(cap=2)
        for lb, seq in [(4.0, 1), (2.0, 2), (6.0, 3)]:
            f.push(_vertex(lb, seq))
        f.prune_above(6.0)
        assert [v.lower_bound for v in f.export()] == [2.0, 4.0]

    def test_drop_worst_removes_highest_bounds(self):
        f = _HybridFrontier(cap=10)
        for lb, seq in [(1.0, 1), (5.0, 2), (9.0, 3)]:
            f.push(_vertex(lb, seq))
        assert f.drop_worst(2) == 2
        assert [v.lower_bound for v in f.export()] == [1.0]


class TestMemoryLimitedSelection:
    def test_cap_validation(self):
        with pytest.raises(ConfigurationError, match="cap"):
            MemoryLimitedSelection(cap=0)

    def test_name_carries_the_cap(self):
        assert MemoryLimitedSelection(cap=128).name == "ML@128"
        prob = hard_problem(seed=0)
        assert problem_fingerprint(
            prob, BnBParameters(selection=MemoryLimitedSelection(cap=64))
        ) != problem_fingerprint(
            prob, BnBParameters(selection=MemoryLimitedSelection(cap=128))
        )

    @pytest.mark.parametrize("cap", [1, 4, 100000])
    def test_exact_at_any_cap(self, cap):
        problem = hard_problem(seed=0)
        ref = BranchAndBound(BnBParameters.paper_default()).solve(problem)
        ml = BranchAndBound(
            BnBParameters(selection=MemoryLimitedSelection(cap=cap))
        ).solve(problem)
        assert ml.status is SolveStatus.OPTIMAL
        assert ml.best_cost == pytest.approx(ref.best_cost, abs=1e-9)

    def test_small_cap_shrinks_peak_frontier(self):
        from repro.core import LLBSelection

        problem = hard_problem(seed=0)
        llb = BranchAndBound(
            BnBParameters(selection=LLBSelection())
        ).solve(problem)
        ml = BranchAndBound(
            BnBParameters(selection=MemoryLimitedSelection(cap=8))
        ).solve(problem)
        assert ml.best_cost == pytest.approx(llb.best_cost, abs=1e-9)
        assert ml.stats.peak_active <= llb.stats.peak_active

    def test_composes_with_dupfree_branching(self):
        problem = hard_problem(seed=5)
        ref = BranchAndBound(BnBParameters.dupfree()).solve(problem)
        ml = BranchAndBound(
            BnBParameters.dupfree(selection=MemoryLimitedSelection(cap=16))
        ).solve(problem)
        assert ml.status is SolveStatus.OPTIMAL
        assert ml.best_cost == pytest.approx(ref.best_cost, abs=1e-9)
