"""Unit tests for repro.model.compile."""

import pytest

from repro.errors import ModelError
from repro.model import (
    Ring,
    Platform,
    Task,
    TaskGraph,
    compile_problem,
    shared_bus_platform,
)

from conftest import make_chain, make_diamond


class TestCompilation:
    def test_index_order_matches_insertion(self, diamond):
        prob = compile_problem(diamond, shared_bus_platform(2))
        assert prob.names == ("src", "left", "right", "sink")
        assert prob.index["right"] == 2
        assert prob.n == 4
        assert prob.m == 2

    def test_arrays(self, diamond):
        prob = compile_problem(diamond, shared_bus_platform(2))
        assert prob.wcet == (2.0, 5.0, 7.0, 3.0)
        assert prob.deadline == (100.0,) * 4
        assert prob.arrival == (0.0,) * 4

    def test_adjacency(self, diamond):
        prob = compile_problem(diamond, shared_bus_platform(2))
        sink = prob.index["sink"]
        preds = dict(prob.pred_edges[sink])
        assert preds == {prob.index["left"]: 4.0, prob.index["right"]: 4.0}
        src = prob.index["src"]
        succs = dict(prob.succ_edges[src])
        assert set(succs) == {prob.index["left"], prob.index["right"]}

    def test_pred_mask(self, diamond):
        prob = compile_problem(diamond, shared_bus_platform(2))
        sink = prob.index["sink"]
        expected = (1 << prob.index["left"]) | (1 << prob.index["right"])
        assert prob.pred_mask[sink] == expected
        assert prob.pred_mask[prob.index["src"]] == 0

    def test_topo_and_inputs(self, diamond):
        prob = compile_problem(diamond, shared_bus_platform(2))
        assert prob.topo[0] == prob.index["src"]
        assert prob.topo[-1] == prob.index["sink"]
        assert prob.inputs == (prob.index["src"],)
        assert prob.all_mask == 0b1111

    def test_uniform_delay_detected_for_bus(self, diamond):
        prob = compile_problem(diamond, shared_bus_platform(3))
        assert prob.uniform_delay == 1.0

    def test_nonuniform_delay_for_ring(self, diamond):
        plat = Platform(num_processors=4, interconnect=Ring(4))
        prob = compile_problem(diamond, plat)
        assert prob.uniform_delay is None
        assert prob.delay[0][2] == 2.0

    def test_single_processor_uniform_delay_zero(self, diamond):
        prob = compile_problem(diamond, shared_bus_platform(1))
        assert prob.uniform_delay == 0.0

    def test_context_switch_folded_into_wcet(self, diamond):
        plat = Platform(num_processors=2, context_switch=0.5)
        prob = compile_problem(diamond, plat)
        assert prob.wcet[0] == 2.5

    def test_empty_graph_rejected(self):
        with pytest.raises(ModelError, match="empty"):
            compile_problem(TaskGraph(), shared_bus_platform(2))

    def test_oversized_graph_rejected(self):
        g = TaskGraph()
        for i in range(63):
            g.add_task(Task(name=f"t{i}", wcet=1.0))
        with pytest.raises(ModelError, match="62"):
            compile_problem(g, shared_bus_platform(2))


class TestEarliestStart:
    def test_respects_arrival(self):
        g = TaskGraph()
        g.add_task(Task(name="a", wcet=1.0, phase=7.0))
        prob = compile_problem(g, shared_bus_platform(2))
        s = prob.earliest_start(0, 0, [-1], [0.0], avail=0.0)
        assert s == 7.0

    def test_respects_processor_availability(self, diamond):
        prob = compile_problem(diamond, shared_bus_platform(2))
        src = prob.index["src"]
        s = prob.earliest_start(src, 0, [-1] * 4, [0.0] * 4, avail=9.0)
        assert s == 9.0

    def test_same_processor_predecessor_no_comm(self, diamond):
        prob = compile_problem(diamond, shared_bus_platform(2))
        left = prob.index["left"]
        src = prob.index["src"]
        proc_of = [-1] * 4
        finish = [0.0] * 4
        proc_of[src] = 0
        finish[src] = 2.0
        assert prob.earliest_start(left, 0, proc_of, finish, 0.0) == 2.0

    def test_cross_processor_predecessor_pays_message(self, diamond):
        prob = compile_problem(diamond, shared_bus_platform(2))
        left = prob.index["left"]
        src = prob.index["src"]
        proc_of = [-1] * 4
        finish = [0.0] * 4
        proc_of[src] = 0
        finish[src] = 2.0
        # msg size 4 at delay 1.
        assert prob.earliest_start(left, 1, proc_of, finish, 0.0) == 6.0

    def test_nonuniform_path_uses_delay_matrix(self, diamond):
        plat = Platform(num_processors=3, interconnect=Ring(3, delay_per_hop=2.0))
        prob = compile_problem(diamond, plat)
        left = prob.index["left"]
        src = prob.index["src"]
        proc_of = [-1] * 4
        finish = [0.0] * 4
        proc_of[src] = 0
        finish[src] = 2.0
        # ring hop 0->1 = 1 hop * 2.0 delay * size 4 = 8.
        assert prob.earliest_start(left, 1, proc_of, finish, 0.0) == 10.0

    def test_communication_cost_helper(self, diamond):
        prob = compile_problem(diamond, shared_bus_platform(2))
        assert prob.communication_cost(0, 1, 5.0) == 5.0
        assert prob.communication_cost(0, 0, 5.0) == 0.0


class TestConversions:
    def test_make_schedule_roundtrip(self, diamond):
        prob = compile_problem(diamond, shared_bus_platform(2))
        proc_of = [0, 0, 1, 0]
        start = [0.0, 2.0, 6.0, 17.0]
        sched = prob.make_schedule(proc_of, start)
        assert sched.is_complete
        sched.validate()

    def test_make_schedule_partial(self, diamond):
        prob = compile_problem(diamond, shared_bus_platform(2))
        sched = prob.make_schedule([0, -1, -1, -1], [0.0] * 4)
        assert len(sched) == 1

    def test_lateness_of_masked(self, diamond):
        prob = compile_problem(diamond, shared_bus_platform(2))
        finish = [90.0, 95.0, 120.0, 130.0]
        # Only src and left counted.
        mask = 0b0011
        assert prob.lateness_of(finish, mask) == -5.0
        assert prob.lateness_of(finish, 0b1111) == 30.0

    def test_chain_compiles(self):
        prob = compile_problem(make_chain(5), shared_bus_platform(2))
        assert prob.n == 5
        assert [len(p) for p in prob.pred_edges] == [0, 1, 1, 1, 1]
