"""Serialization regression tests for everything the parallel driver ships.

Worker processes receive ``(CompiledProblem, BnBParameters,
SearchState)`` triples and send back ``BnBResult`` objects, so every
one of those must pickle — and pickle *well*:

* ``CompiledProblem`` serializes as its ``(graph, platform)`` source
  and recompiles on load, so every derived array comes back
  bit-identical and the payload cannot strand stale derived fields;
* pickle memoization dedups the problem across the states of one
  stream (the driver ships dozens of shard states per worker);
* a lazy :class:`~repro.core.expand.PendingChild` pickles as its
  materialized flat state — the parent chain must never be dragged
  through the wire.
"""

from __future__ import annotations

import math
import pickle

import pytest

from repro.core import BnBParameters, BranchAndBound, root_state
from repro.core.expand import FusedExpander, PendingChild
from repro.core.state import SearchState
from repro.errors import ResourceLimitExceeded
from repro.model import compile_problem, shared_bus_platform
from repro.workload import WorkloadSpec, generate_task_graph

from conftest import (
    make_chain,
    make_diamond,
    make_forkjoin,
    make_independent,
)


def _fixture_problems():
    problems = [
        compile_problem(make_chain(), shared_bus_platform(2)),
        compile_problem(make_diamond(), shared_bus_platform(2)),
        compile_problem(make_diamond(), shared_bus_platform(3)),
        compile_problem(make_forkjoin(), shared_bus_platform(2)),
        compile_problem(make_independent(), shared_bus_platform(3)),
    ]
    spec = WorkloadSpec(num_tasks=(8, 10), depth=(3, 5))
    for seed in (0, 1):
        problems.append(
            compile_problem(
                generate_task_graph(spec, seed=seed), shared_bus_platform(2)
            )
        )
    return problems


PROBLEMS = _fixture_problems()
_IDS = [f"{p.graph.name}-m{p.m}" for p in PROBLEMS]

#: Every derived field of CompiledProblem that must survive the
#: recompile-on-load round trip bit-identically.
_ARRAY_FIELDS = [
    "n", "m", "names", "index", "wcet", "arrival", "deadline",
    "pred_edges", "succ_edges", "delay", "uniform_delay", "pred_mask",
    "topo", "all_mask", "inputs", "succ_mask", "desc_mask", "topo_pos",
    "succ_rank_mask", "tail", "tail_lateness",
]


@pytest.mark.parametrize("problem", PROBLEMS, ids=_IDS)
def test_compiled_problem_round_trips(problem):
    clone = pickle.loads(pickle.dumps(problem))
    for name in _ARRAY_FIELDS:
        assert getattr(clone, name) == getattr(problem, name), name
    # The clone must be solvable and agree exactly with the original.
    a = BranchAndBound(BnBParameters()).solve(problem)
    b = BranchAndBound(BnBParameters()).solve(clone)
    assert b.best_cost == a.best_cost
    assert b.proc_of == a.proc_of
    assert b.stats.generated == a.stats.generated


def test_problem_pickle_memoizes_within_a_stream():
    problem = PROBLEMS[0]
    one = len(pickle.dumps(problem))
    two = len(pickle.dumps((problem, problem)))
    # The second reference is a memo backreference, not a re-encoding.
    assert two < one + 64


def _mid_path_state(problem) -> SearchState:
    state = root_state(problem)
    for _ in range(problem.n // 2):
        ready = state.ready_tasks()
        if not ready:
            break
        state = state.child(ready[0], state.level % problem.m)
    return state


@pytest.mark.parametrize("problem", PROBLEMS, ids=_IDS)
def test_search_state_round_trips(problem):
    state = _mid_path_state(problem)
    clone = pickle.loads(pickle.dumps(state))
    assert clone.scheduled_mask == state.scheduled_mask
    assert clone.ready_mask == state.ready_mask
    assert tuple(clone.proc_of) == tuple(state.proc_of)
    assert tuple(clone.start) == tuple(state.start)
    assert tuple(clone.finish) == tuple(state.finish)
    assert tuple(clone.avail) == tuple(state.avail)
    assert clone.level == state.level
    assert clone.scheduled_lateness == state.scheduled_lateness
    assert clone.canonical_key() == state.canonical_key()


def test_states_share_the_problem_in_one_stream():
    problem = PROBLEMS[-1]
    states = [_mid_path_state(problem)]
    for _ in range(9):
        ready = states[-1].ready_tasks()
        if not ready:
            break
        states.append(states[-1].child(ready[0], 0))
    base = len(pickle.dumps((problem, states[0])))
    full = len(pickle.dumps((problem, states)))
    per_state = (full - base) / max(1, len(states) - 1)
    # Each extra state costs its own arrays, never a problem re-encode.
    assert per_state < len(pickle.dumps(problem)) / 2


def _expander(problem) -> FusedExpander:
    params = BnBParameters()
    return FusedExpander(
        problem,
        params.branching.prepare(problem),
        params.lower_bound,
        params.characteristic,
        params.dominance.fresh(),
        params.elimination,
        params.break_symmetry,
    )


@pytest.mark.parametrize("problem", PROBLEMS[:4], ids=_IDS[:4])
def test_pending_child_pickles_as_flat_state(problem):
    expander = _expander(problem)
    root = expander.root()
    _seq, children, *_rest = expander.expand(root, math.inf, 1)
    pending = [c for c in children if type(c.state) is PendingChild]
    assert pending, "expected lazy children from the fused expander"
    for vertex in pending:
        flat = vertex.state.materialize()
        clone = pickle.loads(pickle.dumps(vertex.state))
        # The wire format is the flat state: no PendingChild, and
        # critically no parent chain, on the other side.
        assert type(clone) is SearchState
        assert clone.scheduled_mask == flat.scheduled_mask
        assert tuple(clone.proc_of) == tuple(flat.proc_of)
        assert tuple(clone.finish) == tuple(flat.finish)
        assert clone.canonical_key() == flat.canonical_key()


def test_parameters_and_results_round_trip():
    params = BnBParameters()
    clone = pickle.loads(pickle.dumps(params))
    assert clone.describe() == params.describe()
    result = BranchAndBound(params).solve(PROBLEMS[1])
    res_clone = pickle.loads(pickle.dumps(result))
    assert res_clone.best_cost == result.best_cost
    assert res_clone.status == result.status
    assert res_clone.proc_of == result.proc_of
    assert res_clone.stats.as_dict() == result.stats.as_dict()


def test_resource_error_round_trips():
    err = ResourceLimitExceeded("MAXVERT", "123 generated")
    clone = pickle.loads(pickle.dumps(err))
    assert isinstance(clone, ResourceLimitExceeded)
    assert str(clone) == str(err)
    assert clone.which == "MAXVERT"
    assert clone.detail == "123 generated"
