"""Integration tests: the ISSUE 1 acceptance criteria end to end.

Covers the 50-task traced solve (parseable JSONL, phase breakdown
covering >= 90% of wall clock, metrics snapshot), the ``repro report``
subcommand, the new solve flags, and the satellite fixes (clock stopped
in ``finally``, streaming CSV).
"""

import io
import json

import pytest

from repro.cli import main
from repro.core import BnBParameters, BranchAndBound, TraceRecorder
from repro.core.resources import ResourceBounds
from repro.errors import ResourceLimitExceeded
from repro.io import save_graph
from repro.model import compile_problem, shared_bus_platform
from repro.obs import (
    JsonlSink,
    MetricsRegistry,
    Observability,
    PhaseProfiler,
    load_trace,
    render_trace_report,
)
from repro.workload import generate_task_graph, scaled_spec, tiny_spec


@pytest.fixture(scope="module")
def fifty_task_problem():
    spec = scaled_spec(name="fifty", num_tasks=(50, 50), depth=(10, 12))
    graph = generate_task_graph(spec, seed=3)
    assert len(graph) == 50
    return compile_problem(graph, shared_bus_platform(3))


class TestFiftyTaskAcceptance:
    @pytest.fixture(scope="class")
    def traced_run(self, fifty_task_problem, tmp_path_factory):
        path = tmp_path_factory.mktemp("obs") / "trace.jsonl"
        obs = Observability(
            sink=JsonlSink(str(path)),
            profiler=PhaseProfiler(),
            metrics=MetricsRegistry(),
        )
        params = BnBParameters(
            resources=ResourceBounds(max_vertices=20_000)
        )
        result = BranchAndBound(params, obs=obs).solve(fifty_task_problem)
        obs.close()
        return result, obs, path

    def test_trace_file_parses(self, traced_run):
        result, _, path = traced_run
        records = [json.loads(x) for x in path.read_text().splitlines()]
        assert records, "trace file is empty"
        kinds = {r["ev"] for r in records}
        assert {"start", "summary"} <= kinds
        assert sum(1 for r in records if r["ev"] == "explore") == (
            result.stats.explored
        )

    def test_phase_breakdown_covers_wall_clock(self, traced_run):
        result, _, _ = traced_run
        assert result.profile is not None
        assert result.stats.elapsed > 0
        assert result.profile.fraction_of(result.stats.elapsed) >= 0.90

    def test_metrics_snapshot_produced(self, traced_run):
        result, obs, _ = traced_run
        snap = obs.metrics.snapshot()
        assert (
            snap["bnb_generated_vertices_total"]["value"]
            == result.stats.generated
        )
        json.dumps(snap)  # exportable

    def test_report_renders_the_trace(self, traced_run):
        _, _, path = traced_run
        report = load_trace(str(path))
        text = render_trace_report(report)
        assert "phase profile:" in text
        assert "bound" in text
        assert "result:" in text


class TestReportSubcommand:
    @pytest.fixture
    def trace_file(self, tmp_path):
        graph = generate_task_graph(scaled_spec(), seed=0)
        gpath = tmp_path / "g.json"
        save_graph(graph, gpath)
        tpath = tmp_path / "trace.jsonl"
        rc = main([
            "solve", str(gpath), "-m", "2",
            "--trace-jsonl", str(tpath), "--profile",
        ])
        assert rc == 0
        return tpath

    def test_report_subcommand(self, trace_file, capsys):
        assert main(["report", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "events:" in out
        assert "phase profile:" in out
        assert "result: optimal" in out

    def test_report_tolerates_malformed_lines(self, trace_file, capsys):
        with open(trace_file, "a") as fh:
            fh.write("this is not json\n\n{\"no_ev_key\": 1}\n")
        assert main(["report", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "skipped 2 malformed lines" in out


class TestSolveFlags:
    @pytest.fixture
    def graph_file(self, tmp_path):
        g = generate_task_graph(tiny_spec(), seed=0)
        path = tmp_path / "g.json"
        save_graph(g, path)
        return str(path)

    def test_all_obs_flags_together(self, graph_file, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        metrics = tmp_path / "m.json"
        rc = main([
            "solve", graph_file,
            "--trace-jsonl", str(trace), "--trace-sample", "2",
            "--profile", "--metrics-out", str(metrics), "--progress",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "profile:" in out
        assert trace.exists()
        snap = json.loads(metrics.read_text())
        assert "bnb_generated_vertices_total" in snap

    def test_metrics_prometheus_extension(self, graph_file, tmp_path):
        metrics = tmp_path / "m.prom"
        assert main([
            "solve", graph_file, "--metrics-out", str(metrics),
        ]) == 0
        assert "# TYPE bnb_generated_vertices_total counter" in (
            metrics.read_text()
        )

    def test_trace_csv_streams(self, graph_file, tmp_path):
        csv = tmp_path / "t.csv"
        assert main(["solve", graph_file, "--trace-csv", str(csv)]) == 0
        lines = csv.read_text().splitlines()
        assert lines[0] == "step,generated,level,lower_bound,active_size"
        assert len(lines) > 1


class TestSatelliteFixes:
    def test_clock_stopped_on_resource_exception(self):
        """stats timing must survive a mid-solve ResourceLimitExceeded."""
        prob = compile_problem(
            generate_task_graph(scaled_spec(), seed=0), shared_bus_platform(2)
        )
        params = BnBParameters(
            resources=ResourceBounds(max_vertices=50, fail_on_exhaustion=True)
        )
        solver = BranchAndBound(params)
        with pytest.raises(ResourceLimitExceeded):
            solver.solve(prob)
        # The engine cannot hand us stats on a raise, but the clock fix
        # is observable through a sink attached to the same failing run.
        from repro.obs import MemorySink

        sink = MemorySink()
        with pytest.raises(ResourceLimitExceeded):
            BranchAndBound(params, obs=Observability(sink=sink)).solve(prob)
        assert sink.of_kind("resource")[0]["kind"] == "MAXVERT"

    def test_stop_clock_idempotent(self):
        from repro.core import SearchStats

        stats = SearchStats()
        stats.start_clock()
        stats.stop_clock()
        first = stats.elapsed
        stats.stop_clock()
        assert stats.elapsed == first
        assert stats.vertices_per_second == 0.0  # generated == 0

    def test_vertices_per_second_nonzero_after_any_solve(self):
        prob = compile_problem(
            generate_task_graph(tiny_spec(), seed=0), shared_bus_platform(2)
        )
        res = BranchAndBound(BnBParameters()).solve(prob)
        assert res.stats.elapsed > 0
        assert res.stats.vertices_per_second > 0

    def test_result_stats_always_set(self):
        prob = compile_problem(
            generate_task_graph(tiny_spec(), seed=1), shared_bus_platform(2)
        )
        res = BranchAndBound(BnBParameters()).solve(prob)
        assert res.stats is not None
        assert res.stats.generated >= 1

    def test_write_csv_matches_to_csv(self, tmp_path):
        prob = compile_problem(
            generate_task_graph(tiny_spec(), seed=0), shared_bus_platform(2)
        )
        trace = TraceRecorder()
        BranchAndBound(BnBParameters(), trace=trace).solve(prob)
        path = tmp_path / "t.csv"
        rows = trace.write_csv(str(path))
        assert rows == len(trace.explored)
        assert path.read_text() == trace.to_csv()
        # File-object variant streams to any writable.
        buf = io.StringIO()
        trace.write_csv(buf)
        assert buf.getvalue() == trace.to_csv()


class TestExperimentMetrics:
    def test_runner_aggregates_metric_snapshots(self):
        from repro.experiments.figures import fig3a

        out = fig3a(
            profile="tiny",
            processors=(2,),
            num_graphs=2,
            resources=ResourceBounds(max_vertices=5_000),
            collect_metrics=True,
        )
        metrics = out.metadata["metrics"]
        assert set(metrics) == {"BnB S=LLB", "BnB S=LIFO"}
        for entry in metrics.values():
            assert entry["runs"] == 2
            assert entry["counters"]["bnb_solves_total"] == 2
            assert entry["counters"]["bnb_generated_vertices_total"] > 0

    def test_render_includes_metrics_block(self):
        from repro.experiments.figures import fig3a
        from repro.experiments.report import render

        out = fig3a(
            profile="tiny",
            processors=(2,),
            num_graphs=1,
            resources=ResourceBounds(max_vertices=5_000),
            collect_metrics=True,
        )
        text = render(out)
        assert "-- metrics" in text
        assert "bnb_generated_vertices_total" in text

    def test_off_by_default(self):
        from repro.experiments.figures import fig3a

        out = fig3a(
            profile="tiny",
            processors=(2,),
            num_graphs=1,
            resources=ResourceBounds(max_vertices=5_000),
        )
        assert "metrics" not in out.metadata
