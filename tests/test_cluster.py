"""The cluster failure matrix, driven through the in-memory transport.

Every scenario asserts *parity*: the distributed solve must land on the
same status and (to 1e-9) the same optimal cost as the single-process
:class:`BranchAndBound` on the same instance — crashes, hangs,
partitions, duplicate frames and elastic membership included.  The one
deliberate exception is the poison-shard scenario, where the contract
is the opposite: after quarantine the run must *never* claim OPTIMAL.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.cluster import (
    ClusterCoordinator,
    ClusterWorker,
    LinkFaults,
    MemoryTransport,
)
from repro.core import (
    LB0,
    LB2,
    BnBParameters,
    BranchAndBound,
    LIFOSelection,
    LLBSelection,
    SolveStatus,
)
from repro.core.checkpoint import StopToken, load_checkpoint
from repro.core.parallel import FaultPlan, ShardFault
from repro.errors import CheckpointError

from faultlib import (
    HARD_SEEDS,
    assert_cluster_parity,
    hard_problem,
    run_cluster,
)

PROBLEMS = {seed: hard_problem(seed) for seed in HARD_SEEDS}
REFERENCE = {
    seed: BranchAndBound(BnBParameters()).solve(problem)
    for seed, problem in PROBLEMS.items()
}


def crash_plan(attempts=(1,), kind="crash", shard=-1, **kw):
    """A plan that kills the worker running ``shard`` at each attempt.

    Giving the *same* shard-targeted plan to every worker makes the
    drill deterministic: whichever worker happens to win the targeted
    shard dies, the retry (a different attempt number) completes.
    """
    return FaultPlan(
        tuple(
            ShardFault(kind=kind, shard=shard, attempt=a, **kw)
            for a in attempts
        )
    )


# ---------------------------------------------------------------------------
# Clean runs
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", HARD_SEEDS)
def test_clean_cluster_matches_sequential(seed):
    result, coord = run_cluster(PROBLEMS[seed], workers=2)
    assert_cluster_parity(result, REFERENCE[seed])
    report = coord.last_report
    assert report.joins == 2
    assert not report.quarantined
    assert report.shards + 0 >= 1


@pytest.mark.parametrize(
    "params",
    [
        BnBParameters(selection=LLBSelection()),
        BnBParameters(lower_bound=LB2()),
        BnBParameters(lower_bound=LB0()),
        BnBParameters(selection=LIFOSelection(), lower_bound=LB2()),
    ],
    ids=["S=LLB", "L=LB2", "L=LB0", "S=LIFO,L=LB2"],
)
def test_parameter_sweep_parity(params):
    """Complete-search ⟨B,S,E,L⟩ points all land on the same optimum."""
    seed = HARD_SEEDS[0]
    reference = BranchAndBound(params).solve(PROBLEMS[seed])
    result, _coord = run_cluster(PROBLEMS[seed], params, workers=2)
    assert_cluster_parity(result, reference)


def test_single_worker_cluster():
    seed = HARD_SEEDS[0]
    result, coord = run_cluster(PROBLEMS[seed], workers=1)
    assert_cluster_parity(result, REFERENCE[seed])
    assert coord.last_report.steals == 0  # nobody to steal from


# ---------------------------------------------------------------------------
# Worker death
# ---------------------------------------------------------------------------


def test_worker_crash_between_shards_is_retried():
    seed = HARD_SEEDS[0]
    result, coord = run_cluster(
        PROBLEMS[seed],
        workers=3,
        worker_kwargs={"fault_plan": crash_plan(shard=0)},
    )
    assert_cluster_parity(result, REFERENCE[seed])
    report = coord.last_report
    assert report.leaves >= 1  # the crash surfaced as a membership event
    assert report.shard_retries >= 1  # and its shard was re-queued
    assert not report.quarantined


def test_worker_crash_mid_shard_is_retried():
    seed = HARD_SEEDS[1]
    result, coord = run_cluster(
        PROBLEMS[seed],
        workers=3,
        worker_kwargs={
            "fault_plan": crash_plan(
                kind="crash-mid", shard=2, after_polls=1
            )
        },
        # Every depth-1 shard of this instance explores past the
        # 64-vertex poll cadence even under the optimal incumbent, so
        # the mid-search crash fires no matter who wins shard 2.
        coordinator_kwargs=dict(split_depth=1),
    )
    assert_cluster_parity(result, REFERENCE[seed])
    assert coord.last_report.leaves >= 1
    assert coord.last_report.shard_retries >= 1


def test_poison_shard_quarantine_never_claims_optimal():
    """When every attempt dies, truncate honestly — never OPTIMAL."""
    seed = HARD_SEEDS[0]
    plan = crash_plan(attempts=(1, 2, 3))
    result, coord = run_cluster(
        PROBLEMS[seed],
        workers=3,
        worker_kwargs={"fault_plan": plan},
        coordinator_kwargs=dict(worker_timeout=1.0, max_shard_attempts=3),
    )
    report = coord.last_report
    assert report.quarantined  # at least one shard was given up on
    assert result.status not in (SolveStatus.OPTIMAL, SolveStatus.NEAR_OPTIMAL)
    assert result.stats.truncated
    # The schedule it does return is still the honest incumbent: no
    # better than the reference optimum, possibly worse.
    if result.proc_of is not None:
        assert result.best_cost >= REFERENCE[seed].best_cost - 1e-9


def test_hung_worker_lease_expires_and_shard_is_reassigned():
    seed = HARD_SEEDS[0]
    result, coord = run_cluster(
        PROBLEMS[seed],
        workers=2,
        worker_kwargs=[
            {"fault_plan": crash_plan(kind="hang", hang_seconds=1.5)},
            {},
        ],
        coordinator_kwargs=dict(lease=0.4),
    )
    assert_cluster_parity(result, REFERENCE[seed])
    report = coord.last_report
    assert report.lease_expiries >= 1
    assert report.shard_retries >= 1


# ---------------------------------------------------------------------------
# Network faults
# ---------------------------------------------------------------------------


def test_lost_bound_broadcasts_do_not_break_parity():
    """Dropping every incumbent broadcast costs pruning, never soundness."""
    seed = HARD_SEEDS[0]
    net = MemoryTransport()
    faults = LinkFaults(
        script=lambda d, i, f: "drop" if f["t"] == "bound" else "ok"
    )
    result, coord = run_cluster(
        PROBLEMS[seed],
        workers=2,
        transport=net,
        worker_kwargs=[{"transport": net.with_faults(faults)}, {}],
    )
    assert_cluster_parity(result, REFERENCE[seed])
    assert not coord.last_report.quarantined


def test_duplicate_frames_are_deduplicated():
    seed = HARD_SEEDS[0]
    net = MemoryTransport()
    faults = LinkFaults(
        script=lambda d, i, f: "dup" if f["t"] in ("shard", "result") else "ok"
    )
    result, coord = run_cluster(
        PROBLEMS[seed],
        workers=2,
        transport=net,
        worker_kwargs=[{"transport": net.with_faults(faults)}, {}],
    )
    assert_cluster_parity(result, REFERENCE[seed])
    assert faults.duplicated >= 1


def test_delayed_frames_do_not_break_parity():
    seed = HARD_SEEDS[1]
    net = MemoryTransport()
    faults = LinkFaults(script=lambda d, i, f: 0.02)
    result, _coord = run_cluster(
        PROBLEMS[seed],
        workers=2,
        transport=net,
        worker_kwargs=[{"transport": net.with_faults(faults)}, {}],
    )
    assert_cluster_parity(result, REFERENCE[seed])


def test_partition_severs_worker_and_work_is_reassigned():
    """A mid-solve partition looks like a hang: lease expiry reclaims."""
    seed = HARD_SEEDS[0]
    net = MemoryTransport()
    faults = LinkFaults()

    def sever(d, i, f):
        # Deliver the handshake and the first completed-shard result,
        # then cut the link: the worker's prefetched backlog is now
        # stranded behind the partition and must be lease-reclaimed.
        if d == "w2c" and f["t"] == "result":
            faults.partitioned = True
        return "ok"

    faults.script = sever
    result, coord = run_cluster(
        PROBLEMS[seed],
        workers=2,
        worker_kwargs=[
            {"transport": net.with_faults(faults), "poll_delay": 0.02},
            {},
        ],
        transport=net,
        # No stealing: the stranded backlog must come back via lease
        # expiry, not get quietly rescued by the healthy worker.
        coordinator_kwargs=dict(lease=0.4, steal=False),
    )
    assert_cluster_parity(result, REFERENCE[seed])
    report = coord.last_report
    assert report.lease_expiries >= 1
    assert report.leaves >= 1


# ---------------------------------------------------------------------------
# Elastic membership
# ---------------------------------------------------------------------------


def test_voluntary_leave_mid_solve():
    """A worker that serves one shard and quits must not lose work."""
    seed = HARD_SEEDS[0]
    result, coord = run_cluster(
        PROBLEMS[seed],
        workers=2,
        worker_kwargs=[{"max_shards": 1}, {}],
    )
    assert_cluster_parity(result, REFERENCE[seed])
    assert coord.last_report.leaves >= 1


def test_late_join_mid_solve():
    seed = HARD_SEEDS[0]
    problem = PROBLEMS[seed]
    net = MemoryTransport()
    address = "mem://coordinator"
    coord = ClusterCoordinator(
        None, bind=address, transport=net, lease=2.0, retry_backoff=0.001
    )
    early = ClusterWorker(
        address, transport=net, worker_id="early", poll_delay=0.05
    )
    late = ClusterWorker(
        address, transport=net, worker_id="late", connect_timeout=20.0
    )

    def join_late():
        time.sleep(0.3)
        try:
            late.run()
        except Exception:
            pass  # solve may already be over; a no-show is not a failure

    threads = [
        threading.Thread(target=early.run, daemon=True),
        threading.Thread(target=join_late, daemon=True),
    ]
    for t in threads:
        t.start()
    try:
        result = coord.solve(problem)
    finally:
        for t in threads:
            t.join(timeout=60.0)
    assert_cluster_parity(result, REFERENCE[seed])
    assert coord.last_report.joins >= 1


# ---------------------------------------------------------------------------
# Checkpoint / resume
# ---------------------------------------------------------------------------


def test_interrupted_coordinator_resumes_to_same_cost(tmp_path):
    seed = HARD_SEEDS[0]
    problem = PROBLEMS[seed]
    path = str(tmp_path / "cluster.ckpt")

    # Phase 1: a coordinator interrupted before dispatching anything
    # still writes a final snapshot holding the entire shard frontier.
    token = StopToken()
    token.set("test interrupt")
    coord = ClusterCoordinator(
        None,
        bind="mem://phase1",
        transport=MemoryTransport(),
        checkpoint_path=path,
        worker_timeout=5.0,
        stop=token,
    )
    partial = coord.solve(problem)
    assert partial.stats.interrupted
    assert partial.status is not SolveStatus.OPTIMAL

    # Phase 2: a fresh coordinator + fresh workers resume the snapshot
    # and land on the sequential optimum.
    snap = load_checkpoint(path)
    assert snap.frontier  # the interrupted frontier survived
    result, coord2 = run_cluster(
        problem, workers=2, coordinator_kwargs=dict(resume=snap)
    )
    assert_cluster_parity(result, REFERENCE[seed])
    assert coord2.last_report.resumed


def test_resume_rejects_mismatched_problem(tmp_path):
    path = str(tmp_path / "cluster.ckpt")
    token = StopToken()
    token.set("test interrupt")
    ClusterCoordinator(
        None,
        bind="mem://phase1",
        transport=MemoryTransport(),
        checkpoint_path=path,
        stop=token,
    ).solve(PROBLEMS[HARD_SEEDS[0]])
    snap = load_checkpoint(path)
    coord = ClusterCoordinator(
        None, bind="mem://phase2", transport=MemoryTransport(), resume=snap
    )
    with pytest.raises(CheckpointError, match="does not match"):
        coord.solve(PROBLEMS[HARD_SEEDS[1]])
