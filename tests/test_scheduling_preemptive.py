"""Unit tests for repro.scheduling.preemptive (Baker et al. [12])."""

import pytest

from repro.core import BnBParameters, BranchAndBound
from repro.errors import ModelError
from repro.model import Task, TaskGraph, compile_problem, shared_bus_platform
from repro.scheduling.preemptive import preemptive_edf
from repro.workload import generate_task_graph, tiny_spec

from conftest import make_chain, make_diamond


def staggered_jobs() -> TaskGraph:
    """Classic preemption scenario: an urgent job arrives mid-execution."""
    g = TaskGraph(name="stagger")
    g.add_task(Task(name="long", wcet=10.0, phase=0.0, relative_deadline=20.0))
    g.add_task(Task(name="urgent", wcet=2.0, phase=3.0, relative_deadline=4.0))
    return g


class TestBasics:
    def test_single_task(self):
        g = TaskGraph()
        g.add_task(Task(name="a", wcet=5.0, relative_deadline=8.0))
        res = preemptive_edf(g)
        assert res.max_lateness == pytest.approx(-3.0)
        assert res.preemptions == 0
        assert [s.task for s in res.slices] == ["a"]
        res.validate(g)

    def test_empty_graph_rejected(self):
        with pytest.raises(ModelError, match="empty"):
            preemptive_edf(TaskGraph())

    def test_chain_runs_in_order_without_preemption(self):
        g = make_chain(4)
        res = preemptive_edf(g)
        res.validate(g)
        assert res.preemptions == 0
        order = [s.task for s in res.slices]
        assert order == ["c0", "c1", "c2", "c3"]

    def test_urgent_arrival_preempts(self):
        g = staggered_jobs()
        res = preemptive_edf(g)
        res.validate(g)
        assert res.preemptions == 1
        # long runs [0,3], urgent [3,5], long resumes [5,12].
        assert [(s.task, s.start, s.end) for s in res.slices] == [
            ("long", 0.0, 3.0),
            ("urgent", 3.0, 5.0),
            ("long", 5.0, 12.0),
        ]
        assert res.finish["urgent"] == 5.0

    def test_urgent_lateness_value(self):
        res = preemptive_edf(staggered_jobs())
        assert res.max_lateness == pytest.approx(-2.0)

    def test_work_conservation(self):
        g = make_diamond()
        res = preemptive_edf(g)
        res.validate(g)
        total = sum(s.length for s in res.slices)
        assert total == pytest.approx(g.total_workload)
        # One machine, no idling needed with zero phases: makespan = work.
        assert res.slices[-1].end == pytest.approx(g.total_workload)


class TestPrecedence:
    def test_precedence_respected(self):
        g = make_diamond()
        res = preemptive_edf(g)
        res.validate(g)
        sink_start = min(s.start for s in res.slices_of("sink"))
        assert sink_start >= max(res.finish["left"], res.finish["right"]) - 1e-9

    def test_modified_deadlines_pull_predecessors_forward(self):
        # A predecessor with a loose deadline feeding an urgent successor
        # must be prioritized over an unrelated medium-deadline task.
        g = TaskGraph()
        g.add_task(Task(name="pred", wcet=2.0, relative_deadline=100.0))
        g.add_task(Task(name="succ", wcet=2.0, relative_deadline=5.0))
        g.add_task(Task(name="other", wcet=2.0, relative_deadline=50.0))
        g.add_edge("pred", "succ")
        res = preemptive_edf(g)
        res.validate(g)
        assert res.finish["succ"] == pytest.approx(4.0)
        assert res.max_lateness == pytest.approx(-1.0)

    @pytest.mark.parametrize("seed", range(4))
    def test_random_graphs_valid(self, seed):
        g = generate_task_graph(tiny_spec(), seed=seed)
        res = preemptive_edf(g)
        res.validate(g)


class TestRelaxationProperty:
    @pytest.mark.parametrize("seed", range(4))
    def test_lower_bounds_nonpreemptive_single_machine(self, seed):
        """Preemption is a relaxation: its optimum cannot exceed the
        non-preemptive single-processor optimum found by the B&B."""
        g = generate_task_graph(tiny_spec(), seed=seed)
        pre = preemptive_edf(g)
        prob = compile_problem(g, shared_bus_platform(1))
        nonpre = BranchAndBound(BnBParameters()).solve(prob)
        assert pre.max_lateness <= nonpre.best_cost + 1e-9

    def test_equal_when_no_preemption_needed(self):
        g = make_chain(4)
        pre = preemptive_edf(g)
        prob = compile_problem(g, shared_bus_platform(1))
        nonpre = BranchAndBound(BnBParameters()).solve(prob)
        assert pre.max_lateness == pytest.approx(nonpre.best_cost)

    def test_preemption_strictly_helps_when_it_matters(self):
        # Tight deadline on the long job: non-preemptively one of the two
        # must suffer (run long first and the urgent job waits; run
        # urgent first and the long job misses), while preemption
        # interleaves them.
        g = TaskGraph()
        g.add_task(Task(name="long", wcet=10.0, phase=0.0, relative_deadline=13.0))
        g.add_task(Task(name="urgent", wcet=2.0, phase=3.0, relative_deadline=4.0))
        pre = preemptive_edf(g)
        pre.validate(g)
        prob = compile_problem(g, shared_bus_platform(1))
        nonpre = BranchAndBound(BnBParameters()).solve(prob)
        assert pre.max_lateness == pytest.approx(-1.0)
        assert nonpre.best_cost == pytest.approx(2.0)
        assert pre.max_lateness < nonpre.best_cost - 1e-9
