"""Benchmark harness: instance construction, oracle rows, golden logic."""

from __future__ import annotations

import math

import pytest

from repro.bench.harness import (
    BENCH_INSTANCES,
    QUICK_INSTANCES,
    BenchInstance,
    bench_params,
    check_against_golden,
    golden_from_report,
    run_instance,
    run_suite,
)
from repro.errors import ReproError


def test_bench_params_unknown_preset():
    with pytest.raises(ReproError, match="unknown bench preset"):
        bench_params("llb-lb9")


def test_bench_params_capped_cells_truncate_quietly():
    exhaustive = bench_params("llb-lb1")
    capped = bench_params("llb-lb1", max_vertices=50_000)
    assert exhaustive.resources.max_vertices == 2_000_000
    assert not capped.resources.fail_on_exhaustion
    assert capped.resources.max_vertices == 50_000


def test_suite_names_unique_and_quick_is_subset():
    names = [inst.name for inst in BENCH_INSTANCES]
    assert len(names) == len(set(names))
    assert set(QUICK_INSTANCES) <= set(BENCH_INSTANCES)
    # One quick cell per preset, so CI smokes every configuration.
    assert {q.preset for q in QUICK_INSTANCES} == {
        inst.preset for inst in BENCH_INSTANCES
    }


def test_spec_overrides_reach_the_generator():
    inst = BenchInstance(
        "x", "paper", 1, 2, "llb-lb1",
        num_tasks=(24, 26), depth=(9, 12),
    )
    problem = inst.problem()
    assert 24 <= problem.n <= 26
    plain = BenchInstance("y", "paper", 1, 2, "llb-lb1")
    assert plain.spec_changes() == {}


def test_run_instance_row_is_consistent():
    inst = BenchInstance("tiny-s0-m2", "tiny", 0, 2, "lifo-lb1")
    row = run_instance(inst, repeats=1)
    assert row["name"] == "tiny-s0-m2"
    assert row["generated"] > 0
    assert row["explored"] > 0
    assert row["capped"] is None
    assert row["opt_seconds"] > 0.0
    assert row["opt_vertices_per_sec"] > 0
    assert math.isfinite(row["best_cost"])
    assert row["phase_split"]


def test_run_suite_merges_baseline(monkeypatch):
    import repro.bench.harness as harness

    rows = iter([
        {"name": q.name, "preset": q.preset, "generated": 100,
         "explored": 50, "best_cost": 0.0, "ref_seconds": 0.2,
         "opt_seconds": 0.1, "opt_vertices_per_sec": 1000}
        for q in QUICK_INSTANCES
    ])
    monkeypatch.setattr(
        harness, "run_instance", lambda inst, repeats: next(rows)
    )
    baseline = {
        "commit": "abc1234",
        "measured_with": "test",
        "instances": {
            q.name: {"vertices_per_sec": 400} for q in QUICK_INSTANCES
        },
    }
    report = harness.run_suite(quick=True, repeats=1, baseline=baseline)
    for row in report["instances"]:
        assert row["pre_pr_vertices_per_sec"] == 400
        assert row["speedup_vs_pre_pr"] == 2.5
    geo = report["summary"]["speedup_vs_pre_pr_geomean"]
    assert set(geo) == {q.preset for q in QUICK_INSTANCES}
    assert all(v == 2.5 for v in geo.values())
    assert report["baseline"]["commit"] == "abc1234"


def test_run_suite_without_baseline_has_no_ratio(monkeypatch):
    import repro.bench.harness as harness

    monkeypatch.setattr(
        harness, "run_instance",
        lambda inst, repeats: {
            "name": inst.name, "preset": inst.preset, "generated": 10,
            "explored": 5, "best_cost": 0.0, "ref_seconds": 0.2,
            "opt_seconds": 0.1, "opt_vertices_per_sec": 100,
        },
    )
    report = harness.run_suite(quick=True, repeats=1)
    assert all(
        "speedup_vs_pre_pr" not in row for row in report["instances"]
    )
    assert "speedup_vs_pre_pr_geomean" not in report["summary"]


def test_golden_round_trip_and_drift():
    report = {
        "instances": [
            {"name": "a", "generated": 10, "explored": 5, "best_cost": 1.5},
            {"name": "b", "generated": 20, "explored": 9, "best_cost": -2.0},
        ]
    }
    golden = golden_from_report(report)
    assert check_against_golden(report, golden) == []
    report["instances"][1]["explored"] = 10
    drift = check_against_golden(report, golden)
    assert len(drift) == 1 and "b: explored drifted" in drift[0]
    report["instances"].append(
        {"name": "c", "generated": 1, "explored": 1, "best_cost": 0.0}
    )
    drift = check_against_golden(report, golden)
    assert any("c: no golden entry" in d for d in drift)


def test_live_overhead_instance_parity_and_fields():
    from repro.bench.harness import run_live_overhead_instance

    # The smallest committed cell (367 generated vertices): parity is
    # the real assertion — the monitored solve must be the same search.
    inst = next(
        i for i in BENCH_INSTANCES if i.name == "paper-s13-m2-lifo-lb1"
    )
    row = run_live_overhead_instance(inst, repeats=1, interval=0.0)
    assert row["name"] == inst.name
    assert row["generated"] > 0
    assert row["base_seconds"] > 0 and row["live_seconds"] > 0
    assert row["samples"] >= 1  # interval=0 samples every check-in
    assert row["overhead"] is not None


def test_live_overhead_suite_report_shape(monkeypatch):
    import repro.bench.harness as harness

    monkeypatch.setattr(
        harness, "QUICK_INSTANCES",
        tuple(i for i in BENCH_INSTANCES
              if i.name == "paper-s13-m2-lifo-lb1"),
    )
    report = harness.run_live_overhead_suite(quick=True, repeats=1)
    assert report["schema"] == "repro-bench-pr6/1"
    summary = report["summary"]
    assert summary["cells"] == 1
    assert summary["budget"] == 0.02
    assert summary["geomean_time_ratio"] is not None
    assert isinstance(summary["within_budget"], bool)


def test_dupfree_suite_names_unique_and_quick_is_subset():
    from repro.bench.harness import DUPFREE_INSTANCES, DUPFREE_QUICK

    names = [inst.name for inst in DUPFREE_INSTANCES]
    assert len(names) == len(set(names))
    assert set(DUPFREE_QUICK) <= set(DUPFREE_INSTANCES)
    # The committed suite documents both sides of the story: cells
    # where the duplicate-free tree wins (hard-gated) and cells where
    # the classic tree plus table still wins (reported, not gated).
    assert any(inst.expect_win for inst in DUPFREE_INSTANCES)
    assert any(not inst.expect_win for inst in DUPFREE_INSTANCES)
    assert any(not inst.expect_win for inst in DUPFREE_QUICK)


def test_dupfree_instance_row_gates_and_fields():
    from repro.bench.harness import DUPFREE_INSTANCES, run_dupfree_instance

    inst = next(i for i in DUPFREE_INSTANCES if i.name == "hard-s0-m2")
    row = run_dupfree_instance(inst, repeats=1, ml_cap=16)
    assert row["name"] == "hard-s0-m2"
    assert row["expect_win"] is True
    # The hard gates already ran inside run_dupfree_instance (cost
    # parity, zero AO duplicates, array-fallback identity); the row
    # itself must carry the head-to-head evidence.
    assert row["tt"]["duplicates_pruned"] > 0
    assert row["ao"]["generated"] <= row["tt"]["generated"]
    assert row["vertex_reduction"] >= 1.0
    assert row["ao_ml"]["cap"] == 16
    assert row["ao_ml"]["generated"] > 0
    assert row["tt"]["best_cost"] == pytest.approx(row["ao"]["best_cost"])


def test_dupfree_suite_report_shape(monkeypatch):
    import repro.bench.harness as harness

    monkeypatch.setattr(
        harness, "DUPFREE_QUICK",
        tuple(i for i in harness.DUPFREE_INSTANCES
              if i.name in ("hard-s9-m2", "hard-s8-m2")),
    )
    report = harness.run_dupfree_suite(quick=True, repeats=1)
    assert report["schema"] == "repro-bench-pr8/1"
    summary = report["summary"]
    assert summary["cells"] == 2
    assert summary["expected_win_cells"] == 1
    assert summary["ao_duplicates_pruned"] == 0
    assert summary["duplicates_pruned_by_tt"] > 0
    assert summary["vertex_reduction_geomean"] is not None
    assert summary["vertex_reduction_geomean_wins"] >= 1.0
