"""Unit tests for repro.scheduling.listsched (the Section 4.3 operation)."""

import pytest

from repro.errors import ModelError
from repro.model import compile_problem, shared_bus_platform
from repro.scheduling import (
    SchedulingState,
    best_processor,
    schedule_in_order,
)

from conftest import make_chain, make_diamond, make_independent


@pytest.fixture
def diamond_prob():
    return compile_problem(make_diamond(msg=4.0), shared_bus_platform(2))


class TestSchedulingState:
    def test_initial_ready_set_is_inputs(self, diamond_prob):
        st = SchedulingState(diamond_prob)
        assert st.ready_tasks() == [diamond_prob.index["src"]]
        assert not st.is_complete

    def test_place_updates_ready_set(self, diamond_prob):
        st = SchedulingState(diamond_prob)
        st.place(diamond_prob.index["src"], 0)
        ready = set(st.ready_tasks())
        assert ready == {diamond_prob.index["left"], diamond_prob.index["right"]}

    def test_place_not_ready_rejected(self, diamond_prob):
        st = SchedulingState(diamond_prob)
        with pytest.raises(ModelError, match="not ready"):
            st.place(diamond_prob.index["sink"], 0)

    def test_double_place_rejected(self, diamond_prob):
        st = SchedulingState(diamond_prob)
        st.place(diamond_prob.index["src"], 0)
        with pytest.raises(ModelError, match="not ready"):
            st.place(diamond_prob.index["src"], 1)

    def test_append_only_no_backfill(self):
        """A later task on the same processor never starts before the
        previous one finishes, even if a gap exists — the source of the
        operation's non-commutativity."""
        prob = compile_problem(make_independent(2), shared_bus_platform(1))
        st = SchedulingState(prob)
        # i1 (wcet 5) placed first, then i0 (wcet 4) must wait.
        st.place(1, 0)
        assert st.start[1] == 0.0
        st.place(0, 0)
        assert st.start[0] == 5.0

    def test_communication_respected(self, diamond_prob):
        st = SchedulingState(diamond_prob)
        st.place(diamond_prob.index["src"], 0)
        left = diamond_prob.index["left"]
        assert st.earliest_start(left, 0) == 2.0  # local
        assert st.earliest_start(left, 1) == 6.0  # +message 4

    def test_max_lateness_tracks_placed(self, diamond_prob):
        st = SchedulingState(diamond_prob)
        assert st.max_lateness() == float("-inf")
        st.place(diamond_prob.index["src"], 0)
        assert st.max_lateness() == 2.0 - 100.0

    def test_to_schedule_valid(self, diamond_prob):
        st = SchedulingState(diamond_prob)
        for t in [0, 1, 2, 3]:
            st.place(t, best_processor(st, t)[0])
        sched = st.to_schedule()
        assert sched.is_complete
        sched.validate()


class TestBestProcessor:
    def test_prefers_earliest_start(self, diamond_prob):
        st = SchedulingState(diamond_prob)
        st.place(diamond_prob.index["src"], 0)
        left = diamond_prob.index["left"]
        proc, start = best_processor(st, left)
        assert (proc, start) == (0, 2.0)

    def test_ties_broken_to_lowest_index(self, diamond_prob):
        st = SchedulingState(diamond_prob)
        proc, start = best_processor(st, diamond_prob.index["src"])
        assert (proc, start) == (0, 0.0)

    def test_moves_to_free_processor_under_contention(self):
        prob = compile_problem(make_independent(2), shared_bus_platform(2))
        st = SchedulingState(prob)
        st.place(0, 0)
        proc, start = best_processor(st, 1)
        assert (proc, start) == (1, 0.0)


class TestScheduleInOrder:
    def test_chain_in_order(self):
        prob = compile_problem(make_chain(4, wcet=10.0, msg=5.0), shared_bus_platform(2))
        res = schedule_in_order(prob, [0, 1, 2, 3])
        # Best processor co-locates the chain: no communication.
        assert res.finish[3] == 40.0
        assert res.to_schedule().violations() == []

    def test_non_topological_order_rejected(self, diamond_prob):
        with pytest.raises(ModelError, match="not topological"):
            schedule_in_order(diamond_prob, [3, 0, 1, 2])

    def test_non_permutation_rejected(self, diamond_prob):
        with pytest.raises(ModelError, match="permutation"):
            schedule_in_order(diamond_prob, [0, 1, 2])
        with pytest.raises(ModelError, match="permutation"):
            schedule_in_order(diamond_prob, [0, 0, 1, 2])

    def test_order_changes_result(self):
        """Non-commutativity: two topological orders, different costs."""
        prob = compile_problem(make_independent(2), shared_bus_platform(1))
        r01 = schedule_in_order(prob, [0, 1])
        r10 = schedule_in_order(prob, [1, 0])
        assert r01.finish != r10.finish

    def test_result_fields(self, diamond_prob):
        res = schedule_in_order(diamond_prob, [0, 1, 2, 3])
        assert res.order == (0, 1, 2, 3)
        assert len(res.proc_of) == 4
        assert res.max_lateness == max(
            f - d for f, d in zip(res.finish, diamond_prob.deadline)
        )
        assert res.is_feasible  # generous deadlines

    def test_custom_processor_rule(self, diamond_prob):
        # Force everything onto processor 1.
        res = schedule_in_order(
            diamond_prob, [0, 1, 2, 3], processor_rule=lambda st, t: (1, 0.0)
        )
        assert set(res.proc_of) == {1}
        assert res.to_schedule().violations() == []
