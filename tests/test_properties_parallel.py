"""Property-based tests for the parallel branch-and-bound driver.

The deterministic-mode contract is checked where it is strongest: under
LIFO selection the parallel solve must be *bit-identical* to the
sequential one — cost, schedule and every shard-summed counter — for
any worker count and split depth.  Under best-first selection (LLB) the
sequential pop order interleaves subtrees on global sequence numbers
that no shard can observe, so the guarantee (and the assertion) is the
optimal cost plus run-to-run reproducibility.  Throughput mode promises
only the optimal cost.

Worker counts follow the issue's matrix {1, 2, 4}; example counts are
modest because every example forks a process pool.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import (
    BnBParameters,
    BranchAndBound,
    LIFOSelection,
    LLBSelection,
    ParallelBnB,
)

from test_properties import compiled_problems

SETTINGS = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

WORKERS = st.sampled_from([1, 2, 4])

#: Stats keys that must match bit-for-bit in deterministic LIFO mode.
#: ``elapsed`` is wall-clock; ``peak_active`` is an upper estimate in
#: parallel mode (the coordinator cannot observe mid-shard sweep timing).
EXACT_KEYS = [
    "generated",
    "explored",
    "pruned_children",
    "pruned_active",
    "pruned_dominated",
    "pruned_infeasible",
    "dropped_resource",
    "goals_evaluated",
    "incumbent_updates",
    "time_limit_hit",
    "truncated",
]


def _exact(stats) -> dict:
    d = stats.as_dict()
    return {k: d[k] for k in EXACT_KEYS}


@SETTINGS
@given(
    prob=compiled_problems(max_tasks=6),
    workers=WORKERS,
    depth=st.integers(min_value=1, max_value=3),
)
def test_deterministic_lifo_is_bit_identical(prob, workers, depth):
    params = BnBParameters(selection=LIFOSelection())
    seq = BranchAndBound(params).solve(prob)
    par = ParallelBnB(params, workers=workers, split_depth=depth).solve(prob)
    assert par.status == seq.status
    assert par.best_cost == seq.best_cost  # exact, not approx
    assert par.proc_of == seq.proc_of
    assert par.start == seq.start
    assert _exact(par.stats) == _exact(seq.stats)


@SETTINGS
@given(prob=compiled_problems(max_tasks=6), workers=WORKERS)
def test_deterministic_llb_cost_and_reproducibility(prob, workers):
    params = BnBParameters(selection=LLBSelection())
    seq = BranchAndBound(params).solve(prob)
    one = ParallelBnB(params, workers=workers, split_depth=2).solve(prob)
    two = ParallelBnB(params, workers=workers, split_depth=2).solve(prob)
    assert one.best_cost == seq.best_cost
    # Run-to-run determinism: same schedule, same counters, every time.
    assert two.best_cost == one.best_cost
    assert two.proc_of == one.proc_of
    assert two.start == one.start
    assert _exact(two.stats) == _exact(one.stats)


@SETTINGS
@given(prob=compiled_problems(max_tasks=6), workers=WORKERS)
def test_throughput_mode_finds_the_optimum(prob, workers):
    params = BnBParameters(selection=LIFOSelection())
    seq = BranchAndBound(params).solve(prob)
    thr = ParallelBnB(
        params, workers=workers, split_depth=2, deterministic=False
    ).solve(prob)
    assert thr.best_cost == seq.best_cost
    if thr.proc_of is not None:
        sched = thr.schedule()
        sched.validate()
        assert abs(sched.max_lateness() - thr.best_cost) < 1e-9
