"""Unit tests for the shared shard machinery (repro.core.shards).

The backoff bounds here are the satellite contract: every jittered
delay drawn with a seeded RNG must stay inside
``[base, min(cap, base * 2**(attempt-1))]``, and consecutive retries
must not collapse onto a fixed cadence.
"""

import random
from collections import Counter

import pytest

from repro.core.shards import BackoffPolicy, RetryQueue, Shard
from repro.errors import ConfigurationError


def _shard(index: int, lb: float = 1.0) -> Shard:
    return Shard(index, ("state", index), lb, 10.0, 1000.0)


# ---------------------------------------------------------------------------
# BackoffPolicy
# ---------------------------------------------------------------------------


class TestBackoffPolicy:
    def test_envelope_is_capped_exponential(self):
        policy = BackoffPolicy(base=0.1, cap=1.0)
        assert policy.envelope(1) == pytest.approx(0.1)
        assert policy.envelope(2) == pytest.approx(0.2)
        assert policy.envelope(3) == pytest.approx(0.4)
        assert policy.envelope(4) == pytest.approx(0.8)
        assert policy.envelope(5) == 1.0  # capped
        assert policy.envelope(50) == 1.0

    def test_no_rng_means_pure_exponential(self):
        policy = BackoffPolicy(base=0.05, cap=30.0, rng=None)
        for attempt in range(1, 12):
            assert policy.next_delay(attempt) == policy.envelope(attempt)

    def test_jittered_delays_respect_bounds(self):
        """Seeded-RNG bounds: base <= delay <= min(cap, base*2^(a-1))."""
        policy = BackoffPolicy(base=0.05, cap=2.0, rng=random.Random(7))
        prev = None
        for attempt in range(1, 20):
            for _ in range(200):
                delay = policy.next_delay(attempt, prev)
                assert delay >= policy.base
                assert delay <= policy.envelope(attempt) + 1e-12
            prev = policy.next_delay(attempt, prev)

    def test_decorrelated_jitter_spreads_cohorts(self):
        """Shards orphaned together must not share a retry instant."""
        policy = BackoffPolicy(base=0.05, cap=30.0, rng=random.Random(3))
        delays = [policy.next_delay(2, 0.05) for _ in range(50)]
        # With jitter on, a 50-shard cohort collapses onto at most a
        # couple of distinct delays only if something is broken.
        assert len(set(round(d, 9) for d in delays)) > 40

    def test_jitter_ceiling_tracks_previous_delay(self):
        """Decorrelated jitter: next draw is bounded by 3x the previous."""
        policy = BackoffPolicy(base=0.01, cap=100.0, rng=random.Random(11))
        for _ in range(200):
            delay = policy.next_delay(attempt=20, previous=0.02)
            assert delay <= 0.06 + 1e-12

    def test_zero_base_disables_jitter(self):
        policy = BackoffPolicy(base=0.0, cap=1.0, rng=random.Random(0))
        assert policy.next_delay(1) == 0.0
        assert policy.next_delay(5) == 0.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BackoffPolicy(base=-0.1)
        with pytest.raises(ConfigurationError):
            BackoffPolicy(base=1.0, cap=0.5)


# ---------------------------------------------------------------------------
# RetryQueue
# ---------------------------------------------------------------------------


class TestRetryQueue:
    def test_fifo_pop_of_eligible_shards(self):
        q = RetryQueue()
        for i in range(3):
            q.add(_shard(i))
        assert q.pop_eligible(0.0) == (_shard(0), 1)
        assert q.pop_eligible(0.0) == (_shard(1), 1)
        assert len(q) == 1

    def test_backoff_delays_eligibility(self):
        q = RetryQueue(backoff=BackoffPolicy(base=10.0, cap=10.0, rng=None))
        shard = _shard(0)
        delay = q.requeue(shard, attempt=1, now=100.0)
        assert delay == 10.0
        assert q.pop_eligible(105.0) is None  # still backing off
        assert q.pop_eligible(110.0) == (shard, 2)

    def test_retry_skips_over_backing_off_shard(self):
        """A shard in backoff never blocks dispatch of healthy work."""
        q = RetryQueue(backoff=BackoffPolicy(base=50.0, cap=50.0, rng=None))
        q.requeue(_shard(0), attempt=1, now=0.0)
        q.add(_shard(1))
        assert q.pop_eligible(1.0) == (_shard(1), 1)

    def test_quarantine_after_max_attempts(self):
        q = RetryQueue(max_attempts=3)
        shard = _shard(9)
        assert q.requeue(shard, attempt=1, now=0.0) is not None
        assert q.requeue(shard, attempt=2, now=0.0) is not None
        assert q.requeue(shard, attempt=3, now=0.0) is None
        assert q.quarantined == [9]
        assert q.retries == 2

    def test_iteration_and_min_lower_bound(self):
        q = RetryQueue()
        q.add(_shard(0, lb=5.0))
        q.add(_shard(1, lb=2.0))
        q.add(_shard(2, lb=8.0))
        assert q.min_lower_bound() == 2.0
        entries = list(q)
        assert [s.index for s, _a, _e in entries] == [0, 1, 2]
        assert bool(q)
        assert RetryQueue().min_lower_bound() is None

    def test_per_shard_previous_delay_tracking(self):
        """Each shard's jitter chain is independent."""
        rng = random.Random(5)
        q = RetryQueue(
            max_attempts=10, backoff=BackoffPolicy(base=0.01, cap=50.0, rng=rng)
        )
        d0 = q.requeue(_shard(0), attempt=1, now=0.0)
        d1 = q.requeue(_shard(1), attempt=1, now=0.0)
        # Both first-attempt draws are bounded by the first envelope.
        for d in (d0, d1):
            assert 0.01 <= d <= 0.01 + 1e-12
        d0b = q.requeue(_shard(0), attempt=2, now=0.0)
        assert d0b <= min(0.02, 3 * d0) + 1e-12

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryQueue(max_attempts=0)

    def test_counts_distinct_shards(self):
        q = RetryQueue(backoff=BackoffPolicy(base=0.0, cap=0.0))
        for i in range(5):
            q.requeue(_shard(i), attempt=1, now=0.0)
        popped = Counter()
        while True:
            task = q.pop_eligible(1.0)
            if task is None:
                break
            popped[task[0].index] += 1
        assert popped == Counter({0: 1, 1: 1, 2: 1, 3: 1, 4: 1})
