"""Unit tests for repro.model.schedule."""

import math

import pytest

from repro.errors import InvalidScheduleError, ModelError, UnknownTaskError
from repro.model import Schedule, Task, TaskGraph, shared_bus_platform

from conftest import make_diamond, make_independent


@pytest.fixture
def diamond_sched():
    g = make_diamond(msg=4.0)
    return Schedule(g, shared_bus_platform(2))


class TestPlacement:
    def test_place_computes_finish(self, diamond_sched):
        e = diamond_sched.place("src", 0, 0.0)
        assert e.finish == 2.0
        assert e.duration == 2.0
        assert len(diamond_sched) == 1
        assert "src" in diamond_sched

    def test_place_unknown_task_rejected(self, diamond_sched):
        with pytest.raises(UnknownTaskError):
            diamond_sched.place("zz", 0, 0.0)

    def test_double_place_rejected(self, diamond_sched):
        diamond_sched.place("src", 0, 0.0)
        with pytest.raises(ModelError, match="already scheduled"):
            diamond_sched.place("src", 1, 5.0)

    def test_place_bad_processor_rejected(self, diamond_sched):
        with pytest.raises(ModelError, match="out of range"):
            diamond_sched.place("src", 2, 0.0)

    def test_remove(self, diamond_sched):
        diamond_sched.place("src", 0, 0.0)
        diamond_sched.remove("src")
        assert "src" not in diamond_sched
        with pytest.raises(UnknownTaskError):
            diamond_sched.remove("src")

    def test_context_switch_included_in_finish(self):
        from repro.model import Platform

        g = make_diamond()
        sched = Schedule(g, Platform(num_processors=2, context_switch=0.5))
        e = sched.place("src", 0, 0.0)
        assert e.finish == 2.5

    def test_copy_independent(self, diamond_sched):
        diamond_sched.place("src", 0, 0.0)
        c = diamond_sched.copy()
        c.place("left", 0, 10.0)
        assert "left" in c and "left" not in diamond_sched


def complete_diamond(msg: float = 4.0) -> Schedule:
    """A hand-built valid schedule for the diamond on two processors."""
    g = make_diamond(msg=msg)
    s = Schedule(g, shared_bus_platform(2))
    s.place("src", 0, 0.0)  # [0, 2]
    s.place("left", 0, 2.0)  # same proc, no comm: [2, 7]
    s.place("right", 1, 2.0 + msg)  # crosses the bus: [6, 13]
    s.place("sink", 0, 13.0 + msg)  # waits for right + message: [17, 20]
    return s


class TestQueriesAndMetrics:
    def test_timeline_sorted(self):
        s = complete_diamond()
        line = s.timeline(0)
        assert [e.task for e in line] == ["src", "left", "sink"]
        assert s.timeline(1)[0].task == "right"

    def test_processor_finish(self):
        s = complete_diamond()
        assert s.processor_finish(0) == 20.0
        assert s.processor_finish(1) == 13.0

    def test_makespan(self):
        assert complete_diamond().makespan() == 20.0

    def test_empty_schedule_metrics(self):
        g = make_diamond()
        s = Schedule(g, shared_bus_platform(2))
        assert s.makespan() == 0.0
        assert s.max_lateness() == -math.inf
        assert not s.is_complete

    def test_lateness_per_task(self):
        s = complete_diamond()
        # All deadlines are 100 in the fixture.
        assert s.lateness("sink") == 20.0 - 100.0
        assert s.max_lateness() == pytest.approx(-80.0)

    def test_is_complete(self):
        s = complete_diamond()
        assert s.is_complete
        s.remove("sink")
        assert not s.is_complete

    def test_messages(self):
        s = complete_diamond(msg=4.0)
        msgs = {(m.src, m.dst): m for m in s.messages()}
        assert len(msgs) == 4
        local = msgs[("src", "left")]
        assert local.is_local and local.transfer_time == 0.0
        remote = msgs[("src", "right")]
        assert not remote.is_local
        assert remote.departure == 2.0
        assert remote.arrival == 6.0

    def test_entries_ordering(self):
        s = complete_diamond()
        starts = [e.start for e in s.entries]
        assert starts == sorted(starts)


class TestValidation:
    def test_valid_schedule_passes(self):
        s = complete_diamond()
        s.validate()
        s.validate(require_deadlines=True)
        assert s.is_feasible()

    def test_arrival_violation(self):
        g = TaskGraph()
        g.add_task(Task(name="a", wcet=1.0, phase=5.0))
        s = Schedule(g, shared_bus_platform(1))
        s.place("a", 0, 0.0)
        v = s.violations()
        assert any("arrival" in x for x in v)
        with pytest.raises(InvalidScheduleError, match="arrival"):
            s.validate()

    def test_precedence_violation_missing_pred(self):
        g = make_diamond()
        s = Schedule(g, shared_bus_platform(2))
        s.place("sink", 0, 50.0)
        assert any("predecessor" in x for x in s.violations())

    def test_precedence_violation_too_early(self):
        g = make_diamond(msg=4.0)
        s = Schedule(g, shared_bus_platform(2))
        s.place("src", 0, 0.0)
        # Starts before src finish + message across the bus.
        s.place("right", 1, 3.0)
        assert any("communication" in x for x in s.violations())

    def test_same_processor_needs_no_message_gap(self):
        g = make_diamond(msg=4.0)
        s = Schedule(g, shared_bus_platform(2))
        s.place("src", 0, 0.0)
        s.place("left", 0, 2.0)  # immediately after src, no comm
        assert s.violations() == []

    def test_overlap_violation(self):
        g = make_independent(2)
        s = Schedule(g, shared_bus_platform(1))
        s.place("i0", 0, 0.0)  # [0, 4]
        s.place("i1", 0, 2.0)  # overlaps
        assert any("overlaps" in x for x in s.violations())

    def test_touching_intervals_do_not_overlap(self):
        g = make_independent(2)
        s = Schedule(g, shared_bus_platform(1))
        s.place("i0", 0, 0.0)  # [0, 4]
        s.place("i1", 0, 4.0)  # starts exactly at the finish
        assert s.violations() == []

    def test_deadline_violation_only_with_flag(self):
        g = TaskGraph()
        g.add_task(Task(name="a", wcet=10.0, relative_deadline=10.0))
        s = Schedule(g, shared_bus_platform(1))
        s.place("a", 0, 5.0)  # finishes at 15 > deadline 10
        assert s.violations() == []  # consistent
        assert any("deadline" in x for x in s.violations(require_deadlines=True))
        assert not s.is_feasible()

    def test_as_table_renders(self):
        s = complete_diamond()
        text = s.as_table()
        assert "p0" in text and "p1" in text and "L_max" in text
