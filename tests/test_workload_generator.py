"""Unit tests for repro.workload.generator."""

import random

import pytest

from repro.workload import WorkloadSpec, generate_batch, generate_task_graph
from repro.workload.spec import PAPER_SPEC


class TestStructure:
    @pytest.mark.parametrize("seed", range(8))
    def test_paper_spec_structural_invariants(self, seed):
        g = generate_task_graph(PAPER_SPEC, seed=seed, assign_windows=False)
        g.validate()
        n_lo, n_hi = PAPER_SPEC.num_tasks
        d_lo, d_hi = PAPER_SPEC.depth
        assert n_lo <= len(g) <= n_hi
        assert d_lo <= g.depth <= d_hi

    @pytest.mark.parametrize("seed", range(8))
    def test_every_noninput_has_pred_every_nonoutput_has_succ(self, seed):
        g = generate_task_graph(PAPER_SPEC, seed=seed, assign_windows=False)
        for name in g.task_names:
            if name not in g.input_tasks:
                assert g.in_degree(name) >= 1
            if name not in g.output_tasks:
                assert g.out_degree(name) >= 1

    def test_wcets_within_jitter_window(self):
        lo, hi = PAPER_SPEC.wcet_bounds
        for seed in range(5):
            g = generate_task_graph(PAPER_SPEC, seed=seed, assign_windows=False)
            for t in g:
                assert lo <= t.wcet <= hi

    def test_message_sizes_within_jitter_window(self):
        lo, hi = PAPER_SPEC.message_bounds
        for seed in range(5):
            g = generate_task_graph(PAPER_SPEC, seed=seed, assign_windows=False)
            for ch in g.channels:
                assert lo <= ch.message_size <= hi

    def test_ccr_zero_gives_empty_messages(self):
        spec = PAPER_SPEC.evolve(ccr=0.0)
        g = generate_task_graph(spec, seed=1, assign_windows=False)
        assert all(ch.message_size == 0.0 for ch in g.channels)

    def test_realized_ccr_tracks_requested(self):
        # With many arcs the realized CCR should land near the request.
        spec = WorkloadSpec(
            num_tasks=(30, 30), depth=(6, 6), ccr=1.0, message_jitter=0.2,
            wcet_jitter=0.2,
        )
        g = generate_task_graph(spec, seed=3, assign_windows=False)
        assert g.communication_to_computation_ratio() == pytest.approx(1.0, rel=0.25)

    def test_degenerate_single_task(self):
        spec = WorkloadSpec(num_tasks=1, depth=1)
        g = generate_task_graph(spec, seed=0, assign_windows=False)
        assert len(g) == 1
        assert g.num_arcs == 0

    def test_chain_spec(self):
        spec = WorkloadSpec(num_tasks=5, depth=5)
        g = generate_task_graph(spec, seed=0, assign_windows=False)
        assert g.depth == 5
        assert g.width == 1


class TestDeterminism:
    def test_same_seed_same_graph(self):
        a = generate_task_graph(PAPER_SPEC, seed=42)
        b = generate_task_graph(PAPER_SPEC, seed=42)
        assert a.task_names == b.task_names
        assert [(t.wcet, t.phase, t.relative_deadline) for t in a] == [
            (t.wcet, t.phase, t.relative_deadline) for t in b
        ]
        assert [(c.src, c.dst, c.message_size) for c in a.channels] == [
            (c.src, c.dst, c.message_size) for c in b.channels
        ]

    def test_different_seeds_differ(self):
        a = generate_task_graph(PAPER_SPEC, seed=1)
        b = generate_task_graph(PAPER_SPEC, seed=2)
        assert [(t.wcet) for t in a] != [(t.wcet) for t in b]

    def test_rng_instance_accepted(self):
        rng = random.Random(5)
        g = generate_task_graph(PAPER_SPEC, seed=rng)
        assert len(g) >= 12

    def test_name_embeds_seed(self):
        g = generate_task_graph(PAPER_SPEC, seed=9)
        assert "9" in g.name
        g2 = generate_task_graph(PAPER_SPEC, seed=9, name="custom")
        assert g2.name == "custom"


class TestWindows:
    def test_windows_assigned_by_default(self):
        g = generate_task_graph(PAPER_SPEC, seed=0)
        for t in g:
            assert t.relative_deadline != float("inf")
            assert t.wcet <= t.relative_deadline

    def test_windows_skippable(self):
        g = generate_task_graph(PAPER_SPEC, seed=0, assign_windows=False)
        assert all(t.relative_deadline == float("inf") for t in g)


class TestBatch:
    def test_batch_count_and_seeds(self):
        batch = generate_batch(PAPER_SPEC, count=4, base_seed=10)
        assert len(batch) == 4
        names = [g.name for g in batch]
        assert len(set(names)) == 4

    def test_batch_matches_individual(self):
        batch = generate_batch(PAPER_SPEC, count=2, base_seed=3)
        solo = generate_task_graph(PAPER_SPEC, seed=4)
        assert [t.wcet for t in batch[1]] == [t.wcet for t in solo]
