"""Unit tests for repro.core.selection (frontiers and rules)."""

import pytest

from repro.core import (
    DepthBiasedLLBSelection,
    FIFOSelection,
    LIFOSelection,
    LLBSelection,
    SELECTION_RULES,
    Vertex,
)
from repro.core.state import root_state
from repro.model import compile_problem, shared_bus_platform

from conftest import make_diamond


@pytest.fixture
def verts():
    prob = compile_problem(make_diamond(), shared_bus_platform(2))
    st = root_state(prob)
    return [Vertex(st, lb, i) for i, lb in enumerate([5.0, 1.0, 3.0, 1.0, 9.0])]


class TestLIFO:
    def test_pop_order_is_stack(self, verts):
        f = LIFOSelection().make_frontier()
        for v in verts:
            f.push(v)
        assert [f.pop().seq for _ in range(5)] == [4, 3, 2, 1, 0]
        assert f.pop() is None

    def test_len_and_bool(self, verts):
        f = LIFOSelection().make_frontier()
        assert not f
        f.push(verts[0])
        assert len(f) == 1 and f

    def test_prune_above(self, verts):
        f = LIFOSelection().make_frontier()
        for v in verts:
            f.push(v)
        pruned = f.prune_above(3.0)
        assert pruned == 3  # 5.0, 3.0 (>=), 9.0
        assert sorted(v.lower_bound for v in iter(f.pop, None)) == [1.0, 1.0]

    def test_drop_worst(self, verts):
        f = LIFOSelection().make_frontier()
        for v in verts:
            f.push(v)
        dropped = f.drop_worst(2)
        assert dropped == 2
        remaining = [f.pop().lower_bound for _ in range(3)]
        assert sorted(remaining) == [1.0, 1.0, 3.0]

    def test_drop_worst_zero(self, verts):
        f = LIFOSelection().make_frontier()
        f.push(verts[0])
        assert f.drop_worst(0) == 0
        assert len(f) == 1


class TestFIFO:
    def test_pop_order_is_queue(self, verts):
        f = FIFOSelection().make_frontier()
        for v in verts:
            f.push(v)
        assert [f.pop().seq for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_prune_preserves_order(self, verts):
        f = FIFOSelection().make_frontier()
        for v in verts:
            f.push(v)
        f.prune_above(4.0)
        assert [f.pop().seq for _ in range(3)] == [1, 2, 3]


class TestLLB:
    def test_pop_order_is_least_bound(self, verts):
        f = LLBSelection().make_frontier()
        for v in verts:
            f.push(v)
        popped = [f.pop() for _ in range(5)]
        assert [v.lower_bound for v in popped] == [1.0, 1.0, 3.0, 5.0, 9.0]
        # Equal bounds break ties by generation order (seq).
        assert popped[0].seq == 1 and popped[1].seq == 3

    def test_push_at_or_above_threshold_rejected(self, verts):
        f = LLBSelection().make_frontier()
        f.prune_above(4.0)
        for v in verts:
            f.push(v)
        assert len(f) == 3
        assert f.pop().lower_bound == 1.0

    def test_lazy_prune_reports_and_hides(self, verts):
        f = LLBSelection().make_frontier()
        for v in verts:
            f.push(v)
        assert f.prune_above(3.0) == 3
        assert len(f) == 2
        # Tightening twice only counts newly dead vertices (the two
        # lb=1.0 survivors; the stale >=3.0 entries are not re-counted).
        assert f.prune_above(1.0) == 2
        assert len(f) == 0
        assert f.pop() is None

    def test_loosening_threshold_is_noop(self, verts):
        f = LLBSelection().make_frontier()
        for v in verts:
            f.push(v)
        f.prune_above(3.0)
        assert f.prune_above(100.0) == 0
        assert len(f) == 2

    def test_drop_worst(self, verts):
        f = LLBSelection().make_frontier()
        for v in verts:
            f.push(v)
        assert f.drop_worst(2) == 2
        assert [f.pop().lower_bound for _ in range(3)] == [1.0, 1.0, 3.0]

    def test_compaction_preserves_content(self, verts):
        f = LLBSelection().make_frontier()
        for i in range(100):
            f.push(Vertex(verts[0].state, float(i), 100 + i))
        f.prune_above(10.0)
        assert len(f) == 10
        assert [f.pop().lower_bound for _ in range(10)] == list(map(float, range(10)))


class TestDepthBiasedLLB:
    def test_pops_least_bound_first(self, verts):
        f = DepthBiasedLLBSelection().make_frontier()
        for v in verts:
            f.push(v)
        assert [f.pop().lower_bound for _ in range(5)] == [1.0, 1.0, 3.0, 5.0, 9.0]

    def test_ties_prefer_deeper_vertices(self):
        from repro.core import root_state
        from repro.model import compile_problem, shared_bus_platform
        from conftest import make_diamond

        prob = compile_problem(make_diamond(), shared_bus_platform(2))
        shallow = root_state(prob)
        deep = shallow.child(prob.index["src"], 0)
        f = DepthBiasedLLBSelection().make_frontier()
        f.push(Vertex(shallow, 1.0, 0))
        f.push(Vertex(deep, 1.0, 1))
        assert f.pop().level == 1  # the deeper vertex wins the tie
        assert f.pop().level == 0

    def test_prune_and_drop(self, verts):
        f = DepthBiasedLLBSelection().make_frontier()
        for v in verts:
            f.push(v)
        assert f.prune_above(3.0) == 3
        assert len(f) == 2
        assert f.drop_worst(1) == 1
        assert f.pop().lower_bound == 1.0

    def test_stop_on_bound(self):
        assert DepthBiasedLLBSelection().stop_on_bound


class TestRuleMetadata:
    def test_stop_on_bound_flags(self):
        assert LLBSelection().stop_on_bound
        assert not LIFOSelection().stop_on_bound
        assert not FIFOSelection().stop_on_bound

    def test_registry(self):
        assert set(SELECTION_RULES) == {"LLB", "LLB-D", "LIFO", "FIFO", "ML"}
        for cls in SELECTION_RULES.values():
            f = cls().make_frontier()
            assert len(f) == 0
