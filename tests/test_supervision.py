"""Fault-injection tests for the supervised parallel drivers.

``FaultPlan`` lets a test kill, wedge, or mid-flight-crash a worker at
a chosen ⟨shard, attempt⟩ without patching any engine code; the suite
drives both modes through their recovery paths and holds them to the
headline contract: an injected crash costs at most a bounded retry and
never loses the incumbent.
"""

from __future__ import annotations

import pytest

from faultlib import hard_problem
from repro.core import (
    BnBParameters,
    BranchAndBound,
    ParallelBnB,
    ResourceBounds,
    SolveStatus,
)
from repro.core.parallel import FaultPlan, ShardFault
from repro.errors import (
    ConfigurationError,
    ResourceLimitExceeded,
    WorkerCrashed,
)
from repro.obs import MemorySink, MetricsRegistry, Observability

PROBLEM = hard_problem(seed=0)
PARAMS = BnBParameters()
SEQ = BranchAndBound(PARAMS).solve(PROBLEM)

#: Fast backoff so retry tests don't sleep their way through CI.
FAST = dict(retry_backoff=0.001)


# ---------------------------------------------------------------------------
# The injection plumbing itself
# ---------------------------------------------------------------------------


class TestFaultPlan:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ConfigurationError, match="fault kind"):
            ShardFault("explode")

    def test_match_is_exact_on_attempt(self):
        plan = FaultPlan((ShardFault("crash", shard=2, attempt=1),))
        assert plan.match(2, 1) is not None
        assert plan.match(2, 2) is None
        assert plan.match(3, 1) is None

    def test_wildcard_shard_matches_everything(self):
        plan = FaultPlan((ShardFault("crash", shard=-1, attempt=2),))
        assert plan.match(0, 2) is not None
        assert plan.match(99, 2) is not None
        assert plan.match(0, 1) is None

    def test_constructor_validation(self):
        with pytest.raises(ConfigurationError):
            ParallelBnB(PARAMS, workers=2, max_shard_attempts=0)
        with pytest.raises(ConfigurationError):
            ParallelBnB(PARAMS, workers=2, retry_backoff=-0.1)
        with pytest.raises(ConfigurationError):
            ParallelBnB(PARAMS, workers=2, heartbeat_timeout=0.0)


# ---------------------------------------------------------------------------
# Throughput mode: supervised workers
# ---------------------------------------------------------------------------


def _throughput(fault_plan, **kwargs):
    defaults = dict(
        workers=2, split_depth=2, deterministic=False, fault_plan=fault_plan
    )
    defaults.update(FAST)
    defaults.update(kwargs)
    return ParallelBnB(PARAMS, **defaults)


class TestThroughputSupervision:
    def test_crash_on_first_attempt_retries_once_and_recovers(self):
        # Every shard's first attempt dies before searching; the retry
        # (attempt 2) is clean.  Cost parity with the sequential run
        # proves no shard — and no incumbent — was lost.
        solver = _throughput(FaultPlan((ShardFault("crash", attempt=1),)))
        result = solver.solve(PROBLEM)
        report = solver.last_report
        assert result.status is SolveStatus.OPTIMAL
        assert result.best_cost == SEQ.best_cost
        assert report.shard_retries == report.shards - report.shards_stale
        assert report.worker_restarts >= report.shard_retries
        assert report.quarantined == ()
        result.schedule().validate()

    def test_single_shard_crash_costs_exactly_one_retry(self):
        solver = _throughput(
            FaultPlan((ShardFault("crash", shard=0, attempt=1),))
        )
        result = solver.solve(PROBLEM)
        report = solver.last_report
        assert result.status is SolveStatus.OPTIMAL
        assert result.best_cost == SEQ.best_cost
        assert report.shard_retries == 1
        assert report.quarantined == ()

    def test_hung_worker_is_detected_and_replaced(self):
        solver = _throughput(
            FaultPlan((ShardFault("hang", shard=0, attempt=1),)),
            heartbeat_timeout=0.3,
        )
        result = solver.solve(PROBLEM)
        report = solver.last_report
        assert result.status is SolveStatus.OPTIMAL
        assert result.best_cost == SEQ.best_cost
        assert report.worker_restarts >= 1
        assert report.shard_retries == 1
        assert report.quarantined == ()

    def test_poison_shard_is_quarantined_not_looped_forever(self):
        # Shard 0 dies on every attempt: after max_shard_attempts the
        # supervisor gives up on it, finishes the rest, and refuses to
        # claim optimality for the incomplete search.
        plan = FaultPlan(
            tuple(
                ShardFault("crash", shard=0, attempt=a) for a in (1, 2, 3)
            )
        )
        solver = _throughput(plan, max_shard_attempts=3)
        result = solver.solve(PROBLEM)
        report = solver.last_report
        assert report.quarantined == (0,)
        assert report.shard_retries == 2
        assert result.status is SolveStatus.TRUNCATED
        # The incumbent survives: every other shard still contributed.
        assert result.found_solution
        result.schedule().validate()

    def test_events_and_metrics_record_the_recovery(self):
        sink = MemorySink()
        obs = Observability(sink=sink, metrics=MetricsRegistry())
        solver = _throughput(
            FaultPlan((ShardFault("crash", shard=0, attempt=1),)), obs=obs
        )
        solver.solve(PROBLEM)
        kinds = [k for k, _ in sink.events]
        assert "worker_restart" in kinds
        assert "shard_retry" in kinds
        restart = next(p for k, p in sink.events if k == "worker_restart")
        assert restart["shard"] == 0
        assert restart["attempt"] == 1
        assert obs.metrics.counter("bnb_worker_restart_total").value >= 1
        assert obs.metrics.counter("bnb_shard_retry_total").value >= 1

    def test_worker_resource_failure_propagates_not_retries(self):
        # A worker *raising* (fail_on_exhaustion) is a result, not a
        # crash: it must surface to the caller, not burn retries.
        params = PARAMS.evolve(
            resources=ResourceBounds(
                max_vertices=30, fail_on_exhaustion=True
            )
        )
        solver = ParallelBnB(
            params, workers=2, split_depth=2, deterministic=False, **FAST
        )
        with pytest.raises(ResourceLimitExceeded):
            solver.solve(PROBLEM)


# ---------------------------------------------------------------------------
# Deterministic mode: pool rebuild + exact re-runs
# ---------------------------------------------------------------------------


class TestDeterministicRecovery:
    def test_crash_recovery_preserves_bit_identical_replay(self):
        # Attempt 1 of every shard (speculative or exact) crashes the
        # pool; the rebuilt pool re-runs each shard exactly, so the
        # recovered run replays the sequential search to the vertex.
        solver = ParallelBnB(
            PARAMS,
            workers=2,
            split_depth=2,
            fault_plan=FaultPlan((ShardFault("crash", attempt=1),)),
        )
        result = solver.solve(PROBLEM)
        report = solver.last_report
        assert result.best_cost == SEQ.best_cost
        assert result.proc_of == SEQ.proc_of
        assert result.stats.generated == SEQ.stats.generated
        assert result.stats.explored == SEQ.stats.explored
        assert report.worker_restarts >= 1
        assert report.shard_retries >= 1

    def test_poison_shard_exhausts_attempts_and_raises(self):
        plan = FaultPlan(
            tuple(ShardFault("crash", attempt=a) for a in (1, 2, 3))
        )
        solver = ParallelBnB(
            PARAMS,
            workers=2,
            split_depth=2,
            max_shard_attempts=3,
            fault_plan=plan,
        )
        with pytest.raises(WorkerCrashed) as exc:
            solver.solve(PROBLEM)
        assert exc.value.attempts == 3


# ---------------------------------------------------------------------------
# Satellite: the anytime result attached to ResourceLimitExceeded
# ---------------------------------------------------------------------------


class TestPartialResult:
    def test_sequential_exhaustion_carries_the_incumbent(self):
        params = PARAMS.evolve(
            resources=ResourceBounds(
                max_vertices=100, fail_on_exhaustion=True
            )
        )
        with pytest.raises(ResourceLimitExceeded) as exc:
            BranchAndBound(params).solve(PROBLEM)
        partial = exc.value.partial
        assert partial is not None
        assert partial.found_solution
        assert partial.best_cost <= SEQ.initial_upper_bound
        partial.schedule().validate()

    def test_partial_is_dropped_across_process_boundaries(self):
        import pickle

        params = PARAMS.evolve(
            resources=ResourceBounds(
                max_vertices=100, fail_on_exhaustion=True
            )
        )
        with pytest.raises(ResourceLimitExceeded) as exc:
            BranchAndBound(params).solve(PROBLEM)
        clone = pickle.loads(pickle.dumps(exc.value))
        assert clone.which == exc.value.which
        assert clone.partial is None
