"""Unit tests for repro.core.branching."""

import pytest

from repro.core import (
    BF1Branching,
    BFnBranching,
    BRANCHING_RULES,
    DFBranching,
    FixedOrderBranching,
    root_state,
)
from repro.errors import ConfigurationError
from repro.model import Platform, Ring, compile_problem, shared_bus_platform

from conftest import make_diamond, make_forkjoin, make_independent


@pytest.fixture
def prob():
    return compile_problem(make_diamond(), shared_bus_platform(2))


class TestBFn:
    def test_all_ready_times_all_processors(self, prob):
        rule = BFnBranching().prepare(prob)
        st = root_state(prob).child(prob.index["src"], 0)
        placements = rule.placements(st)
        left, right = prob.index["left"], prob.index["right"]
        assert set(placements) == {(left, 0), (left, 1), (right, 0), (right, 1)}

    def test_root_expansion(self, prob):
        rule = BFnBranching().prepare(prob)
        src = prob.index["src"]
        assert set(rule.placements(root_state(prob))) == {(src, 0), (src, 1)}

    def test_guarantees_optimal_flag(self):
        assert BFnBranching().guarantees_optimal
        assert not DFBranching().guarantees_optimal
        assert not BF1Branching().guarantees_optimal

    def test_symmetry_breaking_collapses_empty_processors(self):
        prob3 = compile_problem(make_independent(3), shared_bus_platform(3))
        rule = BFnBranching().prepare(prob3)
        st = root_state(prob3)
        full = rule.placements(st, break_symmetry=False)
        collapsed = rule.placements(st, break_symmetry=True)
        assert len(full) == 9
        assert len(collapsed) == 3  # one empty-proc representative
        st1 = st.child(0, 0)
        collapsed1 = rule.placements(st1, break_symmetry=True)
        # p0 used, p1 represents both empty processors.
        assert {q for _, q in collapsed1} == {0, 1}

    def test_symmetry_breaking_skipped_on_nonuniform(self):
        # Ring(4) has non-uniform delays (opposite corners are 2 hops),
        # so empty processors are NOT interchangeable and the collapse
        # must be disabled.
        plat = Platform(num_processors=4, interconnect=Ring(4))
        prob4 = compile_problem(make_independent(3), plat)
        rule = BFnBranching().prepare(prob4)
        st = root_state(prob4)
        assert len(rule.placements(st, break_symmetry=True)) == 12


class TestFixedOrderRules:
    def test_df_follows_depth_first_order(self, prob):
        rule = DFBranching().prepare(prob)
        df = [prob.index[n] for n in prob.graph.depth_first_order()]
        st = root_state(prob)
        for expected in df:
            placements = rule.placements(st)
            tasks = {t for t, _ in placements}
            assert tasks == {expected}
            assert {q for _, q in placements} == {0, 1}
            st = st.child(expected, 0)

    def test_bf1_follows_level_order(self, prob):
        rule = BF1Branching().prepare(prob)
        lv = [prob.index[n] for n in prob.graph.level_order()]
        st = root_state(prob)
        for expected in lv:
            assert {t for t, _ in rule.placements(st)} == {expected}
            st = st.child(expected, 0)

    def test_fixed_order_by_names(self, prob):
        rule = FixedOrderBranching(["src", "right", "left", "sink"]).prepare(prob)
        st = root_state(prob)
        assert {t for t, _ in rule.placements(st)} == {prob.index["src"]}
        st = st.child(prob.index["src"], 0)
        assert {t for t, _ in rule.placements(st)} == {prob.index["right"]}

    def test_fixed_order_by_indices(self, prob):
        rule = FixedOrderBranching([0, 2, 1, 3]).prepare(prob)
        st = root_state(prob).child(0, 0)
        assert {t for t, _ in rule.placements(st)} == {2}

    def test_non_permutation_rejected(self, prob):
        with pytest.raises(ConfigurationError, match="permutation"):
            FixedOrderBranching([0, 0, 1, 2]).prepare(prob)

    def test_non_topological_order_detected_at_use(self, prob):
        rule = FixedOrderBranching(["sink", "src", "left", "right"]).prepare(prob)
        with pytest.raises(ConfigurationError, match="not topological"):
            rule.placements(root_state(prob))


class TestRegistry:
    def test_names(self):
        assert set(BRANCHING_RULES) == {"BFn", "BF1", "DF", "AO"}

    def test_single_task_rules_have_m_children(self):
        prob = compile_problem(make_forkjoin(3), shared_bus_platform(3))
        for name in ("DF", "BF1"):
            rule = BRANCHING_RULES[name]().prepare(prob)
            assert len(rule.placements(root_state(prob))) == 3
