"""Dedicated tests for the characteristic functions (``repro.core.feasibility``).

:class:`LatenessTargetFilter` turns the B&B into a feasibility search;
soundness here means it never discards the true optimum when the target
admits it.  Verified against the independent exhaustive oracle on seeded
DAGs: with a target at (or above) the optimum the engine must return a
schedule meeting it, and with a target strictly below the optimum it
must never *claim* one.
"""

from __future__ import annotations

import pytest

from repro.core import BnBParameters, BranchAndBound
from repro.core.feasibility import (
    CHARACTERISTIC_FUNCTIONS,
    LatenessTargetFilter,
    NoFilter,
)
from repro.core.state import root_state
from repro.model import compile_problem, shared_bus_platform
from repro.workload import WorkloadSpec, generate_task_graph

from oracle import oracle_optimum, oracle_schedule_cost

SPEC = WorkloadSpec(num_tasks=(4, 6), depth=(2, 4))
SEEDS = range(12)


def _problem(seed: int):
    graph = generate_task_graph(SPEC, seed=seed)
    m = 3 if len(graph) <= 4 else 2
    return compile_problem(graph, shared_bus_platform(m))


# ---------------------------------------------------------------------------
# Soundness against the independent oracle
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", SEEDS)
def test_target_at_optimum_is_reached(seed):
    """A target the oracle proves achievable must be achieved.

    The filter prunes on admissible lower bounds, so the optimal path is
    admitted all the way down; the search stops at the first incumbent
    meeting the target, which is therefore within ``[optimum, target]``.
    """
    problem = _problem(seed)
    optimum = oracle_optimum(problem)
    target = optimum + 1e-6
    params = BnBParameters(characteristic=LatenessTargetFilter(target))
    result = BranchAndBound(params).solve(problem)
    assert result.found_solution
    assert result.best_cost <= target + 1e-9
    assert result.best_cost >= optimum - 1e-9
    # The schedule is real, not just a reported number.
    assert oracle_schedule_cost(
        problem, result.proc_of, result.start
    ) == pytest.approx(result.best_cost, abs=1e-9)


@pytest.mark.parametrize("seed", SEEDS)
def test_unreachable_target_is_never_claimed(seed):
    """With the target strictly below the optimum, no schedule at or
    below it can exist — the engine must not fabricate one."""
    problem = _problem(seed)
    optimum = oracle_optimum(problem)
    target = optimum - 0.5
    params = BnBParameters(characteristic=LatenessTargetFilter(target))
    result = BranchAndBound(params).solve(problem)
    if result.found_solution:
        assert result.best_cost > target + 1e-9
        assert result.best_cost >= optimum - 1e-9


@pytest.mark.parametrize("seed", SEEDS)
def test_filter_stops_early_without_losing_validity(seed):
    """The feasibility search does no more work than full optimization,
    and whatever schedule it returns is valid."""
    problem = _problem(seed)
    optimum = oracle_optimum(problem)
    full = BranchAndBound(BnBParameters()).solve(problem)
    filtered = BranchAndBound(
        BnBParameters(characteristic=LatenessTargetFilter(optimum + 1e-6))
    ).solve(problem)
    assert filtered.stats.generated <= full.stats.generated
    if filtered.found_solution:
        filtered.schedule().validate()


# ---------------------------------------------------------------------------
# Unit behaviour
# ---------------------------------------------------------------------------


def test_no_filter_admits_everything():
    problem = _problem(0)
    f = NoFilter()
    assert f.admits_all is True
    assert f.early_stop_cost is None
    assert f.admits(root_state(problem), float("inf")) is True


def test_lateness_filter_admits_by_bound():
    problem = _problem(0)
    state = root_state(problem)
    f = LatenessTargetFilter(target=0.0)
    assert f.admits_all is False
    assert f.early_stop_cost == 0.0
    assert f.admits(state, -1.0) is True
    assert f.admits(state, 0.0) is True
    assert f.admits(state, 0.5) is False


def test_registry_exposes_both_functions():
    assert set(CHARACTERISTIC_FUNCTIONS) == {"none", "lateness-target"}
