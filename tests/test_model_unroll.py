"""Unit tests for repro.model.unroll."""

import pytest

from repro.errors import ModelError
from repro.model import Channel, Task, TaskGraph, hyperperiod, unroll


def periodic_pipeline() -> TaskGraph:
    g = TaskGraph(name="pipe")
    g.add_task(Task(name="p", wcet=1.0, relative_deadline=5.0, period=10.0))
    g.add_task(Task(name="q", wcet=2.0, relative_deadline=8.0, period=10.0))
    g.add_channel(Channel(src="p", dst="q", message_size=3.0))
    return g


class TestHyperperiod:
    def test_single_period(self):
        assert hyperperiod(periodic_pipeline()) == 10.0

    def test_lcm_of_distinct_periods(self):
        g = TaskGraph()
        g.add_task(Task(name="a", wcet=1.0, relative_deadline=4.0, period=4.0))
        g.add_task(Task(name="b", wcet=1.0, relative_deadline=6.0, period=6.0))
        assert hyperperiod(g) == 12.0

    def test_oneshot_graph_has_zero_hyperperiod(self):
        g = TaskGraph()
        g.add_task(Task(name="a", wcet=1.0))
        assert hyperperiod(g) == 0.0

    def test_float_periods_on_grid(self):
        g = TaskGraph()
        g.add_task(Task(name="a", wcet=0.1, relative_deadline=0.5, period=0.5))
        g.add_task(Task(name="b", wcet=0.1, relative_deadline=0.75, period=0.75))
        assert hyperperiod(g) == pytest.approx(1.5)


class TestUnroll:
    def test_oneshot_graph_passthrough(self):
        g = TaskGraph()
        g.add_task(Task(name="a", wcet=1.0))
        u = unroll(g)
        assert u.task_names == ["a"]

    def test_same_rate_pipeline_connects_indexwise(self):
        u = unroll(periodic_pipeline(), horizon=20.0)
        assert set(u.task_names) == {"p#1", "p#2", "q#1", "q#2"}
        assert u.has_channel("p#1", "q#1")
        assert u.has_channel("p#2", "q#2")
        assert not u.has_channel("p#1", "q#2")
        assert u.channel("p#1", "q#1").message_size == 3.0

    def test_invocation_chain_added(self):
        u = unroll(periodic_pipeline(), horizon=20.0)
        assert u.has_channel("p#1", "p#2")
        assert u.channel("p#1", "p#2").message_size == 0.0

    def test_invocation_chain_optional(self):
        u = unroll(periodic_pipeline(), horizon=20.0, chain_invocations=False)
        assert not u.has_channel("p#1", "p#2")

    def test_job_windows_shifted_by_period(self):
        u = unroll(periodic_pipeline(), horizon=20.0)
        p2 = u.task("p#2")
        assert p2.arrival(1) == 10.0
        assert p2.absolute_deadline(1) == 15.0
        assert not p2.is_periodic

    def test_rate_transition_fast_producer_slow_consumer(self):
        g = TaskGraph()
        g.add_task(Task(name="f", wcet=1.0, relative_deadline=5.0, period=5.0))
        g.add_task(Task(name="s", wcet=1.0, relative_deadline=10.0, period=10.0))
        g.add_channel(Channel(src="f", dst="s", message_size=1.0))
        u = unroll(g, horizon=20.0)
        # f has 4 jobs, s has 2.  s#2 (arrival 10) reads the freshest
        # producer job arrived by t=10: f#3.
        assert u.has_channel("f#1", "s#1")
        assert u.has_channel("f#3", "s#2")
        assert not u.has_channel("f#4", "s#2")

    def test_default_horizon_is_hyperperiod(self):
        u = unroll(periodic_pipeline())
        assert set(u.task_names) == {"p", "q"} or set(u.task_names) == {
            "p#1",
            "q#1",
        }

    def test_unrolled_graph_is_acyclic_and_valid(self):
        u = unroll(periodic_pipeline(), horizon=30.0)
        u.validate()
        assert len(u) == 6

    def test_bad_horizon_rejected(self):
        with pytest.raises(ModelError, match="horizon"):
            unroll(periodic_pipeline(), horizon=-1.0)

    def test_mixed_periodic_and_oneshot(self):
        g = periodic_pipeline()
        g.add_task(Task(name="init", wcet=1.0))
        g.add_channel(Channel(src="init", dst="p", message_size=0.0))
        u = unroll(g, horizon=20.0)
        assert "init" in u
        # The one-shot feeds the first invocation (and via chaining,
        # transitively all).
        assert u.has_channel("init", "p#1")
