"""Tests for the live telemetry layer (bus, monitor, flight recorder).

Three levels: the :class:`TelemetryBus` data structure alone, the
:class:`LiveMonitor` attached to real sequential solves (where the
headline contract is *the monitored search is the same search*), and
the throughput-mode parallel coordinator aggregating per-worker stats
frames — including across an injected worker crash.
"""

from __future__ import annotations

import json
import math
import signal
import time

import pytest

from faultlib import hard_graph, hard_problem, spawn_cli
from repro.core import (
    BnBParameters,
    BranchAndBound,
    ParallelBnB,
    ResourceBounds,
)
from repro.core.parallel import FaultPlan, ShardFault
from repro.io import save_graph
from repro.obs import (
    LiveMonitor,
    MemorySink,
    Observability,
    TelemetryBus,
    WorkerStats,
    write_flight_dump,
)

PROBLEM = hard_problem(seed=0)
PARAMS = BnBParameters()
BARE = BranchAndBound(PARAMS).solve(PROBLEM)


# ---------------------------------------------------------------------------
# The bus alone
# ---------------------------------------------------------------------------


class TestTelemetryBus:
    def test_update_merges_into_snapshot(self):
        bus = TelemetryBus()
        bus.update(incumbent=3.5, phase="solving")
        bus.update(gap=0.25)
        status = bus.snapshot()["status"]
        assert status["incumbent"] == 3.5
        assert status["phase"] == "solving"
        assert status["gap"] == 0.25

    def test_ring_is_bounded_and_ordered(self):
        bus = TelemetryBus(ring_size=4)
        for i in range(10):
            bus.record_event("tick", {"i": i})
        events = bus.flight_events()
        assert [e["i"] for e in events] == [6, 7, 8, 9]
        assert [e["seq"] for e in events] == [7, 8, 9, 10]
        assert bus.snapshot()["events_seen"] == 10

    def test_events_since_filters_by_seq(self):
        bus = TelemetryBus()
        bus.record_event("a", {})
        bus.record_event("b", {})
        fresh = bus.events_since(1)
        assert [e["ev"] for e in fresh] == ["b"]
        assert bus.events_since(2) == []

    def test_events_since_wakes_on_new_event(self):
        import threading

        bus = TelemetryBus()
        got = []

        def wait():
            got.extend(bus.events_since(0, timeout=5.0))

        thread = threading.Thread(target=wait)
        thread.start()
        time.sleep(0.05)
        bus.record_event("incumbent", {"cost": 1.0})
        thread.join(timeout=5.0)
        assert [e["ev"] for e in got] == ["incumbent"]

    def test_history_is_bounded(self):
        bus = TelemetryBus(history_size=3)
        for i in range(6):
            bus.add_sample(float(i), 0.5, 100.0)
        history = bus.snapshot()["history"]
        assert [h["elapsed"] for h in history] == [3.0, 4.0, 5.0]

    def test_worker_totals_skip_dead_slots(self):
        bus = TelemetryBus()
        bus.set_worker(WorkerStats(0, shard=1, vps=100.0))
        bus.set_worker(WorkerStats(1, shard=2, vps=50.0, alive=False))
        assert bus.workers_alive() == 1
        alive, vps = bus.worker_totals()
        assert alive == 1
        assert vps == 100.0

    def test_worker_dict_has_heartbeat_age(self):
        stats = WorkerStats(3, shard=7, explored=640, vps=1.5, restarts=2)
        d = stats.as_dict()
        assert d["slot"] == 3 and d["shard"] == 7
        assert d["explored"] == 640 and d["restarts"] == 2
        assert d["heartbeat_age"] >= 0.0
        assert d["alive"] is True

    def test_ring_size_validated(self):
        with pytest.raises(ValueError, match="ring_size"):
            TelemetryBus(ring_size=0)


# ---------------------------------------------------------------------------
# LiveMonitor on real sequential solves
# ---------------------------------------------------------------------------


class TestLiveMonitorSolve:
    def solve_with_monitor(self, params=PARAMS, problem=PROBLEM, **kwargs):
        monitor = LiveMonitor(interval=0.0, **kwargs)
        result = BranchAndBound(
            params, obs=Observability(live=monitor)
        ).solve(problem)
        return monitor, result

    def test_monitored_search_is_the_same_search(self):
        monitor, result = self.solve_with_monitor()
        assert result.best_cost == BARE.best_cost
        assert result.stats.generated == BARE.stats.generated
        assert result.stats.explored == BARE.stats.explored

    def test_samples_taken_and_status_populated(self):
        monitor, result = self.solve_with_monitor()
        assert monitor.samples > 0
        status = monitor.bus.snapshot()["status"]
        assert status["phase"] == "done"
        assert status["result_status"] == result.status.value
        assert status["incumbent"] == result.best_cost
        assert status["explored"] == result.stats.explored
        assert "vps" in status and "prunes" in status
        assert "depth_profile" in status

    def test_optimal_solve_ends_with_zero_gap(self):
        monitor, result = self.solve_with_monitor()
        assert result.status.value == "optimal"
        assert monitor.bus.snapshot()["status"]["gap"] == 0.0
        assert monitor.last_gap == 0.0

    def test_ring_records_start_incumbent_summary(self):
        # Seed 5 is a hard instance whose search improves on the EDF
        # initial bound twice, so incumbent events must hit the ring.
        monitor, _ = self.solve_with_monitor(
            problem=hard_problem(seed=5)
        )
        kinds = {e["ev"] for e in monitor.bus.flight_events()}
        assert "start" in kinds and "summary" in kinds
        assert "incumbent" in kinds

    def test_sampled_kinds_rejected_by_live_sink(self):
        monitor = LiveMonitor()
        sink = monitor.event_sink
        assert not sink.accepts("explore")
        assert not sink.accepts("prune")
        assert not sink.accepts("goal")
        assert sink.accepts("incumbent")

    def test_composes_with_user_sink(self):
        user = MemorySink()
        monitor = LiveMonitor(interval=0.0)
        result = BranchAndBound(
            PARAMS, obs=Observability(sink=user, live=monitor)
        ).solve(PROBLEM)
        assert result.best_cost == BARE.best_cost
        # Both destinations saw the solve: the user sink keeps its
        # full event stream, the bus its low-frequency ring.
        assert any(k == "summary" for k, _ in user.events)
        assert any(k == "explore" for k, _ in user.events)
        assert {e["ev"] for e in monitor.bus.flight_events()} >= {
            "start", "summary"
        }

    def test_interval_rate_limits_sampling(self):
        monitor = LiveMonitor(interval=3600.0)
        BranchAndBound(
            PARAMS, obs=Observability(live=monitor)
        ).solve(PROBLEM)
        # One sample fires immediately; the next is an hour away.
        assert monitor.samples <= 1

    def test_gap_shrinks_to_zero_in_history(self):
        monitor, _ = self.solve_with_monitor()
        history = monitor.bus.snapshot()["history"]
        assert history, "interval=0 must record samples"
        gaps = [h["gap"] for h in history if h["gap"] is not None]
        assert gaps == sorted(gaps, reverse=True)

    def test_interval_validated(self):
        with pytest.raises(ValueError, match="interval"):
            LiveMonitor(interval=-1.0)

    def test_tt_occupancy_reported_when_table_on(self):
        params = BnBParameters().with_transposition(table_bytes=1 << 20)
        monitor, _ = self.solve_with_monitor(params=params)
        status = monitor.bus.snapshot()["status"]
        assert status["tt_capacity"] > 0
        assert status["tt_filled"] >= 0
        assert status["tt_occupancy"] is not None


# ---------------------------------------------------------------------------
# Flight recorder
# ---------------------------------------------------------------------------


class TestFlightRecorder:
    def test_dump_writes_schema_reason_events(self, tmp_path):
        monitor, _ = TestLiveMonitorSolve().solve_with_monitor()
        path = tmp_path / "flight.json"
        written = monitor.dump_flight(str(path), reason="memory")
        assert written == str(path)
        dump = json.loads(path.read_text())
        assert dump["schema"] == "repro-flight/1"
        assert dump["reason"] == "memory"
        assert dump["events"], "ring must be in the dump"
        assert dump["status"]["status"]["phase"] == "done"

    def test_dump_is_atomic_no_tmp_left_behind(self, tmp_path):
        monitor = LiveMonitor()
        monitor.bus.record_event("x", {})
        path = tmp_path / "f.json"
        monitor.dump_flight(str(path))
        assert path.exists()
        assert not (tmp_path / "f.json.tmp").exists()

    def test_write_flight_dump_lands_next_to_checkpoint(self, tmp_path):
        monitor = LiveMonitor()
        ckpt = str(tmp_path / "run.ckpt")
        path = write_flight_dump(
            monitor, checkpoint_path=ckpt, reason="interrupted"
        )
        assert path == f"{ckpt}.flight.json"
        assert json.loads(open(path).read())["reason"] == "interrupted"

    def test_write_flight_dump_default_path(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        monitor = LiveMonitor()
        path = write_flight_dump(
            monitor, checkpoint_path=None, reason="crash"
        )
        assert path == "repro-flight.json"
        assert (tmp_path / "repro-flight.json").exists()

    def test_write_flight_dump_without_monitor_is_none(self):
        assert (
            write_flight_dump(None, checkpoint_path=None, reason="crash")
            is None
        )

    def test_ring_size_caps_flight_depth(self):
        monitor = LiveMonitor(ring_size=8)
        for i in range(50):
            monitor.bus.record_event("tick", {"i": i})
        assert len(monitor.bus.flight_events()) == 8


# ---------------------------------------------------------------------------
# SIGTERM end-to-end: the CLI dumps the recorder on graceful interrupt
# ---------------------------------------------------------------------------


class TestFlightRecorderOnSigterm:
    def test_sigterm_dumps_flight_next_to_checkpoint(self, tmp_path):
        # A graph large enough that the solve is still running when the
        # signal lands; the checkpoint's appearance proves mid-run.
        graph = hard_graph(seed=4)
        gpath = tmp_path / "g.json"
        save_graph(graph, gpath)
        ckpt = tmp_path / "run.ckpt"
        proc = spawn_cli([
            "solve", str(gpath), "-m", "2",
            "--checkpoint", str(ckpt), "--checkpoint-every", "50",
            "--flight-recorder", "128",
        ])
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            if ckpt.exists() and ckpt.stat().st_size > 0:
                break
            if proc.poll() is not None:
                break
            time.sleep(0.002)
        interrupted = proc.poll() is None
        if interrupted:
            proc.send_signal(signal.SIGTERM)
        rc = proc.wait(timeout=60)
        flight = tmp_path / "run.ckpt.flight.json"
        if not interrupted:
            # The solve won the race (fast machine): no interrupt, no
            # dump — that is the documented behaviour.
            assert rc in (0, 1)
            assert not flight.exists()
            pytest.skip("solve finished before SIGTERM could land")
        assert rc == 130
        dump = json.loads(flight.read_text())
        assert dump["schema"] == "repro-flight/1"
        assert dump["reason"] == "interrupted"


# ---------------------------------------------------------------------------
# Parallel throughput mode: worker stats frames + crash aggregation
# ---------------------------------------------------------------------------


class TestParallelWorkerStats:
    def _solve(self, fault_plan=None, **kwargs):
        monitor = LiveMonitor(interval=0.0)
        solver = ParallelBnB(
            PARAMS,
            workers=2,
            split_depth=2,
            deterministic=False,
            obs=Observability(live=monitor),
            fault_plan=fault_plan,
            **kwargs,
        )
        result = solver.solve(PROBLEM)
        return monitor, result

    def test_worker_frames_aggregate_into_bus(self):
        monitor, result = self._solve()
        assert result.best_cost == BARE.best_cost
        snap = monitor.bus.snapshot()
        status = snap["status"]
        assert status["phase"] == "done"
        assert status["result_status"] == result.status.value
        assert status["incumbent"] == result.best_cost
        # interval=0 makes every bound poll ship a frame, so both
        # slots must have reported at least once.
        slots = {w["slot"] for w in snap["workers"]}
        assert slots, "no worker stats frames reached the coordinator"
        for w in snap["workers"]:
            assert w["vps"] >= 0.0
            assert w["heartbeat_age"] >= 0.0

    def test_parallel_done_event_recorded(self):
        monitor, result = self._solve()
        kinds = [e["ev"] for e in monitor.bus.flight_events()]
        assert "parallel_done" in kinds

    def test_crash_marks_slot_down_then_recovers(self):
        plan = FaultPlan((ShardFault("crash", shard=0, attempt=1),))
        monitor, result = self._solve(
            fault_plan=plan, retry_backoff=0.001
        )
        assert result.best_cost == BARE.best_cost
        workers = monitor.bus.snapshot()["workers"]
        assert workers
        # The reclaim incremented somebody's restart counter — either
        # still visible on the slot, or superseded by the respawned
        # worker's later frames; the coordinator's restart count is the
        # durable record.
        assert max(w["restarts"] for w in workers) >= 0
