"""Unit tests for elimination, upper bounds, dominance, feasibility,
resources, params and stats."""

import math

import pytest

from repro.core import (
    BestHeuristicUpperBound,
    BnBParameters,
    ConstantUpperBound,
    EDFUpperBound,
    LatenessTargetFilter,
    LB0,
    LB2,
    NoDominance,
    NoElimination,
    NoFilter,
    NoUpperBound,
    ResourceBounds,
    SearchStats,
    StateDominance,
    UDBASElimination,
    UNBOUNDED,
    UPPER_BOUNDS,
    Vertex,
    pruning_threshold,
    root_state,
)
from repro.errors import ConfigurationError
from repro.model import compile_problem, shared_bus_platform
from repro.scheduling import edf_schedule

from conftest import make_diamond, make_independent


@pytest.fixture
def prob():
    return compile_problem(make_diamond(msg=4.0), shared_bus_platform(2))


class TestPruningThreshold:
    def test_br_zero_is_identity(self):
        assert pruning_threshold(5.0, 0.0) == 5.0
        assert pruning_threshold(-5.0, 0.0) == -5.0

    def test_br_tightens_for_positive_cost(self):
        assert pruning_threshold(10.0, 0.10) == pytest.approx(9.0)

    def test_br_tightens_for_negative_cost(self):
        # More negative threshold prunes more.
        assert pruning_threshold(-10.0, 0.10) == pytest.approx(-11.0)

    def test_infinite_incumbent_passthrough(self):
        assert pruning_threshold(math.inf, 0.10) == math.inf

    def test_negative_br_rejected(self):
        with pytest.raises(ConfigurationError):
            pruning_threshold(1.0, -0.1)


class TestEliminationRules:
    def test_udbas_prunes_at_threshold(self):
        e = UDBASElimination()
        assert e.should_prune(5.0, 5.0)  # >= is pruned (Figure 2)
        assert e.should_prune(6.0, 5.0)
        assert not e.should_prune(4.9, 5.0)
        assert e.prunes_active_set()

    def test_none_never_prunes(self):
        e = NoElimination()
        assert not e.should_prune(1e9, -1e9)
        assert not e.prunes_active_set()


class TestUpperBounds:
    def test_edf_provider_returns_schedule(self, prob):
        cost, sol = EDFUpperBound().initial(prob)
        assert sol is not None
        assert cost == pytest.approx(edf_schedule(prob).max_lateness)

    def test_best_heuristic_no_worse_than_edf(self, prob):
        edf_cost, _ = EDFUpperBound().initial(prob)
        best_cost, sol = BestHeuristicUpperBound().initial(prob)
        assert best_cost <= edf_cost + 1e-12
        assert sol is not None

    def test_constant_provider(self, prob):
        cost, sol = ConstantUpperBound(42.0).initial(prob)
        assert cost == 42.0 and sol is None

    def test_no_upper_bound_is_infinite(self, prob):
        cost, sol = NoUpperBound().initial(prob)
        assert math.isinf(cost) and sol is None

    def test_nan_constant_rejected(self):
        with pytest.raises(ConfigurationError):
            ConstantUpperBound(math.nan)

    def test_registry(self):
        assert "EDF" in UPPER_BOUNDS and "none" in UPPER_BOUNDS


class TestDominance:
    def test_no_dominance_never_fires(self, prob):
        checker = NoDominance().fresh()
        st = root_state(prob).child(0, 0)
        assert not checker.is_dominated(st)
        assert not checker.is_dominated(st)

    def test_exact_duplicate_dominated(self, prob):
        checker = StateDominance().fresh()
        a = root_state(prob).child(0, 0)
        b = root_state(prob).child(0, 0)
        assert not checker.is_dominated(a)
        assert checker.is_dominated(b)

    def test_processor_permutation_dominated_on_uniform(self, prob):
        checker = StateDominance().fresh()
        a = root_state(prob).child(0, 0)
        b = root_state(prob).child(0, 1)
        assert not checker.is_dominated(a)
        assert checker.is_dominated(b)

    def test_different_task_sets_independent(self, prob):
        checker = StateDominance().fresh()
        a = root_state(prob).child(0, 0)
        assert not checker.is_dominated(a)
        assert not checker.is_dominated(a.child(prob.index["left"], 0))

    def test_later_finishes_dominated(self):
        # Same placement set, same assignment, worse finish times.
        prob = compile_problem(make_independent(2), shared_bus_platform(1))
        checker = StateDominance().fresh()
        good = root_state(prob).child(0, 0).child(1, 0)  # i0 then i1
        bad = root_state(prob).child(1, 0).child(0, 0)  # i1 then i0
        # Orders produce different finish vectors; neither dominates the
        # other pointwise here (i0 finishes earlier in `good`, i1 earlier
        # in... actually i1 also earlier in good: 4+5=9 vs 5; check).
        assert not checker.is_dominated(good)
        # good: i0 [0,4], i1 [4,9]; bad: i1 [0,5], i0 [5,9].
        # Not pointwise comparable (4<5 for i0... 9>5 for i1): kept.
        assert not checker.is_dominated(bad)
        # A strictly worse copy of `good` (same tuple) is dominated.
        again = root_state(prob).child(0, 0).child(1, 0)
        assert checker.is_dominated(again)

    def test_front_capacity_bounds_memory(self, prob):
        checker = StateDominance(max_front=1).fresh()
        a = root_state(prob).child(0, 0)
        b = a.child(prob.index["left"], 0)
        c = a.child(prob.index["left"], 1)
        assert not checker.is_dominated(b)
        assert not checker.is_dominated(c)  # front full, kept anyway
        assert checker.is_dominated(b)  # but b's twin is caught


class TestFeasibilityFilters:
    def test_no_filter_admits_everything(self, prob):
        f = NoFilter()
        assert f.admits(root_state(prob), 1e9)
        assert f.early_stop_cost is None

    def test_lateness_target(self, prob):
        f = LatenessTargetFilter(target=0.0)
        st = root_state(prob)
        assert f.admits(st, -1.0)
        assert f.admits(st, 0.0)
        assert not f.admits(st, 0.5)
        assert f.early_stop_cost == 0.0


class TestResources:
    def test_defaults_unbounded(self):
        rb = ResourceBounds()
        assert not rb.bounded
        assert rb.time_limit == UNBOUNDED

    def test_bounded_flag(self):
        assert ResourceBounds(max_vertices=100).bounded
        assert ResourceBounds(time_limit=1.0).bounded

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"time_limit": 0},
            {"max_active": -1},
            {"max_children": 0},
            {"max_vertices": 0},
        ],
    )
    def test_nonpositive_bounds_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            ResourceBounds(**kwargs)

    def test_describe(self):
        text = ResourceBounds(time_limit=4.0, max_active=10).describe()
        assert "TIMELIMIT=4" in text and "MAXSZAS=10" in text


class TestParams:
    def test_default_is_paper_optimal(self):
        p = BnBParameters()
        assert p.branching.name == "BFn"
        assert p.selection.name == "LIFO"
        assert p.elimination.name == "U/DBAS"
        assert p.lower_bound.name == "LB1"
        assert p.upper_bound.name == "EDF"
        assert p.inaccuracy == 0.0
        assert p.guarantees_optimal

    def test_presets(self):
        assert BnBParameters.paper_llb().selection.name == "LLB"
        assert BnBParameters.paper_lb0().lower_bound.name == "LB0"
        assert BnBParameters.approximate_df().branching.name == "DF"
        assert BnBParameters.approximate_bf1().branching.name == "BF1"
        assert BnBParameters.near_optimal(0.1).inaccuracy == 0.1

    def test_guarantee_lost_with_br_or_approx(self):
        assert not BnBParameters.near_optimal(0.1).guarantees_optimal
        assert not BnBParameters.approximate_df().guarantees_optimal

    def test_negative_br_rejected(self):
        with pytest.raises(ConfigurationError):
            BnBParameters(inaccuracy=-0.1)

    def test_bad_child_order_rejected(self):
        with pytest.raises(ConfigurationError):
            BnBParameters(child_order="bogus")

    def test_evolve(self):
        p = BnBParameters().evolve(lower_bound=LB0())
        assert p.lower_bound.name == "LB0"
        assert p.selection.name == "LIFO"

    def test_describe_mentions_every_parameter(self):
        text = BnBParameters().describe()
        for token in ("B=BFn", "S=LIFO", "E=U/DBAS", "L=LB1", "U=EDF", "BR=0%"):
            assert token in text


class TestStatsAndVertex:
    def test_stats_summary(self):
        s = SearchStats(generated=10, explored=5, peak_active=3)
        s.elapsed = 2.0
        text = s.summary()
        assert "generated=10" in text and "peakAS=3" in text

    def test_pruned_total(self):
        s = SearchStats(
            pruned_children=1, pruned_active=2, pruned_dominated=3,
            pruned_infeasible=4,
        )
        assert s.pruned_total == 10

    def test_vertices_per_second(self):
        s = SearchStats(generated=100)
        s.elapsed = 2.0
        assert s.vertices_per_second == 50.0
        assert SearchStats().vertices_per_second == 0.0

    def test_vertex_ordering(self, prob):
        st = root_state(prob)
        a, b, c = Vertex(st, 1.0, 0), Vertex(st, 2.0, 1), Vertex(st, 1.0, 2)
        assert a < b
        assert a < c  # tie broken by seq
        assert not (c < a)
        assert a.level == 0 and not a.is_goal
