"""Unit tests for repro.io.stg (Standard Task Graph format)."""

import pytest

from repro.errors import SerializationError
from repro.io import format_stg, load_stg, parse_stg, save_stg
from repro.workload import generate_task_graph, tiny_spec

from conftest import make_diamond

CANONICAL = """\
6
0 0 0
1 10 1 0
2 20 1 1
3 30 1 1
4 5 2 2 3
5 0 1 4
"""


class TestParse:
    def test_canonical_with_dummies(self):
        g = parse_stg(CANONICAL)
        # Dummy entry (0) and exit (5) dropped.
        assert sorted(g.task_names) == ["n1", "n2", "n3", "n4"]
        assert g.task("n2").wcet == 20.0
        assert g.has_channel("n1", "n2")
        assert g.has_channel("n2", "n4")
        assert g.has_channel("n3", "n4")
        assert g.input_tasks == ["n1"]
        assert g.output_tasks == ["n4"]

    def test_dummy_collapse_preserves_precedence(self):
        # Two roots joined through a dummy entry node.
        text = """\
4
0 0 0
1 5 1 0
2 5 1 0
3 0 2 1 2
"""
        g = parse_stg(text)
        assert sorted(g.task_names) == ["n1", "n2"]
        assert g.num_arcs == 0  # dummy exit dropped; no real precedence

    def test_dummy_in_middle_collapsed_transitively(self):
        text = """\
3
0 5 0
1 0 1 0
2 5 1 1
"""
        g = parse_stg(text)
        assert sorted(g.task_names) == ["n0", "n2"]
        assert g.has_channel("n0", "n2")

    def test_keep_dummies(self):
        g = parse_stg(CANONICAL, keep_dummies_as=0.5)
        assert len(g) == 6
        assert g.task("n0").wcet == 0.5

    def test_comments_and_blank_lines_ignored(self):
        g = parse_stg("# header\n\n2\n0 3 0\n1 4 1 0  # edge\n")
        assert sorted(g.task_names) == ["n0", "n1"]

    @pytest.mark.parametrize(
        "text,match",
        [
            ("", "empty"),
            ("abc", "task count"),
            ("1\n0 1", "malformed"),
            ("1\n0 1 2 0", "predecessors"),
            ("2\n0 1 0\n0 1 0", "duplicate"),
            ("1\n0 1 1 9", "unknown predecessor"),
        ],
    )
    def test_malformed_rejected(self, text, match):
        with pytest.raises(SerializationError, match=match):
            parse_stg(text)

    def test_wrong_count_rejected(self):
        with pytest.raises(SerializationError, match="declares"):
            parse_stg("5\n0 1 0\n")

    def test_nonpositive_keep_dummies_rejected(self):
        with pytest.raises(SerializationError, match="positive"):
            parse_stg(CANONICAL, keep_dummies_as=0.0)


class TestFormat:
    def test_canonical_output_shape(self, diamond):
        text = format_stg(diamond)
        lines = text.strip().splitlines()
        assert lines[0] == "6"  # 4 tasks + 2 dummies
        assert lines[1] == "0 0 0"  # dummy entry
        assert lines[-1].startswith("5 0 ")  # dummy exit

    def test_round_trip_structure(self, diamond):
        g2 = parse_stg(format_stg(diamond))
        assert len(g2) == len(diamond)
        # Precedence preserved under renaming (insertion order stable).
        rename = dict(zip(g2.topological_order(), diamond.topological_order()))
        for ch in g2.channels:
            assert diamond.has_channel(rename[ch.src], rename[ch.dst])

    def test_round_trip_wcets(self, diamond):
        g2 = parse_stg(format_stg(diamond))
        assert sorted(t.wcet for t in g2) == sorted(t.wcet for t in diamond)

    def test_without_dummies(self, diamond):
        text = format_stg(diamond, with_dummies=False)
        assert text.strip().splitlines()[0] == "4"
        g2 = parse_stg(text)
        assert len(g2) == 4

    def test_fractional_wcets_preserved(self):
        g = generate_task_graph(tiny_spec(), seed=1, assign_windows=False)
        g2 = parse_stg(format_stg(g))
        assert sorted(round(t.wcet, 6) for t in g2) == sorted(
            round(t.wcet, 6) for t in g
        )

    def test_file_round_trip(self, tmp_path, diamond):
        path = tmp_path / "g.stg"
        save_stg(diamond, path)
        g2 = load_stg(path)
        assert g2.name == "g"
        assert len(g2) == 4
