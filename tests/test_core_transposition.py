"""The duplicate-state transposition layer (``repro.core.transposition``).

Covers the three halves of the subsystem separately and together:

* canonical identity — incremental Zobrist signatures against the
  from-scratch rebuild, processor-relabel invariance on uniform
  interconnects (and deliberate label sensitivity on non-uniform ones),
  and the packed-payload codec;
* the memory-bounded table — hit/miss/insert accounting, hash-collision
  verification, the capacity bound and all three replacement policies,
  plus the shared-memory variant's create/attach/probe lifecycle;
* engine integration — a full differential sweep over the ⟨B,S,E,L⟩
  registry asserting the table never changes the reported cost and
  never increases the searched-vertex count, fused/reference parity
  with the table on, composition with :class:`StateDominance`, the
  parallel driver's shared-table mode, and the deterministic-mode
  refusal.
"""

from __future__ import annotations

import pickle

import pytest

from repro.core import BnBParameters, BranchAndBound
from repro.core.bounds import LOWER_BOUNDS
from repro.core.branching import BRANCHING_RULES
from repro.core.dominance import ChainedDominance, StateDominance
from repro.core.elimination import ELIMINATION_RULES
from repro.core.selection import SELECTION_RULES
from repro.core.state import root_state
from repro.core.transposition import (
    TT_POLICIES,
    WAYS,
    PayloadCodec,
    SharedTranspositionTable,
    TranspositionDominance,
    TranspositionTable,
    child_signature,
    find_transposition,
)
from repro.errors import ConfigurationError
from repro.model import Platform, compile_problem, shared_bus_platform
from repro.model.interconnect import Mesh2D
from repro.workload import WorkloadSpec, generate_task_graph
from repro.workload.suites import spec_for_profile

from conftest import make_diamond, make_independent
from test_differential_oracle import CASES, MAX_TASKS_UNPRUNED, PROBLEMS, _case_id


def _random_problem(seed: int, m: int = 3):
    graph = generate_task_graph(
        WorkloadSpec(num_tasks=(8, 12), depth=(3, 5)), seed=seed
    )
    return compile_problem(graph, shared_bus_platform(m))


def _search_problem(profile: str, seed: int, m: int):
    """A bench-registry draw known to trigger a real (non-root) search."""
    graph = generate_task_graph(spec_for_profile(profile), seed=seed)
    return compile_problem(graph, shared_bus_platform(m))


# ---------------------------------------------------------------------------
# Canonical signatures
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", [0, 1, 7])
def test_incremental_signature_matches_scratch(seed):
    """The O(1) per-placement update equals the full rebuild everywhere."""
    problem = _random_problem(seed)
    state = root_state(problem)
    assert state.signature() == state.signature_from_scratch()
    step = 0
    while not state.is_goal:
        task = state.ready_tasks()[step % len(state.ready_tasks())]
        state = state.child(task, (step * 5 + seed) % problem.m)
        assert state.signature() == state.signature_from_scratch()
        step += 1


@pytest.mark.parametrize("seed", [2, 5])
def test_child_signature_matches_materialized_child(seed):
    problem = _random_problem(seed)
    state = root_state(problem)
    codec = PayloadCodec.for_problem(problem)
    while not state.is_goal:
        task = state.ready_tasks()[0]
        for proc in range(problem.m):
            child = state.child(task, proc)
            sig = child_signature(state, task, proc, child.start[task])
            assert sig == child.signature()
            assert codec.pack_child(
                state, task, proc, child.start[task]
            ) == codec.pack_state(child)
        state = state.child(task, seed % problem.m)


def test_signature_relabel_invariant_on_uniform(bus3):
    """Shared bus: permuting processor labels must not change identity."""
    problem = compile_problem(make_diamond(), bus3)
    assert problem.uniform_delay is not None
    src = problem.index["src"]
    left = problem.index["left"]
    root = root_state(problem)
    a = root.child(src, 0).child(left, 1)
    b = root.child(src, 2).child(left, 0)
    assert a.proc_of != b.proc_of
    assert a.signature() == b.signature()
    codec = PayloadCodec.for_problem(problem)
    assert codec.pack_state(a) == codec.pack_state(b)


def test_signature_distinguishes_assignments(bus3):
    """Same task set, structurally different assignment: not equivalent."""
    problem = compile_problem(make_independent(3), bus3)
    root = root_state(problem)
    together = root.child(0, 0).child(1, 0)   # both tasks share a processor
    apart = root.child(0, 0).child(1, 1)      # split across two
    assert together.signature() != apart.signature()
    codec = PayloadCodec.for_problem(problem)
    assert codec.pack_state(together) != codec.pack_state(apart)


def test_signature_label_exact_on_nonuniform():
    """A 1x3 mesh (hop-scaled delays) pins signatures to real labels."""
    problem = compile_problem(
        make_independent(2), Platform(3, Mesh2D(1, 3))
    )
    assert problem.uniform_delay is None
    root = root_state(problem)
    a = root.child(0, 0).child(1, 1)
    b = root.child(0, 1).child(1, 2)
    # Same shape and identical start times, but distinct physical
    # processors: on a non-uniform interconnect these are NOT equivalent
    # (future communication costs differ), so identity must separate them.
    assert a.start == b.start
    assert a.signature() != b.signature()
    codec = PayloadCodec.for_problem(problem)
    assert codec.pack_state(a) != codec.pack_state(b)


def test_codec_rejects_oversized_processor_counts():
    with pytest.raises(ConfigurationError):
        PayloadCodec(4, 255, True)


# ---------------------------------------------------------------------------
# The memory-bounded table
# ---------------------------------------------------------------------------


def _codec():
    return PayloadCodec(4, 2, True)


def _pay(i: int, codec=None):
    codec = codec or _codec()
    return i.to_bytes(4, "little") + bytes(codec.payload_len - 4)


def _tiny_table(policy: str) -> TranspositionTable:
    """One bucket (= WAYS slots): every probe contends for the same set."""
    table = TranspositionTable(1, _codec(), policy=policy)
    assert table.nbuckets == 1 and table.slots == WAYS
    return table


def test_table_hit_miss_accounting():
    table = TranspositionTable(1 << 16, _codec())
    assert table.probe(42, 1, lambda: _pay(0)) is False
    assert table.probe(42, 1, lambda: _pay(0)) is True
    assert (table.hits, table.misses, table.inserts, table.filled) == (
        1, 1, 1, 1,
    )


def test_table_collision_requires_exact_payload():
    """Equal hashes never prune on their own: payloads must match."""
    table = _tiny_table("depth")
    assert table.probe(7, 1, lambda: _pay(1)) is False
    assert table.probe(7, 1, lambda: _pay(2)) is False  # same hash, new state
    assert table.collisions == 1
    assert table.filled == 2
    # Both states are now resident and individually recognized.
    assert table.probe(7, 1, lambda: _pay(1)) is True
    assert table.probe(7, 1, lambda: _pay(2)) is True
    assert table.collisions == 2  # the later entry's hit walks past the first


def test_table_capacity_is_bounded():
    budget = 1 << 20
    table = TranspositionTable(budget, _codec())
    assert table.bytes_estimate <= budget
    for i in range(4 * table.slots):
        table.probe(i + 1, 1, lambda i=i: _pay(i))
    assert table.filled <= table.slots
    assert table.inserts - table.evictions - table.filled == 0


def test_depth_policy_keeps_shallow_entries():
    table = _tiny_table("depth")
    for i in range(WAYS):
        table.probe(i + 1, 2, lambda i=i: _pay(i))
    assert table.filled == WAYS
    # A deeper newcomer is refused outright (its subtree is smaller than
    # anything resident)...
    assert table.probe(100, 5, lambda: _pay(100)) is False
    assert table.rejects == 1 and table.evictions == 0
    # ...while a shallower one evicts the deepest resident entry.
    assert table.probe(101, 1, lambda: _pay(101)) is False
    assert table.evictions == 1
    assert table.probe(101, 1, lambda: _pay(101)) is True


def test_always_policy_always_replaces():
    table = _tiny_table("always")
    for i in range(WAYS + 3):
        table.probe(i + 1, 9, lambda i=i: _pay(i))
    assert table.evictions == 3 and table.rejects == 0
    assert table.filled == WAYS


def test_clock_policy_second_chance_protects_hit_entries():
    table = _tiny_table("clock")
    for i in range(WAYS):
        table.probe(i + 1, 1, lambda i=i: _pay(i))
    for i in range(WAYS):  # touch everything: all ref bits set
        assert table.probe(i + 1, 1, lambda i=i: _pay(i)) is True
    # The sweep clears ref bits as it passes and evicts exactly one way.
    assert table.probe(200, 1, lambda: _pay(200)) is False
    assert table.evictions == 1 and table.filled == WAYS
    assert table.probe(200, 1, lambda: _pay(200)) is True


def test_unknown_policy_rejected():
    with pytest.raises(ConfigurationError):
        TranspositionTable(1 << 16, _codec(), policy="mru")
    with pytest.raises(ConfigurationError):
        TranspositionDominance(policy="mru")


def test_shared_table_create_attach_probe():
    codec = _codec()
    owner = SharedTranspositionTable.create(1 << 16, codec, "depth")
    try:
        assert owner.probe(11, 1, lambda: _pay(11, codec)) is False
        other = SharedTranspositionTable.from_handle(owner.handle())
        try:
            # The attached view sees the owner's insert...
            assert other.probe(11, 1, lambda: _pay(11, codec)) is True
            assert other.probe(12, 1, lambda: _pay(12, codec)) is False
        finally:
            other.close()
        # ...and the owner sees the attached view's.
        assert owner.probe(12, 1, lambda: _pay(12, codec)) is True
    finally:
        owner.close()


def test_shared_table_geometry_mismatch_rejected():
    owner = SharedTranspositionTable.create(1 << 16, _codec(), "depth")
    try:
        rule = TranspositionDominance()
        rule.bind_shared(owner)
        problem = compile_problem(make_independent(3), shared_bus_platform(3))
        with pytest.raises(ConfigurationError):
            rule.table_for(problem)
    finally:
        owner.close()


def test_rule_pickles_without_runtime_handles():
    rule = TranspositionDominance(table_bytes=1 << 20, policy="clock")
    rule.fresh()
    clone = pickle.loads(pickle.dumps(rule))
    assert clone.table_bytes == 1 << 20
    assert clone.policy == "clock"
    assert clone._shared is None and clone._spawned == []


def test_policies_registry_consistent():
    assert set(TT_POLICIES) == {"always", "depth", "clock"}
    from repro.core.dominance import DOMINANCE_RULES

    assert DOMINANCE_RULES["transposition"] is TranspositionDominance


# ---------------------------------------------------------------------------
# Engine integration: the differential sweep
# ---------------------------------------------------------------------------

_sweep_base: dict[tuple, tuple] = {}


def _solve(problem, combo, dominance=None):
    branching, selection, elimination, bound = combo
    kwargs = {} if dominance is None else {"dominance": dominance}
    params = BnBParameters(
        branching=BRANCHING_RULES[branching](),
        selection=SELECTION_RULES[selection](),
        elimination=ELIMINATION_RULES[elimination](),
        lower_bound=LOWER_BOUNDS[bound](),
        **kwargs,
    )
    return BranchAndBound(params).solve(problem)


#: The duplicate-free AO rule refuses dominance layers by construction
#: (each state is generated once; a placement-keyed table would collapse
#: distinct allocation prefixes), so the TT sweep excludes its combos.
TT_CASES = [(i, c) for i, c in CASES if c[0] != "AO"]


@pytest.mark.parametrize(
    "idx,combo", TT_CASES, ids=[_case_id(i, c) for i, c in TT_CASES]
)
def test_table_never_changes_cost_or_adds_work(idx, combo):
    """Over the full ⟨B,S,E,L⟩ registry: identical cost, no extra vertices.

    This is the PR's central soundness claim, checked differentially on
    the same 50-instance registry as the engine-vs-oracle suite: with
    the transposition table on, every configuration must report exactly
    the cost it reports without it, while generating no more vertices.
    """
    problem = PROBLEMS[idx]
    if combo[2] == "none" and problem.n > MAX_TASKS_UNPRUNED:
        pytest.skip("unpruned full enumeration kept to small instances")
    key = (idx, combo)
    if key not in _sweep_base:
        base = _solve(problem, combo)
        _sweep_base[key] = (base.best_cost, base.stats.generated)
    base_cost, base_gen = _sweep_base[key]
    tt = _solve(problem, combo, dominance=TranspositionDominance())
    assert tt.best_cost == pytest.approx(base_cost, abs=1e-9)
    assert tt.stats.generated <= base_gen


def test_fused_matches_reference_with_table_on():
    """Probe contract: both engine paths drive the table identically."""
    problem = _search_problem("paper", 9, 3)
    params = BnBParameters.paper_llb(dominance=TranspositionDominance())
    ref = BranchAndBound(params, fused=False).solve(problem)
    opt = BranchAndBound(params, fused=True).solve(problem)
    assert ref.best_cost == opt.best_cost
    assert ref.proc_of == opt.proc_of and ref.start == opt.start
    ref_stats, opt_stats = ref.stats.as_dict(), opt.stats.as_dict()
    ref_stats.pop("elapsed"), opt_stats.pop("elapsed")
    assert ref_stats == opt_stats
    assert opt.stats.pruned_duplicate > 0


def test_duplicate_pruning_attributed_in_stats():
    problem = _search_problem("scaled", 0, 2)
    rule = TranspositionDominance()
    params = BnBParameters.paper_default(dominance=rule)
    result = BranchAndBound(params).solve(problem)
    tel = rule.telemetry_total()
    assert result.stats.pruned_duplicate == tel["duplicate_pruned"] > 0
    assert result.stats.pruned_dominated == 0  # pure-duplicate rule
    assert tel["tt_hits"] == tel["duplicate_pruned"]
    assert tel["tt_inserts"] <= tel["tt_capacity"]
    assert result.stats.pruned_duplicate in (
        result.stats.as_dict()["pruned_duplicate"],
    )


def test_chained_with_state_dominance_keeps_cost():
    problem = _search_problem("scaled", 0, 2)
    plain = BranchAndBound(BnBParameters.paper_default()).solve(problem)
    chained = ChainedDominance(TranspositionDominance(), StateDominance())
    both = BranchAndBound(
        BnBParameters.paper_default(dominance=chained)
    ).solve(problem)
    assert both.best_cost == pytest.approx(plain.best_cost, abs=1e-9)
    assert both.stats.generated <= plain.stats.generated
    assert find_transposition(chained) is not None


def test_small_budget_evicts_but_stays_sound():
    """A table far too small for the search still never changes the cost."""
    problem = _search_problem("scaled", 0, 2)
    plain = BranchAndBound(BnBParameters.paper_default()).solve(problem)
    for policy in TT_POLICIES:
        rule = TranspositionDominance(table_bytes=1, policy=policy)
        result = BranchAndBound(
            BnBParameters.paper_default(dominance=rule)
        ).solve(problem)
        assert result.best_cost == pytest.approx(plain.best_cost, abs=1e-9)
        tel = rule.telemetry_total()
        assert tel["tt_capacity"] == WAYS
        assert tel["tt_filled"] <= WAYS


# ---------------------------------------------------------------------------
# Parallel driver
# ---------------------------------------------------------------------------


def test_parallel_throughput_shares_the_table():
    from repro.core.parallel import ParallelBnB

    problem = _search_problem("scaled", 0, 2)
    params = BnBParameters.paper_default(
        dominance=TranspositionDominance()
    )
    seq = BranchAndBound(BnBParameters.paper_default()).solve(problem)
    solver = ParallelBnB(
        params, workers=2, split_depth=2, deterministic=False
    )
    par = solver.solve(problem)
    assert par.best_cost == pytest.approx(seq.best_cost, abs=1e-9)
    stats = solver.last_report.tt_stats
    assert stats is not None and stats["tt_inserts"] > 0


def test_parallel_deterministic_mode_refuses_table():
    from repro.core.parallel import ParallelBnB

    problem = _search_problem("scaled", 0, 2)
    params = BnBParameters.paper_default(
        dominance=TranspositionDominance()
    )
    with pytest.raises(ConfigurationError):
        ParallelBnB(params, workers=2, deterministic=True).solve(problem)
