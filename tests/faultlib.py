"""Shared helpers for the fault-tolerance test suites.

Two kinds of plumbing live here so :mod:`test_checkpoint` and
:mod:`test_supervision` stay readable:

* subprocess drivers for the real CLI (``python -m repro``), including
  the kill-at-checkpoint harness that SIGKILLs a solve the moment its
  first snapshot lands on disk;
* workload builders for instances whose search trees are *non-trivial*
  (the EDF initial bound must not already be optimal, or nothing is
  ever explored and a checkpoint is never due).
"""

from __future__ import annotations

import os
import re
import signal
import subprocess
import sys
import time
from pathlib import Path

from repro.model import compile_problem, shared_bus_platform
from repro.workload import WorkloadSpec, generate_task_graph

#: Seeds of :func:`hard_spec` instances known to need real search
#: (hundreds-to-thousands of generated vertices under the defaults).
HARD_SEEDS = (0, 4)


def hard_spec() -> WorkloadSpec:
    """Tight deadlines + real communication: EDF is not optimal here."""
    return WorkloadSpec(
        num_tasks=(8, 10), depth=(3, 5), ccr=1.0, laxity_ratio=1.05
    )


def hard_problem(seed: int = 0, processors: int = 2):
    """A compiled instance with a non-trivial search tree."""
    return compile_problem(
        generate_task_graph(hard_spec(), seed=seed),
        shared_bus_platform(processors),
    )


def hard_graph(seed: int = 0):
    return generate_task_graph(hard_spec(), seed=seed)


# ---------------------------------------------------------------------------
# CLI subprocess drivers
# ---------------------------------------------------------------------------


def _cli_env() -> dict:
    """Environment for ``python -m repro`` regardless of pytest's cwd."""
    import repro

    src = str(Path(repro.__file__).resolve().parent.parent)
    env = dict(os.environ)
    parts = [src] + [p for p in env.get("PYTHONPATH", "").split(os.pathsep) if p]
    env["PYTHONPATH"] = os.pathsep.join(parts)
    return env


def run_cli(args: list[str], timeout: float = 120.0):
    """Run the CLI to completion; returns the CompletedProcess."""
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True,
        text=True,
        timeout=timeout,
        env=_cli_env(),
    )


def spawn_cli(args: list[str]) -> subprocess.Popen:
    """Start the CLI without waiting (for kill-mid-run harnesses)."""
    return subprocess.Popen(
        [sys.executable, "-m", "repro", *args],
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
        env=_cli_env(),
    )


def kill_when_file_appears(
    proc: subprocess.Popen, path: str | Path, timeout: float = 60.0
) -> bool:
    """SIGKILL ``proc`` as soon as ``path`` exists and is non-empty.

    Returns True when the process was killed while still running, False
    when it finished first (the file must still exist either way — the
    caller's resume assertions hold in both interleavings, which is what
    makes the harness race-free).
    """
    deadline = time.monotonic() + timeout
    p = Path(path)
    while time.monotonic() < deadline:
        if p.exists() and p.stat().st_size > 0:
            break
        if proc.poll() is not None:
            return False
        time.sleep(0.002)
    else:
        raise TimeoutError(f"no checkpoint appeared at {path}")
    if proc.poll() is None:
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=30)
        return True
    return False


# ---------------------------------------------------------------------------
# Cluster harness (in-process threads over the fake transport)
# ---------------------------------------------------------------------------


def run_cluster(
    problem,
    params=None,
    *,
    workers=2,
    transport=None,
    worker_kwargs=None,
    coordinator_kwargs=None,
    join_timeout=60.0,
):
    """Solve ``problem`` on an in-process cluster; returns (result, coord).

    Spawns ``workers`` ClusterWorker threads over a shared
    MemoryTransport (or the given one) against one ClusterCoordinator.
    ``worker_kwargs`` is either one dict applied to every worker or a
    list of per-worker dicts (inject faults into specific workers).
    """
    import threading

    from repro.cluster import ClusterCoordinator, ClusterWorker, MemoryTransport

    net = transport if transport is not None else MemoryTransport()
    address = "mem://coordinator"
    ckw = dict(
        bind=address,
        transport=net,
        lease=2.0,
        worker_timeout=30.0,
        retry_backoff=0.001,
    )
    ckw.update(coordinator_kwargs or {})
    coord = ClusterCoordinator(params, **ckw)
    if isinstance(worker_kwargs, dict) or worker_kwargs is None:
        worker_kwargs = [worker_kwargs or {}] * workers
    crew = []
    for i, kw in enumerate(worker_kwargs):
        kw = dict(kw)
        wnet = kw.pop("transport", net)
        crew.append(
            ClusterWorker(
                address,
                transport=wnet,
                worker_id=kw.pop("worker_id", f"w{i}"),
                connect_timeout=kw.pop("connect_timeout", 20.0),
                **kw,
            )
        )
    threads = [
        threading.Thread(target=w.run, daemon=True, name=w.worker_id)
        for w in crew
    ]
    for t in threads:
        t.start()
    try:
        result = coord.solve(problem)
    finally:
        for t in threads:
            t.join(timeout=join_timeout)
    return result, coord


def assert_cluster_parity(result, reference, *, tol=1e-9):
    """The cluster run must match the single-process engine exactly."""
    assert result.status == reference.status, (
        f"status diverged: cluster {result.status} vs "
        f"sequential {reference.status}"
    )
    if reference.proc_of is not None:
        assert result.proc_of is not None
        assert abs(result.best_cost - reference.best_cost) <= tol, (
            f"cost diverged: cluster {result.best_cost!r} vs "
            f"sequential {reference.best_cost!r}"
        )


_LMAX = re.compile(r"L_max=(-?[\d.]+|inf|-inf)")


def parse_lmax(stdout: str) -> float:
    """Extract the reported best cost from a ``repro solve`` transcript."""
    match = _LMAX.search(stdout)
    if match is None:
        raise AssertionError(f"no L_max in CLI output:\n{stdout}")
    return float(match.group(1))
