"""Endpoint contracts for the live monitor's HTTP server.

Every test binds an ephemeral port on 127.0.0.1 and talks real HTTP —
the same stack ``repro solve --serve-status`` serves — so these are the
contracts the dashboard, curl users and the CI smoke job rely on:
``/status`` (JSON snapshot), ``/metrics`` (Prometheus text),
``/events`` (SSE with ring replay), ``/`` (self-contained dashboard).
"""

from __future__ import annotations

import http.client
import json
import threading
import time
import urllib.request

import pytest

from faultlib import hard_problem
from repro.core import BnBParameters, BranchAndBound
from repro.obs import (
    LiveMonitor,
    MetricsRegistry,
    MonitorServer,
    Observability,
    TelemetryBus,
)

PROBLEM = hard_problem(seed=0)
PARAMS = BnBParameters()


def _get(server: MonitorServer, path: str, timeout: float = 10.0):
    with urllib.request.urlopen(server.url + path, timeout=timeout) as resp:
        return resp.status, resp.headers.get_content_type(), resp.read()


@pytest.fixture
def served_bus():
    bus = TelemetryBus()
    server = MonitorServer(bus, metrics=MetricsRegistry())
    server.start()
    try:
        yield bus, server
    finally:
        server.stop()


class TestEndpoints:
    def test_status_returns_json_snapshot(self, served_bus):
        bus, server = served_bus
        bus.update(incumbent=2.5, gap=0.1, phase="solving", vps=1234.5)
        status, ctype, body = _get(server, "/status")
        assert status == 200 and ctype == "application/json"
        snap = json.loads(body)
        assert snap["status"]["incumbent"] == 2.5
        assert snap["status"]["gap"] == 0.1
        assert snap["status"]["vps"] == 1234.5
        assert "workers" in snap and "history" in snap
        assert "server_time" in snap

    def test_metrics_returns_prometheus_text(self, served_bus):
        bus, server = served_bus
        server.metrics.counter("bnb_test_total").inc(3)
        status, ctype, body = _get(server, "/metrics")
        assert status == 200 and ctype == "text/plain"
        assert b"bnb_test_total 3" in body

    def test_metrics_without_registry_says_so(self):
        server = MonitorServer(TelemetryBus())
        server.start()
        try:
            status, _, body = _get(server, "/metrics")
            assert status == 200
            assert b"no metrics registry" in body
        finally:
            server.stop()

    def test_dashboard_is_selfcontained_html(self, served_bus):
        _, server = served_bus
        status, ctype, body = _get(server, "/")
        assert status == 200 and ctype == "text/html"
        text = body.decode()
        assert "<html" in text
        # Self-contained: no external scripts or stylesheets.
        assert "<script src" not in text
        assert "stylesheet" not in text
        assert "EventSource" in text  # the SSE client
        assert "/status" in text

    def test_unknown_path_is_404(self, served_bus):
        _, server = served_bus
        with pytest.raises(urllib.error.HTTPError) as err:
            _get(server, "/nope")
        assert err.value.code == 404

    def test_events_replays_ring_then_streams(self, served_bus):
        bus, server = served_bus
        bus.record_event("incumbent", {"cost": 3.25})
        conn = http.client.HTTPConnection(
            server.host, server.port, timeout=10.0
        )
        try:
            conn.request("GET", "/events")
            resp = conn.getresponse()
            assert resp.status == 200
            assert resp.headers.get_content_type() == "text/event-stream"
            # The pre-connect event must be replayed from the ring.
            seen = []
            while True:
                line = resp.fp.readline().decode()
                seen.append(line)
                if line.startswith("data:"):
                    break
            assert any(line == "event: incumbent\n" for line in seen)
            payload = json.loads(seen[-1][len("data:"):])
            assert payload["cost"] == 3.25
        finally:
            conn.close()

    def test_port_is_ephemeral_and_url_matches(self, served_bus):
        _, server = served_bus
        assert server.port > 0
        assert server.url == f"http://127.0.0.1:{server.port}"

    def test_stop_is_idempotent(self):
        server = MonitorServer(TelemetryBus())
        server.start()
        server.stop()
        server.stop()


class TestServingARunningSolve:
    def test_status_reflects_live_then_terminal_state(self):
        monitor = LiveMonitor(interval=0.0)
        server = MonitorServer(monitor.bus)
        server.start()
        try:
            done = threading.Event()
            results = {}

            def run():
                results["result"] = BranchAndBound(
                    PARAMS, obs=Observability(live=monitor)
                ).solve(PROBLEM)
                done.set()

            thread = threading.Thread(target=run)
            thread.start()
            # Poll the real endpoint while (and after) the solve runs.
            deadline = time.monotonic() + 30.0
            snap = None
            while time.monotonic() < deadline:
                _, _, body = _get(server, "/status")
                snap = json.loads(body)
                if snap["status"].get("phase") == "done":
                    break
                time.sleep(0.005)
            thread.join(timeout=30.0)
            assert done.is_set()
            result = results["result"]
            assert snap is not None
            assert snap["status"]["phase"] == "done"
            assert snap["status"]["incumbent"] == result.best_cost
            assert snap["status"]["gap"] == 0.0  # optimal terminal state
            assert snap["status"]["explored"] == result.stats.explored
            assert "vps" in snap["status"]
            # The solve's lifecycle events reached the SSE ring.
            _, _, body = _get(server, "/status")
            assert json.loads(body)["events_seen"] >= 2  # start + summary
        finally:
            server.stop()
