"""Edge-case tests across modules: degenerate inputs, limits, timeouts."""

import math

import pytest

from repro.core import (
    BnBParameters,
    BranchAndBound,
    NoUpperBound,
    ResourceBounds,
    SolveStatus,
    root_state,
)
from repro.model import (
    Platform,
    Task,
    TaskGraph,
    ZeroCost,
    compile_problem,
    shared_bus_platform,
)
from repro.scheduling import edf_schedule
from repro.workload import WorkloadSpec, generate_task_graph


class TestDegenerateProblems:
    def test_single_task_single_processor(self):
        g = TaskGraph()
        g.add_task(Task(name="only", wcet=3.0, relative_deadline=10.0))
        res = BranchAndBound(BnBParameters()).solve(
            compile_problem(g, shared_bus_platform(1))
        )
        assert res.status is SolveStatus.OPTIMAL
        assert res.best_cost == pytest.approx(-7.0)
        assert res.schedule().entry("only").start == 0.0

    def test_single_task_many_processors(self):
        g = TaskGraph()
        g.add_task(Task(name="only", wcet=3.0, relative_deadline=10.0))
        res = BranchAndBound(BnBParameters()).solve(
            compile_problem(g, shared_bus_platform(4))
        )
        assert res.best_cost == pytest.approx(-7.0)

    def test_more_processors_than_tasks(self):
        g = TaskGraph()
        for i in range(3):
            g.add_task(Task(name=f"t{i}", wcet=5.0, relative_deadline=20.0))
        res = BranchAndBound(BnBParameters()).solve(
            compile_problem(g, shared_bus_platform(8))
        )
        # All three run in parallel from time 0.
        assert res.best_cost == pytest.approx(-15.0)

    def test_zero_cost_interconnect_equivalent_to_free_comm(self):
        g = generate_task_graph(
            WorkloadSpec(name="x", num_tasks=(6, 6), depth=(3, 3)), seed=2
        )
        free = Platform(2, ZeroCost(2))
        res_free = BranchAndBound(BnBParameters()).solve(
            compile_problem(g, free)
        )
        # Free communication can never be worse than the shared bus.
        res_bus = BranchAndBound(BnBParameters()).solve(
            compile_problem(g, shared_bus_platform(2))
        )
        assert res_free.best_cost <= res_bus.best_cost + 1e-9

    def test_zero_message_sizes_make_topology_irrelevant(self):
        g = TaskGraph()
        g.add_task(Task(name="a", wcet=2.0, relative_deadline=50.0))
        g.add_task(Task(name="b", wcet=2.0, relative_deadline=50.0))
        g.add_edge("a", "b", message_size=0.0)
        slow_bus = shared_bus_platform(2, delay_per_item=100.0)
        res = BranchAndBound(BnBParameters()).solve(
            compile_problem(g, slow_bus)
        )
        assert res.best_cost == pytest.approx(-46.0)  # 4 - 50

    def test_identical_tasks_heavy_ties(self):
        g = TaskGraph()
        for i in range(5):
            g.add_task(Task(name=f"t{i}", wcet=10.0, relative_deadline=30.0))
        prob = compile_problem(g, shared_bus_platform(2))
        res = BranchAndBound(BnBParameters()).solve(prob)
        # 5 x 10 over 2 processors: best max finish is 30.
        assert res.best_cost == pytest.approx(0.0)

    def test_huge_wcet_spread(self):
        g = TaskGraph()
        g.add_task(Task(name="tiny", wcet=1e-6, relative_deadline=1e6))
        g.add_task(Task(name="huge", wcet=1e5, relative_deadline=1e6))
        g.add_edge("tiny", "huge", message_size=1.0)
        res = BranchAndBound(BnBParameters()).solve(
            compile_problem(g, shared_bus_platform(2))
        )
        assert res.found_solution
        res.schedule().validate()


class TestTimeoutPath:
    def test_time_limit_returns_best_so_far(self):
        # A large-ish instance with an (effectively) immediate deadline.
        g = generate_task_graph(
            WorkloadSpec(name="x", num_tasks=(12, 12), depth=(4, 5)), seed=3
        )
        prob = compile_problem(g, shared_bus_platform(3))
        rb = ResourceBounds(time_limit=0.02)
        res = BranchAndBound(
            BnBParameters(resources=rb, upper_bound=NoUpperBound())
        ).solve(prob)
        if res.stats.time_limit_hit:
            assert res.status in (SolveStatus.TIMEOUT, SolveStatus.FAILED)
        # Either way the engine terminated cleanly.
        assert res.stats.elapsed < 5.0


class TestArrivalGaps:
    def test_processor_idles_until_arrival(self):
        g = TaskGraph()
        g.add_task(Task(name="later", wcet=2.0, phase=10.0, relative_deadline=5.0))
        prob = compile_problem(g, shared_bus_platform(1))
        res = BranchAndBound(BnBParameters()).solve(prob)
        assert res.schedule().entry("later").start == 10.0
        assert res.best_cost == pytest.approx(-3.0)

    def test_edf_respects_arrivals(self):
        g = TaskGraph()
        g.add_task(Task(name="late", wcet=1.0, phase=100.0, relative_deadline=1.0))
        g.add_task(Task(name="now", wcet=1.0, relative_deadline=1000.0))
        prob = compile_problem(g, shared_bus_platform(1))
        res = edf_schedule(prob)
        # `late` has the earlier absolute deadline (101 < 1000) and is
        # picked first under EDF even though it idles the machine; the
        # appended `now` then waits — the greedy pathology the B&B fixes.
        assert res.start[prob.index["late"]] == 100.0
        bnb = BranchAndBound(BnBParameters()).solve(prob)
        assert bnb.best_cost <= res.max_lateness + 1e-9


class TestStateEdges:
    def test_root_of_independent_tasks_all_ready(self):
        g = TaskGraph()
        for i in range(4):
            g.add_task(Task(name=f"t{i}", wcet=1.0))
        prob = compile_problem(g, shared_bus_platform(2))
        assert root_state(prob).ready_tasks() == [0, 1, 2, 3]

    def test_deep_chain_one_ready_at_a_time(self):
        g = TaskGraph()
        prev = None
        for i in range(10):
            g.add_task(Task(name=f"c{i}", wcet=1.0))
            if prev:
                g.add_edge(prev, f"c{i}")
            prev = f"c{i}"
        prob = compile_problem(g, shared_bus_platform(2))
        st = root_state(prob)
        for i in range(10):
            assert st.ready_tasks() == [i]
            st = st.child(i, 0)
        assert st.is_goal


class TestReportFormatting:
    def test_large_and_special_values(self):
        from repro.experiments.report import _fmt

        assert _fmt(123456.0) == "1.23e+05"
        assert _fmt(float("inf")) == "inf"
        assert _fmt(float("nan")) == "-"
        assert _fmt(None) == "-"
        assert _fmt(3.14159, 2) == "3.14"

    def test_stats_flags_in_summary(self):
        from repro.core import SearchStats

        s = SearchStats(time_limit_hit=True, truncated=True)
        s.elapsed = 1.0
        text = s.summary()
        assert "TIMELIMIT" in text and "TRUNCATED" in text
