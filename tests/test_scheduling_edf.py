"""Unit tests for repro.scheduling.edf (Section 4.4 baseline)."""

import pytest

from repro.model import Task, TaskGraph, compile_problem, shared_bus_platform
from repro.scheduling import edf_schedule

from conftest import make_diamond, make_forkjoin, make_independent


class TestEDFOrdering:
    def test_picks_earliest_absolute_deadline(self):
        g = TaskGraph()
        g.add_task(Task(name="late", wcet=2.0, relative_deadline=50.0))
        g.add_task(Task(name="soon", wcet=2.0, relative_deadline=10.0))
        prob = compile_problem(g, shared_bus_platform(1))
        res = edf_schedule(prob)
        assert res.order[0] == prob.index["soon"]

    def test_respects_precedence(self, diamond_problem):
        res = edf_schedule(diamond_problem)
        order = list(res.order)
        src = diamond_problem.index["src"]
        sink = diamond_problem.index["sink"]
        assert order[0] == src
        assert order[-1] == sink

    def test_deadline_tie_broken_by_arrival_then_index(self):
        g = TaskGraph()
        g.add_task(Task(name="a", wcet=1.0, phase=5.0, relative_deadline=10.0))
        g.add_task(Task(name="b", wcet=1.0, phase=0.0, relative_deadline=15.0))
        # Both have absolute deadline 15.
        prob = compile_problem(g, shared_bus_platform(1))
        res = edf_schedule(prob)
        assert res.order[0] == prob.index["b"]


class TestEDFPlacement:
    def test_spreads_over_processors(self):
        prob = compile_problem(make_independent(3), shared_bus_platform(3))
        res = edf_schedule(prob)
        # Three independent tasks on three processors all start at 0.
        assert sorted(res.proc_of) == [0, 1, 2]
        assert res.start == (0.0, 0.0, 0.0)

    def test_schedule_is_consistent(self):
        for factory in (make_diamond, make_forkjoin, make_independent):
            prob = compile_problem(factory(), shared_bus_platform(2))
            res = edf_schedule(prob)
            sched = res.to_schedule()
            assert sched.is_complete
            sched.validate()

    def test_cost_matches_schedule(self, diamond_problem):
        res = edf_schedule(diamond_problem)
        assert res.max_lateness == pytest.approx(
            res.to_schedule().max_lateness()
        )

    def test_deterministic(self, diamond_problem):
        a = edf_schedule(diamond_problem)
        b = edf_schedule(diamond_problem)
        assert a.proc_of == b.proc_of
        assert a.start == b.start

    def test_single_processor_serializes(self, diamond_problem):
        prob = compile_problem(make_diamond(), shared_bus_platform(1))
        res = edf_schedule(prob)
        assert set(res.proc_of) == {0}
        # Total busy time = sum of wcets, no idling before the last finish
        # on a single processor with zero arrivals.
        assert max(res.finish) == pytest.approx(17.0)
