"""Wire-level tests: frames, addresses, fault scripting, TCP framing."""

import pickle
import threading

import pytest

from repro.cluster import (
    LinkFaults,
    MemoryTransport,
    TcpTransport,
    parse_address,
)
from repro.cluster import protocol
from repro.cluster.transport import MAX_FRAME
from repro.errors import ClusterError, TransportClosed


# ---------------------------------------------------------------------------
# Frames
# ---------------------------------------------------------------------------


class TestFrames:
    def test_hello_welcome_round_trip(self):
        h = protocol.hello("w0")
        assert protocol.frame_type(h) == "hello"
        assert protocol.check_hello(h) == "w0"
        w = protocol.welcome("abc123", "problem", "params", 5.0, None)
        assert protocol.frame_type(w) == "welcome"
        assert w["proto"] == protocol.PROTOCOL_VERSION
        assert w["lease"] == 5.0

    def test_check_hello_rejects_wrong_magic(self):
        bad = protocol.hello("w0")
        bad["magic"] = "http"
        with pytest.raises(ClusterError, match="not a cluster worker"):
            protocol.check_hello(bad)

    def test_check_hello_rejects_version_skew(self):
        bad = protocol.hello("w0")
        bad["proto"] = protocol.PROTOCOL_VERSION + 1
        with pytest.raises(ClusterError, match="version mismatch"):
            protocol.check_hello(bad)

    def test_check_hello_rejects_missing_id(self):
        bad = protocol.hello("")
        with pytest.raises(ClusterError, match="no worker id"):
            protocol.check_hello(bad)

    def test_frame_type_rejects_junk(self):
        with pytest.raises(ClusterError, match="malformed frame"):
            protocol.frame_type([1, 2, 3])
        with pytest.raises(ClusterError, match="malformed frame"):
            protocol.frame_type({"kind": "shard"})

    def test_bound_frame_carries_epoch_and_provenance(self):
        b = protocol.bound_frame(3.25, epoch=2, shard_index=7)
        assert (b["cost"], b["epoch"], b["shard"]) == (3.25, 2, 7)
        broadcast = protocol.bound_frame(3.25, epoch=2)
        assert broadcast["shard"] == -1

    def test_work_frames_repeat_fingerprint(self):
        class _S:
            index, state, lower_bound = 4, ("s",), 1.5

        s = protocol.shard_frame(_S(), 2, 100.0, 9.0, 1, "fp")
        r = protocol.result_frame(4, 2, None, 8.0, (0,), (0.0,), False, "fp")
        st = protocol.stale_frame(4, "fp")
        for frame in (s, r, st):
            assert frame["fingerprint"] == "fp"
            assert frame["shard"] == 4


# ---------------------------------------------------------------------------
# Addresses
# ---------------------------------------------------------------------------


class TestParseAddress:
    def test_host_port(self):
        assert parse_address("10.0.0.5:9000") == ("10.0.0.5", 9000)

    def test_bare_colon_port_defaults_to_localhost(self):
        assert parse_address(":9000") == ("127.0.0.1", 9000)

    def test_rejects_portless(self):
        with pytest.raises(ClusterError):
            parse_address("localhost")

    def test_rejects_non_numeric_port(self):
        with pytest.raises(ClusterError):
            parse_address("host:http")


# ---------------------------------------------------------------------------
# MemoryTransport + LinkFaults
# ---------------------------------------------------------------------------


class TestMemoryTransport:
    def _pair(self, faults=None):
        net = MemoryTransport()
        listener = net.listen("mem://x")
        client = net.connect("mem://x", faults=faults)
        server = listener.accept(timeout=1.0)
        return client, server, listener

    def test_round_trip_is_a_pickle_copy(self):
        client, server, _ = self._pair()
        frame = {"t": "hb", "payload": [1, 2, 3]}
        client.send(frame)
        got = server.recv(timeout=1.0)
        assert got == frame and got is not frame
        assert got["payload"] is not frame["payload"]

    def test_poll_and_eof(self):
        client, server, _ = self._pair()
        assert not server.poll()
        client.send(protocol.bye())
        assert server.poll()
        assert protocol.frame_type(server.recv(timeout=1.0)) == "bye"
        client.close()
        with pytest.raises(TransportClosed):
            server.recv(timeout=1.0)

    def test_connect_refused_without_listener(self):
        net = MemoryTransport()
        with pytest.raises(TransportClosed):
            net.connect("mem://nobody")

    def test_address_already_in_use(self):
        net = MemoryTransport()
        net.listen("mem://x")
        with pytest.raises(ClusterError, match="already in use"):
            net.listen("mem://x")

    def test_drop_script_and_counter(self):
        faults = LinkFaults(
            script=lambda d, i, f: "drop" if f["t"] == "bound" else "ok"
        )
        client, server, _ = self._pair(faults)
        client.send(protocol.bound_frame(1.0, 0))
        client.send(protocol.bye())
        assert protocol.frame_type(server.recv(timeout=1.0)) == "bye"
        assert faults.dropped == 1

    def test_dup_script_delivers_twice(self):
        faults = LinkFaults(script=lambda d, i, f: "dup")
        client, server, _ = self._pair(faults)
        client.send(protocol.heartbeat())
        assert protocol.frame_type(server.recv(timeout=1.0)) == "hb"
        assert protocol.frame_type(server.recv(timeout=1.0)) == "hb"
        assert faults.duplicated == 1

    def test_delay_script_defers_delivery(self):
        faults = LinkFaults(script=lambda d, i, f: 0.2)
        client, server, _ = self._pair(faults)
        client.send(protocol.heartbeat())
        assert server.recv(timeout=0.02) is None  # not deliverable yet
        assert protocol.frame_type(server.recv(timeout=2.0)) == "hb"
        assert faults.delayed == 1

    def test_delayed_frame_survives_peer_close(self):
        """Close must not eat frames already in flight."""
        faults = LinkFaults(script=lambda d, i, f: 0.1)
        client, server, _ = self._pair(faults)
        client.send(protocol.bye())
        client.close()
        assert protocol.frame_type(server.recv(timeout=2.0)) == "bye"
        with pytest.raises(TransportClosed):
            server.recv(timeout=0.5)

    def test_partition_toggle_severs_and_heals(self):
        faults = LinkFaults()
        client, server, _ = self._pair(faults)
        faults.partitioned = True
        client.send(protocol.heartbeat())
        assert server.recv(timeout=0.05) is None
        faults.partitioned = False
        client.send(protocol.bye())
        assert protocol.frame_type(server.recv(timeout=1.0)) == "bye"
        assert faults.dropped == 1

    def test_with_faults_scopes_to_one_link(self):
        net = MemoryTransport()
        listener = net.listen("mem://x")
        faults = LinkFaults(partitioned=True)
        lossy = net.with_faults(faults).connect("mem://x")
        clean = net.connect("mem://x")
        srv_lossy = listener.accept(timeout=1.0)
        srv_clean = listener.accept(timeout=1.0)
        lossy.send(protocol.heartbeat())
        clean.send(protocol.heartbeat())
        assert srv_lossy.recv(timeout=0.05) is None
        assert protocol.frame_type(srv_clean.recv(timeout=1.0)) == "hb"


# ---------------------------------------------------------------------------
# TCP framing
# ---------------------------------------------------------------------------


class TestTcpTransport:
    def _pair(self):
        net = TcpTransport()
        listener = net.listen("127.0.0.1:0")
        conns = {}

        def _accept():
            conns["server"] = listener.accept(timeout=5.0)

        t = threading.Thread(target=_accept)
        t.start()
        client = net.connect(listener.address)
        t.join(timeout=5.0)
        return client, conns["server"], listener

    def test_round_trip_many_frames(self):
        client, server, listener = self._pair()
        try:
            for i in range(50):
                client.send({"t": "hb", "i": i, "blob": b"x" * 1000})
            for i in range(50):
                frame = server.recv(timeout=5.0)
                assert frame["i"] == i and len(frame["blob"]) == 1000
        finally:
            client.close(), server.close(), listener.close()

    def test_partial_read_keeps_stream_sync(self):
        """A timeout mid-frame must not desync the length-prefixed stream."""
        client, server, listener = self._pair()
        try:
            big = {"t": "shard", "blob": b"y" * (1 << 20)}
            t = threading.Thread(target=client.send, args=(big,))
            t.start()
            frames = []
            for _ in range(2000):  # tiny timeouts force partial buffering
                frame = server.recv(timeout=0.001)
                if frame is not None:
                    frames.append(frame)
                    break
            t.join(timeout=5.0)
            client.send(protocol.bye())
            frames.append(server.recv(timeout=5.0))
            assert frames[0]["blob"] == big["blob"]
            assert protocol.frame_type(frames[1]) == "bye"
        finally:
            client.close(), server.close(), listener.close()

    def test_eof_is_transport_closed(self):
        client, server, listener = self._pair()
        try:
            client.close()
            with pytest.raises(TransportClosed):
                server.recv(timeout=5.0)
        finally:
            server.close(), listener.close()

    def test_nonblocking_poll_and_accept(self):
        """timeout=0 means non-blocking: must return, not raise."""
        client, server, listener = self._pair()
        try:
            assert listener.accept(timeout=0.0) is None
            assert not server.poll()
            assert server.recv(timeout=0.0) is None
            client.send(protocol.heartbeat())
            for _ in range(500):
                if server.poll():
                    break
            assert protocol.frame_type(server.recv(timeout=1.0)) == "hb"
        finally:
            client.close(), server.close(), listener.close()

    def test_oversized_frame_rejected_before_send(self, monkeypatch):
        from repro.cluster import transport as transport_mod

        monkeypatch.setattr(transport_mod, "MAX_FRAME", 4096)
        client, server, listener = self._pair()
        try:
            payload = pickle.dumps({"t": "x"})
            assert len(payload) < MAX_FRAME  # sanity: real limit is generous
            with pytest.raises(ClusterError, match="too large"):
                client.send({"t": "x", "blob": bytearray(8192)})
        finally:
            client.close(), server.close(), listener.close()

    def test_bind_conflict_raises_cluster_error(self):
        net = TcpTransport()
        listener = net.listen("127.0.0.1:0")
        try:
            with pytest.raises(ClusterError, match="cannot bind"):
                net.listen(listener.address)
        finally:
            listener.close()
