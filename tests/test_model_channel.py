"""Unit tests for repro.model.channel."""

import math

import pytest

from repro.errors import ModelError
from repro.model import Channel


class TestChannelConstruction:
    def test_defaults(self):
        ch = Channel(src="a", dst="b")
        assert ch.message_size == 0.0
        assert ch.arrival == 0.0
        assert math.isinf(ch.relative_deadline)
        assert ch.key == ("a", "b")

    def test_self_loop_rejected(self):
        # The precedence order is irreflexive.
        with pytest.raises(ModelError, match="irreflexive"):
            Channel(src="a", dst="a")

    def test_empty_endpoint_rejected(self):
        with pytest.raises(ModelError):
            Channel(src="", dst="b")
        with pytest.raises(ModelError):
            Channel(src="a", dst="")

    @pytest.mark.parametrize("size", [-1.0, math.inf])
    def test_bad_message_size_rejected(self, size):
        with pytest.raises(ModelError, match="message size"):
            Channel(src="a", dst="b", message_size=size)

    def test_negative_arrival_rejected(self):
        with pytest.raises(ModelError, match="arrival"):
            Channel(src="a", dst="b", arrival=-1.0)

    def test_nonpositive_deadline_rejected(self):
        with pytest.raises(ModelError, match="deadline"):
            Channel(src="a", dst="b", relative_deadline=0.0)

    def test_zero_size_is_pure_precedence(self):
        ch = Channel(src="a", dst="b", message_size=0.0)
        assert ch.nominal_cost(7.0) == 0.0


class TestNominalCost:
    def test_cost_is_size_times_delay(self):
        # Section 2.1: cost = message length * nominal delay.
        ch = Channel(src="a", dst="b", message_size=12.0)
        assert ch.nominal_cost(1.0) == 12.0
        assert ch.nominal_cost(2.5) == 30.0

    def test_channels_are_immutable(self):
        ch = Channel(src="a", dst="b")
        with pytest.raises(AttributeError):
            ch.message_size = 5.0

    def test_str(self):
        assert "a -> b" in str(Channel(src="a", dst="b", message_size=3.0))
