"""Shared fixtures and oracles for the test suite."""

from __future__ import annotations

import math
import os

import pytest

try:
    from hypothesis import HealthCheck, settings

    # "ci" (the default) is fully reproducible: derandomize=True makes
    # hypothesis derive its examples from the test function itself, so a
    # CI failure replays locally without a shared example database.
    # HYPOTHESIS_PROFILE=dev restores randomized exploration.
    settings.register_profile(
        "ci",
        derandomize=True,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    settings.register_profile(
        "dev",
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "ci"))
except ImportError:  # pragma: no cover - hypothesis is an optional dep
    pass

from repro.core.state import root_state
from repro.model import (
    Channel,
    Platform,
    SharedBus,
    Task,
    TaskGraph,
    compile_problem,
    shared_bus_platform,
)


# ---------------------------------------------------------------------------
# Canonical small graphs
# ---------------------------------------------------------------------------


def make_chain(n: int = 4, wcet: float = 10.0, msg: float = 5.0) -> TaskGraph:
    """a -> b -> c -> ... with uniform weights and generous deadlines."""
    g = TaskGraph(name=f"chain{n}")
    for i in range(n):
        g.add_task(
            Task(name=f"c{i}", wcet=wcet, relative_deadline=wcet * n * 3)
        )
    for i in range(n - 1):
        g.add_edge(f"c{i}", f"c{i+1}", message_size=msg)
    return g


def make_diamond(msg: float = 4.0) -> TaskGraph:
    """The classic fork-join: src -> {left, right} -> sink."""
    g = TaskGraph(name="diamond")
    g.add_task(Task(name="src", wcet=2.0, relative_deadline=100.0))
    g.add_task(Task(name="left", wcet=5.0, relative_deadline=100.0))
    g.add_task(Task(name="right", wcet=7.0, relative_deadline=100.0))
    g.add_task(Task(name="sink", wcet=3.0, relative_deadline=100.0))
    g.add_edge("src", "left", message_size=msg)
    g.add_edge("src", "right", message_size=msg)
    g.add_edge("left", "sink", message_size=msg)
    g.add_edge("right", "sink", message_size=msg)
    return g


def make_forkjoin(width: int = 3, msg: float = 3.0) -> TaskGraph:
    """src feeding `width` parallel tasks feeding sink."""
    g = TaskGraph(name=f"forkjoin{width}")
    g.add_task(Task(name="src", wcet=4.0, relative_deadline=300.0))
    for i in range(width):
        g.add_task(Task(name=f"mid{i}", wcet=6.0 + i, relative_deadline=300.0))
    g.add_task(Task(name="sink", wcet=5.0, relative_deadline=300.0))
    for i in range(width):
        g.add_edge("src", f"mid{i}", message_size=msg)
        g.add_edge(f"mid{i}", "sink", message_size=msg)
    return g


def make_independent(n: int = 3) -> TaskGraph:
    """n independent tasks with staggered deadlines (no arcs)."""
    g = TaskGraph(name=f"indep{n}")
    for i in range(n):
        g.add_task(
            Task(name=f"i{i}", wcet=4.0 + i, relative_deadline=20.0 + 10.0 * i)
        )
    return g


# ---------------------------------------------------------------------------
# Fixtures
# ---------------------------------------------------------------------------


@pytest.fixture
def chain():
    return make_chain()


@pytest.fixture
def diamond():
    return make_diamond()


@pytest.fixture
def forkjoin():
    return make_forkjoin()


@pytest.fixture
def independent():
    return make_independent()


@pytest.fixture
def bus2():
    return shared_bus_platform(2)


@pytest.fixture
def bus3():
    return shared_bus_platform(3)


@pytest.fixture
def diamond_problem(diamond, bus2):
    return compile_problem(diamond, bus2)


# ---------------------------------------------------------------------------
# Independent optimality oracle
# ---------------------------------------------------------------------------


def brute_force_optimum(problem) -> float:
    """Exhaustive minimum max-lateness over all orders and assignments.

    A direct recursive enumeration of every (ready task, processor)
    sequence under the append-only scheduling operation — written
    independently of the engine so it can serve as an oracle.
    """
    best = math.inf

    def recurse(state):
        nonlocal best
        if state.is_goal:
            lat = max(
                state.finish[i] - problem.deadline[i] for i in range(problem.n)
            )
            best = min(best, lat)
            return
        for task in state.ready_tasks():
            for proc in range(problem.m):
                recurse(state.child(task, proc))

    recurse(root_state(problem))
    return best
