"""Batch expansion kernels: differential tests against the scalar path.

Every vectorized kernel behind the array engines is a small pure
function; each one is tested here against the scalar reference it
claims to replicate, with Hypothesis driving the inputs:

* :func:`~repro.core.expand.batch_earliest_starts` against
  ``CompiledProblem.earliest_start`` on random DAG instances (uniform
  *and* heterogeneous interconnects), at arbitrary reachable states —
  equality is exact (``==``), not approximate, because bit-for-bit
  counter parity is the array engines' contract;
* :func:`~repro.core.expand.batch_admission`,
  :func:`~repro.core.expand.batch_lmin` and
  :func:`~repro.core.expand.batch_lb_fast` against scalar
  transcriptions of the fused expander's per-placement expressions, on
  adversarial float inputs (infinities, signed zeros, denormal-scale
  magnitudes);
* the engine-level seam: ``make_batch_expander`` must accept exactly
  the configurations whose counters the batch path replicates and
  refuse the rest.
"""

from __future__ import annotations

import math
import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.arena import ArenaProblem, analyze_cost_domain
from repro.core.bounds import LB0, LB1, LB2, TrivialBound
from repro.core.branching import BFnBranching, DFBranching
from repro.core.dominance import NoDominance, StateDominance
from repro.core.elimination import NoElimination, UDBASElimination
from repro.core.expand import (
    BatchExpander,
    batch_admission,
    batch_earliest_starts,
    batch_lb_fast,
    batch_lmin,
    make_batch_expander,
)
from repro.core.feasibility import LatenessTargetFilter, NoFilter
from repro.core.state import root_state
from repro.model import Platform, compile_problem, shared_bus_platform
from repro.model.interconnect import Ring
from repro.workload import WorkloadSpec, generate_task_graph

SPEC = WorkloadSpec(num_tasks=(5, 9), depth=(2, 4))

#: Finite floats spanning the cost scales the search actually produces,
#: plus signed zeros; kernels compare floats, so sign quirks matter.
finite = st.floats(allow_nan=False, allow_infinity=False, width=64)
#: Thresholds/bounds may legitimately be +-inf (no incumbent yet).
maybe_inf = st.floats(allow_nan=False, allow_infinity=True, width=64)


def _problem(seed: int, m: int, ring: bool):
    graph = generate_task_graph(SPEC, seed=seed)
    if ring:
        platform = Platform(m, Ring(m, delay_per_hop=1.5))
    else:
        platform = shared_bus_platform(m)
    return compile_problem(graph, platform)


# ---------------------------------------------------------------------------
# batch_earliest_starts vs CompiledProblem.earliest_start
# ---------------------------------------------------------------------------


@settings(max_examples=60)
@given(
    seed=st.integers(min_value=0, max_value=19),
    m=st.integers(min_value=2, max_value=4),
    ring=st.booleans(),
    walk=st.randoms(use_true_random=False),
)
def test_batch_earliest_starts_matches_scalar(seed, m, ring, walk):
    problem = _problem(seed, m, ring)
    ap = ArenaProblem(problem)
    procs = np.arange(m, dtype=np.int64)
    state = root_state(problem)
    while True:
        ready = state.ready_tasks()
        if not ready:
            break
        tasks = np.asarray(ready, dtype=np.int64)
        proc_row = np.asarray(state.proc_of, dtype=np.int8)
        finish_row = np.asarray(state.finish, dtype=np.float64)
        avail_row = np.asarray(state.avail, dtype=np.float64)
        S, F = batch_earliest_starts(
            ap, proc_row, finish_row, avail_row, tasks, procs
        )
        for i, task in enumerate(ready):
            for q in range(m):
                want = problem.earliest_start(
                    task, q, state.proc_of, state.finish, state.avail[q]
                )
                assert S[i, q] == want, (task, q)
                assert F[i, q] == want + problem.wcet[task], (task, q)
        state = state.child(walk.choice(ready), walk.randrange(m))


# ---------------------------------------------------------------------------
# batch_admission vs the fused per-placement expressions
# ---------------------------------------------------------------------------


def _scalar_admission(ap, s, f, task, parent_lb, threshold, tail_check, exact):
    """Verbatim transcription of the fused pre-check for one placement."""
    floor = f - ap.deadline[task]
    if parent_lb > floor:
        floor = parent_lb
    skip = floor >= threshold
    if tail_check and not skip:
        if exact:
            press = s + ap.tail_lateness[task]
        else:
            press = s + ap.tail_lateness[task] - ap.eps * (
                abs(s) + ap.tail[task] + ap.maxabs_deadline
            )
        skip = press >= threshold
    return skip, floor


@settings(max_examples=80)
@given(
    seed=st.integers(min_value=0, max_value=9),
    starts=st.lists(finite, min_size=4, max_size=12),
    parent_lb=maybe_inf,
    threshold=maybe_inf,
    tail_check=st.booleans(),
    exact=st.booleans(),
)
def test_batch_admission_matches_scalar(
    seed, starts, parent_lb, threshold, tail_check, exact
):
    problem = _problem(seed, 2, ring=False)
    ap = ArenaProblem(problem)
    n = problem.n
    rng = random.Random(seed)
    tasks = np.asarray(
        [rng.randrange(n) for _ in range(len(starts))], dtype=np.int64
    )
    S = np.asarray(starts, dtype=np.float64)[:, None].repeat(2, axis=1)
    S[:, 1] = S[::-1, 0]  # two distinct processor columns
    F = S + ap.wcet[tasks][:, None]
    skip, floor = batch_admission(
        ap, S, F, tasks, parent_lb, threshold, tail_check, exact
    )
    for i, task in enumerate(tasks):
        for q in range(2):
            w_skip, w_floor = _scalar_admission(
                ap, S[i, q], F[i, q], int(task), parent_lb, threshold,
                tail_check, exact,
            )
            assert floor[i, q] == w_floor or (
                math.isnan(w_floor) and math.isnan(floor[i, q])
            ), (i, q)
            assert bool(skip[i, q]) == w_skip, (i, q)


# ---------------------------------------------------------------------------
# batch_lmin / batch_lb_fast vs the fused scalar branches
# ---------------------------------------------------------------------------


@settings(max_examples=80)
@given(
    avail=st.lists(finite, min_size=2, max_size=6),
    fs=st.lists(finite, min_size=3, max_size=10),
    lmin2=maybe_inf,
    data=st.data(),
)
def test_batch_lmin_matches_scalar(avail, fs, lmin2, data):
    avail_procs = np.asarray(avail, dtype=np.float64)
    # Drive the interesting branches: parent_lmin is often the true
    # minimum of avail (sometimes unique), sometimes an arbitrary float.
    parent_lmin = data.draw(
        st.one_of(st.just(float(avail_procs.min())), finite)
    )
    nmin = int(np.count_nonzero(avail_procs == parent_lmin))
    F = np.asarray(fs, dtype=np.float64)[:, None].repeat(
        len(avail), axis=1
    )
    lmin, changed = batch_lmin(avail_procs, parent_lmin, nmin, lmin2, F)
    for i in range(F.shape[0]):
        for q in range(F.shape[1]):
            f = F[i, q]
            # Fused branch: the floor moves only when processor q held
            # the unique parent minimum; then it becomes min(lmin2, f).
            if avail_procs[q] == parent_lmin and nmin == 1:
                want = lmin2 if lmin2 < f else f
            else:
                want = parent_lmin
            assert lmin[i, q] == want, (i, q)
            assert bool(changed[i, q]) == (
                avail_procs[q] == parent_lmin
                and nmin == 1
                and want != parent_lmin
            ), (i, q)


@settings(max_examples=80)
@given(
    est=st.lists(finite, min_size=3, max_size=8),
    deltas=st.lists(
        st.sampled_from([0.0, 1.0, -1.0, 0.5]), min_size=3, max_size=8
    ),
    lb1=st.booleans(),
    min_cand=maybe_inf,
    lmin_val=maybe_inf,
)
def test_batch_lb_fast_matches_scalar(est, deltas, lb1, min_cand, lmin_val):
    k = min(len(est), len(deltas))
    est_tasks = np.asarray(est[:k], dtype=np.float64)
    F = (est_tasks + np.asarray(deltas[:k], dtype=np.float64))[:, None]
    floor = F - 1.0
    changed = np.zeros_like(F, dtype=bool)
    changed[::2] = True
    mc = np.full_like(F, min_cand)
    lm = np.full_like(F, lmin_val)
    fast, out_floor = batch_lb_fast(est_tasks, F, floor, lb1, changed, mc, lm)
    assert out_floor is floor
    for i in range(k):
        realized = F[i, 0] == est_tasks[i]
        want = realized
        if lb1 and realized:
            want = (not changed[i, 0]) or (min_cand >= lmin_val)
        assert bool(fast[i, 0]) == want, i


# ---------------------------------------------------------------------------
# Factory gates
# ---------------------------------------------------------------------------


def _factory(problem, **overrides):
    kwargs = dict(
        prepared=BFnBranching().prepare(problem),
        bound=LB1(),
        charf=NoFilter(),
        dominance=NoDominance().fresh(),
        elim=UDBASElimination(),
        break_symmetry=False,
    )
    kwargs.update(overrides)
    return make_batch_expander(problem, **kwargs)


def test_factory_accepts_the_paper_configurations():
    problem = _problem(0, 2, ring=False)
    for bound in (TrivialBound(), LB0(), LB1()):
        expander = _factory(problem, bound=bound)
        assert type(expander) is BatchExpander, bound.name
    assert _factory(problem, elim=NoElimination()) is not None
    assert _factory(
        problem, prepared=DFBranching().prepare(problem)
    ) is not None


def test_factory_refuses_unreplicated_configurations():
    problem = _problem(0, 2, ring=False)
    assert _factory(problem, bound=LB2()) is None, "no incremental form"
    assert _factory(problem, dominance=StateDominance().fresh()) is None
    assert _factory(
        problem, charf=LatenessTargetFilter(0.0)
    ) is None, "admission filters run per materialized child"


def test_exactness_certificate_drives_the_admission_margin():
    # Integer-valued paper workloads certify exact; the kernel then
    # drops the defensive margin, and both variants must still agree
    # with the fused engine (covered end-to-end by the engine sweep).
    problem = _problem(0, 2, ring=False)
    assert analyze_cost_domain(problem).exact in (True, False)
    expander = _factory(problem)
    assert expander is not None
    assert expander.ap.domain.exact == analyze_cost_domain(problem).exact
