"""Tests for ``repro bench --compare`` (schema-tolerant report diffs)."""

from __future__ import annotations

import json

import pytest

from repro.bench import compare_benchmarks, render_comparison
from repro.cli import main
from repro.errors import ReproError


def _write(tmp_path, name, payload):
    path = tmp_path / name
    path.write_text(json.dumps(payload))
    return str(path)


def pr2_style(cells):
    return {
        "schema": "repro-bench-pr2/1",
        "instances": [
            {"name": n, "opt_seconds": s, "generated": g}
            for n, s, g in cells
        ],
    }


def pr4_style(cells):
    return {
        "schema": "repro-bench-pr4/1",
        "instances": [
            {"name": n, "base": {"seconds": s, "generated": g}}
            for n, s, g in cells
        ],
    }


def pr8_style(cells):
    return {
        "schema": "repro-bench-pr8/1",
        "instances": [
            {"name": n, "tt": {"generated": 10 * g},
             "ao": {"seconds": s, "generated": g}}
            for n, s, g in cells
        ],
    }


class TestCompare:
    def test_identical_reports_have_unit_ratios(self, tmp_path):
        report = pr2_style([("a", 1.0, 100), ("b", 2.0, 200)])
        old = _write(tmp_path, "old.json", report)
        new = _write(tmp_path, "new.json", report)
        cmp = compare_benchmarks(old, new)
        assert cmp.ok
        assert cmp.geomean_time_ratio == pytest.approx(1.0)
        assert cmp.geomean_vertex_ratio == pytest.approx(1.0)
        assert len(cmp.cells) == 2

    def test_cross_schema_extraction(self, tmp_path):
        old = _write(
            tmp_path, "old.json", pr2_style([("a", 1.0, 100)])
        )
        new = _write(
            tmp_path, "new.json", pr4_style([("a", 1.5, 100)])
        )
        cmp = compare_benchmarks(old, new, time_threshold=1.0)
        assert cmp.ok
        assert cmp.cells[0]["time_ratio"] == pytest.approx(1.5)
        assert cmp.cells[0]["vertex_ratio"] == pytest.approx(1.0)

    def test_pr8_schema_extracts_the_ao_engine(self, tmp_path):
        # The dupfree report nests its canonical cell under "ao" (not
        # "base"); the diff must read that, never the tt side.
        old = _write(tmp_path, "old.json", pr8_style([("a", 1.0, 100)]))
        new = _write(tmp_path, "new.json", pr8_style([("a", 1.0, 105)]))
        cmp = compare_benchmarks(old, new)
        assert not cmp.ok
        assert cmp.cells[0]["old_generated"] == 100
        assert cmp.cells[0]["vertex_ratio"] == pytest.approx(1.05)

    def test_time_regression_detected(self, tmp_path):
        old = _write(tmp_path, "old.json", pr2_style([("a", 1.0, 100)]))
        new = _write(tmp_path, "new.json", pr2_style([("a", 1.5, 100)]))
        cmp = compare_benchmarks(old, new, time_threshold=0.20)
        assert not cmp.ok
        assert "wall-clock" in cmp.regressions[0]

    def test_vertex_regression_is_tight(self, tmp_path):
        # 2% more vertices at equal seconds: deterministic counts grew,
        # which the default 1% threshold must flag.
        old = _write(tmp_path, "old.json", pr2_style([("a", 1.0, 1000)]))
        new = _write(tmp_path, "new.json", pr2_style([("a", 1.0, 1020)]))
        cmp = compare_benchmarks(old, new)
        assert not cmp.ok
        assert "generated" in cmp.regressions[0]

    def test_faster_and_fewer_is_never_a_regression(self, tmp_path):
        old = _write(tmp_path, "old.json", pr2_style([("a", 2.0, 1000)]))
        new = _write(tmp_path, "new.json", pr2_style([("a", 1.0, 900)]))
        assert compare_benchmarks(old, new).ok

    def test_disjoint_cells_noted_not_compared(self, tmp_path):
        old = _write(
            tmp_path, "old.json",
            pr2_style([("a", 1.0, 10), ("gone", 1.0, 10)]),
        )
        new = _write(
            tmp_path, "new.json",
            pr2_style([("a", 1.0, 10), ("fresh", 1.0, 10)]),
        )
        cmp = compare_benchmarks(old, new)
        assert cmp.only_old == ["gone"]
        assert cmp.only_new == ["fresh"]
        assert [c["name"] for c in cmp.cells] == ["a"]

    def test_unmatched_cells_are_warnings_not_regressions(self, tmp_path):
        old = _write(
            tmp_path, "old.json",
            pr2_style([("a", 1.0, 10), ("gone", 1.0, 10)]),
        )
        new = _write(tmp_path, "new.json", pr2_style([("a", 1.0, 10)]))
        cmp = compare_benchmarks(old, new)
        assert cmp.ok
        text = render_comparison(cmp)
        assert "warning: cell gone only in" in text
        assert "note:" not in text

    def test_strict_cells_escalates_unmatched_to_regressions(self, tmp_path):
        old = _write(
            tmp_path, "old.json",
            pr2_style([("a", 1.0, 10), ("gone", 1.0, 10)]),
        )
        new = _write(
            tmp_path, "new.json",
            pr2_style([("a", 1.0, 10), ("fresh", 1.0, 10)]),
        )
        cmp = compare_benchmarks(old, new, strict_cells=True)
        assert not cmp.ok
        assert len(cmp.regressions) == 2
        assert any(
            "gone" in r and "--strict-cells" in r for r in cmp.regressions
        )
        assert any(
            "fresh" in r and "--strict-cells" in r for r in cmp.regressions
        )

    def test_strict_cells_passes_when_suites_match(self, tmp_path):
        report = pr2_style([("a", 1.0, 10), ("b", 2.0, 20)])
        old = _write(tmp_path, "old.json", report)
        new = _write(tmp_path, "new.json", report)
        assert compare_benchmarks(old, new, strict_cells=True).ok

    def test_no_shared_cells_is_an_error(self, tmp_path):
        old = _write(tmp_path, "old.json", pr2_style([("a", 1.0, 10)]))
        new = _write(tmp_path, "new.json", pr2_style([("b", 1.0, 10)]))
        with pytest.raises(ReproError, match="no shared bench cells"):
            compare_benchmarks(old, new)

    def test_unreadable_file_is_an_error(self, tmp_path):
        old = _write(tmp_path, "old.json", pr2_style([("a", 1.0, 10)]))
        with pytest.raises(ReproError, match="cannot read"):
            compare_benchmarks(old, str(tmp_path / "missing.json"))

    def test_render_mentions_geomeans_and_verdict(self, tmp_path):
        old = _write(tmp_path, "old.json", pr2_style([("a", 1.0, 100)]))
        new = _write(tmp_path, "new.json", pr2_style([("a", 1.0, 100)]))
        text = render_comparison(compare_benchmarks(old, new))
        assert "geomean wall-clock ratio: 1.000x" in text
        assert "geomean vertex ratio: 1.0000x" in text
        assert "no regressions beyond threshold" in text


class TestCompareCli:
    def test_clean_compare_exits_zero(self, tmp_path, capsys):
        report = pr2_style([("a", 1.0, 100)])
        old = _write(tmp_path, "old.json", report)
        new = _write(tmp_path, "new.json", report)
        assert main(["bench", "--compare", old, new]) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_regression_exits_nonzero(self, tmp_path, capsys):
        old = _write(tmp_path, "old.json", pr2_style([("a", 1.0, 100)]))
        new = _write(tmp_path, "new.json", pr2_style([("a", 9.0, 100)]))
        assert main(["bench", "--compare", old, new]) == 1
        assert "REGRESSIONS" in capsys.readouterr().out

    def test_thresholds_are_flags(self, tmp_path):
        old = _write(tmp_path, "old.json", pr2_style([("a", 1.0, 100)]))
        new = _write(tmp_path, "new.json", pr2_style([("a", 1.5, 100)]))
        assert main([
            "bench", "--compare", old, new, "--time-threshold", "0.6",
        ]) == 0

    def test_strict_cells_flag_exits_nonzero_on_missing_cell(
        self, tmp_path, capsys
    ):
        old = _write(
            tmp_path, "old.json",
            pr2_style([("a", 1.0, 100), ("gone", 1.0, 100)]),
        )
        new = _write(tmp_path, "new.json", pr2_style([("a", 1.0, 100)]))
        assert main(["bench", "--compare", old, new]) == 0
        assert main([
            "bench", "--compare", old, new, "--strict-cells",
        ]) == 1
        assert "--strict-cells" in capsys.readouterr().out

    def test_committed_reports_actually_compare(self):
        # The repo's own BENCH files are the real consumers: PR 2 and
        # PR 3 share every cell name, so the tool must diff them.
        assert main([
            "bench", "--compare", "BENCH_PR2.json", "BENCH_PR3.json",
            "--time-threshold", "1000", "--vertex-threshold", "1000",
        ]) == 0
