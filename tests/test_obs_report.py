"""Search-tree analytics in ``repro report`` (PR 6 additions).

Two layers: golden-output tests on a hand-written synthetic trace
(every number in the rendered tables is checked against arithmetic done
by eye), and an end-to-end pass over a real traced solve asserting the
analytics sections appear and agree with the engine's counters.
"""

from __future__ import annotations

import io
import json

from faultlib import hard_problem
from repro.core import BnBParameters, BranchAndBound
from repro.obs import JsonlSink, Observability, load_trace, render_trace_report

SYNTHETIC_EVENTS = [
    {"ev": "start", "n": 5, "m": 2, "initial_bound": 4.0},
    {"ev": "explore", "t": 0.0, "generated": 1, "level": 0, "lb": 1.0,
     "active": 1},
    {"ev": "explore", "t": 0.1, "generated": 3, "level": 1, "lb": 1.5,
     "active": 2},
    {"ev": "explore", "t": 0.2, "generated": 5, "level": 1, "lb": 1.6,
     "active": 2},
    {"ev": "explore", "t": 0.3, "generated": 7, "level": 2, "lb": 2.0,
     "active": 3},
    {"ev": "incumbent", "generated": 7, "cost": 3.0, "elapsed": 0.25},
    {"ev": "prune", "cause": "bound", "level": 1, "count": 4},
    {"ev": "prune", "cause": "bound", "level": 2, "count": 2},
    {"ev": "prune", "cause": "infeasible", "level": 2},
    {"ev": "prune", "cause": "stale-active", "count": 3},
    {"ev": "incumbent", "generated": 11, "cost": 2.5, "elapsed": 0.4},
    {"ev": "summary", "status": "optimal", "best_cost": 2.5,
     "stats": {"pruned_children": 6, "pruned_infeasible": 1,
               "pruned_active": 3}},
]


def synthetic_report():
    text = "\n".join(json.dumps(e) for e in SYNTHETIC_EVENTS) + "\n"
    return load_trace(io.StringIO(text))


class TestTraceReportAnalytics:
    def test_incumbent_timeline_parsed(self):
        report = synthetic_report()
        assert report.incumbent_timeline == [
            (0.25, 7, 3.0), (0.4, 11, 2.5)
        ]
        assert report.first_incumbent_elapsed == 0.25

    def test_prunes_parsed_with_optional_level_and_count(self):
        report = synthetic_report()
        assert ("bound", 1, 4) in report.prunes
        assert ("bound", 2, 2) in report.prunes
        assert ("infeasible", 2, 1) in report.prunes
        assert ("stale-active", None, 3) in report.prunes

    def test_pruning_by_depth_skips_unattributed_events(self):
        by_depth = synthetic_report().pruning_by_depth()
        assert by_depth == {
            "bound": {1: 4, 2: 2},
            "infeasible": {2: 1},
        }

    def test_explored_by_level_and_branching_decay(self):
        report = synthetic_report()
        assert report.explored_by_level() == {0: 1, 1: 2, 2: 1}
        decay = report.branching_decay()
        assert decay[0] == (0, 1, None)
        assert decay[1] == (1, 2, 2.0)
        assert decay[2] == (2, 1, 0.5)


class TestRenderedAnalytics:
    def test_golden_sections_rendered(self):
        text = render_trace_report(synthetic_report())
        assert "incumbent timeline:" in text
        assert "0.250s" in text and "0.400s" in text
        assert "pruning by depth band (sampled events):" in text
        assert "branching-factor decay (sampled explores per level):" in text
        assert "2.00x" in text and "0.50x" in text

    def test_depth_band_table_golden(self):
        text = render_trace_report(synthetic_report())
        lines = text.splitlines()
        i = lines.index("pruning by depth band (sampled events):")
        # Causes ordered by total pruned, descending: bound(6) then
        # infeasible(1); levels 0..2 in one-band-wide rows.
        header = lines[i + 1].split()
        assert header == ["levels", "bound", "infeasible"]
        table = [line.split() for line in lines[i + 3: i + 6]]
        assert table == [
            ["0", "-", "-"],
            ["1", "4", "-"],
            ["2", "2", "1"],
        ]

    def test_timeline_elides_middle_rows(self):
        events = [{"ev": "start", "initial_bound": 99.0}]
        for i in range(30):
            events.append({
                "ev": "incumbent", "generated": i + 1,
                "cost": 99.0 - i, "elapsed": 0.01 * i,
            })
        text = "\n".join(json.dumps(e) for e in events) + "\n"
        rendered = render_trace_report(load_trace(io.StringIO(text)))
        assert "intermediate improvements omitted" in rendered
        # The last improvement always survives the elision.
        assert "70" in rendered

    def test_analytics_absent_on_empty_trace(self):
        report = load_trace(io.StringIO(""))
        text = render_trace_report(report)
        assert "incumbent timeline:" not in text
        assert "pruning by depth band" not in text
        assert "branching-factor decay" not in text


class TestRealSolveTrace:
    def test_traced_solve_renders_analytics(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(str(path))
        obs = Observability(sink=sink)
        result = BranchAndBound(BnBParameters(), obs=obs).solve(
            hard_problem(seed=5)
        )
        obs.close()
        report = load_trace(str(path))
        text = render_trace_report(report)
        # Seed 5 improves its incumbent mid-search, so the timeline and
        # both tree-shape sections must materialize from a real trace.
        assert report.incumbent_timeline
        assert "incumbent timeline:" in text
        assert "pruning by depth band (sampled events):" in text
        assert "branching-factor decay" in text
        # Sampled prune events with depth attribution never exceed the
        # engine's exact counters.
        stats = result.stats
        exact = (stats.pruned_children + stats.pruned_infeasible
                 + stats.pruned_dominated + stats.pruned_duplicate)
        attributed = sum(
            count
            for per in report.pruning_by_depth().values()
            for count in per.values()
        )
        assert attributed <= exact
