"""Unit tests for repro.model.interconnect."""

import pytest

from repro.errors import ModelError
from repro.model import FullyConnected, Mesh2D, Ring, SharedBus, ZeroCost
from repro.model.interconnect import square_mesh


class TestSharedBus:
    def test_paper_platform_delay(self):
        # Section 4: one time unit per transmitted data item.
        bus = SharedBus(3)
        assert bus.nominal_delay(0, 1) == 1.0
        assert bus.nominal_delay(2, 1) == 1.0

    def test_local_communication_is_free(self):
        bus = SharedBus(3)
        for p in range(3):
            assert bus.nominal_delay(p, p) == 0.0

    def test_message_cost(self):
        bus = SharedBus(2, delay_per_item=2.0)
        assert bus.message_cost(0, 1, 10.0) == 20.0
        assert bus.message_cost(1, 1, 10.0) == 0.0

    def test_delay_matrix(self):
        bus = SharedBus(2)
        assert bus.delay_matrix() == [[0.0, 1.0], [1.0, 0.0]]

    def test_out_of_range_processor_rejected(self):
        bus = SharedBus(2)
        with pytest.raises(ModelError, match="out of range"):
            bus.nominal_delay(0, 2)
        with pytest.raises(ModelError, match="out of range"):
            bus.nominal_delay(-1, 0)

    def test_zero_processors_rejected(self):
        with pytest.raises(ModelError):
            SharedBus(0)

    def test_negative_delay_rejected(self):
        with pytest.raises(ModelError):
            SharedBus(2, delay_per_item=-1.0)


class TestFullyConnected:
    def test_uniform_offdiagonal(self):
        net = FullyConnected(4, delay_per_item=0.5)
        assert net.nominal_delay(0, 3) == 0.5
        assert net.nominal_delay(3, 0) == 0.5
        assert net.nominal_delay(1, 1) == 0.0


class TestRing:
    def test_shortest_way_around(self):
        ring = Ring(6)
        assert ring.hops(0, 1) == 1
        assert ring.hops(0, 3) == 3
        assert ring.hops(0, 5) == 1  # wraps
        assert ring.hops(1, 4) == 3

    def test_delay_scales_with_hops(self):
        ring = Ring(6, delay_per_hop=2.0)
        assert ring.nominal_delay(0, 5) == 2.0
        assert ring.nominal_delay(0, 3) == 6.0
        assert ring.nominal_delay(2, 2) == 0.0

    def test_symmetry(self):
        ring = Ring(5)
        for a in range(5):
            for b in range(5):
                assert ring.nominal_delay(a, b) == ring.nominal_delay(b, a)


class TestMesh2D:
    def test_coordinates_row_major(self):
        mesh = Mesh2D(rows=2, cols=3)
        assert mesh.num_processors == 6
        assert mesh.coordinates(0) == (0, 0)
        assert mesh.coordinates(2) == (2, 0)
        assert mesh.coordinates(3) == (0, 1)

    def test_manhattan_hops(self):
        mesh = Mesh2D(rows=2, cols=3)
        assert mesh.hops(0, 5) == 3  # (0,0) -> (2,1)
        assert mesh.hops(1, 4) == 1
        assert mesh.hops(4, 4) == 0

    def test_delay(self):
        mesh = Mesh2D(rows=2, cols=2, delay_per_hop=3.0)
        assert mesh.nominal_delay(0, 3) == 6.0

    def test_bad_dimensions_rejected(self):
        with pytest.raises(ModelError):
            Mesh2D(rows=0, cols=3)

    def test_square_mesh_factory(self):
        mesh = square_mesh(6)
        assert mesh.rows * mesh.cols == 6
        assert mesh.rows == 2
        mesh9 = square_mesh(9)
        assert (mesh9.rows, mesh9.cols) == (3, 3)
        mesh7 = square_mesh(7)  # prime: degenerates to a row
        assert mesh7.rows * mesh7.cols == 7


class TestZeroCost:
    def test_always_free(self):
        net = ZeroCost(3)
        assert net.nominal_delay(0, 2) == 0.0
        assert net.message_cost(0, 1, 1000.0) == 0.0
