"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.io import save_graph
from repro.workload import generate_task_graph, tiny_spec


@pytest.fixture
def graph_file(tmp_path):
    g = generate_task_graph(tiny_spec(), seed=0)
    path = tmp_path / "g.json"
    save_graph(g, path)
    return str(path)


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0


class TestGenerate:
    def test_generate_prints_summary(self, capsys):
        assert main(["generate", "--profile", "tiny", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "tasks" in out and "depth" in out

    def test_generate_writes_files(self, tmp_path, capsys):
        json_path = tmp_path / "g.json"
        dot_path = tmp_path / "g.dot"
        rc = main([
            "generate", "--profile", "tiny", "--seed", "1",
            "-o", str(json_path), "--dot", str(dot_path),
        ])
        assert rc == 0
        data = json.loads(json_path.read_text())
        assert data["format"] == "repro/taskgraph-v1"
        assert dot_path.read_text().startswith("digraph")

    def test_generate_ccr_override(self, tmp_path, capsys):
        json_path = tmp_path / "g.json"
        assert main([
            "generate", "--profile", "tiny", "--ccr", "0",
            "-o", str(json_path),
        ]) == 0
        data = json.loads(json_path.read_text())
        assert all(c["message_size"] == 0.0 for c in data["channels"])


class TestSolve:
    def test_solve_default(self, graph_file, capsys):
        assert main(["solve", graph_file, "-m", "2"]) == 0
        out = capsys.readouterr().out
        assert "optimal" in out
        assert "S=LIFO" in out

    def test_solve_with_options(self, graph_file, capsys):
        rc = main([
            "solve", graph_file, "-m", "2",
            "--selection", "LLB", "--bound", "LB0",
            "--branching", "DF", "--br", "0.1",
            "--max-vertices", "10000", "--gantt",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "S=LLB" in out and "L=LB0" in out and "B=DF" in out
        assert "p0:" in out  # gantt

    def test_solve_missing_file_errors(self, capsys):
        # A missing input is a clean diagnostic (exit 2), not a traceback.
        assert main(["solve", "/nonexistent/g.json"]) == 2
        err = capsys.readouterr().err
        assert "/nonexistent/g.json" in err
        assert "cannot read" in err

    def test_solve_bad_rule_rejected_by_argparse(self, graph_file):
        with pytest.raises(SystemExit):
            main(["solve", graph_file, "--selection", "BOGUS"])


class TestExperimentAndList:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig3a" in out and "disc-ccr" in out

    def test_experiment_runs_and_saves(self, tmp_path, capsys):
        out_path = tmp_path / "fig3b.json"
        rc = main([
            "experiment", "fig3b", "--profile", "tiny",
            "--graphs", "2", "-o", str(out_path),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "searched vertices" in out
        data = json.loads(out_path.read_text())
        assert data["name"] == "fig3b"

    def test_experiment_unknown_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "fig9z"])


class TestNewFeatures:
    def test_generate_stg_output(self, tmp_path, capsys):
        stg_path = tmp_path / "g.stg"
        assert main([
            "generate", "--profile", "tiny", "--seed", "2", "-o", str(stg_path),
        ]) == 0
        text = stg_path.read_text()
        assert text.splitlines()[1] == "0 0 0"  # dummy entry

    def test_solve_stg_input(self, tmp_path, capsys):
        stg_path = tmp_path / "g.stg"
        main(["generate", "--profile", "tiny", "--seed", "2", "-o", str(stg_path)])
        assert main(["solve", str(stg_path), "-m", "2", "--laxity", "2.0"]) == 0
        out = capsys.readouterr().out
        assert "optimal" in out

    def test_solve_chart_and_bus(self, graph_file, capsys):
        assert main(["solve", graph_file, "-m", "2", "--chart", "--bus"]) == 0
        out = capsys.readouterr().out
        assert "p0 |" in out  # gantt chart row
        assert "bus[fcfs]" in out

    def test_solve_trace_csv(self, graph_file, tmp_path, capsys):
        csv_path = tmp_path / "trace.csv"
        assert main([
            "solve", graph_file, "-m", "2", "--trace-csv", str(csv_path),
        ]) == 0
        lines = csv_path.read_text().splitlines()
        assert lines[0].startswith("step,generated")
        assert len(lines) >= 1

    def test_convert_json_to_stg_and_back(self, graph_file, tmp_path, capsys):
        stg_path = tmp_path / "g.stg"
        json_path = tmp_path / "g2.json"
        dot_path = tmp_path / "g.dot"
        assert main(["convert", graph_file, str(stg_path)]) == 0
        assert main(["convert", str(stg_path), str(json_path)]) == 0
        assert main(["convert", graph_file, str(dot_path)]) == 0
        assert json.loads(json_path.read_text())["format"] == "repro/taskgraph-v1"
        assert dot_path.read_text().startswith("digraph")

    def test_scaling_experiment_registered(self, capsys):
        assert main(["list"]) == 0
        assert "scaling" in capsys.readouterr().out


class TestSolveLiveMonitor:
    def test_serve_status_prints_url_and_solves(self, graph_file, capsys):
        rc = main(["solve", graph_file, "--serve-status"])
        assert rc == 0
        err = capsys.readouterr().err
        assert "monitor: http://127.0.0.1:" in err

    def test_serve_status_accepts_explicit_port(self, graph_file):
        args = build_parser().parse_args(
            ["solve", graph_file, "--serve-status", "8123"]
        )
        assert args.serve_status == 8123

    def test_flight_recorder_quiet_on_clean_finish(
        self, graph_file, tmp_path, monkeypatch, capsys
    ):
        monkeypatch.chdir(tmp_path)
        rc = main(["solve", graph_file, "--flight-recorder", "32"])
        assert rc == 0
        # A clean solve dumps nothing: the recorder is crash-only.
        assert not (tmp_path / "repro-flight.json").exists()
