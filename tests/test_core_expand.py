"""Fused expansion path: equivalence with the reference loop.

The fused :class:`~repro.core.expand.FusedExpander` (incremental lower
bounds, admission pre-check, lazy child states) must be *search-order
invisible*: every solve statistic, the incumbent trajectory and the
returned schedule have to match the reference per-child loop exactly,
across every rule combination the engine accepts.  These tests sweep
generated workloads through both paths and compare them field by field,
and additionally pin the supporting machinery: incremental bound
evaluations against the full recursions, lazy child materialization
against eager construction, the compiled static tails against brute
force, and the lazy-deletion LLB frontier against a naive model.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.core.bounds import LB0, LB1, LB2, TrivialBound
from repro.core.branching import BF1Branching, BFnBranching, DFBranching
from repro.core.dominance import StateDominance
from repro.core.elimination import NoElimination
from repro.core.engine import BranchAndBound
from repro.core.expand import FusedExpander, PendingChild
from repro.core.feasibility import LatenessTargetFilter
from repro.core.params import BnBParameters
from repro.core.resources import ResourceBounds
from repro.core.selection import (
    DepthBiasedLLBSelection,
    FIFOSelection,
    LIFOSelection,
    LLBSelection,
)
from repro.core.state import root_state
from repro.core.vertex import Vertex
from repro.model.compile import compile_problem
from repro.model.platform import shared_bus_platform
from repro.workload.generator import generate_task_graph
from repro.workload.suites import spec_for_profile

#: Cap so that weak configurations (TrivialBound, NoElimination) stay
#: cheap; truncation is fine — both paths must truncate identically.
_CAPPED = ResourceBounds(max_vertices=20_000, fail_on_exhaustion=False)


def _problem(seed: int, m: int = 2, profile: str = "tiny"):
    graph = generate_task_graph(spec_for_profile(profile), seed)
    return compile_problem(graph, shared_bus_platform(m))


def _solve_both(params: BnBParameters, problem):
    ref = BranchAndBound(params, fused=False).solve(problem)
    opt = BranchAndBound(params, fused=True).solve(problem)
    return ref, opt


def _fingerprint(result):
    s = result.stats
    return {
        "status": result.status,
        "best_cost": result.best_cost,
        "proc_of": result.proc_of,
        "start": result.start,
        "generated": s.generated,
        "explored": s.explored,
        "goals_evaluated": s.goals_evaluated,
        "pruned_children": s.pruned_children,
        "pruned_active": s.pruned_active,
        "pruned_infeasible": s.pruned_infeasible,
        "pruned_dominated": s.pruned_dominated,
        "dropped_resource": s.dropped_resource,
        "incumbent_updates": s.incumbent_updates,
        "peak_active": s.peak_active,
        "truncated": s.truncated,
    }


def _assert_equivalent(params: BnBParameters, problem, label: str):
    ref, opt = _solve_both(params, problem)
    assert _fingerprint(ref) == _fingerprint(opt), label


# ---------------------------------------------------------------------------
# Core sweep: branching x selection x bound
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "branching", [BFnBranching(), DFBranching(), BF1Branching()],
    ids=["BFn", "DF", "BF1"],
)
@pytest.mark.parametrize(
    "selection", [LIFOSelection(), FIFOSelection(), LLBSelection()],
    ids=["LIFO", "FIFO", "LLB"],
)
@pytest.mark.parametrize("bound", [LB0(), LB1()], ids=["LB0", "LB1"])
def test_fused_matches_reference_core_sweep(branching, selection, bound):
    params = BnBParameters(
        branching=branching,
        selection=selection,
        lower_bound=bound,
        resources=_CAPPED,
    )
    for seed in range(3):
        for m in (2, 3):
            _assert_equivalent(
                params, _problem(seed, m), f"seed={seed} m={m}"
            )


# ---------------------------------------------------------------------------
# Rule variants the pre-check / lazy paths must detect and disable
# ---------------------------------------------------------------------------


_VARIANTS = {
    "trivial-bound": {"lower_bound": TrivialBound()},
    "lb2-no-incremental": {"lower_bound": LB2()},
    "state-dominance": {"dominance": StateDominance()},
    "lateness-filter": {"characteristic": LatenessTargetFilter(0.0)},
    "no-elimination": {
        "elimination": NoElimination(),
        # Uncut searches explode; a tight cap keeps them comparable.
        "resources": ResourceBounds(
            max_vertices=4_000, fail_on_exhaustion=False
        ),
    },
    "inaccuracy-br": {"inaccuracy": 0.10},
    "best-last-order": {"child_order": "best-last"},
    "best-first-order": {"child_order": "best-first"},
    "symmetry-breaking": {"break_symmetry": True},
    "depth-biased-llb": {"selection": DepthBiasedLLBSelection()},
}


@pytest.mark.parametrize("variant", sorted(_VARIANTS), ids=sorted(_VARIANTS))
def test_fused_matches_reference_rule_variants(variant):
    params = BnBParameters(**{"resources": _CAPPED, **_VARIANTS[variant]})
    for seed in range(3):
        _assert_equivalent(params, _problem(seed), f"seed={seed}")


def test_fused_matches_reference_scaled_llb():
    """One larger best-first instance: the keep-heavy lazy-state path."""
    params = BnBParameters.paper_llb(resources=_CAPPED)
    _assert_equivalent(params, _problem(0, 2, profile="scaled"), "scaled")


# ---------------------------------------------------------------------------
# Array engines: the same equivalence sweep, engine-parametrized
# ---------------------------------------------------------------------------
#
# The array engines (numpy batch expansion, and the compiled chunk
# driver where eligible) carry the same contract as the fused path:
# search-order invisible, every counter identical.  Configurations the
# batch factory refuses (LB2, dominance, filters) must degrade to the
# fused path silently — the engine parameter is then a no-op, which
# these sweeps verify just as strictly.


def _assert_engines_equivalent(params: BnBParameters, problem, label: str):
    want = _fingerprint(BranchAndBound(params).solve(problem))
    for engine in ("array", "array-numpy"):
        got = _fingerprint(
            BranchAndBound(params.evolve(engine=engine)).solve(problem)
        )
        assert got == want, f"{label} engine={engine}"


@pytest.mark.parametrize(
    "branching", [BFnBranching(), DFBranching(), BF1Branching()],
    ids=["BFn", "DF", "BF1"],
)
@pytest.mark.parametrize(
    "selection", [LIFOSelection(), FIFOSelection(), LLBSelection()],
    ids=["LIFO", "FIFO", "LLB"],
)
@pytest.mark.parametrize(
    "bound", [TrivialBound(), LB0(), LB1()], ids=["trivial", "LB0", "LB1"]
)
def test_array_engines_match_object_core_sweep(branching, selection, bound):
    params = BnBParameters(
        branching=branching,
        selection=selection,
        lower_bound=bound,
        resources=_CAPPED,
    )
    for seed in range(2):
        for m in (2, 3):
            _assert_engines_equivalent(
                params, _problem(seed, m), f"seed={seed} m={m}"
            )


@pytest.mark.parametrize("variant", sorted(_VARIANTS), ids=sorted(_VARIANTS))
def test_array_engines_match_object_rule_variants(variant):
    params = BnBParameters(**{"resources": _CAPPED, **_VARIANTS[variant]})
    for seed in range(2):
        _assert_engines_equivalent(params, _problem(seed), f"seed={seed}")


def test_array_engine_survives_forced_numpy_fallback(monkeypatch):
    """With the native driver disabled, engine='array' equals numpy."""
    from repro.core import _native

    monkeypatch.setattr(_native, "_LIB", None)
    monkeypatch.setattr(_native, "_LIB_TRIED", True)
    assert not _native.native_available()
    params = BnBParameters(resources=_CAPPED, lower_bound=TrivialBound())
    _assert_engines_equivalent(params, _problem(0), "no-native")


# ---------------------------------------------------------------------------
# Incremental bounds vs the full recursions
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "bound", [TrivialBound(), LB0(), LB1()],
    ids=["Trivial", "LB0", "LB1"],
)
def test_incremental_bound_matches_full_evaluate(bound):
    """Walk random branches; every child bound must equal the oracle."""
    rng = random.Random(42)
    for seed in range(4):
        problem = _problem(seed)
        inc = bound.make_incremental(problem)
        assert inc is not None
        for _ in range(6):
            state = root_state(problem)
            lb, est, estart = inc.root(state)
            assert lb == bound.evaluate(state)
            while not state.is_goal:
                ready = state.ready_tasks()
                task = rng.choice(ready)
                proc = rng.randrange(problem.m)
                child = state.child(task, proc)
                if inc.uses_lmin:
                    lmin = child.min_avail()
                    changed = lmin != state.min_avail()
                else:
                    lmin, changed = 0.0, False
                child_lb = inc.child(
                    est, estart, lb, task, child.finish[task],
                    child.scheduled_mask, lmin, changed,
                )
                assert child_lb == bound.evaluate(child), (
                    f"seed={seed} task={task} proc={proc}"
                )
                est, estart = inc.commit()
                state, lb = child, child_lb

# ---------------------------------------------------------------------------
# Lazy child materialization
# ---------------------------------------------------------------------------


def test_pending_child_materializes_identically():
    """Lazy vertices freeze to exactly the state eager construction gives."""
    problem = _problem(1)
    params = BnBParameters(resources=_CAPPED)
    expander = FusedExpander(
        problem,
        params.branching.prepare(problem),
        params.lower_bound,
        params.characteristic,
        params.dominance.fresh(),
        params.elimination,
        params.break_symmetry,
    )
    assert expander.lazy_states
    root = expander.root()
    _, children, *_ = expander.expand(root, math.inf, 1)
    assert children, "root expansion produced no children"
    for vertex in children:
        pending = vertex.state
        assert type(pending) is PendingChild
        assert pending.level == root.state.level + 1
        assert not pending.is_goal
        eager = root.state.child(pending.task, pending.proc)
        lazy = pending.materialize()
        for attr in (
            "scheduled_mask", "ready_mask", "proc_of", "start",
            "finish", "avail", "level", "scheduled_lateness",
        ):
            assert getattr(lazy, attr) == getattr(eager, attr), attr
        assert lazy.min_avail() == eager.min_avail()


# ---------------------------------------------------------------------------
# Compiled static tails / descendant closure
# ---------------------------------------------------------------------------


def _brute_tail(problem, i):
    """Longest pure-execution path weight starting at ``i``."""
    best = 0.0
    for j, _ in problem.succ_edges[i]:
        t = _brute_tail(problem, j)
        if t > best:
            best = t
    return problem.wcet[i] + best


def _brute_tail_lateness(problem, i):
    """max over paths i..j of (path execution weight - deadline[j])."""
    best = -problem.deadline[i]
    for j, _ in problem.succ_edges[i]:
        t = _brute_tail_lateness(problem, j)
        if t > best:
            best = t
    return problem.wcet[i] + best


def _brute_descendants(problem, i):
    mask = 0
    for j, _ in problem.succ_edges[i]:
        mask |= (1 << j) | _brute_descendants(problem, j)
    return mask


@pytest.mark.parametrize("seed", range(4))
def test_compiled_tails_match_brute_force(seed):
    problem = _problem(seed)
    for i in range(problem.n):
        assert problem.tail[i] == pytest.approx(_brute_tail(problem, i))
        assert problem.tail_lateness[i] == pytest.approx(
            _brute_tail_lateness(problem, i)
        )
        assert problem.desc_mask[i] == _brute_descendants(problem, i)
        # Rank mask: direct successors, addressed by topological rank.
        mask = 0
        for j, _ in problem.succ_edges[i]:
            mask |= 1 << problem.topo_pos[j]
        assert problem.succ_rank_mask[i] == mask
        assert problem.topo[problem.topo_pos[i]] == i


# ---------------------------------------------------------------------------
# Lazy-deletion LLB frontier vs a naive model
# ---------------------------------------------------------------------------


class _ModelFrontier:
    """Obviously-correct eager reference for the lazy-deletion heap."""

    def __init__(self):
        self.items = []
        self.threshold = math.inf

    def push(self, v):
        if v.lower_bound < self.threshold:
            self.items.append(v)

    def pop(self):
        if not self.items:
            return None
        best = min(self.items, key=lambda v: (v.lower_bound, v.seq))
        self.items.remove(best)
        return best

    def prune_above(self, threshold):
        if threshold >= self.threshold:
            return 0
        before = len(self.items)
        self.items = [v for v in self.items if v.lower_bound < threshold]
        self.threshold = threshold
        return before - len(self.items)

    def drop_worst(self, count):
        if count <= 0:
            return 0
        worst = sorted(
            self.items, key=lambda v: (v.lower_bound, v.seq)
        )[-count:] if count < len(self.items) else list(self.items)
        for v in worst:
            self.items.remove(v)
        return len(worst)

    def __len__(self):
        return len(self.items)


def test_llb_frontier_interleaved_against_model():
    """Random push/pop/prune/drop interleavings match eager semantics."""
    rng = random.Random(7)
    for trial in range(20):
        real = LLBSelection().make_frontier()
        model = _ModelFrontier()
        seq = 0
        threshold = 100.0
        for step in range(300):
            op = rng.random()
            if op < 0.55:
                v = Vertex(None, rng.randrange(100) / 2.0, seq)
                seq += 1
                real.push(v)
                model.push(v)
            elif op < 0.80:
                got, want = real.pop(), model.pop()
                assert (got is want) or (
                    got is not None
                    and want is not None
                    and (got.lower_bound, got.seq)
                    == (want.lower_bound, want.seq)
                ), f"trial={trial} step={step}"
            elif op < 0.92:
                threshold -= rng.randrange(6) / 2.0
                assert real.prune_above(threshold) == model.prune_above(
                    threshold
                ), f"trial={trial} step={step}"
            else:
                k = rng.randrange(4)
                assert real.drop_worst(k) == model.drop_worst(k), (
                    f"trial={trial} step={step}"
                )
            assert len(real) == len(model), f"trial={trial} step={step}"
        # Drain both: the surviving contents must agree exactly.
        while True:
            got, want = real.pop(), model.pop()
            if want is None:
                assert got is None
                break
            assert (got.lower_bound, got.seq) == (
                want.lower_bound, want.seq
            )
