"""Golden vertex-count drift check in the normal test tier.

The bench suite pins machine-independent vertex counts in
``benchmarks/golden_counts.json`` and CI's bench job checks the quick
subset — but that leaves a gap where a search-order change lands, the
unit tier stays green, and the drift only surfaces in the (slower,
separately-run) bench job.  This test closes the gap by re-solving the
two *smallest* bench cells inside plain pytest and comparing against
the same golden file.  Both finish in well under a second.

On intentional search-order changes, regenerate the golden file with
``repro bench --update-golden`` and commit it — same procedure the
bench suite documents.
"""

from __future__ import annotations

import os

import pytest

from repro.bench import BENCH_INSTANCES, load_golden
from repro.core.engine import BranchAndBound

GOLDEN_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "benchmarks",
    "golden_counts.json",
)

#: The two smallest cells by pinned generated-vertex count.
SMALL_CELLS = ("paper-s13-m2-lifo-lb1", "scaled-s0-m2-lifo-lb1")


@pytest.fixture(scope="module")
def golden():
    return load_golden(GOLDEN_PATH)


@pytest.mark.parametrize("name", SMALL_CELLS)
def test_small_cell_counts_match_golden(name, golden):
    inst = next(i for i in BENCH_INSTANCES if i.name == name)
    pinned = golden["instances"][name]
    result = BranchAndBound(inst.params()).solve(inst.problem())
    assert result.stats.generated == pinned["generated"]
    assert result.stats.explored == pinned["explored"]
    assert result.best_cost == pinned["best_cost"]


def test_small_cells_are_the_smallest_pinned():
    """Keep SMALL_CELLS honest if the suite or goldens ever change."""
    golden = load_golden(GOLDEN_PATH)
    by_size = sorted(
        golden["instances"].items(), key=lambda kv: kv[1]["generated"]
    )
    assert {name for name, _ in by_size[:2]} == set(SMALL_CELLS)
