"""Tests for repro.io (JSON round-trips, DOT export)."""

import json
import math

import pytest

from repro.core import BnBParameters, ResourceBounds
from repro.errors import SerializationError
from repro.experiments import Cell, run_experiment
from repro.io import (
    experiment_from_dict,
    experiment_to_dict,
    graph_from_dict,
    graph_to_dict,
    graph_to_dot,
    load_experiment,
    load_graph,
    save_experiment,
    save_graph,
    schedule_from_dict,
    schedule_to_dict,
    schedule_to_dot,
)
from repro.model import Schedule, Task, shared_bus_platform
from repro.workload import generate_task_graph, tiny_spec

from conftest import make_diamond


class TestGraphRoundTrip:
    def test_round_trip_preserves_everything(self):
        g = generate_task_graph(tiny_spec(), seed=3)
        g2 = graph_from_dict(graph_to_dict(g))
        assert g2.name == g.name
        assert g2.task_names == g.task_names
        for name in g.task_names:
            a, b = g.task(name), g2.task(name)
            assert (a.wcet, a.phase, a.relative_deadline, a.period) == (
                b.wcet, b.phase, b.relative_deadline, b.period,
            )
        assert [(c.src, c.dst, c.message_size) for c in g.channels] == [
            (c.src, c.dst, c.message_size) for c in g2.channels
        ]

    def test_infinite_deadline_round_trips(self):
        g = make_diamond()
        g.add_task(Task(name="open", wcet=1.0))  # inf deadline, inf period
        g2 = graph_from_dict(graph_to_dict(g))
        assert math.isinf(g2.task("open").relative_deadline)
        assert not g2.task("open").is_periodic

    def test_file_round_trip(self, tmp_path):
        g = make_diamond()
        path = tmp_path / "g.json"
        save_graph(g, path)
        g2 = load_graph(path)
        assert g2.task_names == g.task_names
        # The file is genuine JSON.
        json.loads(path.read_text())

    def test_bad_format_rejected(self):
        with pytest.raises(SerializationError, match="format"):
            graph_from_dict({"format": "other", "tasks": []})

    def test_malformed_task_rejected(self):
        with pytest.raises(SerializationError, match="malformed"):
            graph_from_dict(
                {"format": "repro/taskgraph-v1", "tasks": [{"name": "a"}]}
            )

    def test_invalid_json_file_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{nope")
        with pytest.raises(SerializationError, match="invalid JSON"):
            load_graph(path)


class TestScheduleRoundTrip:
    def test_round_trip(self):
        g = make_diamond(msg=4.0)
        s = Schedule(g, shared_bus_platform(2))
        s.place("src", 0, 0.0)
        s.place("left", 0, 2.0)
        s.place("right", 1, 6.0)
        s.place("sink", 0, 17.0)
        s2 = schedule_from_dict(schedule_to_dict(s))
        assert s2.is_complete
        assert s2.entry("right").processor == 1
        assert s2.entry("right").start == 6.0
        s2.validate()

    def test_bad_format_rejected(self):
        with pytest.raises(SerializationError):
            schedule_from_dict({"format": "zzz"})


class TestExperimentRoundTrip:
    def test_round_trip(self, tmp_path):
        rb = ResourceBounds(max_vertices=5_000)
        out = run_experiment(
            "rt", "round trip", "m",
            [Cell(x=2.0, spec=tiny_spec(), processors=2)],
            {"LIFO": BnBParameters.paper_lifo(resources=rb)},
            num_graphs=3,
        )
        path = tmp_path / "exp.json"
        save_experiment(out, path)
        out2 = load_experiment(path)
        assert out2.name == out.name
        assert out2.labels == out.labels
        a = out.series_by_label("LIFO").point_at(2.0)
        b = out2.series_by_label("LIFO").point_at(2.0)
        assert a.mean_vertices == b.mean_vertices
        assert a.mean_lateness == b.mean_lateness
        assert a.extras == b.extras

    def test_bad_format_rejected(self):
        with pytest.raises(SerializationError):
            experiment_from_dict({"format": "x"})

    def test_infinite_ci_round_trips(self):
        rb = ResourceBounds(max_vertices=100)
        out = run_experiment(
            "one", "", "m",
            [Cell(x=2.0, spec=tiny_spec(), processors=2)],
            {"LIFO": BnBParameters.paper_lifo(resources=rb)},
            num_graphs=1,  # single run: CI is infinite
        )
        out2 = experiment_from_dict(experiment_to_dict(out))
        p = out2.series_by_label("LIFO").point_at(2.0)
        assert math.isinf(p.ci_vertices)


class TestDot:
    def test_graph_dot_mentions_tasks_and_weights(self):
        g = make_diamond(msg=4.0)
        dot = graph_to_dot(g)
        assert dot.startswith("digraph")
        for name in g.task_names:
            assert name in dot
        assert '"src" -> "left"' in dot
        assert "c=2" in dot

    def test_graph_dot_windows_toggle(self):
        g = make_diamond()
        with_w = graph_to_dot(g, include_windows=True)
        without = graph_to_dot(g, include_windows=False)
        assert "[0, 100]" in with_w
        assert "[0, 100]" not in without

    def test_schedule_dot_clusters_and_messages(self):
        g = make_diamond(msg=4.0)
        s = Schedule(g, shared_bus_platform(2))
        s.place("src", 0, 0.0)
        s.place("left", 0, 2.0)
        s.place("right", 1, 6.0)
        s.place("sink", 0, 17.0)
        dot = schedule_to_dot(s)
        assert "cluster_p0" in dot and "cluster_p1" in dot
        assert "color=red" in dot  # remote message edge
