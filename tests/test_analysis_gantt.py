"""Unit tests for repro.analysis.gantt."""

import pytest

from repro.analysis import render_gantt
from repro.model import Schedule, Task, TaskGraph, shared_bus_platform

from conftest import make_diamond


def simple_schedule() -> Schedule:
    g = make_diamond(msg=4.0)
    s = Schedule(g, shared_bus_platform(2))
    s.place("src", 0, 0.0)
    s.place("left", 0, 2.0)
    s.place("right", 1, 6.0)
    s.place("sink", 0, 17.0)
    return s


class TestRenderGantt:
    def test_one_row_per_processor(self):
        text = render_gantt(simple_schedule())
        lines = text.splitlines()
        assert any(line.startswith("p0 |") for line in lines)
        assert any(line.startswith("p1 |") for line in lines)

    def test_rows_have_requested_width(self):
        text = render_gantt(simple_schedule(), width=40)
        for line in text.splitlines():
            if line.startswith("p"):
                body = line.split("|")[1]
                assert len(body) == 40

    def test_legend_mentions_all_tasks(self):
        s = simple_schedule()
        text = render_gantt(s)
        for name in s.scheduled_tasks:
            assert name in text

    def test_legend_optional(self):
        text = render_gantt(simple_schedule(), show_legend=False)
        assert "legend" not in text

    def test_busy_fraction_roughly_proportional(self):
        s = simple_schedule()
        text = render_gantt(s, width=100, show_legend=False)
        p1 = next(l for l in text.splitlines() if l.startswith("p1"))
        body = p1.split("|")[1]
        busy = sum(1 for c in body if c != ".")
        # right runs 7 of 20 time units on p1 => ~35 cells.
        assert 25 <= busy <= 45

    def test_short_tasks_still_visible(self):
        g = TaskGraph()
        g.add_task(Task(name="blip", wcet=0.01))
        g.add_task(Task(name="long", wcet=100.0))
        s = Schedule(g, shared_bus_platform(2))
        s.place("blip", 0, 0.0)
        s.place("long", 1, 0.0)
        text = render_gantt(s, width=50, show_legend=False)
        p0 = next(l for l in text.splitlines() if l.startswith("p0"))
        assert any(c != "." for c in p0.split("|")[1])

    def test_empty_schedule(self):
        g = make_diamond()
        s = Schedule(g, shared_bus_platform(2))
        text = render_gantt(s)
        assert "empty" in text

    def test_narrow_width_rejected(self):
        with pytest.raises(ValueError, match="width"):
            render_gantt(simple_schedule(), width=5)

    def test_symbols_unique_per_task(self):
        g = TaskGraph()
        # Names that collide on their first letter.
        for i in range(5):
            g.add_task(Task(name=f"task{i}", wcet=2.0))
        s = Schedule(g, shared_bus_platform(1))
        t = 0.0
        for i in range(5):
            s.place(f"task{i}", 0, t)
            t += 2.0
        text = render_gantt(s, width=50, show_legend=False)
        body = next(l for l in text.splitlines() if l.startswith("p0")).split("|")[1]
        symbols = {c for c in body if c != "."}
        assert len(symbols) == 5
