"""Unit tests for repro.model.task."""

import math

import pytest

from repro.errors import ModelError
from repro.model import APERIODIC, Job, Task


class TestTaskConstruction:
    def test_minimal_task(self):
        t = Task(name="a", wcet=5.0)
        assert t.name == "a"
        assert t.wcet == 5.0
        assert t.phase == 0.0
        assert math.isinf(t.relative_deadline)
        assert not t.is_periodic

    def test_full_task(self):
        t = Task(name="a", wcet=2.0, phase=1.0, relative_deadline=10.0, period=20.0)
        assert t.is_periodic
        assert t.window_length == 10.0

    def test_empty_name_rejected(self):
        with pytest.raises(ModelError, match="name"):
            Task(name="", wcet=1.0)

    @pytest.mark.parametrize("wcet", [0.0, -1.0, math.inf])
    def test_bad_wcet_rejected(self, wcet):
        with pytest.raises(ModelError, match="wcet"):
            Task(name="a", wcet=wcet)

    def test_negative_phase_rejected(self):
        with pytest.raises(ModelError, match="phase"):
            Task(name="a", wcet=1.0, phase=-0.5)

    def test_nonpositive_deadline_rejected(self):
        with pytest.raises(ModelError, match="deadline"):
            Task(name="a", wcet=1.0, relative_deadline=0.0)

    def test_nonpositive_period_rejected(self):
        with pytest.raises(ModelError, match="period"):
            Task(name="a", wcet=1.0, period=-3.0)

    def test_deadline_beyond_period_rejected(self):
        # The paper assumes d_i <= T_i for periodic tasks.
        with pytest.raises(ModelError, match="d_i <= T_i"):
            Task(name="a", wcet=1.0, relative_deadline=30.0, period=20.0)

    def test_wcet_beyond_window_rejected(self):
        with pytest.raises(ModelError, match="window"):
            Task(name="a", wcet=5.0, relative_deadline=4.0)

    def test_tasks_are_immutable(self):
        t = Task(name="a", wcet=1.0)
        with pytest.raises(AttributeError):
            t.wcet = 2.0


class TestInvocationArithmetic:
    def test_first_invocation_arrival_is_phase(self):
        t = Task(name="a", wcet=1.0, phase=3.0, relative_deadline=5.0, period=10.0)
        assert t.arrival(1) == 3.0
        assert t.absolute_deadline(1) == 8.0

    def test_kth_invocation(self):
        t = Task(name="a", wcet=1.0, phase=3.0, relative_deadline=5.0, period=10.0)
        # a_i^k = phi + T(k-1)
        assert t.arrival(4) == 3.0 + 10.0 * 3
        assert t.absolute_deadline(4) == t.arrival(4) + 5.0

    def test_invocation_zero_rejected(self):
        t = Task(name="a", wcet=1.0)
        with pytest.raises(ModelError, match=">= 1"):
            t.arrival(0)

    def test_oneshot_second_invocation_rejected(self):
        t = Task(name="a", wcet=1.0)
        with pytest.raises(ModelError, match="one-shot"):
            t.arrival(2)

    def test_job_materialization(self):
        t = Task(name="a", wcet=2.0, phase=1.0, relative_deadline=4.0, period=10.0)
        j = t.job(2)
        assert isinstance(j, Job)
        assert j.arrival == 11.0
        assert j.deadline == 15.0
        assert j.name == "a#2"
        assert j.wcet == 2.0

    def test_oneshot_job_name_has_no_suffix(self):
        t = Task(name="a", wcet=1.0)
        assert t.job(1).name == "a"

    def test_job_lateness(self):
        j = Task(name="a", wcet=1.0, relative_deadline=10.0).job(1)
        assert j.lateness(8.0) == -2.0
        assert j.lateness(12.0) == 2.0


class TestJobsUntil:
    def test_oneshot_yields_single_job(self):
        t = Task(name="a", wcet=1.0)
        jobs = list(t.jobs_until(100.0))
        assert len(jobs) == 1
        assert jobs[0].index == 1

    def test_periodic_yields_per_period(self):
        t = Task(name="a", wcet=1.0, relative_deadline=10.0, period=10.0)
        jobs = list(t.jobs_until(30.0))
        assert [j.arrival for j in jobs] == [0.0, 10.0, 20.0]

    def test_horizon_is_exclusive(self):
        t = Task(name="a", wcet=1.0, relative_deadline=10.0, period=10.0)
        assert len(list(t.jobs_until(20.0))) == 2

    def test_phase_beyond_horizon_yields_nothing(self):
        t = Task(name="a", wcet=1.0, phase=50.0)
        assert list(t.jobs_until(10.0)) == []

    def test_period_defaults_to_aperiodic_constant(self):
        assert Task(name="a", wcet=1.0).period == APERIODIC


class TestWithWindow:
    def test_with_window_stamps_phase_and_deadline(self):
        t = Task(name="a", wcet=2.0)
        t2 = t.with_window(5.0, 12.0)
        assert t2.phase == 5.0
        assert t2.relative_deadline == 7.0
        assert t2.arrival(1) == 5.0
        assert t2.absolute_deadline(1) == 12.0
        # Original unchanged.
        assert t.phase == 0.0

    def test_with_window_too_small_rejected(self):
        t = Task(name="a", wcet=5.0)
        with pytest.raises(ModelError, match="shorter"):
            t.with_window(0.0, 4.0)

    def test_str_contains_name(self):
        assert "a" in str(Task(name="a", wcet=1.0))
