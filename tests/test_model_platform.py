"""Unit tests for repro.model.platform."""

import pytest

from repro.errors import ModelError
from repro.model import Platform, Ring, SharedBus, shared_bus_platform


class TestPlatform:
    def test_default_interconnect_is_shared_bus(self):
        p = Platform(num_processors=3)
        assert isinstance(p.interconnect, SharedBus)
        assert p.interconnect.num_processors == 3

    def test_processors_iterable(self):
        p = Platform(num_processors=4)
        assert list(p.processors) == [0, 1, 2, 3]

    def test_zero_processors_rejected(self):
        with pytest.raises(ModelError):
            Platform(num_processors=0)

    def test_mismatched_interconnect_rejected(self):
        with pytest.raises(ModelError, match="sized for"):
            Platform(num_processors=3, interconnect=SharedBus(2))

    def test_negative_context_switch_rejected(self):
        with pytest.raises(ModelError, match="context switch"):
            Platform(num_processors=2, context_switch=-1.0)

    def test_communication_cost_delegates(self):
        p = Platform(num_processors=3, interconnect=Ring(3, delay_per_hop=2.0))
        assert p.communication_cost(0, 1, 5.0) == 10.0
        assert p.communication_cost(1, 1, 5.0) == 0.0

    def test_effective_wcet_adds_context_switch(self):
        p = Platform(num_processors=2, context_switch=0.5)
        assert p.effective_wcet(10.0) == 10.5
        assert Platform(num_processors=2).effective_wcet(10.0) == 10.0


class TestSharedBusPlatform:
    def test_factory_matches_paper(self):
        p = shared_bus_platform(4)
        assert p.num_processors == 4
        assert isinstance(p.interconnect, SharedBus)
        assert p.interconnect.delay_per_item == 1.0

    def test_factory_custom_delay(self):
        p = shared_bus_platform(2, delay_per_item=3.0)
        assert p.communication_cost(0, 1, 2.0) == 6.0
