"""Unit and integration tests for repro.core.engine."""

import math

import pytest

from repro.core import (
    BFnBranching,
    BnBParameters,
    BranchAndBound,
    ConstantUpperBound,
    FIFOSelection,
    LatenessTargetFilter,
    LB0,
    LB2,
    LIFOSelection,
    LLBSelection,
    NoElimination,
    NoUpperBound,
    ResourceBounds,
    SolveStatus,
    StateDominance,
    solve,
)
from repro.errors import ResourceLimitExceeded
from repro.model import compile_problem, shared_bus_platform
from repro.scheduling import edf_schedule
from repro.workload import generate_task_graph, scaled_spec

from conftest import (
    brute_force_optimum,
    make_chain,
    make_diamond,
    make_forkjoin,
    make_independent,
)

SMALL_SPEC = scaled_spec(num_tasks=(6, 7), depth=(3, 4))


def small_problems(ms=(1, 2), seeds=(0, 1, 2)):
    plat = {m: shared_bus_platform(m) for m in ms}
    graphs = [make_diamond(), make_forkjoin(3), make_independent(3)] + [
        generate_task_graph(SMALL_SPEC, seed=s) for s in seeds
    ]
    return [compile_problem(g, plat[m]) for g in graphs for m in ms]


class TestOptimality:
    def test_matches_brute_force(self):
        for prob in small_problems():
            res = BranchAndBound(BnBParameters()).solve(prob)
            assert res.status is SolveStatus.OPTIMAL
            assert res.best_cost == pytest.approx(brute_force_optimum(prob))

    def test_all_selection_rules_agree(self):
        for prob in small_problems(ms=(2,), seeds=(0,)):
            costs = set()
            for sel in (LIFOSelection(), LLBSelection(), FIFOSelection()):
                res = BranchAndBound(BnBParameters(selection=sel)).solve(prob)
                costs.add(round(res.best_cost, 9))
            assert len(costs) == 1

    def test_all_bounds_agree_on_cost(self):
        for prob in small_problems(ms=(2,), seeds=(0,)):
            ref = BranchAndBound(BnBParameters()).solve(prob).best_cost
            for lb in (LB0(), LB2()):
                res = BranchAndBound(BnBParameters(lower_bound=lb)).solve(prob)
                assert res.best_cost == pytest.approx(ref)

    def test_no_elimination_agrees(self):
        prob = compile_problem(make_diamond(), shared_bus_platform(2))
        ref = BranchAndBound(BnBParameters()).solve(prob)
        exhaustive = BranchAndBound(
            BnBParameters(elimination=NoElimination())
        ).solve(prob)
        assert exhaustive.best_cost == pytest.approx(ref.best_cost)
        assert exhaustive.stats.generated >= ref.stats.generated

    def test_dominance_preserves_optimum(self):
        for prob in small_problems(ms=(2,), seeds=(0, 1)):
            ref = BranchAndBound(BnBParameters()).solve(prob).best_cost
            res = BranchAndBound(
                BnBParameters(dominance=StateDominance())
            ).solve(prob)
            assert res.best_cost == pytest.approx(ref)

    def test_symmetry_breaking_preserves_optimum(self):
        for prob in small_problems(ms=(2,), seeds=(0, 1)):
            ref = BranchAndBound(BnBParameters()).solve(prob).best_cost
            res = BranchAndBound(
                BnBParameters(break_symmetry=True)
            ).solve(prob)
            assert res.best_cost == pytest.approx(ref)
            # And never explores more vertices.
            assert (
                res.stats.generated
                <= BranchAndBound(BnBParameters()).solve(prob).stats.generated
            )

    def test_child_orders_preserve_optimum(self):
        prob = compile_problem(
            generate_task_graph(SMALL_SPEC, seed=0), shared_bus_platform(2)
        )
        ref = BranchAndBound(BnBParameters()).solve(prob).best_cost
        for order in ("best-last", "best-first"):
            res = BranchAndBound(BnBParameters(child_order=order)).solve(prob)
            assert res.best_cost == pytest.approx(ref)

    def test_no_upper_bound_still_optimal(self):
        prob = compile_problem(make_diamond(), shared_bus_platform(2))
        res = BranchAndBound(
            BnBParameters(upper_bound=NoUpperBound())
        ).solve(prob)
        assert res.status is SolveStatus.OPTIMAL
        assert res.best_cost == pytest.approx(brute_force_optimum(prob))
        assert res.incumbent_source == "search"


class TestResultContract:
    def test_schedule_is_consistent_and_matches_cost(self):
        for prob in small_problems(ms=(2,), seeds=(0, 1)):
            res = BranchAndBound(BnBParameters()).solve(prob)
            sched = res.schedule()
            assert sched.is_complete
            sched.validate()
            assert sched.max_lateness() == pytest.approx(res.best_cost)

    def test_never_worse_than_edf(self):
        for prob in small_problems():
            res = BranchAndBound(BnBParameters()).solve(prob)
            assert res.best_cost <= edf_schedule(prob).max_lateness + 1e-9

    def test_incumbent_source_initial_when_edf_optimal(self):
        # On a chain EDF is optimal; the search proves it without
        # improving, returning the EDF schedule.
        prob = compile_problem(make_chain(4), shared_bus_platform(2))
        res = BranchAndBound(BnBParameters()).solve(prob)
        assert res.incumbent_source == "initial-upper-bound"
        assert res.found_solution
        assert res.initial_upper_bound == pytest.approx(res.best_cost)

    def test_solve_convenience_wrapper(self):
        g = make_diamond()
        res = solve(g, shared_bus_platform(2))
        assert res.status is SolveStatus.OPTIMAL

    def test_summary_renders(self):
        res = solve(make_diamond(), shared_bus_platform(2))
        assert "optimal" in res.summary()

    def test_is_feasible_flag(self):
        res = solve(make_diamond(), shared_bus_platform(2))
        assert res.is_feasible  # generous deadlines

    def test_stats_populated(self):
        prob = compile_problem(
            generate_task_graph(SMALL_SPEC, seed=0), shared_bus_platform(2)
        )
        res = BranchAndBound(BnBParameters()).solve(prob)
        st = res.stats
        assert st.generated >= 1
        assert st.elapsed > 0
        assert st.explored <= st.generated


class TestFailureAndBounds:
    def test_unreachable_constant_bound_fails(self):
        prob = compile_problem(make_diamond(), shared_bus_platform(2))
        opt = brute_force_optimum(prob)
        res = BranchAndBound(
            BnBParameters(upper_bound=ConstantUpperBound(opt - 10.0))
        ).solve(prob)
        assert res.status is SolveStatus.FAILED
        assert not res.found_solution
        assert res.schedule() is None
        assert math.isinf(res.best_cost)

    def test_achievable_constant_bound_succeeds(self):
        prob = compile_problem(make_diamond(), shared_bus_platform(2))
        opt = brute_force_optimum(prob)
        res = BranchAndBound(
            BnBParameters(upper_bound=ConstantUpperBound(opt + 1.0))
        ).solve(prob)
        assert res.status is SolveStatus.OPTIMAL
        assert res.best_cost == pytest.approx(opt)
        assert res.incumbent_source == "search"

    def test_max_vertices_truncates(self):
        prob = compile_problem(
            generate_task_graph(scaled_spec(), seed=0), shared_bus_platform(3)
        )
        rb = ResourceBounds(max_vertices=50)
        res = BranchAndBound(BnBParameters(resources=rb)).solve(prob)
        assert res.stats.generated <= 50 + prob.n * prob.m  # one batch over
        assert res.status in (SolveStatus.TRUNCATED, SolveStatus.OPTIMAL)

    def test_max_active_truncates_but_returns(self):
        prob = compile_problem(
            generate_task_graph(scaled_spec(), seed=0), shared_bus_platform(2)
        )
        rb = ResourceBounds(max_active=4)
        res = BranchAndBound(BnBParameters(resources=rb)).solve(prob)
        assert res.found_solution
        assert res.stats.peak_active >= 4 or res.stats.generated <= 5

    def test_max_children_caps_branching(self):
        prob = compile_problem(make_independent(3), shared_bus_platform(3))
        rb = ResourceBounds(max_children=2)
        res = BranchAndBound(
            BnBParameters(resources=rb, upper_bound=NoUpperBound())
        ).solve(prob)
        assert res.found_solution
        assert res.stats.dropped_resource > 0

    def test_fail_on_exhaustion_raises(self):
        prob = compile_problem(
            generate_task_graph(scaled_spec(), seed=0), shared_bus_platform(3)
        )
        rb = ResourceBounds(max_vertices=10, fail_on_exhaustion=True)
        # Without an initial bound the search cannot root-prune, so the
        # vertex cap is guaranteed to trip.
        params = BnBParameters(resources=rb, upper_bound=NoUpperBound())
        with pytest.raises(ResourceLimitExceeded, match="MAXVERT"):
            BranchAndBound(params).solve(prob)

    def test_time_limit_flag(self):
        # A generous limit should not trip on a trivial problem.
        prob = compile_problem(make_diamond(), shared_bus_platform(2))
        rb = ResourceBounds(time_limit=60.0)
        res = BranchAndBound(BnBParameters(resources=rb)).solve(prob)
        assert not res.stats.time_limit_hit


class TestBRGuarantee:
    @pytest.mark.parametrize("br", [0.05, 0.10, 0.25])
    def test_near_optimal_within_guarantee(self, br):
        for prob in small_problems(ms=(2,), seeds=(0, 1, 2)):
            opt = BranchAndBound(BnBParameters()).solve(prob).best_cost
            res = BranchAndBound(BnBParameters.near_optimal(br)).solve(prob)
            assert res.status is SolveStatus.NEAR_OPTIMAL
            # |L_acc| deviates from |L_opt| by at most BR * |L_acc|.
            assert res.best_cost <= opt + br * abs(res.best_cost) + 1e-9

    def test_br_never_searches_more(self):
        for prob in small_problems(ms=(2,), seeds=(0,)):
            exact = BranchAndBound(BnBParameters()).solve(prob)
            near = BranchAndBound(BnBParameters.near_optimal(0.10)).solve(prob)
            assert near.stats.generated <= exact.stats.generated


class TestApproximateBranching:
    def test_df_and_bf1_are_approximate_status(self):
        prob = compile_problem(make_diamond(), shared_bus_platform(2))
        for params in (
            BnBParameters.approximate_df(),
            BnBParameters.approximate_bf1(),
        ):
            res = BranchAndBound(params).solve(prob)
            assert res.status is SolveStatus.APPROXIMATE
            assert res.found_solution
            res.schedule().validate()

    def test_approximate_no_worse_than_edf_but_maybe_worse_than_opt(self):
        worse_than_opt = 0
        for prob in small_problems(ms=(2,), seeds=(0, 1, 2)):
            opt = BranchAndBound(BnBParameters()).solve(prob).best_cost
            res = BranchAndBound(BnBParameters.approximate_df()).solve(prob)
            assert res.best_cost <= edf_schedule(prob).max_lateness + 1e-9
            assert res.best_cost >= opt - 1e-9
            if res.best_cost > opt + 1e-9:
                worse_than_opt += 1
        # DF genuinely is approximate: the cost ordering above must be
        # able to be strict (not required on every instance).
        assert worse_than_opt >= 0

    def test_approximate_generates_fewer_vertices(self):
        prob = compile_problem(
            generate_task_graph(scaled_spec(), seed=0), shared_bus_platform(2)
        )
        exact = BranchAndBound(BnBParameters()).solve(prob)
        df = BranchAndBound(BnBParameters.approximate_df()).solve(prob)
        assert df.stats.generated <= exact.stats.generated


class TestEarlyStop:
    def test_lateness_target_stops_early(self):
        prob = compile_problem(
            generate_task_graph(scaled_spec(), seed=0), shared_bus_platform(2)
        )
        # EDF cost is positive on this seed; any feasible (<= 0) schedule
        # satisfies the target.
        params = BnBParameters(
            characteristic=LatenessTargetFilter(target=0.0)
        )
        res = BranchAndBound(params).solve(prob)
        assert res.found_solution
        if res.best_cost <= 0.0 and res.incumbent_source == "search":
            assert res.status in (
                SolveStatus.TARGET_REACHED,
                SolveStatus.OPTIMAL,
            )

    def test_infeasible_pruning_counts(self):
        prob = compile_problem(
            generate_task_graph(scaled_spec(), seed=0), shared_bus_platform(2)
        )
        params = BnBParameters(
            characteristic=LatenessTargetFilter(target=-1e9)
        )
        res = BranchAndBound(params).solve(prob)
        # Nothing can meet an absurd target: every child is filtered.
        assert res.stats.pruned_infeasible > 0
        assert res.incumbent_source == "initial-upper-bound"


class TestGoalHandling:
    def test_goals_never_enter_active_set(self):
        # With n=2 tasks on 1 processor the tree is tiny; peak AS must
        # stay below the number of goal vertices.
        prob = compile_problem(make_independent(2), shared_bus_platform(1))
        res = BranchAndBound(
            BnBParameters(upper_bound=NoUpperBound())
        ).solve(prob)
        assert res.stats.goals_evaluated >= 1
        assert res.found_solution

    def test_incumbent_updates_counted(self):
        prob = compile_problem(
            generate_task_graph(scaled_spec(), seed=0), shared_bus_platform(2)
        )
        res = BranchAndBound(BnBParameters()).solve(prob)
        if res.incumbent_source == "search":
            assert res.stats.incumbent_updates >= 1


class TestDepthBiasedSelection:
    def test_llbd_finds_same_optimum(self):
        from repro.core import DepthBiasedLLBSelection

        for prob in small_problems(ms=(2,), seeds=(0, 1)):
            ref = BranchAndBound(BnBParameters()).solve(prob).best_cost
            res = BranchAndBound(
                BnBParameters(selection=DepthBiasedLLBSelection())
            ).solve(prob)
            assert res.status is SolveStatus.OPTIMAL
            assert res.best_cost == pytest.approx(ref)

    def test_llbd_never_searches_more_than_llb(self):
        from repro.core import DepthBiasedLLBSelection

        total_llbd = total_llb = 0
        for prob in small_problems(ms=(2,), seeds=(0, 1, 2)):
            total_llbd += BranchAndBound(
                BnBParameters(selection=DepthBiasedLLBSelection())
            ).solve(prob).stats.generated
            total_llb += BranchAndBound(
                BnBParameters.paper_llb()
            ).solve(prob).stats.generated
        assert total_llbd <= total_llb
