"""End-to-end cluster drills over real TCP subprocesses.

These are the scenarios the in-memory matrix cannot fake: actual
sockets, actual SIGKILL.  A worker is killed mid-shard and the solve
must still land on the sequential optimum with a nonzero retry
counter; a coordinator is killed mid-solve and ``--resume`` must land
on the same cost.
"""

from __future__ import annotations

import re
import signal
import subprocess
import sys
import time

import pytest

from repro.io import save_graph

from faultlib import (
    _cli_env,
    hard_graph,
    kill_when_file_appears,
    parse_lmax,
    run_cli,
)

_ADDR = re.compile(r"coordinating on (\S+)")
_RETRIES = re.compile(r"\bretries=(\d+)")
_JOINS = re.compile(r"\bjoins=(\d+)")


@pytest.fixture(scope="module")
def graph_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("cluster-cli") / "hard.json"
    save_graph(hard_graph(0), path)
    return str(path)


@pytest.fixture(scope="module")
def sequential_lmax(graph_file):
    proc = run_cli(["solve", graph_file])
    assert proc.returncode == 0, proc.stderr
    return parse_lmax(proc.stdout)


def start_coordinator(graph_file: str, *extra: str):
    """Launch a coordinator on an ephemeral port; returns (proc, address).

    The CLI prints the bound address to stderr before the solve starts,
    which is how tests (and humans) learn the actual port of ``:0``.
    """
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "cluster", "coordinator",
            graph_file, "--bind", "127.0.0.1:0", *extra,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=_cli_env(),
    )
    line = proc.stderr.readline()
    match = _ADDR.search(line)
    if match is None:
        proc.kill()
        out, err = proc.communicate(timeout=30)
        raise AssertionError(f"no bind address line: {line!r}\n{err}")
    return proc, match.group(1)


def spawn_worker(address: str, *extra: str) -> subprocess.Popen:
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "cluster", "worker", address, *extra],
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
        env=_cli_env(),
    )


def finish(coord: subprocess.Popen, timeout: float = 180.0) -> str:
    out, err = coord.communicate(timeout=timeout)
    assert coord.returncode == 0, f"coordinator failed:\n{err}\n{out}"
    return out


def test_tcp_cluster_matches_sequential(graph_file, sequential_lmax):
    coord, address = start_coordinator(graph_file)
    workers = [spawn_worker(address, "--id", f"w{i}") for i in range(2)]
    out = finish(coord)
    for w in workers:
        w.wait(timeout=60)
    assert parse_lmax(out) == pytest.approx(sequential_lmax, abs=1e-9)
    joins = _JOINS.search(out)
    assert joins is not None and int(joins.group(1)) == 2
    assert "quarantined" not in out


def test_sigkilled_worker_is_absorbed(graph_file, sequential_lmax):
    """Kill one worker mid-shard: parity plus a nonzero retry counter."""
    # Depth-1 shards are long under --drill-slow, so the victim is
    # reliably mid-shard when the signal lands.
    coord, address = start_coordinator(graph_file, "--split-depth", "1")
    # At 2s per bound-channel poll, any shard past the 64-vertex poll
    # cadence pins the victim mid-shard for multiple seconds.
    victim = spawn_worker(address, "--id", "victim", "--drill-slow", "2.0")
    time.sleep(0.8)  # victim is mid-shard before the survivor joins
    survivor = spawn_worker(address, "--id", "survivor")
    time.sleep(0.7)
    victim.send_signal(signal.SIGKILL)
    victim.wait(timeout=30)
    out = finish(coord)
    survivor.wait(timeout=60)
    assert parse_lmax(out) == pytest.approx(sequential_lmax, abs=1e-9)
    retries = _RETRIES.search(out)
    assert retries is not None and int(retries.group(1)) >= 1, out
    assert "TRUNCATED" not in out


def test_sigkilled_coordinator_resumes_to_same_cost(
    graph_file, sequential_lmax, tmp_path
):
    ckpt = tmp_path / "cluster.ckpt"

    # Phase 1: coordinator checkpoints aggressively, a slow worker keeps
    # the solve alive long enough, SIGKILL lands after the first
    # snapshot.  (If the solve finishes first the final snapshot is
    # resumed instead — the assertions hold in both interleavings.)
    coord, address = start_coordinator(
        graph_file, "--checkpoint", str(ckpt), "--checkpoint-seconds", "0.2"
    )
    worker = spawn_worker(address, "--drill-slow", "0.2")
    kill_when_file_appears(coord, ckpt, timeout=60.0)
    coord.stdout.close(), coord.stderr.close()
    worker.wait(timeout=60)

    # Phase 2: resume from the snapshot with fresh workers.
    coord2, address2 = start_coordinator(
        graph_file, "--resume", str(ckpt), "--checkpoint", str(ckpt)
    )
    workers = [
        spawn_worker(address2, "--connect-timeout", "5") for _ in range(2)
    ]
    out = finish(coord2)
    for w in workers:
        w.wait(timeout=60)
    assert "resumed cluster solve from checkpoint" in out
    assert parse_lmax(out) == pytest.approx(sequential_lmax, abs=1e-9)
