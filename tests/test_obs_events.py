"""Unit tests for repro.obs.events: sinks, sampling, JSONL round-trips."""

import io
import json

import pytest

from repro.core import BnBParameters, BranchAndBound
from repro.model import compile_problem, shared_bus_platform
from repro.obs import (
    CallbackSink,
    EventSink,
    JsonlSink,
    MemorySink,
    MultiSink,
    Observability,
    TaggedSink,
)
from repro.workload import generate_task_graph, scaled_spec

from conftest import make_diamond


@pytest.fixture
def hard_problem():
    # Seed 0 has a genuine search (~3k generated vertices at m=2).
    return compile_problem(
        generate_task_graph(scaled_spec(), seed=0), shared_bus_platform(2)
    )


def solve_with(sink, problem):
    return BranchAndBound(
        BnBParameters(), obs=Observability(sink=sink)
    ).solve(problem)


class TestJsonlSink:
    def test_round_trip_events_written_equals_emitted(self, tmp_path, hard_problem):
        """Every event the engine emits lands in the file, verbatim."""
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(str(path))
        res = solve_with(sink, hard_problem)
        sink.close()
        records = [
            json.loads(line) for line in path.read_text().splitlines()
        ]
        assert len(records) == sink.events_written
        kinds = [r["ev"] for r in records]
        # Unsampled run: one explore event per explored vertex.
        assert kinds.count("explore") == res.stats.explored
        assert kinds.count("start") == 1
        assert kinds.count("summary") == 1
        assert kinds[0] == "start"
        assert kinds[-1] == "summary"
        # Every record is time-stamped and typed.
        assert all("t" in r and "ev" in r for r in records)

    def test_summary_carries_stats_and_status(self, tmp_path, hard_problem):
        path = tmp_path / "trace.jsonl"
        with JsonlSink(str(path)) as sink:
            res = solve_with(sink, hard_problem)
        summary = json.loads(path.read_text().splitlines()[-1])
        assert summary["ev"] == "summary"
        assert summary["status"] == res.status.value
        assert summary["stats"]["generated"] == res.stats.generated
        assert summary["stats"]["explored"] == res.stats.explored
        assert summary["best_cost"] == pytest.approx(res.best_cost)

    def test_sampling_thins_high_frequency_kinds_only(self, tmp_path, hard_problem):
        path = tmp_path / "trace.jsonl"
        with JsonlSink(str(path), sample_every=10) as sink:
            res = solve_with(sink, hard_problem)
        records = [json.loads(x) for x in path.read_text().splitlines()]
        kinds = [r["ev"] for r in records]
        expected = -(-res.stats.explored // 10)  # ceil division
        assert kinds.count("explore") == expected
        # Low-frequency events are never sampled away.
        assert kinds.count("start") == 1
        assert kinds.count("summary") == 1

    def test_buffer_flush_on_close(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sink = JsonlSink(str(path), buffer_events=10_000)
        sink.emit("start", {"x": 1})
        assert path.read_text() == ""  # still buffered
        sink.close()
        assert json.loads(path.read_text())["x"] == 1

    def test_borrowed_file_not_closed(self):
        buf = io.StringIO()
        sink = JsonlSink(buf)
        sink.emit("start", {})
        sink.close()
        assert not buf.closed
        assert json.loads(buf.getvalue())["ev"] == "start"

    def test_rejects_bad_knobs(self, tmp_path):
        with pytest.raises(ValueError):
            JsonlSink(str(tmp_path / "x"), sample_every=0)
        with pytest.raises(ValueError):
            JsonlSink(str(tmp_path / "x"), buffer_events=0)

    def test_satisfies_protocol(self, tmp_path):
        assert isinstance(JsonlSink(str(tmp_path / "x.jsonl")), EventSink)


class TestEngineEventStream:
    def test_prune_events_carry_causes(self, hard_problem):
        sink = MemorySink()
        res = solve_with(sink, hard_problem)
        prunes = sink.of_kind("prune")
        causes = {p["cause"] for p in prunes}
        assert "bound" in causes  # children eliminated by E
        # Sweep events carry a count; everything else is one vertex each.
        pruned_vertices = sum(p.get("count", 1) for p in prunes)
        assert pruned_vertices == res.stats.pruned_total

    def test_incumbent_events_match_stats(self):
        from repro.core import NoUpperBound

        prob = compile_problem(
            generate_task_graph(scaled_spec(), seed=0), shared_bus_platform(2)
        )
        sink = MemorySink()
        res = BranchAndBound(
            BnBParameters(upper_bound=NoUpperBound()),
            obs=Observability(sink=sink),
        ).solve(prob)
        incumbents = sink.of_kind("incumbent")
        assert len(incumbents) == res.stats.incumbent_updates
        assert incumbents[-1]["cost"] == pytest.approx(res.best_cost)
        costs = [e["cost"] for e in incumbents]
        assert costs == sorted(costs, reverse=True)

    def test_resource_events_on_vertex_cap(self):
        from repro.core.resources import ResourceBounds

        prob = compile_problem(
            generate_task_graph(scaled_spec(), seed=0), shared_bus_platform(2)
        )
        sink = MemorySink()
        res = BranchAndBound(
            BnBParameters(resources=ResourceBounds(max_vertices=50)),
            obs=Observability(sink=sink),
        ).solve(prob)
        assert res.stats.truncated
        kinds = [k for k, _ in sink.events]
        assert "resource" in kinds
        assert sink.of_kind("resource")[0]["kind"] == "MAXVERT"

    def test_goal_events_for_complete_schedules(self):
        prob = compile_problem(make_diamond(), shared_bus_platform(2))
        sink = MemorySink()
        res = solve_with(sink, prob)
        assert len(sink.of_kind("goal")) == res.stats.goals_evaluated


class TestOtherSinks:
    def test_callback_sink(self, hard_problem):
        seen = []
        solve_with(CallbackSink(lambda k, p: seen.append(k)), hard_problem)
        assert seen[0] == "start" and seen[-1] == "summary"

    def test_multi_sink_fans_out(self, hard_problem):
        a, b = MemorySink(), MemorySink(sample_every=1000)
        solve_with(MultiSink(a, b), hard_problem)
        assert len(a) > len(b) > 0
        # The thinned sink still received the unsampled kinds.
        assert len(b.of_kind("start")) == 1
        assert len(b.of_kind("summary")) == 1

    def test_memory_sink_sampling(self, hard_problem):
        full, thin = MemorySink(), MemorySink(sample_every=7)
        res = solve_with(full, hard_problem)
        solve_with(thin, hard_problem)
        assert len(full.of_kind("explore")) == res.stats.explored
        assert len(thin.of_kind("explore")) == -(-res.stats.explored // 7)


class TestObservabilityBundle:
    def test_disabled_by_default(self):
        obs = Observability()
        assert not obs.enabled
        obs.close()  # no-op

    def test_context_manager_closes_sink(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with Observability(sink=JsonlSink(str(path), buffer_events=100)) as obs:
            obs.sink.emit("start", {"n": 1})
        assert json.loads(path.read_text())["n"] == 1

    def test_engine_runs_with_empty_bundle(self, hard_problem):
        res = BranchAndBound(
            BnBParameters(), obs=Observability()
        ).solve(hard_problem)
        assert res.profile is None
        assert res.stats.generated > 0


class TestTaggedSink:
    def test_stamps_tags_without_mutating_the_payload(self):
        inner = MemorySink()
        tagged = TaggedSink(inner, worker=3, shard=7)
        payload = {"lb": 1.5}
        tagged.emit("explore", payload)
        assert payload == {"lb": 1.5}  # caller's dict untouched
        kind, record = inner.events[0]
        assert kind == "explore"
        assert record == {"lb": 1.5, "worker": 3, "shard": 7}

    def test_tags_win_on_key_collision(self):
        inner = MemorySink()
        TaggedSink(inner, worker=1).emit("x", {"worker": 99})
        assert inner.events[0][1]["worker"] == 1

    def test_accepts_delegates_to_the_wrapped_sink(self):
        class Picky(EventSink):
            def accepts(self, kind):
                return kind == "shard"

            def emit(self, kind, payload):
                pass

        tagged = TaggedSink(Picky(), worker=0)
        assert tagged.accepts("shard")
        assert not tagged.accepts("explore")

    def test_close_is_not_forwarded(self):
        closed = []

        class Tracking(MemorySink):
            def close(self):
                closed.append(True)
                super().close()

        inner = Tracking()
        TaggedSink(inner, worker=0).close()
        # The coordinator owns the inner sink; several tagged streams may
        # share it, so the wrapper must never close it.
        assert closed == []

    def test_tagged_stream_through_jsonl(self, tmp_path):
        path = tmp_path / "tagged.jsonl"
        with JsonlSink(str(path)) as sink:
            TaggedSink(sink, worker=2).emit("shard", {"lb": 0.0})
        record = json.loads(path.read_text())
        assert record["ev"] == "shard"
        assert record["worker"] == 2
