"""Corrupt-input fixtures for the hardened IO layer.

Every malformed file must produce a :class:`ProblemFormatError` that
(a) names the file, (b) points at the offending line or entry, and
(c) stays catchable as the :class:`SerializationError` it subclasses —
no raw ``KeyError``/``ValueError``/``JSONDecodeError`` may escape a
loader for any input, however mangled.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import ProblemFormatError, SerializationError
from repro.io import load_graph, load_stg, save_graph
from repro.io.json_io import graph_from_dict
from repro.io.stg import parse_stg
from repro.workload import generate_task_graph, tiny_spec


def _valid_graph_dict():
    return {
        "format": "repro/taskgraph-v1",
        "name": "g",
        "tasks": [
            {"name": "a", "wcet": 1.0},
            {"name": "b", "wcet": 2.0},
        ],
        "channels": [{"src": "a", "dst": "b", "message_size": 1.0}],
    }


class TestJsonGraphCorruption:
    def test_invalid_json_reports_path_and_line(self, tmp_path):
        path = tmp_path / "g.json"
        path.write_text('{\n  "format": "repro/taskgraph-v1",\n  oops\n}\n')
        with pytest.raises(ProblemFormatError) as exc:
            load_graph(path)
        assert exc.value.path == str(path)
        assert exc.value.line == 3
        assert str(path) in str(exc.value)
        assert "line 3" in str(exc.value)
        assert "invalid JSON" in str(exc.value)

    def test_missing_file_is_a_clean_error(self, tmp_path):
        with pytest.raises(ProblemFormatError, match="cannot read"):
            load_graph(tmp_path / "nope.json")

    def test_wrong_format_marker(self, tmp_path):
        path = tmp_path / "g.json"
        data = _valid_graph_dict()
        data["format"] = "repro/taskgraph-v99"
        path.write_text(json.dumps(data))
        with pytest.raises(ProblemFormatError) as exc:
            load_graph(path)
        assert exc.value.path == str(path)
        assert "expected format" in str(exc.value)

    def test_top_level_must_be_an_object(self):
        with pytest.raises(ProblemFormatError, match="expected a JSON object"):
            graph_from_dict([1, 2, 3])

    def test_malformed_task_names_its_index(self, tmp_path):
        path = tmp_path / "g.json"
        data = _valid_graph_dict()
        del data["tasks"][1]["wcet"]
        path.write_text(json.dumps(data))
        with pytest.raises(ProblemFormatError) as exc:
            load_graph(path)
        assert "tasks[1]" in str(exc.value)
        assert exc.value.path == str(path)

    def test_non_numeric_wcet_names_its_index(self):
        data = _valid_graph_dict()
        data["tasks"][0]["wcet"] = "fast"
        with pytest.raises(ProblemFormatError, match=r"tasks\[0\]"):
            graph_from_dict(data)

    def test_malformed_channel_names_its_index(self):
        data = _valid_graph_dict()
        del data["channels"][0]["dst"]
        with pytest.raises(ProblemFormatError, match=r"channels\[0\]"):
            graph_from_dict(data)

    def test_errors_remain_catchable_as_serialization_errors(self):
        with pytest.raises(SerializationError):
            graph_from_dict({"format": "bogus"})

    def test_round_trip_of_a_real_graph_still_works(self, tmp_path):
        g = generate_task_graph(tiny_spec(), seed=0)
        path = tmp_path / "g.json"
        save_graph(g, path)
        loaded = load_graph(path)
        assert loaded.task_names == g.task_names


class TestStgCorruption:
    def test_malformed_task_line_carries_its_line_number(self):
        text = "2\n1 10 0\nnot a task line\n"
        with pytest.raises(ProblemFormatError) as exc:
            parse_stg(text, source="bench.stg")
        assert exc.value.line == 3
        assert exc.value.path == "bench.stg"
        assert "bench.stg, line 3" in str(exc.value)

    def test_non_numeric_task_count(self):
        with pytest.raises(ProblemFormatError) as exc:
            parse_stg("lots\n1 10 0\n")
        assert exc.value.line == 1

    def test_unknown_predecessor_points_at_the_referencing_line(self):
        text = "2\n1 10 0\n2 20 1 7\n"
        with pytest.raises(ProblemFormatError) as exc:
            parse_stg(text)
        assert "unknown predecessor 7" in str(exc.value)
        assert exc.value.line == 3

    def test_duplicate_task_id(self):
        text = "2\n1 10 0\n1 20 0\n"
        with pytest.raises(ProblemFormatError) as exc:
            parse_stg(text)
        assert "duplicate" in str(exc.value)
        assert exc.value.line == 3

    def test_predecessor_count_mismatch(self):
        text = "2\n1 10 0\n2 20 3 1\n"
        with pytest.raises(ProblemFormatError) as exc:
            parse_stg(text)
        assert "declared 3 predecessors" in str(exc.value)
        assert exc.value.line == 3

    def test_comments_do_not_shift_reported_line_numbers(self):
        text = "# header\n\n2\n# interlude\n1 10 0\nbroken\n"
        with pytest.raises(ProblemFormatError) as exc:
            parse_stg(text)
        assert exc.value.line == 6

    def test_missing_file_is_a_clean_error(self, tmp_path):
        with pytest.raises(ProblemFormatError, match="cannot read STG"):
            load_stg(tmp_path / "nope.stg")

    def test_load_stg_prefixes_the_path(self, tmp_path):
        path = tmp_path / "bad.stg"
        path.write_text("2\n1 10 0\n2 20 1 9\n")
        with pytest.raises(ProblemFormatError) as exc:
            load_stg(path)
        assert exc.value.path == str(path)
        assert str(path) in str(exc.value)
