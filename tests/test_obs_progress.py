"""Unit tests for repro.obs.progress and the engine heartbeat hook."""

import math

import pytest

from repro.core import BnBParameters, BranchAndBound
from repro.core.resources import ResourceBounds
from repro.model import compile_problem, shared_bus_platform
from repro.obs import Observability, ProgressReporter, format_progress_line
from repro.workload import generate_task_graph, scaled_spec


@pytest.fixture
def hard_problem():
    return compile_problem(
        generate_task_graph(scaled_spec(), seed=0), shared_bus_platform(2)
    )


class TestFormatting:
    def test_line_contents(self):
        line = format_progress_line(
            elapsed=2.0,
            explored=1234,
            generated=5678,
            active=90,
            incumbent=-1.5,
            vertices_per_second=2839.0,
            eta=4.0,
        )
        assert "explored=1,234" in line
        assert "generated=5,678" in line
        assert "incumbent=-1.5" in line
        assert "eta=4.0s" in line

    def test_unbounded_run_has_no_eta_and_dash_incumbent(self):
        line = format_progress_line(
            elapsed=1.0,
            explored=1,
            generated=1,
            active=1,
            incumbent=math.inf,
            vertices_per_second=1.0,
            eta=None,
        )
        assert "eta" not in line
        assert "incumbent=-" in line


class TestReporter:
    def test_interval_rate_limits(self):
        lines = []
        rep = ProgressReporter(interval=3600.0, emit=lines.append)
        rep.start()
        emitted = [
            rep.maybe_emit(explored=i, generated=i, active=0, incumbent=0.0)
            for i in range(5)
        ]
        # The first check-in emits immediately (instant feedback that the
        # heartbeat is live); after that the interval gates every line.
        assert emitted == [True] + [False] * 4
        assert lines and len(lines) == 1

    def test_zero_interval_emits_every_checkin(self):
        lines = []
        rep = ProgressReporter(interval=0.0, emit=lines.append)
        for i in range(3):
            assert rep.maybe_emit(
                explored=i, generated=i, active=0, incumbent=0.0
            )
        assert len(lines) == 3
        assert rep.lines_emitted == 3

    def test_eta_from_vertex_cap(self):
        eta = ProgressReporter._eta(
            generated=500, elapsed=1.0, vps=500.0,
            max_vertices=1000.0, time_limit=math.inf,
        )
        assert eta == pytest.approx(1.0)

    def test_eta_takes_tighter_bound(self):
        eta = ProgressReporter._eta(
            generated=500, elapsed=1.0, vps=500.0,
            max_vertices=1000.0, time_limit=1.2,
        )
        assert eta == pytest.approx(0.2)

    def test_negative_interval_rejected(self):
        with pytest.raises(ValueError):
            ProgressReporter(interval=-1.0)


class TestEngineHeartbeat:
    def test_heartbeats_and_final_line(self, hard_problem):
        lines = []
        rep = ProgressReporter(interval=0.0, emit=lines.append)
        res = BranchAndBound(
            BnBParameters(), obs=Observability(progress=rep)
        ).solve(hard_problem)
        # The engine checks in every 64 explored vertices plus once at
        # the end; this search explores ~700.
        assert rep.lines_emitted >= res.stats.explored // 64
        assert lines[-1].startswith("[repro] done:")
        assert res.status.value in lines[-1]

    def test_eta_present_with_vertex_cap(self, hard_problem):
        lines = []
        rep = ProgressReporter(interval=0.0, emit=lines.append)
        BranchAndBound(
            BnBParameters(resources=ResourceBounds(max_vertices=100_000)),
            obs=Observability(progress=rep),
        ).solve(hard_problem)
        heartbeats = [ln for ln in lines if "done:" not in ln]
        assert heartbeats
        assert all("eta=" in ln for ln in heartbeats)

    def test_silent_when_detached(self, hard_problem, capsys):
        BranchAndBound(BnBParameters()).solve(hard_problem)
        captured = capsys.readouterr()
        assert "[repro]" not in captured.err


class TestGapAndWorkersFields:
    def test_gap_and_workers_rendered_when_known(self):
        line = format_progress_line(
            elapsed=2.0,
            explored=100,
            generated=200,
            active=10,
            incumbent=3.5,
            vertices_per_second=100.0,
            eta=None,
            gap=0.75,
            workers_alive=4,
        )
        assert " gap=0.75" in line
        assert " workers=4" in line

    def test_fields_absent_when_unknown(self):
        line = format_progress_line(
            elapsed=2.0,
            explored=100,
            generated=200,
            active=10,
            incumbent=3.5,
            vertices_per_second=100.0,
            eta=None,
        )
        assert "gap=" not in line
        assert "workers=" not in line

    def test_maybe_emit_forwards_gap(self):
        lines = []
        reporter = ProgressReporter(interval=0.0, emit=lines.append)
        reporter.maybe_emit(
            explored=64, generated=100, active=5, incumbent=2.0,
            gap=0.5, workers_alive=2,
        )
        assert lines and "gap=0.5" in lines[0]
        assert "workers=2" in lines[0]
