"""Dedicated tests for the dominance rules (``repro.core.dominance``).

:class:`StateDominance` is an *optional* pruning rule the paper leaves
off, so its soundness is entirely on us: the differential section checks
it never prunes the optimum on seeded DAGs small enough for the
independent oracle to enumerate.  The unit section pins the store-size
bound (``max_front``), the deterministic FIFO eviction order, and the
telemetry surface; the composition section covers
:class:`ChainedDominance` and the rule registry.
"""

from __future__ import annotations

import pytest

from repro.core import BnBParameters, BranchAndBound
from repro.core.dominance import (
    DOMINANCE_RULES,
    ChainedDominance,
    NoDominance,
    StateDominance,
)
from repro.core.state import root_state
from repro.model import compile_problem, shared_bus_platform
from repro.workload import WorkloadSpec, generate_task_graph

from conftest import make_independent
from oracle import oracle_optimum

SPEC = WorkloadSpec(num_tasks=(4, 6), depth=(2, 4))
SEEDS = range(12)


def _problem(seed: int):
    graph = generate_task_graph(SPEC, seed=seed)
    m = 3 if len(graph) <= 4 else 2
    return compile_problem(graph, shared_bus_platform(m))


# ---------------------------------------------------------------------------
# Soundness against the independent oracle
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("max_front", [1, 64])
def test_state_dominance_never_prunes_the_optimum(seed, max_front):
    """Engine + StateDominance still finds the true optimum — even at
    ``max_front=1``, where almost every recorded state is evicted."""
    problem = _problem(seed)
    params = BnBParameters(dominance=StateDominance(max_front=max_front))
    result = BranchAndBound(params).solve(problem)
    assert result.found_solution
    assert result.best_cost == pytest.approx(
        oracle_optimum(problem), abs=1e-9
    )


@pytest.mark.parametrize("seed", SEEDS)
def test_state_dominance_never_adds_work(seed):
    problem = _problem(seed)
    plain = BranchAndBound(BnBParameters()).solve(problem)
    dom = BranchAndBound(
        BnBParameters(dominance=StateDominance())
    ).solve(problem)
    assert dom.best_cost == pytest.approx(plain.best_cost, abs=1e-9)
    assert dom.stats.generated <= plain.stats.generated


# ---------------------------------------------------------------------------
# The bounded Pareto front
# ---------------------------------------------------------------------------


def _incomparable_states():
    """Two same-key states with pointwise-incomparable finish vectors.

    Scheduling two independent tasks on one processor in either order
    reaches the same (task set, canonical assignment) key, but each
    order finishes its first task earlier — neither dominates.
    """
    problem = compile_problem(make_independent(2), shared_bus_platform(2))
    root = root_state(problem)
    return root.child(0, 0).child(1, 0), root.child(1, 0).child(0, 0)


def test_front_store_size_stays_bounded():
    """Regression for the ``max_front`` bound: the store never exceeds
    ``max_front`` entries per key, whatever is thrown at it."""
    a, b = _incomparable_states()
    checker = StateDominance(max_front=1).fresh()
    for state in (a, b, a, b, a):
        checker.is_dominated(state)
    assert checker.store_size() <= 1
    assert checker.front_evictions > 0


def test_front_eviction_is_deterministic_fifo():
    a, b = _incomparable_states()
    checker = StateDominance(max_front=1).fresh()
    assert checker.is_dominated(a) is False  # recorded
    # b is incomparable: not dominated, and recording it evicts a (FIFO).
    assert checker.is_dominated(b) is False
    assert checker.front_evictions == 1
    # a was forgotten, so it is re-admitted (eviction loses pruning
    # power, never soundness) — and that re-admission evicts b in turn.
    assert checker.is_dominated(a) is False
    assert checker.front_evictions == 2
    assert checker.store_size() == 1


def test_duplicate_state_is_dominated_by_itself():
    a, _ = _incomparable_states()
    checker = StateDominance(max_front=4).fresh()
    assert checker.is_dominated(a) is False
    assert checker.is_dominated(a) is True
    assert checker.telemetry()["dominated_pruned"] == 1


def test_telemetry_counts_store_shape():
    a, b = _incomparable_states()
    checker = StateDominance(max_front=4).fresh()
    checker.is_dominated(a)
    checker.is_dominated(b)
    tel = checker.telemetry()
    assert tel["front_keys"] == 1
    assert tel["front_entries"] == 2
    assert tel["front_evictions"] == 0


def test_max_front_validated():
    with pytest.raises(ValueError):
        StateDominance(max_front=0)


# ---------------------------------------------------------------------------
# Composition and registry
# ---------------------------------------------------------------------------


def test_chained_dominance_prunes_when_any_member_does():
    a, _ = _incomparable_states()
    chain = ChainedDominance(NoDominance(), StateDominance()).fresh()
    assert chain.is_noop is False
    assert chain.is_dominated(a) is False
    assert chain.is_dominated(a) is True


def test_chained_dominance_of_noops_is_noop():
    chain = ChainedDominance(NoDominance(), NoDominance())
    assert chain.fresh().is_noop is True
    assert chain.name == "none+none"


def test_chained_dominance_requires_members():
    with pytest.raises(ValueError):
        ChainedDominance()


def test_registry_exposes_all_rules():
    assert {"none", "state", "transposition"} <= set(DOMINANCE_RULES)


def test_cli_wires_max_front_through():
    from repro.cli import _build_dominance, build_parser

    args = build_parser().parse_args(
        ["solve", "g.json", "--dominance", "state", "--max-front", "7"]
    )
    rule = _build_dominance(args)
    assert isinstance(rule, StateDominance)
    assert rule.max_front == 7

    args = build_parser().parse_args(
        ["solve", "g.json", "--dominance", "state", "--transposition"]
    )
    rule = _build_dominance(args)
    assert isinstance(rule, ChainedDominance)
    assert rule.name == "transposition+state"
