"""Unit tests for the multiprocessing parallel driver.

The deterministic-mode contract (exact replay of the sequential LIFO
search: cost, schedule, shard-summed counters, status — and exact
MAXVERT budget replay) is asserted against the sequential engine on
every fixture; throughput mode is held to its weaker contract (optimal
cost, valid schedule).  The supporting machinery — frontier export
order, shared-incumbent semantics, sub-search resumption, worker event
tagging, the parallel report — is covered piecewise.
"""

from __future__ import annotations

import math
from types import SimpleNamespace

import pytest

from repro.core import (
    BnBParameters,
    BranchAndBound,
    LIFOSelection,
    ParallelBnB,
    ResourceBounds,
    SharedIncumbent,
    SolveStatus,
    Vertex,
    root_state,
    solve_parallel,
)
from repro.core.engine import SubtreeSpec
from repro.core.expand import FusedExpander
from repro.core.parallel import default_worker_count
from repro.core.selection import SELECTION_RULES
from repro.errors import ConfigurationError, ResourceLimitExceeded
from repro.model import compile_problem, shared_bus_platform
from repro.obs import MemorySink, Observability
from repro.workload import WorkloadSpec, generate_task_graph

from conftest import make_chain, make_diamond, make_forkjoin


def _problems():
    probs = [
        compile_problem(make_chain(), shared_bus_platform(2)),
        compile_problem(make_diamond(), shared_bus_platform(2)),
        compile_problem(make_forkjoin(), shared_bus_platform(2)),
    ]
    # Tight deadlines + real communication costs: EDF is not optimal
    # here, so the search trees are non-trivial (~2k vertices each).
    spec = WorkloadSpec(
        num_tasks=(8, 10), depth=(3, 5), ccr=1.0, laxity_ratio=1.05
    )
    for seed in (0, 4):
        probs.append(
            compile_problem(
                generate_task_graph(spec, seed=seed), shared_bus_platform(2)
            )
        )
    return probs


PROBLEMS = _problems()
_IDS = [f"{p.graph.name}-m{p.m}" for p in PROBLEMS]

LIFO = BnBParameters(selection=LIFOSelection())

#: ``elapsed`` is wall-clock; ``peak_active`` is an upper estimate in
#: parallel mode.  Everything else must match exactly.
_INEXACT = ("elapsed", "peak_active")


def _exact(stats) -> dict:
    d = stats.as_dict()
    for key in _INEXACT:
        d.pop(key)
    return d


def _assert_identical(par, seq):
    assert par.status == seq.status
    assert par.best_cost == seq.best_cost
    assert par.proc_of == seq.proc_of
    assert par.start == seq.start
    assert par.initial_upper_bound == seq.initial_upper_bound
    assert par.incumbent_source == seq.incumbent_source
    assert _exact(par.stats) == _exact(seq.stats)


# ---------------------------------------------------------------------------
# Deterministic mode
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("problem", PROBLEMS, ids=_IDS)
def test_deterministic_replay_is_bit_identical(problem):
    seq = BranchAndBound(LIFO).solve(problem)
    par = ParallelBnB(LIFO, workers=2, split_depth=2).solve(problem)
    _assert_identical(par, seq)


def test_deterministic_across_worker_counts_and_depths():
    problem = PROBLEMS[-1]
    seq = BranchAndBound(LIFO).solve(problem)
    for workers in (1, 2, 4):
        for depth in (1, 3):
            solver = ParallelBnB(LIFO, workers=workers, split_depth=depth)
            _assert_identical(solver.solve(problem), seq)
            report = solver.last_report
            assert report.mode == "deterministic"
            assert report.workers == workers
            assert report.speculative_hits + report.reruns <= report.shards


def test_maxvert_budget_is_replayed_exactly():
    problem = PROBLEMS[-1]
    for cap in (40, 150, 600):
        params = BnBParameters(
            selection=LIFOSelection(),
            resources=ResourceBounds(
                max_vertices=cap, fail_on_exhaustion=False
            ),
        )
        seq = BranchAndBound(params).solve(problem)
        par = ParallelBnB(params, workers=2, split_depth=2).solve(problem)
        _assert_identical(par, seq)


def test_maxvert_exhaustion_raises_in_both_modes():
    problem = PROBLEMS[-1]
    params = BnBParameters(
        selection=LIFOSelection(),
        resources=ResourceBounds(max_vertices=40, fail_on_exhaustion=True),
    )
    with pytest.raises(ResourceLimitExceeded) as seq_err:
        BranchAndBound(params).solve(problem)
    with pytest.raises(ResourceLimitExceeded) as par_err:
        ParallelBnB(params, workers=2, split_depth=2).solve(problem)
    assert seq_err.value.which == par_err.value.which == "MAXVERT"


def test_deterministic_rejects_timing_dependent_bounds():
    for bounds in (
        ResourceBounds(time_limit=5.0),
        ResourceBounds(max_active=100, fail_on_exhaustion=False),
        ResourceBounds(max_children=4, fail_on_exhaustion=False),
    ):
        params = BnBParameters(resources=bounds)
        with pytest.raises(ConfigurationError):
            ParallelBnB(params, workers=2).solve(PROBLEMS[0])


def test_constructor_validation():
    with pytest.raises(ConfigurationError):
        ParallelBnB(workers=0)
    with pytest.raises(ConfigurationError):
        ParallelBnB(split_depth=0)
    assert default_worker_count() >= 1


def test_shard_events_reach_the_coordinator_sink():
    problem = PROBLEMS[-1]
    sink = MemorySink()
    solver = ParallelBnB(
        LIFO, workers=2, split_depth=2, obs=Observability(sink=sink)
    )
    solver.solve(problem)
    shard_events = sink.of_kind("shard")
    assert len(shard_events) == solver.last_report.shards
    assert solver.last_report.shards > 0
    for ev in shard_events:
        assert {"shard", "level", "lb", "speculative", "generated"} <= set(ev)
        assert ev["level"] >= 2


# ---------------------------------------------------------------------------
# Throughput mode
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("problem", PROBLEMS, ids=_IDS)
def test_throughput_mode_is_cost_optimal(problem):
    seq = BranchAndBound(LIFO).solve(problem)
    solver = ParallelBnB(LIFO, workers=2, split_depth=2, deterministic=False)
    thr = solver.solve(problem)
    assert thr.best_cost == seq.best_cost
    assert thr.status is SolveStatus.OPTIMAL
    if thr.proc_of is not None:
        thr.schedule().validate()
    assert solver.last_report.mode == "throughput"


def test_throughput_with_no_shards_returns_the_shallow_result():
    problem = PROBLEMS[0]  # chain: split deeper than the tree
    solver = ParallelBnB(
        LIFO, workers=2, split_depth=problem.n + 1, deterministic=False
    )
    thr = solver.solve(problem)
    seq = BranchAndBound(LIFO).solve(problem)
    _assert_identical(thr, seq)
    assert solver.last_report.shards == 0


def test_worker_events_are_tagged():
    problem = PROBLEMS[-1]
    sink = MemorySink()
    solver = ParallelBnB(
        LIFO,
        workers=2,
        split_depth=2,
        deterministic=False,
        obs=Observability(sink=sink),
        collect_worker_events=True,
    )
    solver.solve(problem)
    tagged = [p for _k, p in sink.events if "worker" in p]
    assert tagged, "expected per-worker tagged events in the merged trace"
    workers_seen = {p["worker"] for p in tagged}
    assert workers_seen <= set(range(solver.last_report.workers))
    for payload in tagged:
        assert "shard" in payload
    # The coordinator's own shallow-pass events stay untagged.
    assert any("worker" not in p for _k, p in sink.events)


# ---------------------------------------------------------------------------
# Machinery
# ---------------------------------------------------------------------------


def test_shared_incumbent_is_a_cross_process_min():
    shared = SharedIncumbent.create()
    assert math.isinf(shared.poll())
    assert shared.publish(5.0)
    assert not shared.publish(7.0)  # worse: rejected
    assert shared.poll() == 5.0
    assert shared.publish(-1.0)
    assert shared.poll() == -1.0


def test_subtree_resume_reproduces_the_root_evaluation():
    problem = PROBLEMS[-1]
    params = BnBParameters()
    expander = FusedExpander(
        problem,
        params.branching.prepare(problem),
        params.lower_bound,
        params.characteristic,
        params.dominance.fresh(),
        params.elimination,
        params.break_symmetry,
    )
    fresh = expander.root()
    resumed = expander.root_from(root_state(problem))
    assert resumed.lower_bound == fresh.lower_bound
    # Bitwise-equal estimate vectors: the incremental bound continues
    # in a worker exactly as it would have in the coordinator.
    assert resumed.est == fresh.est
    assert resumed.estart == fresh.estart
    # A shipped lower bound is trusted verbatim (no re-evaluation drift).
    pinned = expander.root_from(root_state(problem), fresh.lower_bound)
    assert pinned.lower_bound == fresh.lower_bound


def test_subtree_solve_equals_inline_subtree():
    """A sub-search from a mid-tree vertex finds the best completion at
    or below the incumbent it was given."""
    problem = PROBLEMS[1]  # diamond
    seq = BranchAndBound(LIFO).solve(problem)
    state = root_state(problem).child(0, 0)
    lb = BnBParameters().lower_bound.evaluate(state)
    sub = BranchAndBound(LIFO).solve(
        problem,
        subtree=SubtreeSpec(state, lb, math.inf),
    )
    # The first root placement is symmetric-optimal for the diamond, so
    # the subtree contains an optimal completion.
    assert sub.best_cost == pytest.approx(seq.best_cost, abs=1e-9)
    # Sub-search roots are not re-counted: all generated vertices are
    # strictly below the shipped root.
    assert sub.stats.generated < seq.stats.generated


def test_frontier_export_matches_pop_order():
    for name, cls in SELECTION_RULES.items():
        frontier = cls().make_frontier()
        # LLB-D orders by depth too, so the stub states need a level.
        vertices = [
            Vertex(SimpleNamespace(level=seq % 3), lb, seq)
            for seq, lb in enumerate([3.0, 1.0, 2.0, 1.0, 5.0])
        ]
        for v in vertices:
            frontier.push(v)
        exported = frontier.export()
        popped = []
        while True:
            v = frontier.pop()
            if v is None:
                break
            popped.append(v)
        assert exported == popped, name


def test_solve_parallel_wrapper():
    problem = PROBLEMS[1]
    seq = BranchAndBound(LIFO).solve(problem)
    res = solve_parallel(problem, LIFO, workers=2)
    _assert_identical(res, seq)
