"""Checkpoint/resume and graceful-shutdown tests.

The load-bearing guarantee is the *kill-resume differential*: for every
tested ⟨B,S,E,L⟩ cell, running to completion and running-capped → final
snapshot → resume must produce the same cost and schedule, and (without
a transposition layer, which is deliberately dropped from snapshots)
exactly the same generated/explored counters.  The rest of the file
covers the format layer (atomic writes, versioning, corruption,
fingerprint binding) and the cooperative-stop path, and ends with the
real thing: SIGKILLing a live CLI solve and resuming it.
"""

from __future__ import annotations

import os
import pickle
import signal

import pytest

from faultlib import (
    hard_graph,
    hard_problem,
    kill_when_file_appears,
    parse_lmax,
    run_cli,
    spawn_cli,
)
from repro.core import (
    BnBParameters,
    BranchAndBound,
    ResourceBounds,
    SolveStatus,
)
from repro.core.bounds import LB2
from repro.core.checkpoint import (
    CHECKPOINT_FORMAT,
    Checkpointer,
    StopToken,
    graceful_interrupts,
    load_checkpoint,
    problem_fingerprint,
    write_checkpoint,
)
from repro.core.selection import FIFOSelection, MemoryLimitedSelection
from repro.errors import CheckpointError
from repro.io import save_graph

PROBLEM = hard_problem(seed=0)


# ---------------------------------------------------------------------------
# Fingerprints
# ---------------------------------------------------------------------------


class TestFingerprint:
    def test_deterministic(self):
        params = BnBParameters()
        assert problem_fingerprint(PROBLEM, params) == problem_fingerprint(
            PROBLEM, params
        )

    def test_search_shaping_parameters_change_it(self):
        base = problem_fingerprint(PROBLEM, BnBParameters.paper_lifo())
        assert base != problem_fingerprint(PROBLEM, BnBParameters.paper_llb())
        assert base != problem_fingerprint(PROBLEM, BnBParameters.paper_lb0())

    def test_problem_changes_it(self):
        params = BnBParameters()
        assert problem_fingerprint(PROBLEM, params) != problem_fingerprint(
            hard_problem(seed=4), params
        )

    def test_resource_bounds_do_not_change_it(self):
        # RB is excluded on purpose: the runbook is "resume the capped
        # run with bigger limits", which must not invalidate snapshots.
        params = BnBParameters()
        capped = params.evolve(
            resources=ResourceBounds(max_vertices=10, time_limit=1.0)
        )
        assert problem_fingerprint(PROBLEM, params) == problem_fingerprint(
            PROBLEM, capped
        )


# ---------------------------------------------------------------------------
# File format
# ---------------------------------------------------------------------------


def _solve_capped_with_checkpoint(params, cap, path, every=50):
    capped = params.evolve(resources=ResourceBounds(max_vertices=cap))
    result = BranchAndBound(capped).solve(
        PROBLEM, checkpoint=Checkpointer(str(path), every=every)
    )
    return result


class TestFormat:
    def test_roundtrip_preserves_the_snapshot(self, tmp_path):
        path = tmp_path / "cp.pkl"
        result = _solve_capped_with_checkpoint(BnBParameters(), 400, path)
        assert result.status is SolveStatus.TRUNCATED
        assert result.checkpoint_path == str(path)
        snap = load_checkpoint(str(path))
        assert snap.format == CHECKPOINT_FORMAT
        assert snap.frontier
        assert snap.fingerprint == problem_fingerprint(
            PROBLEM, BnBParameters()
        )
        # The cap is checked per expansion, so the final batch of
        # children may overshoot it by at most one expansion's worth.
        assert snap.stats["generated"] <= 400 + PROBLEM.n * 2

    def test_write_is_atomic_and_leaves_no_temp_files(self, tmp_path):
        path = tmp_path / "cp.pkl"
        _solve_capped_with_checkpoint(BnBParameters(), 400, path, every=25)
        leftovers = [p for p in os.listdir(tmp_path) if p != "cp.pkl"]
        assert leftovers == []

    def test_versions_are_monotone(self, tmp_path):
        path = tmp_path / "cp.pkl"
        _solve_capped_with_checkpoint(BnBParameters(), 800, path, every=25)
        snap = load_checkpoint(str(path))
        # explored ~200+ at cap 800, every=25 -> several periodic writes
        # before the final one; the surviving file carries the last.
        assert snap.version >= 1

    def test_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError, match="cannot read"):
            load_checkpoint(str(tmp_path / "nope.pkl"))

    def test_truncated_file_is_reported_corrupt(self, tmp_path):
        path = tmp_path / "cp.pkl"
        _solve_capped_with_checkpoint(BnBParameters(), 400, path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(CheckpointError, match="corrupt"):
            load_checkpoint(str(path))

    def test_foreign_pickle_is_rejected(self, tmp_path):
        path = tmp_path / "cp.pkl"
        path.write_bytes(pickle.dumps({"not": "a checkpoint"}))
        with pytest.raises(CheckpointError, match="not a search checkpoint"):
            load_checkpoint(str(path))

    def test_unsupported_format_version_is_rejected(self, tmp_path):
        path = tmp_path / "cp.pkl"
        _solve_capped_with_checkpoint(BnBParameters(), 400, path)
        snap = load_checkpoint(str(path))
        snap.format = "repro/checkpoint-v999"
        write_checkpoint(snap, str(path))
        with pytest.raises(CheckpointError, match="unsupported"):
            load_checkpoint(str(path))

    def test_checkpointer_validates_interval(self, tmp_path):
        with pytest.raises(CheckpointError):
            Checkpointer(str(tmp_path / "cp.pkl"), every=0)

    def test_due_baselines_at_the_first_observation(self):
        cp = Checkpointer("unused.pkl", every=10)
        # A resumed run's first call must not immediately re-write what
        # it just read: the first observation only sets the baseline.
        assert cp.due(500) is False
        assert cp.due(505) is False
        assert cp.due(510) is True
        assert cp.due(511) is False
        assert cp.due(520) is True


# ---------------------------------------------------------------------------
# The kill-resume differential
# ---------------------------------------------------------------------------

#: ⟨B,S,E,L⟩ cells under differential test.  Kept to distinct frontier
#: disciplines (LIFO list vs. heap) and bound/branching variants so the
#: restore path is exercised for every Frontier implementation.
CELLS = [
    pytest.param(BnBParameters.paper_lifo(), id="BFn-LIFO-UDBAS-LB1"),
    pytest.param(BnBParameters.paper_llb(), id="BFn-LLB-UDBAS-LB1"),
    pytest.param(BnBParameters.paper_lb0(), id="BFn-LIFO-UDBAS-LB0"),
    pytest.param(
        BnBParameters(selection=FIFOSelection()), id="BFn-FIFO-UDBAS-LB1"
    ),
    pytest.param(BnBParameters(lower_bound=LB2()), id="BFn-LIFO-UDBAS-LB2"),
    pytest.param(
        BnBParameters(selection=MemoryLimitedSelection(cap=32)),
        id="BFn-ML32-UDBAS-LB1",
    ),
]


@pytest.mark.parametrize("params", CELLS)
def test_kill_resume_differential(params, tmp_path):
    straight = BranchAndBound(params).solve(PROBLEM)
    assert straight.stats.explored > 50, "cell too trivial to test resume"

    path = tmp_path / "cp.pkl"
    cap = max(50, straight.stats.generated // 2)
    capped = BranchAndBound(
        params.evolve(resources=ResourceBounds(max_vertices=cap))
    ).solve(PROBLEM, checkpoint=Checkpointer(str(path), every=40))
    assert capped.status is SolveStatus.TRUNCATED
    assert capped.checkpoint_path == str(path)

    resumed = BranchAndBound(params).solve(
        PROBLEM, resume=load_checkpoint(str(path))
    )
    assert resumed.status == straight.status
    assert resumed.best_cost == straight.best_cost
    assert resumed.proc_of == straight.proc_of
    assert resumed.start == straight.start
    # No transposition layer in these cells: the resumed run replays the
    # remaining tree exactly, so the counters match to the vertex.
    assert resumed.stats.generated == straight.stats.generated
    assert resumed.stats.explored == straight.stats.explored


def test_kill_resume_differential_dupfree(tmp_path):
    """AO cell: snapshot/restore must preserve the AOState extras.

    Runs on a seed whose allocation-ordered tree is big enough to
    truncate mid-search (seed 0's collapses in ~30 expansions under the
    allocation-aware floor).  Counter parity is exact — AO admits no
    transposition layer, so nothing is dropped from snapshots.
    """
    problem = hard_problem(seed=5)
    params = BnBParameters.dupfree()
    straight = BranchAndBound(params).solve(problem)
    assert straight.stats.explored > 50, "cell too trivial to test resume"

    path = tmp_path / "cp.pkl"
    cap = max(50, straight.stats.generated // 2)
    capped = BranchAndBound(
        params.evolve(resources=ResourceBounds(max_vertices=cap))
    ).solve(problem, checkpoint=Checkpointer(str(path), every=40))
    assert capped.status is SolveStatus.TRUNCATED

    resumed = BranchAndBound(params).solve(
        problem, resume=load_checkpoint(str(path))
    )
    assert resumed.status == straight.status
    assert resumed.best_cost == straight.best_cost
    assert resumed.proc_of == straight.proc_of
    assert resumed.start == straight.start
    assert resumed.stats.generated == straight.stats.generated
    assert resumed.stats.explored == straight.stats.explored


def test_kill_resume_differential_with_transposition(tmp_path):
    # The TT is deliberately not snapshotted (dropping it is sound but
    # duplicates may be re-explored), so this cell asserts the cost and
    # schedule contract only, plus the direction of the counter drift.
    params = BnBParameters().with_transposition()
    straight = BranchAndBound(params).solve(PROBLEM)
    path = tmp_path / "cp.pkl"
    cap = max(50, straight.stats.generated // 2)
    capped = BranchAndBound(
        params.evolve(resources=ResourceBounds(max_vertices=cap))
    ).solve(PROBLEM, checkpoint=Checkpointer(str(path), every=40))
    assert capped.status is SolveStatus.TRUNCATED

    resumed = BranchAndBound(params).solve(
        PROBLEM, resume=load_checkpoint(str(path))
    )
    assert resumed.best_cost == straight.best_cost
    assert resumed.stats.generated >= straight.stats.generated


def test_resume_rejects_a_different_parametrization(tmp_path):
    path = tmp_path / "cp.pkl"
    _solve_capped_with_checkpoint(BnBParameters.paper_lifo(), 400, path)
    snap = load_checkpoint(str(path))
    with pytest.raises(CheckpointError, match="does not match"):
        BranchAndBound(BnBParameters.paper_llb()).solve(PROBLEM, resume=snap)


def test_resume_rejects_a_different_problem(tmp_path):
    path = tmp_path / "cp.pkl"
    _solve_capped_with_checkpoint(BnBParameters(), 400, path)
    snap = load_checkpoint(str(path))
    with pytest.raises(CheckpointError, match="does not match"):
        BranchAndBound(BnBParameters()).solve(
            hard_problem(seed=4), resume=snap
        )


# ---------------------------------------------------------------------------
# Cooperative stop
# ---------------------------------------------------------------------------


class TestGracefulStop:
    def test_preset_token_returns_anytime_result(self):
        token = StopToken()
        token.set("test")
        result = BranchAndBound(BnBParameters()).solve(PROBLEM, stop=token)
        assert result.status is SolveStatus.INTERRUPTED
        # The EDF initial incumbent is never lost, and the open bound
        # turns the early stop into a quantified optimality gap.
        assert result.found_solution
        assert result.open_lower_bound is not None
        assert result.optimality_gap >= 0.0
        result.schedule().validate()

    def test_stop_writes_a_final_checkpoint(self, tmp_path):
        token = StopToken()
        token.set("test")
        path = tmp_path / "cp.pkl"
        result = BranchAndBound(BnBParameters()).solve(
            PROBLEM,
            stop=token,
            checkpoint=Checkpointer(str(path), every=10_000),
        )
        assert result.status is SolveStatus.INTERRUPTED
        assert result.checkpoint_path == str(path)
        resumed = BranchAndBound(BnBParameters()).solve(
            PROBLEM, resume=load_checkpoint(str(path))
        )
        straight = BranchAndBound(BnBParameters()).solve(PROBLEM)
        assert resumed.best_cost == straight.best_cost
        assert resumed.stats.generated == straight.stats.generated

    def test_sigint_sets_the_token(self):
        token = StopToken()
        with graceful_interrupts(token):
            signal.raise_signal(signal.SIGINT)
            assert token.is_set()
            assert token.reason == "SIGINT"
        # Handlers restored: a fresh token context is independent.
        assert signal.getsignal(signal.SIGINT) is not None

    def test_sigterm_sets_the_token(self):
        token = StopToken()
        with graceful_interrupts(token):
            signal.raise_signal(signal.SIGTERM)
            assert token.is_set()
            assert token.reason == "SIGTERM"


# ---------------------------------------------------------------------------
# The real thing: SIGKILL a live CLI solve, resume it
# ---------------------------------------------------------------------------


def test_sigkill_mid_run_then_resume_matches_straight_run(tmp_path):
    graph_path = tmp_path / "g.json"
    save_graph(hard_graph(seed=0), graph_path)
    cp = tmp_path / "cp.pkl"

    straight = run_cli(["solve", str(graph_path), "-m", "2"])
    assert straight.returncode == 0, straight.stderr
    want = parse_lmax(straight.stdout)

    proc = spawn_cli(
        [
            "solve", str(graph_path), "-m", "2",
            "--checkpoint", str(cp), "--checkpoint-every", "25",
        ]
    )
    try:
        kill_when_file_appears(proc, cp, timeout=60.0)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=30)
    assert cp.exists() and cp.stat().st_size > 0

    resumed = run_cli(
        ["solve", str(graph_path), "-m", "2", "--resume", str(cp)]
    )
    assert resumed.returncode == 0, resumed.stderr
    assert "resumed:" in resumed.stdout
    assert parse_lmax(resumed.stdout) == want


def test_cli_rejects_checkpoint_with_workers(tmp_path):
    graph_path = tmp_path / "g.json"
    save_graph(hard_graph(seed=0), graph_path)
    out = run_cli(
        [
            "solve", str(graph_path), "-m", "2",
            "--workers", "2", "--checkpoint", str(tmp_path / "cp.pkl"),
        ]
    )
    assert out.returncode == 2
    assert "in-process engine" in out.stderr
