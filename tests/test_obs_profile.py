"""Unit tests for repro.obs.profile and the engine's phase hooks."""

import pytest

from repro.core import BnBParameters, BranchAndBound
from repro.model import compile_problem, shared_bus_platform
from repro.obs import PHASES, Observability, PhaseBreakdown, PhaseProfiler
from repro.workload import generate_task_graph, scaled_spec

from conftest import make_diamond


@pytest.fixture
def hard_problem():
    return compile_problem(
        generate_task_graph(scaled_spec(), seed=0), shared_bus_platform(2)
    )


def profiled_solve(problem, params=None):
    prof = PhaseProfiler()
    res = BranchAndBound(
        params or BnBParameters(), obs=Observability(profiler=prof)
    ).solve(problem)
    return res, prof


class TestProfilerMechanics:
    def test_add_and_reset(self):
        prof = PhaseProfiler()
        prof.add("bound", 0.5)
        prof.add("bound", 0.25)
        prof.add("custom-phase", 1.0)
        assert prof.totals["bound"] == pytest.approx(0.75)
        assert prof.counts["bound"] == 2
        assert prof.totals["custom-phase"] == 1.0
        assert prof.total == pytest.approx(1.75)
        prof.reset()
        assert prof.total == 0.0

    def test_freeze_orders_canonical_phases_first(self):
        prof = PhaseProfiler()
        prof.add("zz-extra", 1.0)
        prof.add("select", 2.0)
        frozen = prof.freeze()
        names = [name for name, _, _ in frozen]
        assert names[: len(PHASES)] == list(PHASES)
        assert names[-1] == "zz-extra"
        assert frozen.seconds("select") == 2.0
        assert frozen.seconds("missing") == 0.0


class TestEngineProfiling:
    def test_off_by_default(self, hard_problem):
        res = BranchAndBound(BnBParameters()).solve(hard_problem)
        assert res.profile is None
        assert "profile:" not in res.summary()

    def test_phase_totals_cover_wall_clock(self, hard_problem):
        """The contiguous-timestamp scheme tiles the solve: phase totals
        must account for at least 90% of SearchStats.elapsed."""
        res, prof = profiled_solve(hard_problem)
        assert res.stats.elapsed > 0
        coverage = res.profile.fraction_of(res.stats.elapsed)
        assert coverage >= 0.90
        # And not wildly more than the wall clock either (finalization
        # laps land after the clock stops, so a small overshoot is fine).
        assert coverage <= 1.25

    def test_hot_phases_dominate(self, hard_problem):
        """Branching and bounding are the B&B's real work; together they
        must dwarf the bookkeeping phases on a genuine search."""
        res, _ = profiled_solve(hard_problem)
        d = res.profile.to_dict()
        work = d["branch"] + d["bound"]
        assert work > d["select"]
        assert work > d["goal-eval"]

    def test_summary_includes_breakdown(self, hard_problem):
        res, _ = profiled_solve(hard_problem)
        assert "profile:" in res.summary()
        assert "bound=" in res.summary()

    def test_counts_track_loop_iterations(self, hard_problem):
        res, prof = profiled_solve(hard_problem)
        # One select lap per pop (explored + pruned-stale + final None).
        assert prof.counts["select"] >= res.stats.explored
        # One bound lap per generated child (root excluded).
        assert prof.counts["bound"] == res.stats.generated - 1

    def test_profile_on_tiny_problem(self):
        prob = compile_problem(make_diamond(), shared_bus_platform(2))
        res, _ = profiled_solve(prob)
        assert res.profile.total >= 0.0
        assert res.profile.seconds("setup") > 0.0


class TestBreakdownRendering:
    def breakdown(self):
        return PhaseBreakdown(
            phases=(("bound", 0.6, 10), ("select", 0.3, 20), ("setup", 0.1, 1))
        )

    def test_summary_sorted_by_share(self):
        text = self.breakdown().summary()
        assert text.index("bound") < text.index("select") < text.index("setup")
        assert "60%" in text

    def test_as_table_shares_against_elapsed(self):
        table = self.breakdown().as_table(elapsed=2.0)
        assert "30.0%" in table  # bound: 0.6 / 2.0
        assert "total" in table
        assert "hits" in table

    def test_as_table_hides_unknown_hits(self):
        bd = PhaseBreakdown(phases=(("bound", 0.6, 0), ("select", 0.3, 0)))
        assert "hits" not in bd.as_table()

    def test_empty_breakdown(self):
        bd = PhaseBreakdown(phases=())
        assert bd.total == 0.0
        assert bd.fraction_of(1.0) == 0.0
        assert "no time recorded" in bd.summary()
