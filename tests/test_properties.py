"""Property-based tests (hypothesis) for the core invariants.

These cover the load-bearing guarantees of the library:

* every scheduling path (heuristics, search states) produces schedules
  that pass the independent validity checker;
* the lower-bound hierarchy trivial <= LB0 <= LB1 <= LB2 holds at
  arbitrary reachable states, and every bound under-approximates the
  true optimum;
* the optimal engine matches the brute-force oracle on arbitrary DAGs;
* the BR-pruned engine honours its guarantee;
* generator output respects its specification for arbitrary in-range
  specs; serialization round-trips losslessly.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import (
    LB0,
    LB1,
    LB2,
    BnBParameters,
    BranchAndBound,
    TrivialBound,
    root_state,
)
from repro.io import graph_from_dict, graph_to_dict
from repro.model import Channel, Task, TaskGraph, compile_problem, shared_bus_platform
from repro.scheduling import HEURISTICS, edf_schedule
from repro.workload import WorkloadSpec, assign_deadlines, generate_task_graph

from conftest import brute_force_optimum

SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------


@st.composite
def small_dags(draw, max_tasks: int = 6):
    """Arbitrary weighted DAGs with sliced deadlines."""
    n = draw(st.integers(min_value=2, max_value=max_tasks))
    wcets = draw(
        st.lists(
            st.floats(min_value=1.0, max_value=40.0),
            min_size=n,
            max_size=n,
        )
    )
    g = TaskGraph(name="hyp")
    for i, c in enumerate(wcets):
        g.add_task(Task(name=f"t{i}", wcet=round(c, 3)))
    # Edges only from lower to higher index: acyclic by construction.
    for j in range(1, n):
        for i in range(j):
            if draw(st.booleans()):
                size = draw(st.floats(min_value=0.0, max_value=30.0))
                g.add_channel(
                    Channel(src=f"t{i}", dst=f"t{j}", message_size=round(size, 3))
                )
    laxity = draw(st.floats(min_value=1.0, max_value=2.5))
    return assign_deadlines(g, laxity_ratio=laxity)


@st.composite
def compiled_problems(draw, max_tasks: int = 6):
    g = draw(small_dags(max_tasks=max_tasks))
    m = draw(st.integers(min_value=1, max_value=3))
    return compile_problem(g, shared_bus_platform(m))


@st.composite
def reachable_states(draw, max_tasks: int = 6):
    """A state somewhere along a random scheduling path."""
    prob = draw(compiled_problems(max_tasks=max_tasks))
    st_ = root_state(prob)
    steps = draw(st.integers(min_value=0, max_value=prob.n))
    for _ in range(steps):
        ready = st_.ready_tasks()
        if not ready:
            break
        task = ready[draw(st.integers(min_value=0, max_value=len(ready) - 1))]
        proc = draw(st.integers(min_value=0, max_value=prob.m - 1))
        st_ = st_.child(task, proc)
    return st_


# ---------------------------------------------------------------------------
# Properties
# ---------------------------------------------------------------------------


@SETTINGS
@given(prob=compiled_problems())
def test_every_heuristic_schedule_is_consistent(prob):
    for heuristic in HEURISTICS.values():
        res = heuristic(prob)
        sched = res.to_schedule()
        assert sched.is_complete
        assert sched.violations() == []
        assert res.max_lateness == sched.max_lateness()


@SETTINGS
@given(state=reachable_states())
def test_bound_hierarchy(state):
    t = TrivialBound().evaluate(state)
    b0 = LB0().evaluate(state)
    b1 = LB1().evaluate(state)
    b2 = LB2().evaluate(state)
    assert t <= b0 + 1e-9
    assert b0 <= b1 + 1e-9
    assert b1 <= b2 + 1e-9


@SETTINGS
@given(state=reachable_states(max_tasks=5))
def test_bounds_under_approximate_best_completion(state):
    prob = state.problem

    def best_completion(s):
        if s.is_goal:
            return s.scheduled_lateness
        return min(
            best_completion(s.child(t, q))
            for t in s.ready_tasks()
            for q in range(prob.m)
        )

    truth = best_completion(state)
    for bound in (LB0(), LB1(), LB2()):
        assert bound.evaluate(state) <= truth + 1e-9


@SETTINGS
@given(state=reachable_states())
def test_partial_states_are_consistent_schedules(state):
    assert state.to_schedule().violations() == []


@SETTINGS
@given(prob=compiled_problems(max_tasks=5))
def test_selection_rules_agree_on_the_optimum(prob):
    """Selection (S) changes the search order, never the answer: under
    an optimal branching rule every rule lands on the same cost."""
    from repro.core import SELECTION_RULES

    costs = {
        name: BranchAndBound(
            BnBParameters(selection=cls())
        ).solve(prob).best_cost
        for name, cls in SELECTION_RULES.items()
    }
    reference = costs.pop("LIFO")
    for name, cost in costs.items():
        assert abs(cost - reference) < 1e-9, (name, cost, reference)


@SETTINGS
@given(prob=compiled_problems(max_tasks=5))
def test_approximate_branching_never_beats_optimal(prob):
    """BF1/DF search restricted trees: their cost is achievable (so it
    can't undercut the optimum) but carries no optimality guarantee."""
    from repro.core import BRANCHING_RULES

    optimum = BranchAndBound(BnBParameters()).solve(prob).best_cost
    for name in ("BF1", "DF"):
        res = BranchAndBound(
            BnBParameters(branching=BRANCHING_RULES[name]())
        ).solve(prob)
        assert res.best_cost >= optimum - 1e-9
        assert res.best_cost <= res.initial_upper_bound + 1e-9


class _HierarchySpy(LB1):
    """Behaves exactly like LB1, but cross-checks the bound hierarchy at
    every state the engine actually bounds during the search."""

    def __init__(self):
        self.checked = 0
        self._lb0 = LB0()
        self._trivial = TrivialBound()

    def evaluate(self, state):
        value = LB1.evaluate(self, state)
        lb0 = self._lb0.evaluate(state)
        trivial = self._trivial.evaluate(state)
        assert trivial <= lb0 + 1e-9
        assert lb0 <= value + 1e-9
        self.checked += 1
        return value


@SETTINGS
@given(prob=compiled_problems(max_tasks=5))
def test_bound_hierarchy_at_every_searched_vertex(prob):
    """trivial <= LB0 <= LB1 at each vertex the engine bounds — the
    search-visited set, not just randomly sampled reachable states."""
    spy = _HierarchySpy()
    res = BranchAndBound(
        BnBParameters(lower_bound=spy), fused=False
    ).solve(prob)
    # The reference path bounds every generated vertex.
    assert spy.checked >= res.stats.generated - 1


@SETTINGS
@given(prob=compiled_problems(max_tasks=5))
def test_engine_matches_brute_force(prob):
    res = BranchAndBound(BnBParameters()).solve(prob)
    assert res.best_cost == math.inf or res.found_solution
    assert res.best_cost <= edf_schedule(prob).max_lateness + 1e-9
    assert abs(res.best_cost - brute_force_optimum(prob)) < 1e-9


@SETTINGS
@given(prob=compiled_problems(max_tasks=5), br=st.sampled_from([0.05, 0.2]))
def test_br_guarantee(prob, br):
    opt = brute_force_optimum(prob)
    res = BranchAndBound(BnBParameters.near_optimal(br)).solve(prob)
    assert res.best_cost <= opt + br * abs(res.best_cost) + 1e-9
    assert res.best_cost >= opt - 1e-9


@SETTINGS
@given(g=small_dags())
def test_graph_json_round_trip(g):
    g2 = graph_from_dict(graph_to_dict(g))
    assert g2.task_names == g.task_names
    for name in g.task_names:
        a, b = g.task(name), g2.task(name)
        assert a.wcet == b.wcet
        assert a.phase == b.phase
        assert a.relative_deadline == b.relative_deadline
    assert [(c.src, c.dst, c.message_size) for c in g.channels] == [
        (c.src, c.dst, c.message_size) for c in g2.channels
    ]


@SETTINGS
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n_lo=st.integers(min_value=2, max_value=8),
    n_span=st.integers(min_value=0, max_value=6),
    ccr=st.sampled_from([0.0, 0.5, 1.0, 2.0]),
)
def test_generator_respects_arbitrary_specs(seed, n_lo, n_span, ccr):
    spec = WorkloadSpec(
        name="hyp",
        num_tasks=(n_lo, n_lo + n_span),
        depth=(1, min(4, n_lo)),
        ccr=ccr,
    )
    g = generate_task_graph(spec, seed=seed)
    g.validate()
    assert spec.num_tasks[0] <= len(g) <= spec.num_tasks[1]
    assert spec.depth[0] <= g.depth <= spec.depth[1]
    lo_c, hi_c = spec.wcet_bounds
    assert all(lo_c <= t.wcet <= hi_c for t in g)
    for t in g:
        assert t.relative_deadline >= t.wcet - 1e-9
    # Windows non-overlapping along every chain (contiguous mode).
    for ch in g.channels:
        assert g.task(ch.dst).arrival(1) >= g.task(ch.src).absolute_deadline(
            1
        ) - 1e-9


@SETTINGS
@given(prob=compiled_problems(max_tasks=5))
def test_optimal_schedule_passes_validity_checker(prob):
    res = BranchAndBound(BnBParameters()).solve(prob)
    sched = res.schedule()
    sched.validate()
    assert sched.max_lateness() <= edf_schedule(prob).max_lateness + 1e-9


@SETTINGS
@given(prob=compiled_problems(max_tasks=6))
def test_bus_simulation_invariants(prob):
    """The simulated bus serializes: transfers never overlap, conserve
    nominal transfer time, and never complete before the nominal model."""
    from repro.model.bussim import simulate_bus

    res = BranchAndBound(BnBParameters()).solve(prob)
    sim = simulate_bus(res.schedule())
    for a, b in zip(sim.transfers, sim.transfers[1:]):
        assert b.start >= a.finish - 1e-9
    for t in sim.transfers:
        assert t.start >= t.ready - 1e-9
        assert t.finish >= t.nominal_arrival - 1e-9
        assert t.finish - t.start == pytest.approx(
            t.nominal_arrival - t.ready
        )
    assert sim.busy_time == pytest.approx(
        sum(t.finish - t.start for t in sim.transfers)
    )


@SETTINGS
@given(g=small_dags(max_tasks=6))
def test_preemptive_relaxation_bounds_nonpreemptive(g):
    """The [12] preemptive uniprocessor optimum never exceeds the
    non-preemptive single-machine optimum, and its schedule is valid."""
    from repro.scheduling.preemptive import preemptive_edf

    pre = preemptive_edf(g)
    pre.validate(g)
    prob = compile_problem(g, shared_bus_platform(1))
    nonpre = BranchAndBound(BnBParameters()).solve(prob)
    assert pre.max_lateness <= nonpre.best_cost + 1e-6


@SETTINGS
@given(g=small_dags(max_tasks=6))
def test_stg_round_trip_structure(g):
    """STG export/import preserves task count, wcets and precedence."""
    from repro.io import format_stg, parse_stg

    g2 = parse_stg(format_stg(g))
    assert len(g2) == len(g)
    assert sorted(t.wcet for t in g2) == pytest.approx(
        sorted(t.wcet for t in g)
    )
    # Insertion order is topological in both, so index-wise renaming maps
    # arcs onto arcs.
    rename = dict(zip(g2.task_names, g.task_names))
    assert {(rename[c.src], rename[c.dst]) for c in g2.channels} == {
        (c.src, c.dst) for c in g.channels
    }
