"""Unit tests for repro.workload.suites."""

import pytest

from repro.errors import SpecificationError
from repro.workload import (
    ccr_suite,
    paper_spec,
    parallelism_suite,
    scaled_spec,
    spec_for_profile,
    tiny_spec,
)
from repro.workload.generator import generate_task_graph


class TestProfiles:
    def test_paper_profile_is_section_41(self):
        s = paper_spec()
        assert s.num_tasks == (12, 16)
        assert s.depth == (8, 12)

    def test_scaled_preserves_timing_knobs(self):
        s = scaled_spec()
        p = paper_spec()
        assert s.mean_wcet == p.mean_wcet
        assert s.ccr == p.ccr
        assert s.laxity_ratio == p.laxity_ratio
        assert s.num_tasks[1] < p.num_tasks[0]

    def test_tiny_smaller_than_scaled(self):
        assert tiny_spec().num_tasks[1] <= scaled_spec().num_tasks[1]

    def test_spec_for_profile_lookup(self):
        assert spec_for_profile("paper").name == "paper"
        assert spec_for_profile("scaled").name == "scaled"
        assert spec_for_profile("tiny").name == "tiny"

    def test_unknown_profile_rejected(self):
        with pytest.raises(SpecificationError, match="unknown profile"):
            spec_for_profile("huge")

    def test_profile_overrides(self):
        s = spec_for_profile("scaled", ccr=2.0)
        assert s.ccr == 2.0


class TestSuites:
    def test_ccr_suite_values(self):
        suite = ccr_suite("scaled", ccrs=(0.1, 1.0))
        assert [s.ccr for s in suite] == [0.1, 1.0]
        assert all("ccr" in s.name for s in suite)

    def test_parallelism_suite_spans_shapes(self):
        suite = parallelism_suite("scaled")
        assert len(suite) == 3
        depths = [s.depth for s in suite]
        # Deep shape has larger depth bounds than wide shape.
        assert depths[0][1] > depths[-1][1]

    def test_parallelism_suite_generates_valid_graphs(self):
        for spec in parallelism_suite("scaled"):
            g = generate_task_graph(spec, seed=0)
            g.validate()

    def test_wide_shape_is_wider(self):
        suite = parallelism_suite("scaled")
        deep_widths = []
        wide_widths = []
        for seed in range(6):
            deep_widths.append(generate_task_graph(suite[0], seed=seed).width)
            wide_widths.append(generate_task_graph(suite[-1], seed=seed).width)
        assert sum(wide_widths) > sum(deep_widths)
