"""Standard Task Graph (STG) format support.

The STG format (Kasahara Lab's Standard Task Graph Set) is the de-facto
exchange format for precedence-constrained scheduling benchmarks in this
literature.  A file looks like::

    4
    0    0   0
    1   10   1   0
    2   20   1   0
    3    0   2   1 2
    # comments after the task list

Line 1 is the number of *real* tasks plus two dummy nodes by convention
(we accept files with or without the dummy entry/exit nodes); each task
line is ``id  processing_time  predecessor_count  predecessor_ids...``.
Lines starting with ``#`` and blank lines are ignored.

STG carries no communication costs, deadlines or periods, so:

* reading produces tasks with infinite deadlines and zero-size channels
  (run :func:`repro.workload.assign_deadlines` and/or attach message
  sizes afterwards);
* zero-cost dummy nodes (processing time 0) are dropped by default,
  because :class:`~repro.model.task.Task` requires positive WCETs — pass
  ``keep_dummies_as`` a positive float to retain them with that WCET;
* writing emits the canonical form with dummy entry/exit nodes so output
  is consumable by standard STG tools.
"""

from __future__ import annotations

from pathlib import Path

from ..errors import ProblemFormatError
from ..model.channel import Channel
from ..model.task import Task
from ..model.taskgraph import TaskGraph

__all__ = ["parse_stg", "format_stg", "load_stg", "save_stg"]


def parse_stg(
    text: str,
    name: str = "stg",
    keep_dummies_as: float | None = None,
    source: str | None = None,
) -> TaskGraph:
    """Parse STG text into a :class:`TaskGraph`.

    ``source`` names the input in error messages (:func:`load_stg`
    passes the file path); every malformed construct raises
    :class:`~repro.errors.ProblemFormatError` carrying the offending
    1-based line number.
    """

    def fail(message: str, line: int | None = None) -> ProblemFormatError:
        return ProblemFormatError(message, path=source, line=line)

    tokens_lines: list[tuple[int, list[str]]] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if line:
            tokens_lines.append((lineno, line.split()))
    if not tokens_lines:
        raise fail("empty STG input")
    first_line, first_tokens = tokens_lines[0]
    try:
        declared = int(first_tokens[0])
    except ValueError as exc:
        raise fail(
            f"first STG line must be the task count, got {first_tokens!r}",
            first_line,
        ) from exc

    #: tid -> (cost, predecessor ids, source line)
    entries: dict[int, tuple[float, list[int], int]] = {}
    for lineno, tokens in tokens_lines[1:]:
        if len(tokens) < 3:
            raise fail(f"malformed STG task line: {tokens!r}", lineno)
        try:
            tid = int(tokens[0])
            cost = float(tokens[1])
            npred = int(tokens[2])
            preds = [int(x) for x in tokens[3 : 3 + npred]]
        except ValueError as exc:
            raise fail(
                f"malformed STG task line: {tokens!r}", lineno
            ) from exc
        if len(preds) != npred:
            raise fail(
                f"task {tid}: declared {npred} predecessors, "
                f"got {len(preds)}",
                lineno,
            )
        if tid in entries:
            raise fail(f"duplicate STG task id {tid}", lineno)
        entries[tid] = (cost, preds, lineno)

    if len(entries) not in (declared, declared + 2):
        # Accept both the "n excludes dummies" and "n includes dummies"
        # conventions, which both occur in the wild.
        if len(entries) != declared:
            raise fail(
                f"STG declares {declared} tasks but lists {len(entries)}",
                first_line,
            )

    dummies = {
        tid for tid, (cost, _, _) in entries.items() if cost == 0.0
    }
    if keep_dummies_as is not None:
        if keep_dummies_as <= 0:
            raise fail("keep_dummies_as must be positive")
        dummies = set()

    graph = TaskGraph(name=name)
    for tid in sorted(entries):
        if tid in dummies:
            continue
        cost = entries[tid][0]
        wcet = cost if cost > 0 else float(keep_dummies_as)  # type: ignore[arg-type]
        graph.add_task(Task(name=f"n{tid}", wcet=wcet))

    def real_preds(tid: int, seen: frozenset[int] = frozenset()) -> set[int]:
        """Predecessors with dummies transitively collapsed."""
        out: set[int] = set()
        lineno = entries[tid][2]
        for p in entries[tid][1]:
            if p not in entries:
                raise fail(
                    f"task {tid} references unknown predecessor {p}",
                    lineno,
                )
            if p in seen:
                raise fail(f"cycle through STG task {p}", lineno)
            if p in dummies:
                out |= real_preds(p, seen | {p})
            else:
                out.add(p)
        return out

    for tid in sorted(entries):
        if tid in dummies:
            continue
        for p in sorted(real_preds(tid)):
            graph.add_channel(
                Channel(src=f"n{p}", dst=f"n{tid}", message_size=0.0)
            )
    return graph


def format_stg(graph: TaskGraph, with_dummies: bool = True) -> str:
    """Serialize a graph to STG text (canonical dummy entry/exit form).

    Message sizes, deadlines and periods are not representable in STG
    and are silently dropped; WCETs are written as integers when whole.
    """
    index = {name: i + (1 if with_dummies else 0) for i, name in
             enumerate(graph.task_names)}
    n = len(graph)

    def fmt_cost(c: float) -> str:
        # repr round-trips floats exactly; integers stay integral.
        return str(int(c)) if float(c).is_integer() else repr(float(c))

    lines = [str(n + (2 if with_dummies else 0))]
    if with_dummies:
        lines.append("0 0 0")  # dummy entry
    for name in graph.task_names:
        preds = [index[p] for p in graph.predecessors(name)]
        if with_dummies and not preds:
            preds = [0]
        lines.append(
            f"{index[name]} {fmt_cost(graph.task(name).wcet)} "
            f"{len(preds)}"
            + ("".join(f" {p}" for p in sorted(preds)))
        )
    if with_dummies:
        exit_id = n + 1
        outs = sorted(index[t] for t in graph.output_tasks)
        if not outs:
            outs = [0]
        lines.append(
            f"{exit_id} 0 {len(outs)}" + "".join(f" {p}" for p in outs)
        )
    return "\n".join(lines) + "\n"


def load_stg(path: str | Path, **kwargs) -> TaskGraph:
    """Read an STG file; parse errors carry the path and line number."""
    p = Path(path)
    try:
        text = p.read_text()
    except OSError as exc:
        raise ProblemFormatError(
            f"cannot read STG file: {exc}", path=str(p)
        ) from exc
    return parse_stg(text, name=p.stem, source=str(p), **kwargs)


def save_stg(graph: TaskGraph, path: str | Path, **kwargs) -> None:
    """Write an STG file."""
    Path(path).write_text(format_stg(graph, **kwargs))
