"""Standard Task Graph (STG) format support.

The STG format (Kasahara Lab's Standard Task Graph Set) is the de-facto
exchange format for precedence-constrained scheduling benchmarks in this
literature.  A file looks like::

    4
    0    0   0
    1   10   1   0
    2   20   1   0
    3    0   2   1 2
    # comments after the task list

Line 1 is the number of *real* tasks plus two dummy nodes by convention
(we accept files with or without the dummy entry/exit nodes); each task
line is ``id  processing_time  predecessor_count  predecessor_ids...``.
Lines starting with ``#`` and blank lines are ignored.

STG carries no communication costs, deadlines or periods, so:

* reading produces tasks with infinite deadlines and zero-size channels
  (run :func:`repro.workload.assign_deadlines` and/or attach message
  sizes afterwards);
* zero-cost dummy nodes (processing time 0) are dropped by default,
  because :class:`~repro.model.task.Task` requires positive WCETs — pass
  ``keep_dummies_as`` a positive float to retain them with that WCET;
* writing emits the canonical form with dummy entry/exit nodes so output
  is consumable by standard STG tools.
"""

from __future__ import annotations

from pathlib import Path

from ..errors import SerializationError
from ..model.channel import Channel
from ..model.task import Task
from ..model.taskgraph import TaskGraph

__all__ = ["parse_stg", "format_stg", "load_stg", "save_stg"]


def parse_stg(
    text: str,
    name: str = "stg",
    keep_dummies_as: float | None = None,
) -> TaskGraph:
    """Parse STG text into a :class:`TaskGraph`."""
    tokens_lines: list[list[str]] = []
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].strip()
        if line:
            tokens_lines.append(line.split())
    if not tokens_lines:
        raise SerializationError("empty STG input")
    try:
        declared = int(tokens_lines[0][0])
    except ValueError as exc:
        raise SerializationError(
            f"first STG line must be the task count, got {tokens_lines[0]!r}"
        ) from exc

    entries: dict[int, tuple[float, list[int]]] = {}
    for tokens in tokens_lines[1:]:
        if len(tokens) < 3:
            raise SerializationError(f"malformed STG task line: {tokens!r}")
        try:
            tid = int(tokens[0])
            cost = float(tokens[1])
            npred = int(tokens[2])
            preds = [int(x) for x in tokens[3 : 3 + npred]]
        except ValueError as exc:
            raise SerializationError(
                f"malformed STG task line: {tokens!r}"
            ) from exc
        if len(preds) != npred:
            raise SerializationError(
                f"task {tid}: declared {npred} predecessors, "
                f"got {len(preds)}"
            )
        if tid in entries:
            raise SerializationError(f"duplicate STG task id {tid}")
        entries[tid] = (cost, preds)

    if len(entries) not in (declared, declared + 2):
        # Accept both the "n excludes dummies" and "n includes dummies"
        # conventions, which both occur in the wild.
        if len(entries) != declared:
            raise SerializationError(
                f"STG declares {declared} tasks but lists {len(entries)}"
            )

    dummies = {
        tid for tid, (cost, _) in entries.items() if cost == 0.0
    }
    if keep_dummies_as is not None:
        if keep_dummies_as <= 0:
            raise SerializationError("keep_dummies_as must be positive")
        dummies = set()

    graph = TaskGraph(name=name)
    for tid in sorted(entries):
        if tid in dummies:
            continue
        cost, _ = entries[tid]
        wcet = cost if cost > 0 else float(keep_dummies_as)  # type: ignore[arg-type]
        graph.add_task(Task(name=f"n{tid}", wcet=wcet))

    def real_preds(tid: int, seen: frozenset[int] = frozenset()) -> set[int]:
        """Predecessors with dummies transitively collapsed."""
        out: set[int] = set()
        for p in entries[tid][1]:
            if p not in entries:
                raise SerializationError(
                    f"task {tid} references unknown predecessor {p}"
                )
            if p in seen:
                raise SerializationError(f"cycle through STG task {p}")
            if p in dummies:
                out |= real_preds(p, seen | {p})
            else:
                out.add(p)
        return out

    for tid in sorted(entries):
        if tid in dummies:
            continue
        for p in sorted(real_preds(tid)):
            graph.add_channel(
                Channel(src=f"n{p}", dst=f"n{tid}", message_size=0.0)
            )
    return graph


def format_stg(graph: TaskGraph, with_dummies: bool = True) -> str:
    """Serialize a graph to STG text (canonical dummy entry/exit form).

    Message sizes, deadlines and periods are not representable in STG
    and are silently dropped; WCETs are written as integers when whole.
    """
    index = {name: i + (1 if with_dummies else 0) for i, name in
             enumerate(graph.task_names)}
    n = len(graph)

    def fmt_cost(c: float) -> str:
        # repr round-trips floats exactly; integers stay integral.
        return str(int(c)) if float(c).is_integer() else repr(float(c))

    lines = [str(n + (2 if with_dummies else 0))]
    if with_dummies:
        lines.append("0 0 0")  # dummy entry
    for name in graph.task_names:
        preds = [index[p] for p in graph.predecessors(name)]
        if with_dummies and not preds:
            preds = [0]
        lines.append(
            f"{index[name]} {fmt_cost(graph.task(name).wcet)} "
            f"{len(preds)}"
            + ("".join(f" {p}" for p in sorted(preds)))
        )
    if with_dummies:
        exit_id = n + 1
        outs = sorted(index[t] for t in graph.output_tasks)
        if not outs:
            outs = [0]
        lines.append(
            f"{exit_id} 0 {len(outs)}" + "".join(f" {p}" for p in outs)
        )
    return "\n".join(lines) + "\n"


def load_stg(path: str | Path, **kwargs) -> TaskGraph:
    """Read an STG file."""
    p = Path(path)
    return parse_stg(p.read_text(), name=p.stem, **kwargs)


def save_stg(graph: TaskGraph, path: str | Path, **kwargs) -> None:
    """Write an STG file."""
    Path(path).write_text(format_stg(graph, **kwargs))
