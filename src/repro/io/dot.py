"""Graphviz DOT export for task graphs and schedules.

Pure text generation (no graphviz dependency); feed the output to
``dot -Tpng`` or any DOT viewer.
"""

from __future__ import annotations

from ..model.schedule import Schedule
from ..model.taskgraph import TaskGraph

__all__ = ["graph_to_dot", "schedule_to_dot"]


def _esc(s: str) -> str:
    return s.replace('"', '\\"')


def graph_to_dot(graph: TaskGraph, include_windows: bool = True) -> str:
    """Render the weighted DAG; node labels carry WCETs (and windows)."""
    lines = [f'digraph "{_esc(graph.name)}" {{', "  rankdir=TB;"]
    for task in graph:
        label = f"{task.name}\\nc={task.wcet:g}"
        if include_windows and task.relative_deadline != float("inf"):
            label += f"\\n[{task.arrival(1):g}, {task.absolute_deadline(1):g}]"
        lines.append(f'  "{_esc(task.name)}" [label="{label}", shape=box];')
    for ch in graph.channels:
        attrs = f'label="{ch.message_size:g}"' if ch.message_size else ""
        lines.append(
            f'  "{_esc(ch.src)}" -> "{_esc(ch.dst)}"'
            + (f" [{attrs}]" if attrs else "")
            + ";"
        )
    lines.append("}")
    return "\n".join(lines)


def schedule_to_dot(schedule: Schedule) -> str:
    """Render a schedule as a clustered DOT graph (one cluster per CPU)."""
    lines = [f'digraph "{_esc(schedule.graph.name)}-schedule" {{']
    for p in schedule.platform.processors:
        lines.append(f"  subgraph cluster_p{p} {{")
        lines.append(f'    label="processor {p}";')
        prev = None
        for e in schedule.timeline(p):
            label = f"{e.task}\\n[{e.start:g}, {e.finish:g}]"
            lines.append(f'    "{_esc(e.task)}" [label="{label}", shape=box];')
            if prev is not None:
                lines.append(
                    f'    "{_esc(prev)}" -> "{_esc(e.task)}" [style=dotted];'
                )
            prev = e.task
        lines.append("  }")
    for msg in schedule.messages():
        if not msg.is_local:
            lines.append(
                f'  "{_esc(msg.src)}" -> "{_esc(msg.dst)}" '
                f'[label="{msg.size:g}", color=red];'
            )
    lines.append("}")
    return "\n".join(lines)
