"""Serialization: JSON workload/schedule/experiment formats, DOT export."""

from .dot import graph_to_dot, schedule_to_dot
from .stg import format_stg, load_stg, parse_stg, save_stg
from .json_io import (
    experiment_from_dict,
    experiment_to_dict,
    graph_from_dict,
    graph_to_dict,
    load_experiment,
    load_graph,
    save_experiment,
    save_graph,
    schedule_from_dict,
    schedule_to_dict,
)

__all__ = [
    "experiment_from_dict",
    "format_stg",
    "experiment_to_dict",
    "graph_from_dict",
    "graph_to_dict",
    "graph_to_dot",
    "load_experiment",
    "load_stg",
    "parse_stg",
    "load_graph",
    "save_experiment",
    "save_stg",
    "save_graph",
    "schedule_from_dict",
    "schedule_to_dict",
    "schedule_to_dot",
]
