"""JSON serialization of task graphs, schedules and experiment outputs.

The on-disk formats are versioned and deliberately simple (flat dicts)
so workloads can be shared between runs, archived with experiment
results, or hand-authored.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any

from ..analysis.aggregate import Series, SeriesPoint
from ..errors import ProblemFormatError, SerializationError
from ..experiments.runner import ExperimentOutput
from ..model.channel import Channel
from ..model.platform import Platform
from ..model.schedule import Schedule
from ..model.task import Task
from ..model.taskgraph import TaskGraph

__all__ = [
    "graph_to_dict",
    "graph_from_dict",
    "save_graph",
    "load_graph",
    "schedule_to_dict",
    "schedule_from_dict",
    "experiment_to_dict",
    "experiment_from_dict",
    "save_experiment",
    "load_experiment",
]

_GRAPH_FORMAT = "repro/taskgraph-v1"
_SCHEDULE_FORMAT = "repro/schedule-v1"
_EXPERIMENT_FORMAT = "repro/experiment-v1"


def _num(value: float) -> float | str:
    """JSON-safe float (infinities become strings)."""
    if isinstance(value, float) and math.isinf(value):
        return "inf" if value > 0 else "-inf"
    return value


def _unnum(value) -> float:
    if value == "inf":
        return math.inf
    if value == "-inf":
        return -math.inf
    return float(value)


# ---------------------------------------------------------------------------
# Task graphs
# ---------------------------------------------------------------------------


def graph_to_dict(graph: TaskGraph) -> dict[str, Any]:
    return {
        "format": _GRAPH_FORMAT,
        "name": graph.name,
        "tasks": [
            {
                "name": t.name,
                "wcet": t.wcet,
                "phase": t.phase,
                "relative_deadline": _num(t.relative_deadline),
                "period": _num(t.period),
            }
            for t in graph
        ],
        "channels": [
            {
                "src": ch.src,
                "dst": ch.dst,
                "message_size": ch.message_size,
                "arrival": ch.arrival,
                "relative_deadline": _num(ch.relative_deadline),
            }
            for ch in graph.channels
        ],
    }


def graph_from_dict(
    data: dict[str, Any], source: str | None = None
) -> TaskGraph:
    """Build a graph from its dict form.

    Every malformed entry raises
    :class:`~repro.errors.ProblemFormatError` naming the offending item
    (``tasks[3]`` / ``channels[0]``) so a hand-edited workload file can
    be fixed without bisecting it; ``source`` (the file path, when
    loaded from disk) prefixes the message.
    """

    def fail(message: str) -> ProblemFormatError:
        return ProblemFormatError(message, path=source)

    if not isinstance(data, dict):
        raise ProblemFormatError(
            f"expected a JSON object, got {type(data).__name__}",
            path=source,
        )
    if data.get("format") != _GRAPH_FORMAT:
        raise ProblemFormatError(
            f"expected format {_GRAPH_FORMAT!r}, got {data.get('format')!r}",
            path=source,
        )
    tasks = []
    for i, t in enumerate(data.get("tasks", [])):
        try:
            tasks.append(
                Task(
                    name=t["name"],
                    wcet=float(t["wcet"]),
                    phase=float(t.get("phase", 0.0)),
                    relative_deadline=_unnum(
                        t.get("relative_deadline", "inf")
                    ),
                    period=_unnum(t.get("period", "inf")),
                )
            )
        except (KeyError, TypeError, ValueError, AttributeError) as exc:
            raise fail(f"malformed task graph: tasks[{i}]: {exc}") from exc
    channels = []
    for i, c in enumerate(data.get("channels", [])):
        try:
            channels.append(
                Channel(
                    src=c["src"],
                    dst=c["dst"],
                    message_size=float(c.get("message_size", 0.0)),
                    arrival=float(c.get("arrival", 0.0)),
                    relative_deadline=_unnum(
                        c.get("relative_deadline", "inf")
                    ),
                )
            )
        except (KeyError, TypeError, ValueError, AttributeError) as exc:
            raise fail(f"malformed task graph: channels[{i}]: {exc}") from exc
    return TaskGraph(tasks, channels, name=data.get("name", "taskgraph"))


def save_graph(graph: TaskGraph, path: str | Path) -> None:
    Path(path).write_text(json.dumps(graph_to_dict(graph), indent=2))


def load_graph(path: str | Path) -> TaskGraph:
    try:
        text = Path(path).read_text()
    except OSError as exc:
        raise ProblemFormatError(
            f"cannot read graph file: {exc}", path=str(path)
        ) from exc
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ProblemFormatError(
            f"invalid JSON in {path}: {exc.msg}",
            path=str(path),
            line=exc.lineno,
        ) from exc
    return graph_from_dict(data, source=str(path))


# ---------------------------------------------------------------------------
# Schedules
# ---------------------------------------------------------------------------


def schedule_to_dict(schedule: Schedule) -> dict[str, Any]:
    return {
        "format": _SCHEDULE_FORMAT,
        "graph": graph_to_dict(schedule.graph),
        "num_processors": schedule.platform.num_processors,
        "entries": [
            {
                "task": e.task,
                "processor": e.processor,
                "start": e.start,
            }
            for e in schedule.entries
        ],
    }


def schedule_from_dict(
    data: dict[str, Any], platform: Platform | None = None
) -> Schedule:
    if data.get("format") != _SCHEDULE_FORMAT:
        raise SerializationError(
            f"expected format {_SCHEDULE_FORMAT!r}, got {data.get('format')!r}"
        )
    graph = graph_from_dict(data["graph"])
    plat = platform or Platform(num_processors=int(data["num_processors"]))
    sched = Schedule(graph, plat)
    for e in data.get("entries", []):
        sched.place(e["task"], int(e["processor"]), float(e["start"]))
    return sched


# ---------------------------------------------------------------------------
# Experiment outputs
# ---------------------------------------------------------------------------


def experiment_to_dict(output: ExperimentOutput) -> dict[str, Any]:
    return {
        "format": _EXPERIMENT_FORMAT,
        "name": output.name,
        "description": output.description,
        "x_label": output.x_label,
        "metadata": output.metadata,
        "series": [
            {
                "label": s.label,
                "points": [
                    {
                        "x": p.x,
                        "runs": p.runs,
                        "mean_vertices": p.mean_vertices,
                        "ci_vertices": _num(p.ci_vertices),
                        "mean_lateness": p.mean_lateness,
                        "ci_lateness": _num(p.ci_lateness),
                        "extras": p.extras,
                    }
                    for p in s.points
                ],
            }
            for s in output.series
        ],
    }


def experiment_from_dict(data: dict[str, Any]) -> ExperimentOutput:
    if data.get("format") != _EXPERIMENT_FORMAT:
        raise SerializationError(
            f"expected format {_EXPERIMENT_FORMAT!r}, got {data.get('format')!r}"
        )
    series = tuple(
        Series(
            label=s["label"],
            points=tuple(
                SeriesPoint(
                    x=float(p["x"]),
                    runs=int(p["runs"]),
                    mean_vertices=float(p["mean_vertices"]),
                    ci_vertices=_unnum(p["ci_vertices"]),
                    mean_lateness=float(p["mean_lateness"]),
                    ci_lateness=_unnum(p["ci_lateness"]),
                    extras=dict(p.get("extras", {})),
                )
                for p in s["points"]
            ),
        )
        for s in data.get("series", [])
    )
    meta = data.get("metadata", {})
    if "cells" in meta:
        meta = dict(meta)
        meta["cells"] = [tuple(c) for c in meta["cells"]]
    return ExperimentOutput(
        name=data["name"],
        description=data.get("description", ""),
        x_label=data.get("x_label", "x"),
        series=series,
        metadata=meta,
    )


def save_experiment(output: ExperimentOutput, path: str | Path) -> None:
    Path(path).write_text(json.dumps(experiment_to_dict(output), indent=2))


def load_experiment(path: str | Path) -> ExperimentOutput:
    try:
        data = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise SerializationError(f"invalid JSON in {path}: {exc}") from exc
    return experiment_from_dict(data)
