"""Communication channels: the tuple ``<m_ij, a_ij, d_ij>`` of Section 2.2.

A :class:`Channel` models the message-transfer activity between a
producer task and a consumer task.  The *real* communication cost of a
message depends on where the endpoints are placed and on the interconnect
(see :mod:`repro.model.interconnect`); the channel itself only carries the
message size and the (optional) message timing attributes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ModelError

__all__ = ["Channel"]


@dataclass(frozen=True, slots=True)
class Channel:
    """A directed communication channel ``chi_{i,j}`` between two tasks.

    Attributes
    ----------
    src:
        Name of the producer task ``tau_i``.
    dst:
        Name of the consumer task ``tau_j``.
    message_size:
        Maximum message size ``m_{i,j}`` in data items.  The nominal
        communication delay of the interconnect is charged *per data
        item*, so the nominal cost of the message between two distinct
        processors is ``message_size * nominal_delay``.  A size of zero
        models a pure precedence constraint with no data transfer.
    arrival:
        Message arrival time ``a_{i,j}``: earliest time the message may be
        injected into the network.  Defaults to 0 (the message is ready as
        soon as the producer finishes).
    relative_deadline:
        Relative deadline ``d_{i,j}`` of the message.  Defaults to
        infinity (no explicit message deadline; the consumer task deadline
        dominates).
    """

    src: str
    dst: str
    message_size: float = 0.0
    arrival: float = 0.0
    relative_deadline: float = math.inf

    def __post_init__(self) -> None:
        if not self.src or not self.dst:
            raise ModelError("channel endpoints must be non-empty task names")
        if self.src == self.dst:
            raise ModelError(
                f"channel {self.src!r} -> {self.dst!r}: the precedence order is "
                "irreflexive; a task cannot precede itself"
            )
        if self.message_size < 0 or math.isinf(self.message_size):
            raise ModelError(
                f"channel {self.src!r} -> {self.dst!r}: message size must be "
                f"finite and >= 0, got {self.message_size}"
            )
        if self.arrival < 0:
            raise ModelError(
                f"channel {self.src!r} -> {self.dst!r}: arrival must be >= 0, "
                f"got {self.arrival}"
            )
        if self.relative_deadline <= 0:
            raise ModelError(
                f"channel {self.src!r} -> {self.dst!r}: relative deadline must "
                f"be positive, got {self.relative_deadline}"
            )

    @property
    def key(self) -> tuple[str, str]:
        """The ``(src, dst)`` pair identifying this channel in a graph."""
        return (self.src, self.dst)

    def nominal_cost(self, nominal_delay: float) -> float:
        """Worst-case transfer time across links with the given nominal delay.

        Per Section 2.1 this is the product of the message length and the
        nominal communication delay; it applies only when the endpoints
        are on *different* processors (same-processor communication is via
        shared memory at negligible cost).
        """
        return self.message_size * nominal_delay

    def __str__(self) -> str:
        return f"Channel({self.src} -> {self.dst}, m={self.message_size})"
