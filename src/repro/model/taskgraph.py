"""Directed acyclic task graphs ``G = (N, A)`` (Section 2.2).

Nodes carry :class:`~repro.model.task.Task` objects (annotated with the
computational demand ``c_i``); arcs carry
:class:`~repro.model.channel.Channel` objects (annotated with the message
size ``m_ij``).  The graph encodes the irreflexive partial order ``<``:
``tau_i < tau_j`` iff there is a directed path from ``i`` to ``j``.

The class provides every graph query the scheduler stack needs:

* direct and transitive predecessor/successor sets;
* input tasks (no predecessors) and output tasks (no successors);
* deterministic topological orders, including the *depth-first* order
  used by the ``B_DF`` branching rule and the *level* order used by
  ``B_BF1``;
* top/bottom levels in both hop and computation metrics (the
  computation bottom level is the "task level" of Hou & Shin [4]);
* structural metrics (depth, width, parallelism) used by the Section 6
  parallelism experiments.

Derived structures are cached and invalidated on mutation, so queries are
amortized O(1) after the first call.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Iterable, Iterator, Mapping

from ..errors import CycleError, ModelError, UnknownChannelError, UnknownTaskError
from .channel import Channel
from .task import Task

__all__ = ["TaskGraph"]


class TaskGraph:
    """A mutable weighted DAG of tasks and communication channels."""

    def __init__(
        self,
        tasks: Iterable[Task] = (),
        channels: Iterable[Channel] = (),
        name: str = "taskgraph",
    ) -> None:
        self.name = name
        self._tasks: dict[str, Task] = {}
        self._channels: dict[tuple[str, str], Channel] = {}
        self._succ: dict[str, list[str]] = {}
        self._pred: dict[str, list[str]] = {}
        self._cache: dict[str, object] = {}
        for t in tasks:
            self.add_task(t)
        for ch in channels:
            self.add_channel(ch)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_task(self, task: Task) -> Task:
        """Insert a task node.  Names must be unique."""
        if task.name in self._tasks:
            raise ModelError(f"duplicate task name: {task.name!r}")
        self._tasks[task.name] = task
        self._succ[task.name] = []
        self._pred[task.name] = []
        self._invalidate()
        return task

    def add_channel(self, channel: Channel) -> Channel:
        """Insert a precedence arc (with its message annotation).

        Raises :class:`CycleError` immediately if the arc would create a
        directed cycle, so the graph is a DAG at all times.
        """
        src, dst = channel.src, channel.dst
        if src not in self._tasks:
            raise UnknownTaskError(src)
        if dst not in self._tasks:
            raise UnknownTaskError(dst)
        if (src, dst) in self._channels:
            raise ModelError(f"duplicate channel: {src!r} -> {dst!r}")
        if self._reaches(dst, src):
            raise CycleError(self._find_path(dst, src) + [dst])
        self._channels[(src, dst)] = channel
        self._succ[src].append(dst)
        self._pred[dst].append(src)
        self._invalidate()
        return channel

    def add_edge(self, src: str, dst: str, message_size: float = 0.0) -> Channel:
        """Convenience wrapper around :meth:`add_channel`."""
        return self.add_channel(Channel(src=src, dst=dst, message_size=message_size))

    def replace_task(self, task: Task) -> None:
        """Swap the task object stored under ``task.name`` (arcs unchanged).

        Used by the deadline-assignment pass to stamp execution windows.
        """
        if task.name not in self._tasks:
            raise UnknownTaskError(task.name)
        self._tasks[task.name] = task
        self._invalidate()

    def with_tasks(self, tasks: Mapping[str, Task]) -> "TaskGraph":
        """Return a copy of the graph with some task objects replaced."""
        for name in tasks:
            if name not in self._tasks:
                raise UnknownTaskError(name)
        new_tasks = [tasks.get(name, t) for name, t in self._tasks.items()]
        for name, t in zip(self._tasks, new_tasks):
            if t.name != name:
                raise ModelError(
                    f"replacement for {name!r} has a different name: {t.name!r}"
                )
        return TaskGraph(new_tasks, self._channels.values(), name=self.name)

    def copy(self) -> "TaskGraph":
        """Structural copy (tasks and channels are immutable, so shared)."""
        return TaskGraph(self._tasks.values(), self._channels.values(), name=self.name)

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._tasks)

    def __contains__(self, name: str) -> bool:
        return name in self._tasks

    def __iter__(self) -> Iterator[Task]:
        return iter(self._tasks.values())

    @property
    def task_names(self) -> list[str]:
        """Task names in insertion order (the canonical index order)."""
        return list(self._tasks)

    @property
    def tasks(self) -> list[Task]:
        return list(self._tasks.values())

    @property
    def channels(self) -> list[Channel]:
        return list(self._channels.values())

    @property
    def num_arcs(self) -> int:
        return len(self._channels)

    def task(self, name: str) -> Task:
        try:
            return self._tasks[name]
        except KeyError:
            raise UnknownTaskError(name) from None

    def channel(self, src: str, dst: str) -> Channel:
        try:
            return self._channels[(src, dst)]
        except KeyError:
            raise UnknownChannelError(src, dst) from None

    def has_channel(self, src: str, dst: str) -> bool:
        return (src, dst) in self._channels

    def successors(self, name: str) -> list[str]:
        """Direct successors of a task (the ``<.``-successors)."""
        self._require(name)
        return list(self._succ[name])

    def predecessors(self, name: str) -> list[str]:
        """Direct predecessors of a task (the ``<.``-predecessors)."""
        self._require(name)
        return list(self._pred[name])

    def in_degree(self, name: str) -> int:
        self._require(name)
        return len(self._pred[name])

    def out_degree(self, name: str) -> int:
        self._require(name)
        return len(self._succ[name])

    @property
    def input_tasks(self) -> list[str]:
        """Tasks with no predecessors (in insertion order)."""
        return [n for n in self._tasks if not self._pred[n]]

    @property
    def output_tasks(self) -> list[str]:
        """Tasks with no successors (in insertion order)."""
        return [n for n in self._tasks if not self._succ[n]]

    def precedes(self, a: str, b: str) -> bool:
        """Whether ``a < b`` in the transitive partial order."""
        self._require(a)
        self._require(b)
        return a != b and self._reaches(a, b)

    def ancestors(self, name: str) -> set[str]:
        """All transitive predecessors of a task."""
        self._require(name)
        return self._closure(name, self._pred)

    def descendants(self, name: str) -> set[str]:
        """All transitive successors of a task."""
        self._require(name)
        return self._closure(name, self._succ)

    # ------------------------------------------------------------------
    # Orders
    # ------------------------------------------------------------------

    def topological_order(self) -> list[str]:
        """Deterministic Kahn topological order (insertion-order ties)."""
        return list(self._cached("topo", self._compute_topological_order))

    def depth_first_order(self) -> list[str]:
        """Depth-first topological order, the fixed list used by ``B_DF``.

        The traversal starts from the input tasks in insertion order and
        descends eagerly into successors; a node is emitted as soon as all
        of its predecessors have been emitted, so the result is always a
        valid topological order while preserving the depth-first flavour
        (long chains are emitted contiguously).
        """
        return list(self._cached("dfo", self._compute_depth_first_order))

    def level_order(self) -> list[str]:
        """Breadth-first (level) topological order, used by ``B_BF1``.

        Tasks are sorted by ascending precedence depth (:meth:`top_level_hops`,
        the task "level" in the sense of Hou & Shin [4]), tie-broken by
        *descending* computation bottom level (more critical first) and
        finally by insertion order.
        """
        return list(self._cached("lvo", self._compute_level_order))

    # ------------------------------------------------------------------
    # Levels and paths
    # ------------------------------------------------------------------

    def top_level_hops(self) -> dict[str, int]:
        """Longest hop distance from any input task (inputs are level 0)."""
        return dict(self._cached("tl_hops", self._compute_top_level_hops))

    def bottom_level_hops(self) -> dict[str, int]:
        """Longest hop distance to any output task (outputs are level 0)."""
        return dict(self._cached("bl_hops", self._compute_bottom_level_hops))

    def top_level(self, include_comm: bool = True, delay: float = 1.0) -> dict[str, float]:
        """Longest weighted path from the graph entry *through* each task.

        ``top[i]`` is the length of the heaviest path ending at (and
        including) ``tau_i``, counting execution times and, when
        ``include_comm``, message costs at ``delay`` per data item.  Used
        by the deadline-slicing pass and the critical-path metric.
        """
        key = ("top", include_comm, delay)
        return dict(self._cached(key, lambda: self._compute_top(include_comm, delay)))

    def bottom_level(self, include_comm: bool = True, delay: float = 1.0) -> dict[str, float]:
        """Longest weighted path from each task (inclusive) to any output."""
        key = ("bot", include_comm, delay)
        return dict(self._cached(key, lambda: self._compute_bottom(include_comm, delay)))

    def critical_path_length(self, include_comm: bool = True, delay: float = 1.0) -> float:
        """Length of the heaviest input-to-output path."""
        top = self.top_level(include_comm, delay)
        return max(top.values(), default=0.0)

    def critical_path(self, include_comm: bool = True, delay: float = 1.0) -> list[str]:
        """One heaviest input-to-output path (deterministic tie-break)."""
        if not self._tasks:
            return []
        top = self.top_level(include_comm, delay)
        # Walk backwards from the heaviest output task.
        end = max(self.output_tasks, key=lambda n: (top[n], n))
        path = [end]
        cur = end
        while self._pred[cur]:
            c = self._tasks[cur].wcet
            best = None
            for p in self._pred[cur]:
                w = c
                if include_comm:
                    w += self._channels[(p, cur)].message_size * delay
                if abs(top[p] + w - top[cur]) < 1e-9:
                    if best is None or top[p] > top[best]:
                        best = p
            if best is None:  # numeric safety: pick heaviest predecessor
                best = max(self._pred[cur], key=lambda p: top[p])
            path.append(best)
            cur = best
        path.reverse()
        return path

    def paths_between(self, src: str, dst: str, limit: int = 10_000) -> list[list[str]]:
        """Enumerate all simple directed paths from ``src`` to ``dst``.

        Bounded by ``limit`` to keep worst-case enumeration in check; a
        :class:`ModelError` is raised if the bound is hit.
        """
        self._require(src)
        self._require(dst)
        out: list[list[str]] = []
        stack: list[tuple[str, list[str]]] = [(src, [src])]
        while stack:
            node, path = stack.pop()
            if node == dst:
                out.append(path)
                if len(out) > limit:
                    raise ModelError(
                        f"more than {limit} paths between {src!r} and {dst!r}"
                    )
                continue
            for nxt in reversed(self._succ[node]):
                stack.append((nxt, path + [nxt]))
        return out

    # ------------------------------------------------------------------
    # Structural metrics
    # ------------------------------------------------------------------

    @property
    def depth(self) -> int:
        """Number of precedence levels (longest hop chain, in nodes)."""
        if not self._tasks:
            return 0
        return max(self.top_level_hops().values()) + 1

    def level_widths(self) -> list[int]:
        """Number of tasks at each precedence depth (index = level)."""
        hops = self.top_level_hops()
        widths = [0] * self.depth
        for lvl in hops.values():
            widths[lvl] += 1
        return widths

    @property
    def width(self) -> int:
        """Maximum number of tasks at one precedence level.

        A cheap upper proxy for exploitable parallelism, used by the
        Section 6 parallelism sweep.
        """
        return max(self.level_widths(), default=0)

    def parallelism(self) -> float:
        """Average parallelism: total work / critical-path work.

        Computed on execution times only (communication excluded), the
        classical definition.
        """
        total = self.total_workload
        cp = self.critical_path_length(include_comm=False)
        return total / cp if cp > 0 else 0.0

    @property
    def total_workload(self) -> float:
        """Accumulated task-graph workload: the sum of all execution times."""
        return sum(t.wcet for t in self._tasks.values())

    @property
    def total_message_volume(self) -> float:
        return sum(ch.message_size for ch in self._channels.values())

    def communication_to_computation_ratio(self, delay: float = 1.0) -> float:
        """Realized CCR: mean message cost over mean execution time."""
        if not self._channels or not self._tasks:
            return 0.0
        mean_msg = self.total_message_volume * delay / len(self._channels)
        mean_exec = self.total_workload / len(self._tasks)
        return mean_msg / mean_exec if mean_exec > 0 else 0.0

    def validate(self) -> None:
        """Re-check every structural invariant (acyclicity, consistency)."""
        order = self.topological_order()  # raises CycleError on a cycle
        if len(order) != len(self._tasks):
            raise CycleError()
        for (src, dst), ch in self._channels.items():
            if ch.src != src or ch.dst != dst:
                raise ModelError(f"channel stored under wrong key: {ch}")
            if src not in self._tasks or dst not in self._tasks:
                raise ModelError(f"dangling channel: {ch}")

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _require(self, name: str) -> None:
        if name not in self._tasks:
            raise UnknownTaskError(name)

    def _invalidate(self) -> None:
        self._cache.clear()

    def _cached(self, key: object, compute: Callable[[], object]) -> object:
        if key not in self._cache:
            self._cache[key] = compute()
        return self._cache[key]

    def _reaches(self, a: str, b: str) -> bool:
        """Whether there is a directed path from ``a`` to ``b`` (a == b counts)."""
        if a == b:
            return True
        seen = {a}
        stack = [a]
        while stack:
            node = stack.pop()
            for nxt in self._succ[node]:
                if nxt == b:
                    return True
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return False

    def _find_path(self, a: str, b: str) -> list[str]:
        """One directed path from ``a`` to ``b`` (assumes it exists)."""
        parent: dict[str, str] = {}
        stack = [a]
        seen = {a}
        while stack:
            node = stack.pop()
            if node == b:
                break
            for nxt in self._succ[node]:
                if nxt not in seen:
                    seen.add(nxt)
                    parent[nxt] = node
                    stack.append(nxt)
        path = [b]
        while path[-1] != a:
            path.append(parent[path[-1]])
        path.reverse()
        return path

    def _closure(self, name: str, adj: dict[str, list[str]]) -> set[str]:
        out: set[str] = set()
        stack = list(adj[name])
        while stack:
            node = stack.pop()
            if node not in out:
                out.add(node)
                stack.extend(adj[node])
        return out

    def _compute_topological_order(self) -> list[str]:
        indeg = {n: len(self._pred[n]) for n in self._tasks}
        queue = deque(n for n in self._tasks if indeg[n] == 0)
        order: list[str] = []
        while queue:
            node = queue.popleft()
            order.append(node)
            for nxt in self._succ[node]:
                indeg[nxt] -= 1
                if indeg[nxt] == 0:
                    queue.append(nxt)
        if len(order) != len(self._tasks):
            raise CycleError()
        return order

    def _compute_depth_first_order(self) -> list[str]:
        emitted: set[str] = set()
        order: list[str] = []
        remaining_preds = {n: len(self._pred[n]) for n in self._tasks}

        def emit_chain(start: str) -> None:
            # Emit `start`, then eagerly descend into its first now-ready
            # successor, depth-first.
            stack = [start]
            while stack:
                node = stack.pop()
                if node in emitted or remaining_preds[node] > 0:
                    continue
                emitted.add(node)
                order.append(node)
                ready_children = []
                for nxt in self._succ[node]:
                    remaining_preds[nxt] -= 1
                    if remaining_preds[nxt] == 0:
                        ready_children.append(nxt)
                # LIFO stack: push in reverse so the first child is
                # explored first (depth-first).
                for nxt in reversed(ready_children):
                    stack.append(nxt)

        for root in self.input_tasks:
            emit_chain(root)
        if len(order) != len(self._tasks):
            raise CycleError()
        return order

    def _compute_level_order(self) -> list[str]:
        hops = self.top_level_hops()
        bot = self.bottom_level(include_comm=False)
        index = {n: i for i, n in enumerate(self._tasks)}
        return sorted(self._tasks, key=lambda n: (hops[n], -bot[n], index[n]))

    def _compute_top_level_hops(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for node in self.topological_order():
            preds = self._pred[node]
            out[node] = 1 + max(out[p] for p in preds) if preds else 0
        return out

    def _compute_bottom_level_hops(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for node in reversed(self.topological_order()):
            succs = self._succ[node]
            out[node] = 1 + max(out[s] for s in succs) if succs else 0
        return out

    def _compute_top(self, include_comm: bool, delay: float) -> dict[str, float]:
        out: dict[str, float] = {}
        for node in self.topological_order():
            c = self._tasks[node].wcet
            best = 0.0
            for p in self._pred[node]:
                w = out[p]
                if include_comm:
                    w += self._channels[(p, node)].message_size * delay
                best = max(best, w)
            out[node] = best + c
        return out

    def _compute_bottom(self, include_comm: bool, delay: float) -> dict[str, float]:
        out: dict[str, float] = {}
        for node in reversed(self.topological_order()):
            c = self._tasks[node].wcet
            best = 0.0
            for s in self._succ[node]:
                w = out[s]
                if include_comm:
                    w += self._channels[(node, s)].message_size * delay
                best = max(best, w)
            out[node] = best + c
        return out

    def __repr__(self) -> str:
        return (
            f"TaskGraph({self.name!r}, n={len(self._tasks)}, "
            f"arcs={len(self._channels)})"
        )
