"""Explicit shared-bus contention simulation.

The paper abstracts the interconnect by a *nominal communication delay*
per data item — the worst-case transfer delay implied by the network's
own scheduling strategy — and assumes communication proceeds
concurrently with computation.  This module supplies the discrete-event
substrate behind that abstraction: it takes a complete task schedule and
*simulates* the time-multiplexed shared bus explicitly, serializing the
remote messages one at a time under a configurable arbitration policy.

Use it to

* check whether the nominal-delay model was in fact safe for a given
  schedule (queueing can make a message arrive after its consumer's
  scheduled start — a :attr:`BusSimulation.violations` entry);
* measure bus utilization and queueing delays;
* compute the *contention factor*: the smallest uniform scaling of the
  nominal delay that would have covered the realized (queued) transfer
  times, i.e. how much worst-case margin the nominal model needed.

Arbitration policies:

* ``"fcfs"`` — messages are served in ready-time order (ties broken by
  producer finish, then name), the classic time-multiplexed bus;
* ``"edf"`` — among ready messages, the one whose *consumer* has the
  earliest scheduled start wins the bus (deadline-aware arbitration).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ModelError
from .schedule import EPSILON, MessageRecord, Schedule

__all__ = ["BusTransfer", "BusSimulation", "simulate_bus"]


@dataclass(frozen=True)
class BusTransfer:
    """One realized message transfer on the simulated bus."""

    src: str
    dst: str
    size: float
    #: Time the message became ready (producer finish).
    ready: float
    #: Time the bus started serving it.
    start: float
    #: Time the last data item left the bus.
    finish: float
    #: Arrival under the nominal (contention-free) model.
    nominal_arrival: float

    @property
    def queueing_delay(self) -> float:
        """Time spent waiting for the bus."""
        return self.start - self.ready

    @property
    def lateness_vs_nominal(self) -> float:
        """How much later than the nominal model the message arrived."""
        return self.finish - self.nominal_arrival


@dataclass(frozen=True)
class BusSimulation:
    """Outcome of simulating every remote message of a schedule."""

    transfers: tuple[BusTransfer, ...]
    #: Remote-message transfers whose realized arrival lands after the
    #: consumer's scheduled start ("the nominal model was optimistic
    #: here"), as human-readable strings.
    violations: tuple[str, ...]
    #: Total time the bus spent transferring.
    busy_time: float
    #: Simulation horizon (schedule makespan).
    horizon: float
    policy: str = "fcfs"
    extras: dict = field(default_factory=dict)

    @property
    def utilization(self) -> float:
        return self.busy_time / self.horizon if self.horizon > 0 else 0.0

    @property
    def max_queueing_delay(self) -> float:
        return max((t.queueing_delay for t in self.transfers), default=0.0)

    @property
    def is_safe(self) -> bool:
        """Whether every consumer start still covers its realized arrival."""
        return not self.violations

    def contention_factor(self) -> float:
        """Smallest uniform nominal-delay scaling covering realized arrivals.

        For each transfer, the factor that would have been needed is
        ``(finish - ready) / (nominal_arrival - ready)``; the maximum
        over transfers is the margin the nominal model required.  1.0
        means the bus never queued anything.
        """
        worst = 1.0
        for t in self.transfers:
            nominal_time = t.nominal_arrival - t.ready
            if nominal_time > EPSILON:
                worst = max(worst, (t.finish - t.ready) / nominal_time)
        return worst

    def summary(self) -> str:
        return (
            f"bus[{self.policy}]: {len(self.transfers)} transfers, "
            f"utilization {self.utilization:.0%}, "
            f"max queueing {self.max_queueing_delay:g}, "
            f"contention factor {self.contention_factor():.2f}, "
            f"{'SAFE' if self.is_safe else f'{len(self.violations)} VIOLATIONS'}"
        )


def _remote_messages(schedule: Schedule) -> list[MessageRecord]:
    return [m for m in schedule.messages() if not m.is_local and m.size > 0]


def simulate_bus(schedule: Schedule, policy: str = "fcfs") -> BusSimulation:
    """Serialize a complete schedule's remote messages on one shared bus.

    The transfer time of each message equals its nominal cost (the bus
    moves one data item per nominal delay unit); contention appears only
    as queueing, which is exactly the gap the nominal worst-case model
    must absorb.
    """
    if not schedule.is_complete:
        raise ModelError("bus simulation needs a complete schedule")
    if policy not in ("fcfs", "edf"):
        raise ModelError(f"unknown bus arbitration policy: {policy!r}")

    messages = _remote_messages(schedule)
    consumer_start = {
        m: schedule.entry(m.dst).start for m in messages
    }

    pending = list(messages)
    if policy == "fcfs":
        pending.sort(key=lambda m: (m.departure, m.src, m.dst), reverse=True)
    else:
        pending.sort(
            key=lambda m: (consumer_start[m], m.departure, m.src, m.dst),
            reverse=True,
        )

    transfers: list[BusTransfer] = []
    busy = 0.0
    clock = 0.0
    # Serve one message at a time.  Under both policies we repeatedly
    # pick the best *ready* message; if none is ready, the bus idles
    # until the next departure.
    remaining = pending  # reverse-sorted so list.pop() yields the best
    while remaining:
        ready_now = [m for m in remaining if m.departure <= clock + EPSILON]
        if not ready_now:
            clock = min(m.departure for m in remaining)
            continue
        if policy == "fcfs":
            chosen = min(ready_now, key=lambda m: (m.departure, m.src, m.dst))
        else:
            chosen = min(
                ready_now,
                key=lambda m: (consumer_start[m], m.departure, m.src, m.dst),
            )
        remaining = [m for m in remaining if m is not chosen]
        duration = chosen.arrival - chosen.departure  # nominal transfer time
        start = max(clock, chosen.departure)
        finish = start + duration
        busy += duration
        clock = finish
        transfers.append(
            BusTransfer(
                src=chosen.src,
                dst=chosen.dst,
                size=chosen.size,
                ready=chosen.departure,
                start=start,
                finish=finish,
                nominal_arrival=chosen.arrival,
            )
        )

    violations = tuple(
        f"{t.src}->{t.dst}: arrives at {t.finish:g} but consumer {t.dst} "
        f"starts at {schedule.entry(t.dst).start:g}"
        for t in transfers
        if t.finish > schedule.entry(t.dst).start + EPSILON
    )
    transfers.sort(key=lambda t: (t.start, t.src, t.dst))
    return BusSimulation(
        transfers=tuple(transfers),
        violations=violations,
        busy_time=busy,
        horizon=schedule.makespan(),
        policy=policy,
    )
