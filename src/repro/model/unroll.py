"""Hyperperiod unrolling of periodic task graphs.

The paper's task model (Section 2.2) is periodic — each task has a phase
``phi_i`` and period ``T_i`` — but the evaluation schedules a single
invocation of each task.  This module provides the natural extension: the
expansion of a periodic task graph into a *job-level* DAG over one
hyperperiod, so the single-shot B&B machinery applies unchanged to
periodic workloads.

Unrolling semantics:

* invocation ``k`` of task ``tau_i`` becomes job node ``tau_i#k`` with a
  one-shot window ``[a_i^k, D_i^k]``;
* each channel ``tau_i -> tau_j`` connects same-index invocations when the
  producer and consumer share a rate, and rate-transition invocations
  otherwise (a consumer job depends on the latest producer job whose
  window closes no later than the consumer's arrival — the standard
  deterministic rate-transition rule);
* because ``d_i <= T_i``, windows of consecutive invocations of one task
  never overlap; an explicit zero-message precedence chain
  ``tau_i#k -> tau_i#(k+1)`` enforces invocation order.
"""

from __future__ import annotations

import math
from functools import reduce

from ..errors import ModelError
from .channel import Channel
from .task import Task
from .taskgraph import TaskGraph

__all__ = ["hyperperiod", "unroll"]


def _lcm_float(values: list[float], resolution: float) -> float:
    """LCM of float periods on a fixed resolution grid."""
    ints = []
    for v in values:
        scaled = round(v / resolution)
        if scaled <= 0 or abs(scaled * resolution - v) > resolution * 1e-6:
            raise ModelError(
                f"period {v} is not representable at resolution {resolution}"
            )
        ints.append(scaled)
    return reduce(math.lcm, ints, 1) * resolution


def hyperperiod(graph: TaskGraph, resolution: float = 1e-6) -> float:
    """Least common multiple of the periodic tasks' periods.

    One-shot tasks contribute nothing.  Returns 0 when no task is
    periodic (a pure one-shot graph needs no unrolling).
    """
    periods = [t.period for t in graph if t.is_periodic]
    if not periods:
        return 0.0
    return _lcm_float(periods, resolution)


def unroll(
    graph: TaskGraph,
    horizon: float | None = None,
    resolution: float = 1e-6,
    chain_invocations: bool = True,
) -> TaskGraph:
    """Expand a periodic task graph into a one-shot job-level DAG.

    Parameters
    ----------
    graph:
        Source graph; may mix periodic and one-shot tasks.
    horizon:
        Unrolling horizon.  Defaults to one hyperperiod (starting at time
        0).  Every invocation arriving strictly before the horizon is
        instantiated.
    resolution:
        Time grid used to compute the hyperperiod of float periods.
    chain_invocations:
        Whether to add the zero-message ``#k -> #(k+1)`` precedence chain
        between consecutive invocations of the same task.
    """
    if horizon is None:
        horizon = hyperperiod(graph, resolution)
        if horizon == 0.0:
            return graph.copy()
        horizon = max(horizon, max(t.phase for t in graph) + resolution)
    if horizon <= 0:
        raise ModelError(f"unrolling horizon must be positive, got {horizon}")

    out = TaskGraph(name=f"{graph.name}@unrolled")
    jobs_of: dict[str, list[tuple[str, float, float]]] = {}

    for task in graph:
        jobs = []
        for job in task.jobs_until(horizon):
            node = Task(
                name=job.name,
                wcet=task.wcet,
                phase=job.arrival,
                relative_deadline=job.deadline - job.arrival,
            )
            out.add_task(node)
            jobs.append((job.name, job.arrival, job.deadline))
        if not jobs:
            raise ModelError(
                f"task {task.name!r} has no invocation before horizon {horizon}"
            )
        jobs_of[task.name] = jobs

    if chain_invocations:
        for jobs in jobs_of.values():
            for (a, _, _), (b, _, _) in zip(jobs, jobs[1:]):
                out.add_edge(a, b, message_size=0.0)

    for ch in graph.channels:
        src_task = graph.task(ch.src)
        dst_task = graph.task(ch.dst)
        src_jobs = jobs_of[ch.src]
        dst_jobs = jobs_of[ch.dst]
        if src_task.period == dst_task.period:
            # Same-rate pipeline: invocation k feeds invocation k.
            for (src_name, _, _), (dst_name, _, _) in zip(src_jobs, dst_jobs):
                if not out.has_channel(src_name, dst_name):
                    out.add_channel(
                        Channel(
                            src=src_name, dst=dst_name, message_size=ch.message_size
                        )
                    )
            continue
        for dst_name, dst_arrival, _ in dst_jobs:
            # Rate transition: the consumer invocation reads the freshest
            # producer invocation whose window opened by the consumer's
            # arrival (at least the first producer invocation).
            chosen = src_jobs[0][0]
            for src_name, src_arrival, _ in src_jobs:
                if src_arrival <= dst_arrival + 1e-12:
                    chosen = src_name
                else:
                    break
            if not out.has_channel(chosen, dst_name):
                out.add_channel(
                    Channel(
                        src=chosen, dst=dst_name, message_size=ch.message_size
                    )
                )
    return out
