"""Interconnection-network models (Section 2.1).

The paper assumes an arbitrary interconnect abstracted by a *nominal
communication delay*: the worst-case per-data-item transfer delay implied
by the network's scheduling strategy.  The real cost of a message between
two tasks on different processors is ``message_size * nominal_delay(p, q)``;
same-processor communication goes through shared memory at negligible
cost.  Communication proceeds concurrently with computation.

The evaluation platform of Section 4 is a time-multiplexed **shared bus**
with a nominal delay of one time unit per data item between any pair of
distinct processors; topology-aware models (fully connected, ring, mesh)
are provided for the "arbitrary topology" generality of the model section
— their nominal delays scale with the hop distance.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

from ..errors import ModelError

__all__ = [
    "Interconnect",
    "SharedBus",
    "FullyConnected",
    "Ring",
    "Mesh2D",
    "ZeroCost",
]


class Interconnect(ABC):
    """Abstract nominal-delay interconnect for ``m`` processors."""

    def __init__(self, num_processors: int) -> None:
        if num_processors < 1:
            raise ModelError(
                f"interconnect needs at least one processor, got {num_processors}"
            )
        self.num_processors = num_processors

    @abstractmethod
    def nominal_delay(self, src: int, dst: int) -> float:
        """Worst-case per-data-item delay from processor ``src`` to ``dst``.

        Must be 0 when ``src == dst`` (shared-memory communication).
        """

    def message_cost(self, src: int, dst: int, message_size: float) -> float:
        """Worst-case transfer time of a whole message."""
        return message_size * self.nominal_delay(src, dst)

    def delay_matrix(self) -> list[list[float]]:
        """Dense ``m x m`` nominal-delay matrix (row = source processor)."""
        m = self.num_processors
        return [
            [self.nominal_delay(p, q) for q in range(m)] for p in range(m)
        ]

    def _check(self, proc: int) -> None:
        if not 0 <= proc < self.num_processors:
            raise ModelError(
                f"processor index {proc} out of range [0, {self.num_processors})"
            )

    def __repr__(self) -> str:
        return f"{type(self).__name__}(m={self.num_processors})"


class SharedBus(Interconnect):
    """The paper's evaluation platform: a time-multiplexed shared bus.

    Every pair of distinct processors communicates at the same nominal
    delay (default 1 time unit per data item, as in Section 4).
    """

    def __init__(self, num_processors: int, delay_per_item: float = 1.0) -> None:
        super().__init__(num_processors)
        if delay_per_item < 0:
            raise ModelError(f"delay must be >= 0, got {delay_per_item}")
        self.delay_per_item = delay_per_item

    def nominal_delay(self, src: int, dst: int) -> float:
        self._check(src)
        self._check(dst)
        return 0.0 if src == dst else self.delay_per_item


class FullyConnected(Interconnect):
    """Dedicated link between every processor pair (uniform delay)."""

    def __init__(self, num_processors: int, delay_per_item: float = 1.0) -> None:
        super().__init__(num_processors)
        if delay_per_item < 0:
            raise ModelError(f"delay must be >= 0, got {delay_per_item}")
        self.delay_per_item = delay_per_item

    def nominal_delay(self, src: int, dst: int) -> float:
        self._check(src)
        self._check(dst)
        return 0.0 if src == dst else self.delay_per_item


class Ring(Interconnect):
    """Bidirectional ring; nominal delay scales with the shortest hop count."""

    def __init__(self, num_processors: int, delay_per_hop: float = 1.0) -> None:
        super().__init__(num_processors)
        if delay_per_hop < 0:
            raise ModelError(f"delay must be >= 0, got {delay_per_hop}")
        self.delay_per_hop = delay_per_hop

    def hops(self, src: int, dst: int) -> int:
        self._check(src)
        self._check(dst)
        d = abs(src - dst)
        return min(d, self.num_processors - d)

    def nominal_delay(self, src: int, dst: int) -> float:
        return self.hops(src, dst) * self.delay_per_hop


class Mesh2D(Interconnect):
    """2-D mesh with XY routing; delay scales with Manhattan distance.

    Processor ``p`` sits at ``(p % cols, p // cols)``.
    """

    def __init__(self, rows: int, cols: int, delay_per_hop: float = 1.0) -> None:
        if rows < 1 or cols < 1:
            raise ModelError(f"mesh dimensions must be >= 1, got {rows}x{cols}")
        super().__init__(rows * cols)
        if delay_per_hop < 0:
            raise ModelError(f"delay must be >= 0, got {delay_per_hop}")
        self.rows = rows
        self.cols = cols
        self.delay_per_hop = delay_per_hop

    def coordinates(self, proc: int) -> tuple[int, int]:
        self._check(proc)
        return (proc % self.cols, proc // self.cols)

    def hops(self, src: int, dst: int) -> int:
        (x0, y0), (x1, y1) = self.coordinates(src), self.coordinates(dst)
        return abs(x0 - x1) + abs(y0 - y1)

    def nominal_delay(self, src: int, dst: int) -> float:
        return self.hops(src, dst) * self.delay_per_hop

    def __repr__(self) -> str:
        return f"Mesh2D({self.rows}x{self.cols})"


class ZeroCost(Interconnect):
    """Free communication (useful for CCR=0 ablations and as a lower bound)."""

    def nominal_delay(self, src: int, dst: int) -> float:
        self._check(src)
        self._check(dst)
        return 0.0


def _is_power_of_two(x: int) -> bool:
    return x > 0 and (x & (x - 1)) == 0


def square_mesh(num_processors: int, delay_per_hop: float = 1.0) -> Mesh2D:
    """Build the most square mesh holding exactly ``num_processors`` nodes."""
    side = int(math.isqrt(num_processors))
    while side > 1 and num_processors % side:
        side -= 1
    return Mesh2D(rows=side, cols=num_processors // side, delay_per_hop=delay_per_hop)
