"""Compilation of (task graph, platform) pairs into flat index arrays.

The branch-and-bound engine touches task parameters millions of times; per
the HPC guides, the hot path avoids per-vertex object graphs and dict
lookups.  :class:`CompiledProblem` freezes a :class:`~repro.model.taskgraph.TaskGraph`
and a :class:`~repro.model.platform.Platform` into integer-indexed tuples:

* tasks are indexed ``0..n-1`` in graph insertion order;
* adjacency is stored as tuples of ``(neighbour, message_size)`` pairs;
* the interconnect is precompiled into an ``m x m`` nominal-delay matrix,
  with a scalar fast path when the off-diagonal delay is uniform (the
  paper's shared bus);
* scheduled/ready sets are represented as bitmask integers
  (``pred_mask[i]`` collects the direct predecessors of task ``i``).

Everything here is immutable, so one compiled problem can be shared by
any number of concurrent searches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..errors import ModelError
from .platform import Platform
from .schedule import Schedule
from .taskgraph import TaskGraph

__all__ = ["CompiledProblem", "compile_problem"]


@dataclass(frozen=True)
class CompiledProblem:
    """Flattened, immutable scheduling problem for the search hot path."""

    graph: TaskGraph
    platform: Platform
    n: int
    m: int
    names: tuple[str, ...]
    index: dict[str, int]
    wcet: tuple[float, ...]
    arrival: tuple[float, ...]
    deadline: tuple[float, ...]
    #: ``pred_edges[i]`` = tuple of ``(j, message_size)`` for each direct
    #: predecessor ``j`` of ``i``.
    pred_edges: tuple[tuple[tuple[int, float], ...], ...]
    #: ``succ_edges[i]`` = tuple of ``(j, message_size)`` for each direct
    #: successor ``j`` of ``i``.
    succ_edges: tuple[tuple[tuple[int, float], ...], ...]
    #: ``m x m`` nominal delay matrix (rows = source processor).
    delay: tuple[tuple[float, ...], ...]
    #: Scalar off-diagonal delay when uniform (shared bus / fully
    #: connected); ``None`` when the topology is non-uniform.
    uniform_delay: float | None
    #: ``pred_mask[i]`` has bit ``j`` set for each direct predecessor.
    pred_mask: tuple[int, ...]
    #: Topological order of task indices (graph insertion tie-break).
    topo: tuple[int, ...]
    #: Bitmask with all ``n`` bits set (the goal "scheduled set").
    all_mask: int
    #: Indices of tasks with no predecessors.
    inputs: tuple[int, ...] = field(default=())
    #: ``succ_mask[i]`` has bit ``j`` set for each direct successor.
    succ_mask: tuple[int, ...] = field(default=())
    #: ``desc_mask[i]`` has bit ``j`` set for every (transitive)
    #: descendant of ``i`` (``i`` itself excluded).
    desc_mask: tuple[int, ...] = field(default=())
    #: ``topo_pos[i]`` = rank of task ``i`` in :attr:`topo`.
    topo_pos: tuple[int, ...] = field(default=())
    #: ``succ_rank_mask[i]`` has bit ``topo_pos[j]`` set for each direct
    #: successor ``j`` — successors always occupy *higher* ranks, so a
    #: single ascending scan over rank bits visits a dirty set in
    #: topological order (the incremental bounds rely on this).
    succ_rank_mask: tuple[int, ...] = field(default=())
    #: Static tail: ``tail[i]`` = longest pure-execution path from ``i``
    #: to a sink, *including* ``wcet[i]``; communication, arrival times
    #: and contention are ignored, so a task starting at ``s`` cannot
    #: complete its downstream chain before ``s + tail[i]``.
    tail: tuple[float, ...] = field(default=())
    #: Tail pressure: ``tail_lateness[i]`` = max over ``i`` and its
    #: descendants ``d`` of (wcet path-sum ``i..d`` inclusive) −
    #: ``deadline[d]``.  Starting ``i`` at time ``s`` forces a lateness
    #: of at least ``s + tail_lateness[i]`` somewhere below — the
    #: tightest downstream ``deadline − tail`` slack, negated.  It is a
    #: sound admission pre-check for any bound dominating LB0.
    tail_lateness: tuple[float, ...] = field(default=())

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def __reduce__(self):
        # Serialize as (graph, platform) and recompile on load.
        # Compilation is deterministic, so every derived field comes
        # back bit-identical; payloads shrink to the source models; and
        # new derived fields (or representation changes) can never be
        # stranded in stale pickles.  The parallel driver relies on this
        # to ship problems to worker processes cheaply.
        return (compile_problem, (self.graph, self.platform))

    # ------------------------------------------------------------------
    # Placement primitive (the Section 4.3 scheduling operation)
    # ------------------------------------------------------------------

    def earliest_start(
        self,
        task: int,
        proc: int,
        proc_of: Sequence[int],
        finish: Sequence[float],
        avail: float,
    ) -> float:
        """Earliest start of ``task`` on ``proc`` under the list-scheduling op.

        ``avail`` is the finish time of the last task already appended to
        ``proc`` (the non-preemptive run-time model appends; it never
        back-fills gaps, which is what makes the operation
        non-commutative).  ``proc_of``/``finish`` describe the already
        scheduled tasks; every direct predecessor of ``task`` must be
        scheduled.
        """
        s = self.arrival[task]
        if avail > s:
            s = avail
        ud = self.uniform_delay
        if ud is not None:
            for j, size in self.pred_edges[task]:
                r = finish[j]
                if proc_of[j] != proc:
                    r += size * ud
                if r > s:
                    s = r
        else:
            drow = self.delay
            for j, size in self.pred_edges[task]:
                r = finish[j] + size * drow[proc_of[j]][proc]
                if r > s:
                    s = r
        return s

    def communication_cost(self, src_proc: int, dst_proc: int, size: float) -> float:
        """Nominal message cost between two processors."""
        return size * self.delay[src_proc][dst_proc]

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------

    def make_schedule(
        self, proc_of: Sequence[int], start: Sequence[float]
    ) -> Schedule:
        """Materialize an explicit :class:`Schedule` from placement arrays.

        Entries with ``proc_of[i] < 0`` are treated as unscheduled, so
        partial placements are supported.
        """
        sched = Schedule(self.graph, self.platform)
        for i in range(self.n):
            if proc_of[i] >= 0:
                sched.place(self.names[i], proc_of[i], start[i])
        return sched

    def lateness_of(self, finish: Sequence[float], scheduled_mask: int) -> float:
        """Max lateness over the tasks present in ``scheduled_mask``."""
        best = float("-inf")
        for i in range(self.n):
            if scheduled_mask >> i & 1:
                lat = finish[i] - self.deadline[i]
                if lat > best:
                    best = lat
        return best

    def __repr__(self) -> str:
        return f"CompiledProblem(n={self.n}, m={self.m}, graph={self.graph.name!r})"


def compile_problem(graph: TaskGraph, platform: Platform) -> CompiledProblem:
    """Freeze a graph/platform pair for the search engine."""
    n = len(graph)
    if n == 0:
        raise ModelError("cannot compile an empty task graph")
    if n > 62:
        # Bitmask state uses machine-friendly ints; the B&B is intractable
        # far below this anyway, so it is a sanity bound, not a real limit
        # (Python ints would keep working, just slower).
        raise ModelError(f"task graphs above 62 tasks are not supported (got {n})")
    names = tuple(graph.task_names)
    index = {name: i for i, name in enumerate(names)}
    tasks = [graph.task(name) for name in names]
    wcet = tuple(platform.effective_wcet(t.wcet) for t in tasks)
    arrival = tuple(t.arrival(1) for t in tasks)
    deadline = tuple(t.absolute_deadline(1) for t in tasks)

    pred_edges: list[tuple[tuple[int, float], ...]] = []
    succ_edges: list[tuple[tuple[int, float], ...]] = []
    pred_mask: list[int] = []
    for name in names:
        pe = tuple(
            (index[p], graph.channel(p, name).message_size)
            for p in graph.predecessors(name)
        )
        se = tuple(
            (index[s], graph.channel(name, s).message_size)
            for s in graph.successors(name)
        )
        pred_edges.append(pe)
        succ_edges.append(se)
        mask = 0
        for j, _ in pe:
            mask |= 1 << j
        pred_mask.append(mask)

    delay_rows = platform.interconnect.delay_matrix()
    delay = tuple(tuple(row) for row in delay_rows)
    off_diag = {
        delay[p][q]
        for p in range(platform.num_processors)
        for q in range(platform.num_processors)
        if p != q
    }
    uniform_delay = off_diag.pop() if len(off_diag) == 1 else (
        0.0 if not off_diag else None
    )

    topo = tuple(index[name] for name in graph.topological_order())
    inputs = tuple(index[name] for name in graph.input_tasks)

    succ_mask = []
    for i in range(n):
        mask = 0
        for j, _ in succ_edges[i]:
            mask |= 1 << j
        succ_mask.append(mask)

    topo_pos = [0] * n
    for rank, i in enumerate(topo):
        topo_pos[i] = rank
    succ_rank_mask = []
    for i in range(n):
        mask = 0
        for j, _ in succ_edges[i]:
            mask |= 1 << topo_pos[j]
        succ_rank_mask.append(mask)

    # Reverse-topological sweeps: descendant closure and static tails.
    desc_mask = [0] * n
    tail = [0.0] * n
    tail_lateness = [0.0] * n
    for i in reversed(topo):
        dm = 0
        best_tail = 0.0
        press = -deadline[i]
        for j, _ in succ_edges[i]:
            dm |= (1 << j) | desc_mask[j]
            if tail[j] > best_tail:
                best_tail = tail[j]
            if tail_lateness[j] > press:
                press = tail_lateness[j]
        desc_mask[i] = dm
        tail[i] = wcet[i] + best_tail
        tail_lateness[i] = wcet[i] + press

    return CompiledProblem(
        graph=graph,
        platform=platform,
        n=n,
        m=platform.num_processors,
        names=names,
        index=index,
        wcet=wcet,
        arrival=arrival,
        deadline=deadline,
        pred_edges=tuple(pred_edges),
        succ_edges=tuple(succ_edges),
        delay=delay,
        uniform_delay=uniform_delay,
        pred_mask=tuple(pred_mask),
        topo=topo,
        all_mask=(1 << n) - 1,
        inputs=inputs,
        succ_mask=tuple(succ_mask),
        desc_mask=tuple(desc_mask),
        topo_pos=tuple(topo_pos),
        succ_rank_mask=tuple(succ_rank_mask),
        tail=tuple(tail),
        tail_lateness=tuple(tail_lateness),
    )
