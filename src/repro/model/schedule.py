"""Explicit multiprocessor schedules and their validity conditions.

A time-driven non-preemptive multiprocessor schedule (Section 2.2) maps
each task ``tau_i`` to a start time ``s_i`` and a processor ``p_i``; the
task then runs without preemption in ``[s_i, f_i]`` with
``f_i = s_i + c_i``.

Terminology (matching the paper):

* a schedule is **consistent** if its bookkeeping is sound: every placed
  task respects its arrival time, its predecessors' finishes plus
  interprocessor communication costs, and mutual exclusion on its
  processor;
* a schedule is **valid** if it is consistent *and* every task finishes
  by its absolute deadline (``L_max <= 0``);
* a task set is **feasible** if a valid schedule exists, and
  **schedulable** by an algorithm if that algorithm produces one.

Schedules may be partial (the branch-and-bound search manipulates partial
schedules); completeness is a separate predicate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import InvalidScheduleError, ModelError, UnknownTaskError
from .platform import Platform
from .taskgraph import TaskGraph

__all__ = ["ScheduleEntry", "MessageRecord", "Schedule", "EPSILON"]

#: Numeric slack used by the validity checker when comparing float times.
EPSILON = 1e-9


@dataclass(frozen=True, slots=True)
class ScheduleEntry:
    """Placement of one task: ``(processor, start, finish)``."""

    task: str
    processor: int
    start: float
    finish: float

    @property
    def duration(self) -> float:
        return self.finish - self.start

    def overlaps(self, other: "ScheduleEntry") -> bool:
        """Whether the two execution intervals intersect with positive measure."""
        return (
            self.start < other.finish - EPSILON
            and other.start < self.finish - EPSILON
        )

    def __str__(self) -> str:
        return f"{self.task}@p{self.processor}[{self.start}, {self.finish}]"


@dataclass(frozen=True, slots=True)
class MessageRecord:
    """A realized message transfer between two scheduled tasks.

    ``departure`` is the producer's finish time, ``arrival`` adds the
    nominal transfer cost (zero when both endpoints share a processor).
    """

    src: str
    dst: str
    src_processor: int
    dst_processor: int
    size: float
    departure: float
    arrival: float

    @property
    def is_local(self) -> bool:
        return self.src_processor == self.dst_processor

    @property
    def transfer_time(self) -> float:
        return self.arrival - self.departure


class Schedule:
    """A (possibly partial) mapping of tasks to processors and start times."""

    def __init__(self, graph: TaskGraph, platform: Platform) -> None:
        self.graph = graph
        self.platform = platform
        self._entries: dict[str, ScheduleEntry] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def place(self, task: str, processor: int, start: float) -> ScheduleEntry:
        """Place a task; its finish time follows from the platform WCET."""
        t = self.graph.task(task)  # raises UnknownTaskError
        if task in self._entries:
            raise ModelError(f"task {task!r} is already scheduled")
        if not 0 <= processor < self.platform.num_processors:
            raise ModelError(
                f"processor index {processor} out of range "
                f"[0, {self.platform.num_processors})"
            )
        finish = start + self.platform.effective_wcet(t.wcet)
        entry = ScheduleEntry(task=task, processor=processor, start=start, finish=finish)
        self._entries[task] = entry
        return entry

    def remove(self, task: str) -> None:
        if task not in self._entries:
            raise UnknownTaskError(task)
        del self._entries[task]

    def copy(self) -> "Schedule":
        out = Schedule(self.graph, self.platform)
        out._entries = dict(self._entries)
        return out

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, task: str) -> bool:
        return task in self._entries

    def entry(self, task: str) -> ScheduleEntry:
        try:
            return self._entries[task]
        except KeyError:
            raise UnknownTaskError(task) from None

    @property
    def entries(self) -> list[ScheduleEntry]:
        """All entries, ordered by (start, processor, task)."""
        return sorted(
            self._entries.values(), key=lambda e: (e.start, e.processor, e.task)
        )

    @property
    def is_complete(self) -> bool:
        return len(self._entries) == len(self.graph)

    @property
    def scheduled_tasks(self) -> set[str]:
        return set(self._entries)

    def timeline(self, processor: int) -> list[ScheduleEntry]:
        """Entries on one processor, in start-time order."""
        return sorted(
            (e for e in self._entries.values() if e.processor == processor),
            key=lambda e: (e.start, e.task),
        )

    def processor_finish(self, processor: int) -> float:
        """Finish time of the last task on a processor (0 if idle)."""
        return max(
            (e.finish for e in self._entries.values() if e.processor == processor),
            default=0.0,
        )

    def messages(self) -> list[MessageRecord]:
        """Realized message transfers for every arc with both endpoints placed."""
        out: list[MessageRecord] = []
        for ch in self.graph.channels:
            if ch.src in self._entries and ch.dst in self._entries:
                es, ed = self._entries[ch.src], self._entries[ch.dst]
                cost = self.platform.communication_cost(
                    es.processor, ed.processor, ch.message_size
                )
                out.append(
                    MessageRecord(
                        src=ch.src,
                        dst=ch.dst,
                        src_processor=es.processor,
                        dst_processor=ed.processor,
                        size=ch.message_size,
                        departure=es.finish,
                        arrival=es.finish + cost,
                    )
                )
        out.sort(key=lambda m: (m.departure, m.src, m.dst))
        return out

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------

    def lateness(self, task: str) -> float:
        """``f_i - D_i`` for a scheduled task (negative = early)."""
        e = self.entry(task)
        return e.finish - self.graph.task(task).absolute_deadline(1)

    def max_lateness(self) -> float:
        """Maximum task lateness over the *scheduled* tasks.

        On a complete schedule this is the paper's objective ``L_max``.
        Returns ``-inf`` for an empty schedule.
        """
        if not self._entries:
            return -math.inf
        return max(self.lateness(t) for t in self._entries)

    def makespan(self) -> float:
        """Latest finish time over the scheduled tasks (0 if empty)."""
        return max((e.finish for e in self._entries.values()), default=0.0)

    def is_feasible(self) -> bool:
        """Complete, consistent and every deadline met (``L_max <= 0``)."""
        if not self.is_complete:
            return False
        try:
            self.validate(require_deadlines=True)
        except InvalidScheduleError:
            return False
        return True

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------

    def violations(self, require_deadlines: bool = False) -> list[str]:
        """Collect every validity violation (empty list = consistent).

        Checks, for each scheduled task:

        * start >= arrival time;
        * finish = start + effective WCET;
        * start >= predecessor finish (+ message cost across processors)
          for every *scheduled* predecessor — an unscheduled predecessor of
          a scheduled task is itself a violation;
        * no two tasks overlap on one processor;
        * with ``require_deadlines``, finish <= absolute deadline.
        """
        out: list[str] = []
        for name, e in self._entries.items():
            task = self.graph.task(name)
            if e.start < task.arrival(1) - EPSILON:
                out.append(
                    f"{name}: starts at {e.start} before its arrival {task.arrival(1)}"
                )
            expected_finish = e.start + self.platform.effective_wcet(task.wcet)
            if abs(e.finish - expected_finish) > EPSILON:
                out.append(
                    f"{name}: finish {e.finish} != start + wcet = {expected_finish}"
                )
            if require_deadlines and e.finish > task.absolute_deadline(1) + EPSILON:
                out.append(
                    f"{name}: finishes at {e.finish} after its deadline "
                    f"{task.absolute_deadline(1)}"
                )
            for pred in self.graph.predecessors(name):
                if pred not in self._entries:
                    out.append(f"{name}: scheduled before its predecessor {pred}")
                    continue
                ep = self._entries[pred]
                ch = self.graph.channel(pred, name)
                cost = self.platform.communication_cost(
                    ep.processor, e.processor, ch.message_size
                )
                if e.start < ep.finish + cost - EPSILON:
                    out.append(
                        f"{name}: starts at {e.start} before predecessor {pred} "
                        f"finish {ep.finish} + communication {cost}"
                    )
        for p in self.platform.processors:
            line = self.timeline(p)
            for a, b in zip(line, line[1:]):
                if a.overlaps(b):
                    out.append(f"p{p}: {a} overlaps {b}")
        return out

    def validate(self, require_deadlines: bool = False) -> None:
        """Raise :class:`InvalidScheduleError` listing every violation."""
        v = self.violations(require_deadlines=require_deadlines)
        if v:
            raise InvalidScheduleError(v)

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------

    def as_table(self) -> str:
        """Human-readable per-processor Gantt listing."""
        lines = [f"Schedule of {self.graph.name!r} on m={self.platform.num_processors}"]
        for p in self.platform.processors:
            parts = [
                f"{e.task}[{e.start:g},{e.finish:g}]" for e in self.timeline(p)
            ]
            lines.append(f"  p{p}: " + (" ".join(parts) if parts else "(idle)"))
        if self.is_complete:
            lines.append(f"  L_max = {self.max_lateness():g}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"Schedule({self.graph.name!r}, placed={len(self._entries)}/"
            f"{len(self.graph)})"
        )
