"""Multiprocessor platform model (Section 2.1).

A :class:`Platform` is a set of ``m`` identical processors plus an
:class:`~repro.model.interconnect.Interconnect`.  Processors are
identified by integer indices ``0..m-1`` (the paper's ``p_1..p_m``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ModelError
from .interconnect import Interconnect, SharedBus

__all__ = ["Platform", "shared_bus_platform"]


@dataclass(frozen=True)
class Platform:
    """``m`` identical processors communicating over an interconnect.

    Attributes
    ----------
    num_processors:
        Number of identical processors ``m``.
    interconnect:
        The network model supplying nominal per-item delays.  Defaults to
        the paper's shared bus at 1 time unit per data item.
    context_switch:
        Fixed per-dispatch overhead added to each task's execution on the
        platform.  The paper folds architectural overheads into the WCET;
        this knob lets a user model them explicitly instead.  Default 0.
    """

    num_processors: int
    interconnect: Interconnect = field(default=None)  # type: ignore[assignment]
    context_switch: float = 0.0

    def __post_init__(self) -> None:
        if self.num_processors < 1:
            raise ModelError(
                f"platform needs at least one processor, got {self.num_processors}"
            )
        if self.interconnect is None:
            object.__setattr__(
                self, "interconnect", SharedBus(self.num_processors)
            )
        if self.interconnect.num_processors != self.num_processors:
            raise ModelError(
                f"interconnect is sized for {self.interconnect.num_processors} "
                f"processors but the platform has {self.num_processors}"
            )
        if self.context_switch < 0:
            raise ModelError(
                f"context switch overhead must be >= 0, got {self.context_switch}"
            )

    @property
    def processors(self) -> range:
        """Iterable of processor indices."""
        return range(self.num_processors)

    def communication_cost(self, src: int, dst: int, message_size: float) -> float:
        """Worst-case message transfer time between two processors."""
        return self.interconnect.message_cost(src, dst, message_size)

    def effective_wcet(self, wcet: float) -> float:
        """Execution time on this platform including dispatch overhead."""
        return wcet + self.context_switch

    def __repr__(self) -> str:
        return (
            f"Platform(m={self.num_processors}, "
            f"interconnect={self.interconnect!r})"
        )


def shared_bus_platform(num_processors: int, delay_per_item: float = 1.0) -> Platform:
    """The Section 4 evaluation platform: shared bus, identical processors."""
    return Platform(
        num_processors=num_processors,
        interconnect=SharedBus(num_processors, delay_per_item),
    )
