"""Task model: the 4-tuple ``<c_i, phi_i, d_i, T_i>`` of Section 2.2.

A :class:`Task` is the *static* description of a (possibly periodic)
real-time task.  The *dynamic* behaviour of the ``k``-th invocation is a
:class:`Job` with absolute arrival time ``a_i^k = phi_i + T_i * (k - 1)``
and absolute deadline ``D_i^k = a_i^k + d_i``.

The ICPP'97 evaluation schedules a single invocation of each task; the
periodic attributes are retained for the hyperperiod-unrolling extension
(:mod:`repro.model.unroll`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Iterator

from ..errors import ModelError

__all__ = ["Task", "Job", "APERIODIC"]

#: Period value denoting a one-shot (aperiodic) task.  One-shot tasks have
#: exactly one invocation.
APERIODIC = math.inf


@dataclass(frozen=True, slots=True)
class Task:
    """Static real-time task parameters.

    Attributes
    ----------
    name:
        Unique identifier within a task graph.
    wcet:
        Worst-case execution time ``c_i`` (includes architectural overheads
        such as cache misses, pipeline hazards, context switches and
        message (de)packetization, per Section 2.2).  Strictly positive.
    phase:
        Phasing ``phi_i``: earliest time of the first invocation, measured
        from the time origin.  Non-negative.
    relative_deadline:
        Relative deadline ``d_i``: each invocation must complete within
        this amount of time after its arrival.
    period:
        Period ``T_i`` between consecutive invocations.  Use
        :data:`APERIODIC` (the default) for one-shot tasks.  For periodic
        tasks the paper assumes ``d_i <= T_i`` so that execution windows of
        consecutive invocations never overlap.
    """

    name: str
    wcet: float
    phase: float = 0.0
    relative_deadline: float = math.inf
    period: float = field(default=APERIODIC)

    def __post_init__(self) -> None:
        if not self.name:
            raise ModelError("task name must be a non-empty string")
        if not (self.wcet > 0) or math.isinf(self.wcet):
            raise ModelError(
                f"task {self.name!r}: wcet must be positive and finite, got {self.wcet}"
            )
        if self.phase < 0 or math.isinf(self.phase):
            raise ModelError(
                f"task {self.name!r}: phase must be finite and >= 0, got {self.phase}"
            )
        if self.relative_deadline <= 0:
            raise ModelError(
                f"task {self.name!r}: relative deadline must be positive, "
                f"got {self.relative_deadline}"
            )
        if self.period <= 0:
            raise ModelError(
                f"task {self.name!r}: period must be positive, got {self.period}"
            )
        if self.is_periodic and self.relative_deadline > self.period:
            raise ModelError(
                f"task {self.name!r}: the paper requires d_i <= T_i "
                f"(got d={self.relative_deadline}, T={self.period})"
            )
        if self.wcet > self.window_length:
            raise ModelError(
                f"task {self.name!r}: wcet {self.wcet} exceeds the execution "
                f"window length {self.window_length}"
            )

    # -- derived quantities -------------------------------------------------

    @property
    def is_periodic(self) -> bool:
        """Whether the task re-arrives every ``period`` time units."""
        return not math.isinf(self.period)

    @property
    def window_length(self) -> float:
        """Length ``|w_i|`` of each invocation's execution window."""
        return self.relative_deadline

    def arrival(self, k: int = 1) -> float:
        """Absolute arrival time ``a_i^k`` of the ``k``-th invocation (1-based)."""
        self._check_invocation(k)
        if k == 1:
            return self.phase
        return self.phase + self.period * (k - 1)

    def absolute_deadline(self, k: int = 1) -> float:
        """Absolute deadline ``D_i^k`` of the ``k``-th invocation (1-based)."""
        return self.arrival(k) + self.relative_deadline

    def job(self, k: int = 1) -> "Job":
        """Materialize the ``k``-th invocation as a :class:`Job`."""
        return Job(
            task=self,
            index=k,
            arrival=self.arrival(k),
            deadline=self.absolute_deadline(k),
        )

    def jobs_until(self, horizon: float) -> Iterator["Job"]:
        """Yield every invocation whose arrival falls in ``[0, horizon)``.

        One-shot tasks yield at most one job.  The horizon is exclusive so
        that iterating until a hyperperiod yields exactly
        ``hyperperiod / period`` jobs for a zero-phase task.
        """
        if horizon <= self.phase:
            return
        if not self.is_periodic:
            yield self.job(1)
            return
        k = 1
        while self.arrival(k) < horizon:
            yield self.job(k)
            k += 1

    def with_window(self, arrival: float, deadline: float) -> "Task":
        """Return a copy whose first invocation has the given window.

        Used by the deadline-assignment pass to stamp sliced windows onto
        tasks: the phase becomes ``arrival`` and the relative deadline
        becomes ``deadline - arrival``.
        """
        tolerance = 1e-9 * max(1.0, abs(deadline))
        if deadline - arrival < self.wcet - tolerance:
            raise ModelError(
                f"task {self.name!r}: window [{arrival}, {deadline}] shorter "
                f"than wcet {self.wcet}"
            )
        # Guard against float cancellation making the window a hair
        # shorter than the wcet (e.g. d - (d - c) < c in binary floats).
        return replace(
            self,
            phase=arrival,
            relative_deadline=max(self.wcet, deadline - arrival),
        )

    def _check_invocation(self, k: int) -> None:
        if k < 1:
            raise ModelError(f"invocation index must be >= 1, got {k}")
        if k > 1 and not self.is_periodic:
            raise ModelError(
                f"task {self.name!r} is one-shot; invocation {k} does not exist"
            )

    def __str__(self) -> str:
        per = f", T={self.period}" if self.is_periodic else ""
        return (
            f"Task({self.name}: c={self.wcet}, phi={self.phase}, "
            f"d={self.relative_deadline}{per})"
        )


@dataclass(frozen=True, slots=True)
class Job:
    """One invocation ``tau_i^k`` of a task: the pair ``(a_i^k, D_i^k)``."""

    task: Task
    index: int
    arrival: float
    deadline: float

    @property
    def name(self) -> str:
        """Unique job identifier, e.g. ``"sensor#3"`` for invocation 3."""
        if self.index == 1 and not self.task.is_periodic:
            return self.task.name
        return f"{self.task.name}#{self.index}"

    @property
    def wcet(self) -> float:
        return self.task.wcet

    def lateness(self, finish_time: float) -> float:
        """Task lateness ``f - D`` for a given finish time (negative = early)."""
        return finish_time - self.deadline

    def __str__(self) -> str:
        return f"Job({self.name}: a={self.arrival}, D={self.deadline}, c={self.wcet})"
