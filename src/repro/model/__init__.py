"""System models: tasks, channels, task graphs, platforms, schedules.

This subpackage implements Section 2 of the paper — the multiprocessor
system model, the (periodic) task system with precedence constraints and
communication channels, and the definition of valid time-driven
non-preemptive schedules — plus the problem compiler feeding the search
engine.
"""

from .bussim import BusSimulation, BusTransfer, simulate_bus
from .channel import Channel
from .compile import CompiledProblem, compile_problem
from .interconnect import (
    FullyConnected,
    Interconnect,
    Mesh2D,
    Ring,
    SharedBus,
    ZeroCost,
)
from .platform import Platform, shared_bus_platform
from .schedule import EPSILON, MessageRecord, Schedule, ScheduleEntry
from .task import APERIODIC, Job, Task
from .taskgraph import TaskGraph
from .unroll import hyperperiod, unroll

__all__ = [
    "APERIODIC",
    "BusSimulation",
    "BusTransfer",
    "Channel",
    "CompiledProblem",
    "EPSILON",
    "FullyConnected",
    "Interconnect",
    "Job",
    "Mesh2D",
    "MessageRecord",
    "Platform",
    "Ring",
    "Schedule",
    "ScheduleEntry",
    "SharedBus",
    "Task",
    "TaskGraph",
    "ZeroCost",
    "compile_problem",
    "hyperperiod",
    "shared_bus_platform",
    "simulate_bus",
    "unroll",
]
