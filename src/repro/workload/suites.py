"""Canned workload suites for the experiments.

The paper's evaluation uses one base workload (Section 4.1) across all
of Figure 3, and varies CCR and task-graph parallelism in the Section 6
discussion.  Pure-Python searches are slower than the paper's compiled
milieu, so each suite also has a ``scaled`` variant with smaller graphs
(used by the test suite and the default benchmark profile); the full
paper-size variant is selected with ``profile="paper"``.
"""

from __future__ import annotations

from ..errors import SpecificationError
from .spec import WorkloadSpec

__all__ = [
    "paper_spec",
    "scaled_spec",
    "spec_for_profile",
    "ccr_suite",
    "parallelism_suite",
]


def paper_spec(**changes) -> WorkloadSpec:
    """The exact Section 4.1 workload (12-16 tasks, depth 8-12, CCR 1.0)."""
    return WorkloadSpec(name="paper").evolve(**changes)


def scaled_spec(**changes) -> WorkloadSpec:
    """A laptop-scale surrogate of the Section 4.1 workload.

    Graphs of 9-11 tasks, 4-6 levels deep, with identical timing
    distributions (mean WCET 20 +/- 99%, CCR 1.0, laxity 1.5).  The
    depth is proportionally a little shallower than the paper's so that
    the width-to-processor contention the paper's 12-16-task graphs
    exhibit on 2-4 processors is preserved at the smaller task count;
    with the paper's depth ratio these small graphs degenerate to
    near-chains where every strategy ties.  Small enough that optimal
    BFn searches complete quickly in pure Python while every Figure 3
    shape (LIFO<<LLB, LB1<LB0 at m=2, approximate<<optimal) manifests.
    """
    return WorkloadSpec(name="scaled", num_tasks=(9, 11), depth=(4, 6)).evolve(
        **changes
    )


def tiny_spec(**changes) -> WorkloadSpec:
    """Very small graphs (7-9 tasks) for exhaustive cross-checking tests."""
    return WorkloadSpec(name="tiny", num_tasks=(7, 9), depth=(3, 5)).evolve(
        **changes
    )


_PROFILES = {
    "paper": paper_spec,
    "scaled": scaled_spec,
    "tiny": tiny_spec,
}


def spec_for_profile(profile: str, **changes) -> WorkloadSpec:
    """Look up a base spec by profile name."""
    try:
        factory = _PROFILES[profile]
    except KeyError:
        raise SpecificationError(
            f"unknown profile {profile!r}; choose from {sorted(_PROFILES)}"
        ) from None
    return factory(**changes)


def ccr_suite(profile: str = "scaled", ccrs=(0.1, 0.5, 1.0, 2.0)) -> list[WorkloadSpec]:
    """Specs for the Section 6 CCR sweep (lower CCR => faster B&B)."""
    base = spec_for_profile(profile)
    return [base.evolve(name=f"{base.name}-ccr{c:g}", ccr=c) for c in ccrs]


def parallelism_suite(profile: str = "scaled") -> list[WorkloadSpec]:
    """Specs for the Section 6 parallelism sweep.

    Holding the task count fixed, shallower graphs have wider levels and
    hence more exploitable parallelism; the suite spans deep/narrow to
    shallow/wide shapes.
    """
    base = spec_for_profile(profile)
    lo, hi = base.num_tasks
    shapes = [
        ("deep", (max(2, int(lo * 0.7)), hi)),  # near-chain
        ("mid", (max(2, lo // 2), max(3, hi // 2))),
        ("wide", (2, 3)),
    ]
    out = []
    for label, depth in shapes:
        depth = (min(depth[0], lo), min(depth[1], lo))
        out.append(base.evolve(name=f"{base.name}-{label}", depth=depth))
    return out
