"""Workload specifications: every knob of Section 4.1 in one dataclass.

The paper's experimental workload:

* task graphs of 12-16 tasks, 8-12 precedence levels deep;
* 1-3 successors/predecessors per task;
* execution times uniform with mean 20, deviating at most +/-99%;
* message sizes set so the communication-to-computation ratio (CCR) of
  mean message cost to mean execution time is 1.0;
* end-to-end deadlines with an overall laxity ratio of 1.5 relative to
  the accumulated task-graph workload, distributed to individual tasks
  by the slicing technique of [16].

Ranges are inclusive ``(lo, hi)`` pairs; a plain int is promoted to the
degenerate range.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..errors import SpecificationError

__all__ = ["IntRange", "WorkloadSpec", "PAPER_SPEC"]


def _as_range(value) -> tuple[int, int]:
    if isinstance(value, int):
        return (value, value)
    lo, hi = value
    return (int(lo), int(hi))


@dataclass(frozen=True)
class IntRange:
    """Inclusive integer range used for structural knobs."""

    lo: int
    hi: int

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise SpecificationError(f"empty range [{self.lo}, {self.hi}]")

    def sample(self, rng) -> int:
        return rng.randint(self.lo, self.hi)

    def clamp(self, value: int) -> int:
        return max(self.lo, min(self.hi, value))

    def __contains__(self, value: int) -> bool:
        return self.lo <= value <= self.hi

    def __iter__(self):
        return iter((self.lo, self.hi))


@dataclass(frozen=True)
class WorkloadSpec:
    """Parameters of the random task-graph generator."""

    name: str = "paper"
    #: Number of tasks per graph (paper: 12-16).
    num_tasks: tuple[int, int] = (12, 16)
    #: Precedence depth in levels (paper: 8-12).
    depth: tuple[int, int] = (8, 12)
    #: Successor/predecessor counts per task (paper: 1-3).
    fan: tuple[int, int] = (1, 3)
    #: Mean worst-case execution time (paper: 20 time units).
    mean_wcet: float = 20.0
    #: Max relative deviation of execution times (paper: +/-99%).
    wcet_jitter: float = 0.99
    #: Communication-to-computation cost ratio (paper: 1.0).
    ccr: float = 1.0
    #: Max relative deviation of message sizes (paper unspecified;
    #: defaults to the execution-time jitter).
    message_jitter: float = 0.99
    #: End-to-end laxity ratio over the accumulated workload (paper: 1.5).
    laxity_ratio: float = 1.5
    #: Nominal interconnect delay per data item used to convert CCR into
    #: message sizes (paper's shared bus: 1.0).
    nominal_delay: float = 1.0
    #: How the slicing pass computes path lengths and windows — see
    #: :mod:`repro.workload.deadline`.  The default (computation-only
    #: slicing) makes message transfers consume window slack, which is
    #: what gives the B&B real work to do; see DESIGN.md interpretation
    #: notes.
    include_comm_in_slices: bool = False
    window_mode: str = "contiguous"

    def __post_init__(self) -> None:
        object.__setattr__(self, "num_tasks", _as_range(self.num_tasks))
        object.__setattr__(self, "depth", _as_range(self.depth))
        object.__setattr__(self, "fan", _as_range(self.fan))
        nt, dp, fan = self.num_tasks, self.depth, self.fan
        if nt[0] < 1:
            raise SpecificationError(f"num_tasks must be >= 1, got {nt}")
        if dp[0] < 1:
            raise SpecificationError(f"depth must be >= 1, got {dp}")
        if dp[0] > nt[1]:
            raise SpecificationError(
                f"minimum depth {dp[0]} exceeds maximum task count {nt[1]}"
            )
        if fan[0] < 1:
            raise SpecificationError(f"fan range must start at >= 1, got {fan}")
        if not self.mean_wcet > 0:
            raise SpecificationError(f"mean_wcet must be positive, got {self.mean_wcet}")
        if not 0 <= self.wcet_jitter < 1:
            raise SpecificationError(
                f"wcet_jitter must be in [0, 1), got {self.wcet_jitter}"
            )
        if not 0 <= self.message_jitter < 1:
            raise SpecificationError(
                f"message_jitter must be in [0, 1), got {self.message_jitter}"
            )
        if self.ccr < 0:
            raise SpecificationError(f"ccr must be >= 0, got {self.ccr}")
        if self.laxity_ratio <= 0:
            raise SpecificationError(
                f"laxity_ratio must be positive, got {self.laxity_ratio}"
            )
        if self.nominal_delay <= 0:
            raise SpecificationError(
                f"nominal_delay must be positive, got {self.nominal_delay}"
            )
        if self.window_mode not in ("contiguous", "tight"):
            raise SpecificationError(
                f"window_mode must be 'contiguous' or 'tight', got {self.window_mode!r}"
            )

    # -- derived -----------------------------------------------------------

    @property
    def wcet_bounds(self) -> tuple[float, float]:
        """Uniform execution-time support ``mean * (1 -/+ jitter)``."""
        return (
            self.mean_wcet * (1.0 - self.wcet_jitter),
            self.mean_wcet * (1.0 + self.wcet_jitter),
        )

    @property
    def mean_message_size(self) -> float:
        """Message size (data items) realizing the requested CCR."""
        return self.ccr * self.mean_wcet / self.nominal_delay

    @property
    def message_bounds(self) -> tuple[float, float]:
        mean = self.mean_message_size
        return (
            mean * (1.0 - self.message_jitter),
            mean * (1.0 + self.message_jitter),
        )

    def evolve(self, **changes) -> "WorkloadSpec":
        return replace(self, **changes)


#: The exact Section 4.1 workload.
PAPER_SPEC = WorkloadSpec()
