"""Workload generation: random task graphs and deadline assignment.

Implements Sections 4.1 (the random task-graph generator) and 4.2 (the
end-to-end deadline slicing of [16]), plus canned suites for every
experiment.
"""

from .deadline import (
    DeadlineAssignment,
    assign_deadlines,
    assign_deadlines_detailed,
    end_to_end_deadline,
)
from .generator import generate_batch, generate_task_graph
from .spec import PAPER_SPEC, IntRange, WorkloadSpec
from .suites import (
    ccr_suite,
    paper_spec,
    parallelism_suite,
    scaled_spec,
    spec_for_profile,
    tiny_spec,
)

__all__ = [
    "DeadlineAssignment",
    "IntRange",
    "PAPER_SPEC",
    "WorkloadSpec",
    "assign_deadlines",
    "assign_deadlines_detailed",
    "ccr_suite",
    "end_to_end_deadline",
    "generate_batch",
    "generate_task_graph",
    "paper_spec",
    "parallelism_suite",
    "scaled_spec",
    "spec_for_profile",
    "tiny_spec",
]
