"""Random task-graph generator (Section 4.1).

Generates layered DAGs honouring a :class:`~repro.workload.spec.WorkloadSpec`:

1. draw the task count and precedence depth, then place one task per
   level and scatter the remainder over levels at random;
2. draw execution times from the uniform jitter window around the mean;
3. wire a *backbone* — every task beyond level 0 gets one predecessor on
   the previous level, so the realized depth equals the drawn depth — and
   give every non-terminal task at least one successor;
4. top up in-degrees to a per-task target drawn from the fan range,
   respecting the fan cap on out-degrees where possible (the paper's
   "number of successors/predecessors chosen at random in the range 1-3");
5. draw message sizes so the realized CCR matches the spec;
6. optionally run the deadline-slicing pass so every task carries an
   arrival time and an absolute deadline.

All randomness flows through one ``random.Random`` seeded by the caller,
so workloads are fully reproducible.
"""

from __future__ import annotations

import random

from ..errors import GenerationError
from ..model.channel import Channel
from ..model.task import Task
from ..model.taskgraph import TaskGraph
from .deadline import assign_deadlines
from .spec import WorkloadSpec

__all__ = ["generate_task_graph", "generate_batch"]


def _rng_of(seed) -> random.Random:
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


def _place_levels(spec: WorkloadSpec, rng: random.Random) -> list[int]:
    """Return tasks-per-level counts realizing the drawn size and depth."""
    n = rng.randint(*spec.num_tasks)
    d = rng.randint(*spec.depth)
    if d > n:
        d = n
    counts = [1] * d
    for _ in range(n - d):
        counts[rng.randrange(d)] += 1
    return counts


def generate_task_graph(
    spec: WorkloadSpec = WorkloadSpec(),
    seed: int | random.Random = 0,
    name: str | None = None,
    assign_windows: bool = True,
) -> TaskGraph:
    """Generate one random task graph (optionally with sliced deadlines)."""
    rng = _rng_of(seed)
    counts = _place_levels(spec, rng)
    depth = len(counts)
    graph_name = name or (
        f"{spec.name}-s{seed}" if isinstance(seed, int) else spec.name
    )
    graph = TaskGraph(name=graph_name)

    lo_c, hi_c = spec.wcet_bounds
    levels: list[list[str]] = []
    idx = 0
    for lvl, count in enumerate(counts):
        row = []
        for _ in range(count):
            tname = f"t{idx:02d}"
            graph.add_task(Task(name=tname, wcet=rng.uniform(lo_c, hi_c)))
            row.append(tname)
            idx += 1
        levels.append(row)

    fan_lo, fan_hi = spec.fan
    out_deg: dict[str, int] = {t: 0 for t in graph.task_names}
    in_deg: dict[str, int] = {t: 0 for t in graph.task_names}
    edges: list[tuple[str, str]] = []

    def connect(src: str, dst: str) -> None:
        edges.append((src, dst))
        out_deg[src] += 1
        in_deg[dst] += 1

    # Backbone: keeps the realized depth equal to the drawn depth.
    for lvl in range(1, depth):
        for dst in levels[lvl]:
            candidates = [s for s in levels[lvl - 1] if out_deg[s] < fan_hi]
            pool = candidates or levels[lvl - 1]
            connect(rng.choice(pool), dst)

    # Every non-terminal task needs at least one successor.
    for lvl in range(depth - 1):
        for src in levels[lvl]:
            if out_deg[src] == 0:
                candidates = [t for t in levels[lvl + 1] if in_deg[t] < fan_hi]
                pool = candidates or levels[lvl + 1]
                connect(src, rng.choice(pool))

    # Top up in-degrees toward per-task targets drawn from the fan range.
    existing = set(edges)
    for lvl in range(1, depth):
        earlier = [t for row in levels[:lvl] for t in row]
        for dst in levels[lvl]:
            target = rng.randint(fan_lo, fan_hi)
            if in_deg[dst] >= target:
                continue
            candidates = [
                s
                for s in earlier
                if out_deg[s] < fan_hi and (s, dst) not in existing
            ]
            rng.shuffle(candidates)
            while in_deg[dst] < target and candidates:
                src = candidates.pop()
                existing.add((src, dst))
                connect(src, dst)

    lo_m, hi_m = spec.message_bounds
    for src, dst in edges:
        size = 0.0 if spec.ccr == 0 else rng.uniform(lo_m, hi_m)
        graph.add_channel(Channel(src=src, dst=dst, message_size=size))

    if graph.depth != depth:
        raise GenerationError(
            f"generator bug: realized depth {graph.depth} != drawn depth {depth}"
        )

    if assign_windows:
        graph = assign_deadlines(
            graph,
            laxity_ratio=spec.laxity_ratio,
            include_comm=spec.include_comm_in_slices,
            delay=spec.nominal_delay,
            window_mode=spec.window_mode,
        )
    return graph


def generate_batch(
    spec: WorkloadSpec = WorkloadSpec(),
    count: int = 10,
    base_seed: int = 0,
    assign_windows: bool = True,
) -> list[TaskGraph]:
    """Generate ``count`` independent graphs with seeds ``base_seed..+count-1``."""
    return [
        generate_task_graph(
            spec, seed=base_seed + k, assign_windows=assign_windows
        )
        for k in range(count)
    ]
