"""End-to-end deadline selection and slicing (Section 4.2, after [16]).

The paper assigns each input-output task pair an end-to-end deadline so
that the overall laxity ratio of end-to-end deadline to the accumulated
task-graph workload is 1.5, and then distributes it to individual tasks
with the deadline-assignment technique of Jonsson & Shin [16]: each
series of direct successors between an input-output pair receives
*slices* — non-overlapping execution windows — of the pair's end-to-end
deadline, which lets each task be scheduled independently.

Our implementation slices proportionally to longest-path prefixes:

* ``top[i]`` = heaviest path length from any input up to and including
  ``tau_i`` (message costs included when ``include_comm``);
* the absolute deadline of ``tau_i`` is ``D_i = top[i] * scale`` with
  ``scale = E2E / max(top)``, so deadlines grow monotonically along every
  chain with gaps proportional to each link's execution + message time;
* the arrival time is either the latest direct predecessor's deadline
  (``window_mode="contiguous"``: chain windows tile the end-to-end
  deadline) or ``D_i - c_i * scale`` (``window_mode="tight"``: the window
  is exactly the task's own slice, leaving message slices as gaps).

Both modes yield non-overlapping windows along every chain with window
length >= the task's execution time whenever ``scale >= 1``; the
end-to-end deadline is stretched up to the critical-path length when the
requested laxity would make ``scale < 1`` (recorded on the result so
experiments can report the realized laxity).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import DeadlineAssignmentError
from ..model.taskgraph import TaskGraph

__all__ = ["DeadlineAssignment", "end_to_end_deadline", "assign_deadlines"]


@dataclass(frozen=True)
class DeadlineAssignment:
    """Metadata of one slicing pass."""

    graph: TaskGraph
    end_to_end: float
    requested_end_to_end: float
    scale: float

    @property
    def was_stretched(self) -> bool:
        """Whether the requested laxity was below the critical path."""
        return self.end_to_end > self.requested_end_to_end


def end_to_end_deadline(
    graph: TaskGraph,
    laxity_ratio: float = 1.5,
    mode: str = "workload",
    include_comm: bool = True,
    delay: float = 1.0,
) -> float:
    """The shared end-to-end deadline for all input-output pairs.

    ``mode="workload"`` (the paper's wording): laxity ratio times the
    accumulated task-graph workload (the sum of all execution times).
    ``mode="critical-path"``: laxity ratio times the heaviest
    input-to-output path.
    """
    if laxity_ratio <= 0:
        raise DeadlineAssignmentError(
            f"laxity ratio must be positive, got {laxity_ratio}"
        )
    if mode == "workload":
        return laxity_ratio * graph.total_workload
    if mode == "critical-path":
        return laxity_ratio * graph.critical_path_length(include_comm, delay)
    raise DeadlineAssignmentError(f"unknown end-to-end mode: {mode!r}")


def assign_deadlines_detailed(
    graph: TaskGraph,
    laxity_ratio: float = 1.5,
    mode: str = "workload",
    include_comm: bool = True,
    delay: float = 1.0,
    window_mode: str = "contiguous",
) -> DeadlineAssignment:
    """Slice the end-to-end deadline into per-task execution windows.

    Returns a new graph whose tasks carry arrivals (phases) and relative
    deadlines, plus the pass metadata.
    """
    if len(graph) == 0:
        raise DeadlineAssignmentError("cannot assign deadlines on an empty graph")
    if window_mode not in ("contiguous", "tight"):
        raise DeadlineAssignmentError(
            f"window_mode must be 'contiguous' or 'tight', got {window_mode!r}"
        )
    requested = end_to_end_deadline(graph, laxity_ratio, mode, include_comm, delay)
    top = graph.top_level(include_comm=include_comm, delay=delay)
    longest = max(top.values())
    e2e = max(requested, longest)
    scale = e2e / longest

    deadlines = {name: top[name] * scale for name in graph.task_names}
    replacements = {}
    for name in graph.task_names:
        task = graph.task(name)
        d = deadlines[name]
        if window_mode == "tight":
            a = d - task.wcet * scale
        else:
            preds = graph.predecessors(name)
            a = max((deadlines[p] for p in preds), default=0.0)
        a = max(0.0, min(a, d - task.wcet))
        replacements[name] = task.with_window(a, d)

    return DeadlineAssignment(
        graph=graph.with_tasks(replacements),
        end_to_end=e2e,
        requested_end_to_end=requested,
        scale=scale,
    )


def assign_deadlines(
    graph: TaskGraph,
    laxity_ratio: float = 1.5,
    mode: str = "workload",
    include_comm: bool = True,
    delay: float = 1.0,
    window_mode: str = "contiguous",
) -> TaskGraph:
    """Convenience wrapper returning just the annotated graph."""
    return assign_deadlines_detailed(
        graph, laxity_ratio, mode, include_comm, delay, window_mode
    ).graph
