"""repro — parametrized branch-and-bound multiprocessor scheduling.

A from-scratch reproduction of

    Jan Jonsson and Kang G. Shin, "A Parametrized Branch-and-Bound
    Strategy for Scheduling Precedence-Constrained Tasks on a
    Multiprocessor System", Proc. ICPP 1997, pp. 158-165.

The library minimizes the maximum task lateness of precedence-
constrained, communication-annotated task graphs on a shared-bus
multiprocessor via a branch-and-bound search parametrized by the
Kohler-Steiglitz 9-tuple ``<B, S, E, F, D, L, U, BR, RB>``.

Quickstart::

    from repro import (
        BnBParameters, solve, generate_task_graph, shared_bus_platform
    )

    graph = generate_task_graph(seed=42)      # Section 4.1 workload
    result = solve(graph, shared_bus_platform(3), BnBParameters())
    print(result.summary())
    print(result.schedule().as_table())

Subpackages:

* :mod:`repro.model` — tasks, channels, task graphs, platforms, schedules;
* :mod:`repro.scheduling` — the non-preemptive list-scheduling operation,
  greedy EDF, and other heuristics;
* :mod:`repro.workload` — the random task-graph generator and the
  deadline-slicing pass;
* :mod:`repro.core` — the parametrized B&B engine and all its rules;
* :mod:`repro.analysis` — metrics and confidence intervals;
* :mod:`repro.experiments` — harnesses regenerating every figure;
* :mod:`repro.io` — JSON and DOT serialization.
"""

from .core import (
    BnBParameters,
    BnBResult,
    BranchAndBound,
    ResourceBounds,
    SolveStatus,
    solve,
)
from .model import (
    Channel,
    Platform,
    Schedule,
    Task,
    TaskGraph,
    compile_problem,
    shared_bus_platform,
)
from .scheduling import edf_schedule
from .workload import WorkloadSpec, assign_deadlines, generate_task_graph

__version__ = "1.0.0"

__all__ = [
    "BnBParameters",
    "BnBResult",
    "BranchAndBound",
    "Channel",
    "Platform",
    "ResourceBounds",
    "Schedule",
    "SolveStatus",
    "Task",
    "TaskGraph",
    "WorkloadSpec",
    "__version__",
    "assign_deadlines",
    "compile_problem",
    "edf_schedule",
    "generate_task_graph",
    "shared_bus_platform",
    "solve",
]
