"""Anytime convergence: the mechanism behind Figure 3(a).

The paper explains LIFO's advantage over LLB by the weak correlation
between an early vertex's bound and the goal costs below it when
minimizing lateness.  The observable consequence is *anytime behaviour*:
with no initial bound, a depth-first search reaches its first complete
schedule after ~n expansions and keeps improving it, while best-first
must expand the whole shallow low-bound frontier before producing any
schedule at all.

This experiment runs both selection rules with ``U = none`` under a
:class:`~repro.core.trace.TraceRecorder` and reports, per system size:

* vertices generated until the *first* incumbent;
* vertices generated until the incumbent is within 5% of the optimum;
* the optimal cost (identical for both, as a cross-check).

The aggregated quantities land in each point's ``extras``; the series'
``mean_vertices`` is, as everywhere, the total searched vertices.
"""

from __future__ import annotations

import math

from ..analysis.aggregate import PointAccumulator, Series
from ..core.engine import BranchAndBound
from ..core.params import BnBParameters
from ..core.resources import ResourceBounds
from ..core.trace import TraceRecorder
from ..core.upper import NoUpperBound
from ..model.compile import compile_problem
from ..model.platform import shared_bus_platform
from ..workload.generator import generate_task_graph
from ..workload.suites import spec_for_profile
from .runner import ExperimentOutput, default_resources

__all__ = ["anytime_convergence"]


def _vertices_within(trace: TraceRecorder, optimum: float, tol: float) -> float:
    """Generated vertices at which the incumbent got within tol of opt."""
    target = optimum + tol * max(1.0, abs(optimum))
    for event in trace.incumbents:
        if event.cost <= target + 1e-12:
            return float(event.generated)
    return math.nan


def anytime_convergence(
    profile: str = "scaled",
    processors=(2, 3),
    num_graphs: int = 15,
    base_seed: int = 0,
    resources: ResourceBounds | None = None,
    tolerance: float = 0.05,
    # Accepted for registry uniformity: runs sequentially, and its
    # per-run telemetry already lands in each point's extras.
    workers: int = 0,
    collect_metrics: bool = False,
) -> ExperimentOutput:
    """LIFO vs LLB convergence speed with no initial upper bound."""
    rb = resources or default_resources(profile)
    spec = spec_for_profile(profile)
    strategies = {
        "BnB S=LIFO U=none": BnBParameters.paper_lifo(
            resources=rb, upper_bound=NoUpperBound()
        ),
        "BnB S=LLB U=none": BnBParameters.paper_llb(
            resources=rb, upper_bound=NoUpperBound()
        ),
    }
    acc: dict[tuple[str, float], PointAccumulator] = {}
    failed_runs = 0
    truncated_runs = 0
    for m in processors:
        platform = shared_bus_platform(m)
        for k in range(num_graphs):
            graph = generate_task_graph(spec, seed=base_seed + k)
            problem = compile_problem(graph, platform)
            for label, params in strategies.items():
                trace = TraceRecorder(max_explore_events=0)
                result = BranchAndBound(params, trace=trace).solve(problem)
                if not result.found_solution:
                    # A capped best-first run may terminate before any
                    # goal vertex exists; it contributes nothing (counted
                    # in the metadata so ensembles stay comparable).
                    failed_runs += 1
                    continue
                if result.stats.truncated or result.stats.time_limit_hit:
                    truncated_runs += 1
                first = (
                    float(trace.incumbents[0].generated)
                    if trace.incumbents
                    else math.nan
                )
                near = _vertices_within(trace, result.best_cost, tolerance)
                cell = acc.setdefault((label, float(m)), PointAccumulator())
                extras = {}
                if not math.isnan(first):
                    extras["to_first_incumbent"] = first
                if not math.isnan(near):
                    extras["to_within_tolerance"] = near
                cell.add(
                    float(result.stats.generated),
                    result.best_cost,
                    **extras,
                )
    series = []
    for label in strategies:
        points = [
            acc[(label, float(m))].freeze(float(m))
            for m in processors
            if (label, float(m)) in acc
        ]
        series.append(Series(label=label, points=tuple(points)))
    return ExperimentOutput(
        name="anytime",
        description=(
            "Anytime convergence of LIFO vs LLB with no initial bound"
        ),
        x_label="processors",
        series=tuple(series),
        metadata={
            "num_graphs": num_graphs,
            "base_seed": base_seed,
            "tolerance": tolerance,
            "truncated_runs": truncated_runs,
            "failed_runs": failed_runs,
            "cells": [(float(m), spec.name, m) for m in processors],
        },
    )
