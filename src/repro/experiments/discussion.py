"""The Section 6 complementary experiments (no figures in the paper).

The paper summarizes four results whose plots were cut for space:

* **Parallelism sweep** — with more parallelism in the task graph, a
  contention-aware lower bound (LB1) helps even more
  (:func:`parallelism_sweep`).
* **CCR sweep** — lower communication-to-computation ratios make the
  lower-bound estimates more accurate, so the B&B converges faster
  (:func:`ccr_sweep`).
* **Upper-bound impact** — seeding with the greedy EDF cost improves
  B&B performance by more than 200% over a naive positive constant
  (:func:`upper_bound_impact`).
* **Memory behaviour** — LLB's scattered access pattern thrashed the
  SPARCstation's virtual memory while LIFO's stack matched LRU paging;
  the modern analogue is peak active-set size, reported by
  :func:`memory_behaviour`.
"""

from __future__ import annotations

from ..core.params import BnBParameters
from ..core.resources import ResourceBounds
from ..core.upper import ConstantUpperBound
from ..workload.suites import ccr_suite, parallelism_suite, spec_for_profile
from .runner import Cell, ExperimentOutput, default_resources, run_experiment

__all__ = [
    "parallelism_sweep",
    "ccr_sweep",
    "upper_bound_impact",
    "memory_behaviour",
]


def parallelism_sweep(
    profile: str = "scaled",
    processors: int = 2,
    num_graphs: int = 20,
    base_seed: int = 0,
    resources: ResourceBounds | None = None,
    workers: int = 0,
    collect_metrics: bool = False,
) -> ExperimentOutput:
    """LB0 vs LB1 across graph shapes of increasing parallelism.

    x is the shape index (0 = deep/narrow ... 2 = shallow/wide).
    Expected shape: the LB0/LB1 vertex ratio grows with parallelism.
    """
    rb = resources or default_resources(profile)
    cells = [
        Cell(x=float(i), spec=spec, processors=processors)
        for i, spec in enumerate(parallelism_suite(profile))
    ]
    strategies = {
        "BnB L=LB0": BnBParameters.paper_lb0(resources=rb),
        "BnB L=LB1": BnBParameters.paper_lb1(resources=rb),
    }
    return run_experiment(
        name="disc-parallelism",
        description="Section 6: lower bounds vs task-graph parallelism",
        x_label="shape (0=deep ... 2=wide)",
        cells=cells,
        strategies=strategies,
        num_graphs=num_graphs,
        base_seed=base_seed,
        workers=workers,
        collect_metrics=collect_metrics,
    )


def ccr_sweep(
    profile: str = "scaled",
    processors: int = 3,
    ccrs=(0.1, 0.5, 1.0, 2.0),
    num_graphs: int = 20,
    base_seed: int = 0,
    resources: ResourceBounds | None = None,
    workers: int = 0,
    collect_metrics: bool = False,
) -> ExperimentOutput:
    """Optimal B&B across communication-to-computation ratios.

    Expected shape: searched vertices grow with CCR (lower CCR => more
    accurate bound estimates => faster convergence).
    """
    rb = resources or default_resources(profile)
    cells = [
        Cell(x=spec.ccr, spec=spec, processors=processors)
        for spec in ccr_suite(profile, ccrs)
    ]
    strategies = {"BnB LIFO/LB1": BnBParameters.paper_default(resources=rb)}
    return run_experiment(
        name="disc-ccr",
        description="Section 6: B&B performance vs CCR",
        x_label="CCR",
        cells=cells,
        strategies=strategies,
        num_graphs=num_graphs,
        base_seed=base_seed,
        workers=workers,
        collect_metrics=collect_metrics,
    )


def upper_bound_impact(
    profile: str = "scaled",
    processors=(2, 3),
    naive_cost: float = 1000.0,
    num_graphs: int = 20,
    base_seed: int = 0,
    resources: ResourceBounds | None = None,
    workers: int = 0,
    collect_metrics: bool = False,
) -> ExperimentOutput:
    """EDF-seeded vs naive-constant initial upper bound.

    The naive provider supplies only a (large) positive cost, no
    schedule, so the search must find its own incumbent before pruning
    can bite.  Expected shape (the paper's ">200% improvement"): the
    EDF-seeded search generates several times fewer vertices.  The
    effect is dramatic under best-first selection — LIFO dives to a
    self-found incumbent quickly, while LLB wades through the whole
    sub-incumbent frontier — so both selection rules are included.
    """
    rb = resources or default_resources(profile)
    spec = spec_for_profile(profile)
    cells = [Cell(x=float(m), spec=spec, processors=m) for m in processors]
    strategies = {
        "BnB U=EDF": BnBParameters.paper_default(resources=rb),
        "BnB U=naive": BnBParameters.paper_default(
            resources=rb, upper_bound=ConstantUpperBound(naive_cost)
        ),
        "BnB LLB U=EDF": BnBParameters.paper_llb(resources=rb),
        "BnB LLB U=naive": BnBParameters.paper_llb(
            resources=rb, upper_bound=ConstantUpperBound(naive_cost)
        ),
    }
    return run_experiment(
        name="disc-upper-bound",
        description="Section 6: impact of the initial upper bound",
        x_label="processors",
        cells=cells,
        strategies=strategies,
        num_graphs=num_graphs,
        base_seed=base_seed,
        include_edf=False,
        workers=workers,
        collect_metrics=collect_metrics,
    )


def memory_behaviour(
    profile: str = "scaled",
    processors=(2, 3),
    num_graphs: int = 20,
    base_seed: int = 0,
    resources: ResourceBounds | None = None,
    workers: int = 0,
    collect_metrics: bool = False,
) -> ExperimentOutput:
    """Peak active-set size under LLB vs LIFO (thrashing proxy).

    The interesting quantity is in each point's ``extras['peak_active']``.
    """
    rb = resources or default_resources(profile)
    spec = spec_for_profile(profile)
    cells = [Cell(x=float(m), spec=spec, processors=m) for m in processors]
    strategies = {
        "BnB S=LLB": BnBParameters.paper_llb(resources=rb),
        "BnB S=LIFO": BnBParameters.paper_lifo(resources=rb),
    }
    return run_experiment(
        name="disc-memory",
        description="Section 6: active-set memory footprint by selection rule",
        x_label="processors",
        cells=cells,
        strategies=strategies,
        num_graphs=num_graphs,
        base_seed=base_seed,
        include_edf=False,
        workers=workers,
        collect_metrics=collect_metrics,
    )
