"""The Figure 3 experiments (Section 5).

Each figure is a pair of plots versus system size m in {2, 3, 4}:
average number of searched vertices (log scale in the paper) and
average maximum task lateness, with the greedy EDF algorithm as a
reference in both.

* :func:`fig3a` — effect of the vertex selection rule (LLB vs LIFO);
* :func:`fig3b` — effect of the lower-bound function (LB0 vs LB1);
* :func:`fig3c` — effect of the approximation strategy (DF, BF1,
  BFn @ BR=10%, BFn @ BR=0%).

All three share the fixed parametrization ``E = U/DBAS``, ``U = EDF``,
``F = D = none``, and sweep the free parameter of the figure.  The
``profile`` argument picks the workload scale: ``"paper"`` for the exact
Section 4.1 sizes (12-16 tasks — slow in pure Python), ``"scaled"``
(default) for the shape-preserving laptop-scale variant.
"""

from __future__ import annotations

from ..core.params import BnBParameters
from ..core.resources import ResourceBounds
from ..workload.suites import spec_for_profile
from .runner import Cell, ExperimentOutput, default_resources, run_experiment

__all__ = ["fig3a", "fig3b", "fig3c", "PROCESSORS"]

#: The paper's system sizes.
PROCESSORS = (2, 3, 4)


def _cells(profile: str, processors) -> list[Cell]:
    spec = spec_for_profile(profile)
    return [Cell(x=float(m), spec=spec, processors=m) for m in processors]


def fig3a(
    profile: str = "scaled",
    processors=PROCESSORS,
    num_graphs: int = 20,
    base_seed: int = 0,
    resources: ResourceBounds | None = None,
    workers: int = 0,
    collect_metrics: bool = False,
) -> ExperimentOutput:
    """Figure 3(a): vertex selection rule S in {LLB, LIFO}.

    Expected shape: LIFO generates at least an order of magnitude fewer
    vertices than LLB at every system size (and a far smaller peak
    active set — the paper's virtual-memory thrashing observation),
    while both reach the same optimal lateness, a few percent more
    negative than EDF's.
    """
    rb = resources or default_resources(profile)
    strategies = {
        "BnB S=LLB": BnBParameters.paper_llb(resources=rb),
        "BnB S=LIFO": BnBParameters.paper_lifo(resources=rb),
    }
    return run_experiment(
        name="fig3a",
        description="Effect of vertex selection rule (Figure 3a)",
        x_label="processors",
        cells=_cells(profile, processors),
        strategies=strategies,
        num_graphs=num_graphs,
        base_seed=base_seed,
        workers=workers,
        collect_metrics=collect_metrics,
    )


def fig3b(
    profile: str = "scaled",
    processors=PROCESSORS,
    num_graphs: int = 20,
    base_seed: int = 0,
    resources: ResourceBounds | None = None,
    workers: int = 0,
    collect_metrics: bool = False,
) -> ExperimentOutput:
    """Figure 3(b): lower-bound function L in {LB0, LB1} (S = LIFO).

    Expected shape: LB1 searches about half an order of magnitude fewer
    vertices at m=2; the two curves converge as m grows and the
    contention term stops binding.  Lateness is identical (both are
    exact searches).
    """
    rb = resources or default_resources(profile)
    strategies = {
        "BnB L=LB0": BnBParameters.paper_lb0(resources=rb),
        "BnB L=LB1": BnBParameters.paper_lb1(resources=rb),
    }
    return run_experiment(
        name="fig3b",
        description="Effect of lower-bound function (Figure 3b)",
        x_label="processors",
        cells=_cells(profile, processors),
        strategies=strategies,
        num_graphs=num_graphs,
        base_seed=base_seed,
        workers=workers,
        collect_metrics=collect_metrics,
    )


def fig3c(
    profile: str = "scaled",
    processors=PROCESSORS,
    num_graphs: int = 20,
    base_seed: int = 0,
    resources: ResourceBounds | None = None,
    workers: int = 0,
    collect_metrics: bool = False,
) -> ExperimentOutput:
    """Figure 3(c): approximation strategies (S = LIFO, L = LB1).

    Expected shape: the approximate single-task rules (DF, BF1) search
    over an order of magnitude fewer vertices than the optimal BFn; DF
    is cheapest but pays with the worst lateness (it can fall below the
    EDF reference at m=2); BFn with BR=10% saves up to ~2x vertices over
    BR=0% at near-optimal lateness; all lateness curves converge toward
    the optimal as m grows.
    """
    rb = resources or default_resources(profile)
    strategies = {
        "BnB B=DF": BnBParameters.approximate_df(resources=rb),
        "BnB B=BF1": BnBParameters.approximate_bf1(resources=rb),
        "BnB BR=10%": BnBParameters.near_optimal(0.10, resources=rb),
        "BnB BR=0%": BnBParameters.paper_default(resources=rb),
    }
    return run_experiment(
        name="fig3c",
        description="Effect of approximation strategy (Figure 3c)",
        x_label="processors",
        cells=_cells(profile, processors),
        strategies=strategies,
        num_graphs=num_graphs,
        base_seed=base_seed,
        workers=workers,
        collect_metrics=collect_metrics,
    )
