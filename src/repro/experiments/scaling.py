"""Scalability sweep: search effort versus task count.

Not a paper figure, but the paper's framing depends on it: "because the
inherent exponential complexity of the B&B strategy cannot be completely
eliminated, its applicability is in general restricted to small systems"
(Section 1).  This sweep quantifies that restriction for the optimal
configuration: mean searched vertices as the task count grows with the
graph shape held proportional (depth ~ n/2, i.e. the scaled profile's
width-to-depth ratio).
"""

from __future__ import annotations

from ..core.params import BnBParameters
from ..core.resources import ResourceBounds
from ..workload.suites import spec_for_profile
from .runner import Cell, ExperimentOutput, default_resources, run_experiment

__all__ = ["scaling_sweep"]


def scaling_sweep(
    profile: str = "scaled",
    sizes=(6, 8, 10, 12),
    processors: int = 2,
    num_graphs: int = 15,
    base_seed: int = 0,
    resources: ResourceBounds | None = None,
    workers: int = 0,
    collect_metrics: bool = False,
) -> ExperimentOutput:
    """Optimal B&B effort vs. task count at fixed shape and platform."""
    rb = resources or default_resources(profile)
    base = spec_for_profile(profile)
    cells = []
    for n in sizes:
        depth_lo = max(2, n // 2)
        spec = base.evolve(
            name=f"{base.name}-n{n}",
            num_tasks=(n, n),
            depth=(depth_lo, depth_lo + 1),
        )
        cells.append(Cell(x=float(n), spec=spec, processors=processors))
    strategies = {
        "BnB optimal": BnBParameters.paper_default(resources=rb),
        "BnB B=DF": BnBParameters.approximate_df(resources=rb),
    }
    return run_experiment(
        name="scaling",
        description="Search effort vs task count (optimal and approximate)",
        x_label="tasks",
        cells=cells,
        strategies=strategies,
        num_graphs=num_graphs,
        base_seed=base_seed,
        workers=workers,
        collect_metrics=collect_metrics,
    )
