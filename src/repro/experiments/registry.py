"""Experiment registry: name -> runnable, for the CLI and docs."""

from __future__ import annotations

from typing import Callable

from ..errors import ConfigurationError
from .anytime import anytime_convergence
from .ablations import (
    bound_extension_ablation,
    selection_tiebreak_ablation,
    child_order_ablation,
    dominance_ablation,
    elimination_ablation,
    symmetry_ablation,
)
from .discussion import (
    ccr_sweep,
    memory_behaviour,
    parallelism_sweep,
    upper_bound_impact,
)
from .figures import fig3a, fig3b, fig3c
from .scaling import scaling_sweep
from .runner import ExperimentOutput

__all__ = ["EXPERIMENTS", "get_experiment", "run_by_name"]

#: Every reproducible artifact, keyed by the DESIGN.md experiment id.
EXPERIMENTS: dict[str, Callable[..., ExperimentOutput]] = {
    "fig3a": fig3a,
    "fig3b": fig3b,
    "fig3c": fig3c,
    "disc-parallelism": parallelism_sweep,
    "disc-ccr": ccr_sweep,
    "disc-upper-bound": upper_bound_impact,
    "disc-memory": memory_behaviour,
    "scaling": scaling_sweep,
    "anytime": anytime_convergence,
    "abl-dominance": dominance_ablation,
    "abl-symmetry": symmetry_ablation,
    "abl-child-order": child_order_ablation,
    "abl-lb2": bound_extension_ablation,
    "abl-elimination": elimination_ablation,
    "abl-selection-tiebreak": selection_tiebreak_ablation,
}


def get_experiment(name: str) -> Callable[..., ExperimentOutput]:
    try:
        return EXPERIMENTS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown experiment {name!r}; choose from {sorted(EXPERIMENTS)}"
        ) from None


def run_by_name(name: str, **kwargs) -> ExperimentOutput:
    """Run one registered experiment with keyword overrides."""
    return get_experiment(name)(**kwargs)
