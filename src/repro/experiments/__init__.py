"""Experiment harness reproducing every figure and Section 6 claim."""

from .anytime import anytime_convergence
from .ablations import (
    bound_extension_ablation,
    selection_tiebreak_ablation,
    child_order_ablation,
    dominance_ablation,
    elimination_ablation,
    symmetry_ablation,
)
from .discussion import (
    ccr_sweep,
    memory_behaviour,
    parallelism_sweep,
    upper_bound_impact,
)
from .figures import PROCESSORS, fig3a, fig3b, fig3c
from .registry import EXPERIMENTS, get_experiment, run_by_name
from .scaling import scaling_sweep
from .report import format_ratios, format_table, render, series_ratio
from .runner import (
    Cell,
    EDF_LABEL,
    ExperimentOutput,
    default_resources,
    run_experiment,
)

__all__ = [
    "Cell",
    "EDF_LABEL",
    "EXPERIMENTS",
    "ExperimentOutput",
    "PROCESSORS",
    "anytime_convergence",
    "bound_extension_ablation",
    "ccr_sweep",
    "child_order_ablation",
    "default_resources",
    "dominance_ablation",
    "elimination_ablation",
    "fig3a",
    "fig3b",
    "fig3c",
    "format_ratios",
    "format_table",
    "get_experiment",
    "memory_behaviour",
    "parallelism_sweep",
    "render",
    "run_by_name",
    "run_experiment",
    "scaling_sweep",
    "selection_tiebreak_ablation",
    "series_ratio",
    "symmetry_ablation",
    "upper_bound_impact",
]
