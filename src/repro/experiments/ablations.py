"""Design-choice ablations (ours, beyond the paper).

The paper explicitly leaves the dominance rule ``D`` and characteristic
function ``F`` unused and does not discuss child push order or
processor-symmetry breaking.  These ablations quantify each choice on
the same workloads so downstream users know what the knobs are worth:

* :func:`dominance_ablation` — D = none (paper) vs state dominance;
* :func:`symmetry_ablation` — expanding all empty processors vs
  collapsing them (sound on the uniform shared bus);
* :func:`child_order_ablation` — generation order (paper) vs pushing
  the most promising child last (explored first under LIFO);
* :func:`bound_extension_ablation` — LB1 (paper) vs the processor-aware
  LB2;
* :func:`elimination_ablation` — U/DBAS vs no elimination at all
  (tiny workloads only: this one is exponential by construction);
* :func:`selection_tiebreak_ablation` — plain LLB vs our depth-biased
  LLB-D vs LIFO: how much of the LLB penalty is just tie ordering.
"""

from __future__ import annotations

from ..core.bounds import LB2
from ..core.selection import DepthBiasedLLBSelection
from ..core.dominance import StateDominance
from ..core.elimination import NoElimination
from ..core.params import BnBParameters
from ..core.resources import ResourceBounds
from ..workload.suites import spec_for_profile
from .runner import Cell, ExperimentOutput, default_resources, run_experiment

__all__ = [
    "dominance_ablation",
    "selection_tiebreak_ablation",
    "symmetry_ablation",
    "child_order_ablation",
    "bound_extension_ablation",
    "elimination_ablation",
]


def _run(
    name: str,
    description: str,
    strategies,
    profile: str,
    processors,
    num_graphs: int,
    base_seed: int,
    workers: int = 0,
    collect_metrics: bool = False,
) -> ExperimentOutput:
    spec = spec_for_profile(profile)
    cells = [Cell(x=float(m), spec=spec, processors=m) for m in processors]
    return run_experiment(
        name=name,
        description=description,
        x_label="processors",
        cells=cells,
        strategies=strategies,
        num_graphs=num_graphs,
        base_seed=base_seed,
        include_edf=False,
        workers=workers,
        collect_metrics=collect_metrics,
    )


def dominance_ablation(
    profile: str = "scaled",
    processors=(2, 3),
    num_graphs: int = 15,
    base_seed: int = 0,
    resources: ResourceBounds | None = None,
    workers: int = 0,
    collect_metrics: bool = False,
) -> ExperimentOutput:
    rb = resources or default_resources(profile)
    return _run(
        "abl-dominance",
        "Ablation: dominance rule D off (paper) vs state dominance",
        {
            "D=none": BnBParameters.paper_default(resources=rb),
            "D=state": BnBParameters.paper_default(
                resources=rb, dominance=StateDominance()
            ),
        },
        profile,
        processors,
        num_graphs,
        base_seed,
        workers,
        collect_metrics,
    )


def symmetry_ablation(
    profile: str = "scaled",
    processors=(2, 3, 4),
    num_graphs: int = 15,
    base_seed: int = 0,
    resources: ResourceBounds | None = None,
    workers: int = 0,
    collect_metrics: bool = False,
) -> ExperimentOutput:
    rb = resources or default_resources(profile)
    return _run(
        "abl-symmetry",
        "Ablation: processor-symmetry breaking at branching",
        {
            "sym=off": BnBParameters.paper_default(resources=rb),
            "sym=on": BnBParameters.paper_default(
                resources=rb, break_symmetry=True
            ),
        },
        profile,
        processors,
        num_graphs,
        base_seed,
        workers,
        collect_metrics,
    )


def child_order_ablation(
    profile: str = "scaled",
    processors=(2, 3),
    num_graphs: int = 15,
    base_seed: int = 0,
    resources: ResourceBounds | None = None,
    workers: int = 0,
    collect_metrics: bool = False,
) -> ExperimentOutput:
    rb = resources or default_resources(profile)
    return _run(
        "abl-child-order",
        "Ablation: child push order under LIFO",
        {
            "order=generation": BnBParameters.paper_default(resources=rb),
            "order=best-last": BnBParameters.paper_default(
                resources=rb, child_order="best-last"
            ),
        },
        profile,
        processors,
        num_graphs,
        base_seed,
        workers,
        collect_metrics,
    )


def bound_extension_ablation(
    profile: str = "scaled",
    processors=(2, 3),
    num_graphs: int = 15,
    base_seed: int = 0,
    resources: ResourceBounds | None = None,
    workers: int = 0,
    collect_metrics: bool = False,
) -> ExperimentOutput:
    rb = resources or default_resources(profile)
    return _run(
        "abl-lb2",
        "Ablation: paper's LB1 vs processor-aware LB2",
        {
            "L=LB1": BnBParameters.paper_default(resources=rb),
            "L=LB2": BnBParameters.paper_default(resources=rb, lower_bound=LB2()),
        },
        profile,
        processors,
        num_graphs,
        base_seed,
        workers,
        collect_metrics,
    )


def selection_tiebreak_ablation(
    profile: str = "scaled",
    processors=(2, 3),
    num_graphs: int = 15,
    base_seed: int = 0,
    resources: ResourceBounds | None = None,
    workers: int = 0,
    collect_metrics: bool = False,
) -> ExperimentOutput:
    """LLB vs depth-biased LLB-D vs LIFO.

    Lateness objectives produce large equal-bound plateaus; plain LLB
    wades through them breadth-first (its tie-break is generation
    order).  LLB-D keeps best-first optimality proofs but walks
    plateaus depth-first — quantifying how much of Figure 3(a)'s LLB
    penalty is pure tie ordering.
    """
    rb = resources or default_resources(profile)
    return _run(
        "abl-selection-tiebreak",
        "Ablation: LLB tie-breaking (plain vs depth-biased vs LIFO)",
        {
            "S=LLB": BnBParameters.paper_llb(resources=rb),
            "S=LLB-D": BnBParameters.paper_default(
                resources=rb, selection=DepthBiasedLLBSelection()
            ),
            "S=LIFO": BnBParameters.paper_lifo(resources=rb),
        },
        profile,
        processors,
        num_graphs,
        base_seed,
        workers,
        collect_metrics,
    )


def elimination_ablation(
    profile: str = "tiny",
    processors=(2,),
    num_graphs: int = 10,
    base_seed: int = 0,
    resources: ResourceBounds | None = None,
    workers: int = 0,
    collect_metrics: bool = False,
) -> ExperimentOutput:
    """U/DBAS vs exhaustive enumeration.  Tiny workloads only."""
    rb = resources or default_resources(profile)
    return _run(
        "abl-elimination",
        "Ablation: elimination rule E on/off (exhaustive enumeration)",
        {
            "E=U/DBAS": BnBParameters.paper_default(resources=rb),
            "E=none": BnBParameters.paper_default(
                resources=rb, elimination=NoElimination()
            ),
        },
        profile,
        processors,
        num_graphs,
        base_seed,
        workers,
        collect_metrics,
    )
