"""Generic experiment runner.

An experiment is a grid of *cells* (one per x-axis value), each holding a
workload spec and a processor count.  For every cell the runner generates
``num_graphs`` seeded random task graphs, solves each with every
configured strategy, and aggregates the paper's two performance indices
(searched vertices, maximum task lateness) into plot-ready
:class:`~repro.analysis.aggregate.Series`.

The greedy EDF reference that appears in every plot of the paper is
included as its own series: its lateness is the EDF schedule's cost, and
its "searched vertices" count is the number of scheduling steps ``n``
(EDF examines each task once), which is how a greedy algorithm lands on
the vertex axis of Figure 3.

Replications are embarrassingly parallel; pass ``workers > 1`` to fan
cells out over a process pool.

Pass ``collect_metrics=True`` to attach a fresh
:class:`~repro.obs.MetricsRegistry` to every solve; per-run counter
snapshots are summed per strategy into the output's
``metadata["metrics"]`` (rendered by
:func:`~repro.experiments.report.format_metrics`).

Two replication modes:

* fixed — exactly ``num_graphs`` random graphs per cell (the default;
  what the benchmark suite uses so runs are comparable);
* adaptive — pass a :class:`~repro.analysis.confidence.ConfidenceTarget`
  as ``confidence`` to keep drawing graphs per cell until every
  strategy's searched-vertices mean satisfies the target (the paper's
  rule: 90% confidence within 10% of the mean), bounded by the target's
  ``max_runs``.  Adaptive mode runs sequentially.
"""

from __future__ import annotations

import math
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

from ..analysis.aggregate import PointAccumulator, Series, SeriesPoint
from ..analysis.confidence import ConfidenceTarget
from ..core.engine import BranchAndBound
from ..core.params import BnBParameters
from ..core.resources import ResourceBounds
from ..model.compile import compile_problem
from ..model.platform import shared_bus_platform
from ..obs import MetricsRegistry, Observability
from ..scheduling.edf import edf_schedule
from ..workload.generator import generate_task_graph
from ..workload.spec import WorkloadSpec

__all__ = [
    "Cell",
    "ExperimentOutput",
    "EDF_LABEL",
    "default_resources",
    "resolve_workers",
    "run_experiment",
]


def resolve_workers(workers: int | str) -> int:
    """Normalize a worker-count setting to an integer.

    ``"auto"`` (case-insensitive) means one worker per available CPU;
    integers (or numeric strings) pass through.  ``0``/``1`` select the
    sequential path.
    """
    if isinstance(workers, str):
        if workers.strip().lower() == "auto":
            return os.cpu_count() or 1
        workers = int(workers)
    if workers < 0:
        raise ValueError(f"workers must be >= 0 or 'auto', got {workers}")
    return workers

#: Label of the greedy reference series.
EDF_LABEL = "EDF"


@dataclass(frozen=True)
class Cell:
    """One x-axis point: a workload spec and a platform size."""

    x: float
    spec: WorkloadSpec
    processors: int


@dataclass(frozen=True)
class ExperimentOutput:
    """Aggregated results of one experiment."""

    name: str
    description: str
    x_label: str
    series: tuple[Series, ...]
    metadata: dict = field(default_factory=dict)

    def series_by_label(self, label: str) -> Series:
        for s in self.series:
            if s.label == label:
                return s
        raise KeyError(f"experiment {self.name!r} has no series {label!r}")

    @property
    def labels(self) -> tuple[str, ...]:
        return tuple(s.label for s in self.series)


def default_resources(profile: str = "scaled") -> ResourceBounds:
    """Per-solve caps keeping pure-Python runs tractable.

    The paper's TIMELIMIT was 4 hours per simulation on a SPARCstation;
    the pure-Python equivalent honours a vertex cap instead (vertex
    counts are machine-independent, so capped runs are flagged rather
    than silently skewed).
    """
    if profile == "paper":
        return ResourceBounds(max_vertices=2_000_000, time_limit=60.0)
    if profile == "tiny":
        return ResourceBounds(max_vertices=200_000, time_limit=10.0)
    return ResourceBounds(max_vertices=500_000, time_limit=30.0)


def _solve_cell(args):
    """One (cell, seed) replication: every strategy on one random graph.

    Module-level so process pools can pickle it.  Returns
    ``(x, {label: (vertices, lateness, peak_active, elapsed, truncated,
    metrics_snapshot_or_None)})``; the snapshot is a
    :meth:`~repro.obs.MetricsRegistry.snapshot` dict when
    ``collect_metrics`` is set.
    """
    cell, seed, strategy_items, include_edf, collect_metrics = args
    graph = generate_task_graph(cell.spec, seed=seed)
    problem = compile_problem(graph, shared_bus_platform(cell.processors))
    out: dict[str, tuple] = {}
    if include_edf:
        edf = edf_schedule(problem)
        out[EDF_LABEL] = (
            float(problem.n), edf.max_lateness, 0.0, 0.0, False, None
        )
    for label, params in strategy_items:
        if collect_metrics:
            registry = MetricsRegistry()
            solver = BranchAndBound(params, obs=Observability(metrics=registry))
        else:
            registry = None
            solver = BranchAndBound(params)
        result = solver.solve(problem)
        lateness = (
            result.best_cost if result.found_solution else math.nan
        )
        out[label] = (
            float(result.stats.generated),
            lateness,
            float(result.stats.peak_active),
            result.stats.elapsed,
            result.stats.truncated or result.stats.time_limit_hit,
            registry.snapshot() if registry is not None else None,
        )
    return cell.x, out


def run_experiment(
    name: str,
    description: str,
    x_label: str,
    cells: list[Cell],
    strategies: dict[str, BnBParameters],
    num_graphs: int = 20,
    base_seed: int = 0,
    include_edf: bool = True,
    workers: int | str = 0,
    confidence: ConfidenceTarget | None = None,
    collect_metrics: bool = False,
) -> ExperimentOutput:
    """Run the full grid and aggregate into series.

    ``workers`` may be an integer or ``"auto"`` (one process per CPU);
    values above 1 fan the (cell, seed) jobs out over a process pool.

    With ``collect_metrics`` each solve carries a fresh
    :class:`~repro.obs.MetricsRegistry`; the per-run counter snapshots
    are summed per strategy into ``metadata["metrics"]`` of the output.
    """
    workers = resolve_workers(workers)
    labels = ([EDF_LABEL] if include_edf else []) + list(strategies)
    acc: dict[tuple[str, float], PointAccumulator] = {}
    truncated_runs = 0
    metric_totals: dict[str, dict[str, float]] = {}
    metric_runs: dict[str, int] = {}

    def ingest(x: float, per_label) -> None:
        nonlocal truncated_runs
        for label, row in per_label.items():
            verts, lat, peak, elapsed, truncated, snapshot = row
            cell_acc = acc.setdefault((label, x), PointAccumulator())
            if not math.isnan(lat):
                cell_acc.add(verts, lat, peak_active=peak, elapsed=elapsed)
            if truncated:
                truncated_runs += 1
            if snapshot is not None:
                totals = metric_totals.setdefault(label, {})
                metric_runs[label] = metric_runs.get(label, 0) + 1
                for metric, data in snapshot.items():
                    if data.get("type") == "counter":
                        totals[metric] = (
                            totals.get(metric, 0.0) + data["value"]
                        )

    runs_per_cell: dict[float, int] = {}
    if confidence is not None:
        # Adaptive replication (the paper's CI rule), per cell.
        for cell in cells:
            k = 0
            while k < confidence.max_runs:
                x, per_label = _solve_cell(
                    (cell, base_seed + k, tuple(strategies.items()),
                     include_edf, collect_metrics)
                )
                ingest(x, per_label)
                k += 1
                if k >= confidence.min_runs and all(
                    confidence.satisfied(acc[(label, cell.x)].vertices)
                    for label in labels
                    if (label, cell.x) in acc
                ):
                    break
            runs_per_cell[cell.x] = k
    else:
        jobs = [
            (cell, base_seed + k, tuple(strategies.items()), include_edf,
             collect_metrics)
            for cell in cells
            for k in range(num_graphs)
        ]
        if workers and workers > 1:
            # Aim for ~4 chunks per worker: large enough to amortize
            # pickling of the strategy table, small enough to keep the
            # pool load-balanced when per-graph solve times vary wildly.
            chunksize = max(1, len(jobs) // (workers * 4))
            with ProcessPoolExecutor(max_workers=workers) as pool:
                rows = list(pool.map(_solve_cell, jobs, chunksize=chunksize))
        else:
            rows = [_solve_cell(job) for job in jobs]
        for x, per_label in rows:
            ingest(x, per_label)

    xs = [cell.x for cell in cells]
    series = []
    for label in labels:
        points: list[SeriesPoint] = []
        for x in xs:
            cell_acc = acc.get((label, x))
            if cell_acc is not None and cell_acc.vertices.count:
                points.append(cell_acc.freeze(x))
        series.append(Series(label=label, points=tuple(points)))

    metadata = {
        "num_graphs": (
            num_graphs if confidence is None else runs_per_cell
        ),
        "base_seed": base_seed,
        "truncated_runs": truncated_runs,
        "adaptive": confidence is not None,
        "cells": [
            (c.x, c.spec.name, c.processors) for c in cells
        ],
    }
    if collect_metrics:
        metadata["metrics"] = {
            label: {"runs": metric_runs.get(label, 0), "counters": totals}
            for label, totals in sorted(metric_totals.items())
        }

    return ExperimentOutput(
        name=name,
        description=description,
        x_label=x_label,
        series=tuple(series),
        metadata=metadata,
    )
