"""Plain-text rendering of experiment outputs.

Prints the same rows the paper plots: for each x value, the mean number
of searched vertices (with its 90% CI half-width) and the mean maximum
task lateness (95% CI), one column per strategy — plus ratio summaries
("LIFO searched Nx fewer vertices than LLB") used by EXPERIMENTS.md and
the shape-assertion helpers the regression tests rely on.
"""

from __future__ import annotations

import math

from .runner import ExperimentOutput

__all__ = [
    "format_table",
    "format_ratios",
    "format_metrics",
    "series_ratio",
    "render",
]


def _fmt(value: float, digits: int = 1) -> str:
    if value is None or (isinstance(value, float) and math.isnan(value)):
        return "-"
    if math.isinf(value):
        return "inf"
    if abs(value) >= 10_000:
        return f"{value:.3g}"
    return f"{value:.{digits}f}"


def _table(rows: list[list[str]]) -> str:
    widths = [max(len(r[i]) for r in rows) for i in range(len(rows[0]))]
    out = []
    for idx, row in enumerate(rows):
        out.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
        if idx == 0:
            out.append("  ".join("-" * w for w in widths))
    return "\n".join(out)


def format_table(output: ExperimentOutput) -> str:
    """Both metric blocks as aligned ASCII tables."""
    xs = sorted({p.x for s in output.series for p in s.points})
    blocks = [f"== {output.name}: {output.description}"]
    meta = output.metadata
    blocks.append(
        f"   ({meta.get('num_graphs', '?')} graphs/point, base seed "
        f"{meta.get('base_seed', '?')}, truncated runs: "
        f"{meta.get('truncated_runs', 0)})"
    )
    for metric, attr, ci_attr in (
        ("searched vertices (mean +/- 90% CI)", "mean_vertices", "ci_vertices"),
        ("maximum task lateness (mean +/- 95% CI)", "mean_lateness", "ci_lateness"),
    ):
        rows = [[output.x_label] + [s.label for s in output.series]]
        for x in xs:
            row = [_fmt(x, 1 if x != int(x) else 0)]
            for s in output.series:
                try:
                    p = s.point_at(x)
                except KeyError:
                    row.append("-")
                    continue
                ci = getattr(p, ci_attr)
                ci_txt = "" if math.isinf(ci) else f" ±{_fmt(ci)}"
                row.append(f"{_fmt(getattr(p, attr))}{ci_txt}")
            rows.append(row)
        blocks.append(f"-- {metric}")
        blocks.append(_table(rows))
    return "\n".join(blocks)


def series_ratio(
    output: ExperimentOutput,
    numerator: str,
    denominator: str,
    x: float | None = None,
) -> float:
    """Mean-vertices ratio between two series (at one x or averaged).

    The paper's headline numbers ("more than an order of magnitude") are
    ratios of mean searched-vertex counts; averaging ratios across x
    uses the arithmetic mean of per-x ratios.
    """
    num = output.series_by_label(numerator)
    den = output.series_by_label(denominator)
    xs = [x] if x is not None else sorted(set(num.xs) & set(den.xs))
    ratios = []
    for xv in xs:
        d = den.point_at(xv).mean_vertices
        n = num.point_at(xv).mean_vertices
        if d > 0:
            ratios.append(n / d)
    if not ratios:
        return math.nan
    return sum(ratios) / len(ratios)


def format_ratios(output: ExperimentOutput, reference: str) -> str:
    """One line per strategy: vertex ratio and lateness delta vs reference."""
    ref = output.series_by_label(reference)
    lines = [f"-- ratios vs {reference}"]
    for s in output.series:
        if s.label == reference:
            continue
        common = sorted(set(s.xs) & set(ref.xs))
        if not common:
            continue
        vr = series_ratio(output, s.label, reference)
        lat_deltas = [
            s.point_at(x).mean_lateness - ref.point_at(x).mean_lateness
            for x in common
        ]
        lines.append(
            f"   {s.label}: vertices x{_fmt(vr, 2)} of {reference}; "
            f"lateness delta {_fmt(sum(lat_deltas) / len(lat_deltas), 3)}"
        )
    return "\n".join(lines)


def format_metrics(output: ExperimentOutput) -> str:
    """Aggregated per-strategy counter totals (``collect_metrics`` runs)."""
    metrics = output.metadata.get("metrics") or {}
    lines = ["-- metrics (summed counters across runs)"]
    for label, entry in metrics.items():
        lines.append(f"   {label} ({entry.get('runs', 0)} runs):")
        for name, value in sorted(entry.get("counters", {}).items()):
            lines.append(f"     {name} = {_fmt(value, 0)}")
    return "\n".join(lines)


def render(output: ExperimentOutput, reference: str | None = None) -> str:
    """Full report: tables plus optional ratio and metrics blocks."""
    text = format_table(output)
    if reference is not None and any(
        s.label == reference for s in output.series
    ):
        text += "\n" + format_ratios(output, reference)
    if output.metadata.get("metrics"):
        text += "\n" + format_metrics(output)
    return text
