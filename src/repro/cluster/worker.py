"""The remote worker: connect, handshake, search shards until told to stop.

A :class:`ClusterWorker` is deliberately almost stateless — everything
it knows (problem, parameters, lease duration) arrives in the welcome
frame, and everything it produces goes back as frames.  That makes
workers *elastic*: one can join an hour into a solve, or die without
notice, and the coordinator's lease/retry machinery absorbs both.

Liveness is woven into the search itself: the engine polls its bound
channel every 64 explored vertices, and the cluster channel uses that
hook to (a) send a heartbeat every ``lease/3`` seconds, (b) drain
incoming frames — adopting epoch-valid incumbent bounds mid-search,
dequeuing revoked shards, honouring a stop — and (c) publish local
incumbent improvements back to the coordinator best-effort.  A worker
that hangs stops doing all three, which is exactly what lease expiry
is for.

Fault injection (:class:`~repro.core.parallel.FaultPlan`) is honoured
in-process for the fake-transport test suite: ``crash`` and
``crash-mid`` tear the connection down abruptly, ``hang`` sleeps past
the lease without heartbeats and then *finishes the shard anyway* —
exercising the duplicate-result path after the coordinator reassigned
it.  Real deployments crash with signals; no plan needed.
"""

from __future__ import annotations

import os
import socket
import time

from ..core.checkpoint import StopToken, problem_fingerprint
from ..core.elimination import pruning_threshold
from ..core.engine import BranchAndBound, SolveStatus, SubtreeSpec
from ..errors import ClusterError, TransportClosed
from . import protocol
from .transport import TcpTransport, Transport

__all__ = ["ClusterWorker"]

_INF = float("inf")


class _WorkerDied(Exception):
    """Internal: an injected fault killed this worker."""


class _ClusterBoundChannel:
    """Engine bound channel wired to the coordinator connection.

    ``poll`` piggybacks heartbeats and frame draining on the engine's
    64-vertex cadence; ``publish`` ships improvements upstream
    best-effort (a lost bound frame only costs pruning power — the
    schedule itself travels with the result frame, and an unacked shard
    is re-explored).
    """

    def __init__(self, worker: "ClusterWorker", incumbent: float) -> None:
        self._worker = worker
        self._best = incumbent
        self._polls = 0

    def poll(self) -> float:
        self._polls += 1
        w = self._worker
        if w.poll_delay:
            time.sleep(w.poll_delay)
        w._maybe_heartbeat(self._polls)
        w._drain()
        if w._adopted < self._best:
            self._best = w._adopted
        return self._best

    def publish(self, cost: float) -> bool:
        if cost >= self._best:
            return False
        self._best = cost
        w = self._worker
        try:
            w._conn.send(
                protocol.bound_frame(cost, w._epoch, w._running_shard)
            )
        except TransportClosed:
            pass  # coordinator gone; the search still finishes
        return True


class _CrashMid:
    """Fault-injection channel: die after N polls (in-process analog of
    the parallel driver's ``crash-mid``)."""

    def __init__(self, inner, polls: int) -> None:
        self._inner = inner
        self._left = max(1, polls)

    def poll(self) -> float:
        self._left -= 1
        if self._left <= 0:
            raise _WorkerDied()
        return self._inner.poll()

    def publish(self, cost: float) -> bool:
        return self._inner.publish(cost)


class ClusterWorker:
    """One worker process (or thread, under the fake transport)."""

    def __init__(
        self,
        address: str,
        *,
        transport: Transport | None = None,
        worker_id: str | None = None,
        connect_timeout: float = 30.0,
        fault_plan=None,
        max_shards: int | None = None,
        poll_delay: float = 0.0,
    ) -> None:
        self.address = address
        self.transport = transport if transport is not None else TcpTransport()
        self.worker_id = (
            worker_id
            if worker_id is not None
            else f"{socket.gethostname()}-{os.getpid()}"
        )
        self.connect_timeout = connect_timeout
        self.fault_plan = fault_plan
        #: Stop after this many completed shards (tests: force a
        #: mid-solve leave); None runs until the coordinator says stop.
        self.max_shards = max_shards
        #: Artificial seconds slept per bound-channel poll — a fault
        #: drill knob that stretches shard wall-clock so kill/lease
        #: scenarios land mid-shard deterministically.
        self.poll_delay = poll_delay
        self.shards_done = 0
        self.shards_stale = 0
        self._conn = None
        self._queue: list[dict] = []
        self._finished: set[int] = set()
        self._adopted = _INF
        self._last_bound: tuple[int, float] = (-1, _INF)
        self._epoch = 0
        self._running_shard = -1
        self._stop = False
        self._lease = 10.0
        self._hb_interval = 3.0
        self._last_hb = 0.0
        self._explored_approx = 0
        self._engine_stop: StopToken | None = None

    # -- connection ---------------------------------------------------------

    def _connect(self):
        deadline = time.monotonic() + self.connect_timeout
        while True:
            try:
                return self.transport.connect(self.address)
            except TransportClosed:
                if time.monotonic() >= deadline:
                    raise ClusterError(
                        f"no coordinator at {self.address} within "
                        f"{self.connect_timeout}s"
                    )
                time.sleep(0.2)

    def _handshake(self):
        self._conn.send(protocol.hello(self.worker_id))
        frame = self._conn.recv(timeout=self.connect_timeout)
        if frame is None:
            raise ClusterError("handshake timed out waiting for welcome")
        kind = protocol.frame_type(frame)
        if kind == "reject":
            raise ClusterError(f"coordinator rejected us: {frame['reason']}")
        if kind != "welcome":
            raise ClusterError(f"expected welcome, got {kind!r}")
        if frame["proto"] != protocol.PROTOCOL_VERSION:
            raise ClusterError(
                f"protocol version mismatch: coordinator speaks "
                f"{frame['proto']}, we speak {protocol.PROTOCOL_VERSION}"
            )
        problem, params = frame["problem"], frame["params"]
        # The problem recompiled on our side must fingerprint to what
        # the coordinator hashed — a worker can never compute against
        # the wrong (or corrupted) instance.
        ours = problem_fingerprint(problem, params)
        if ours != frame["fingerprint"]:
            raise ClusterError(
                "problem fingerprint mismatch after transfer "
                f"(coordinator {frame['fingerprint'][:12]}…, local {ours[:12]}…)"
            )
        self._lease = float(frame["lease"])
        self._hb_interval = max(0.05, self._lease / 3.0)
        return problem, params, frame["fused"], frame["fingerprint"]

    # -- frame handling -----------------------------------------------------

    def _handle(self, frame: dict) -> None:
        kind = protocol.frame_type(frame)
        if kind == "shard":
            if frame["shard"] in self._finished:
                return  # duplicate delivery of something already done
            if any(q["shard"] == frame["shard"] for q in self._queue):
                return
            self._queue.append(frame)
        elif kind == "bound":
            epoch, cost = frame["epoch"], frame["cost"]
            best_epoch, best_cost = self._last_bound
            if epoch > best_epoch:
                self._last_bound = (epoch, cost)
            elif epoch == best_epoch and cost < best_cost:
                self._last_bound = (epoch, cost)
            if epoch >= self._epoch and cost < self._adopted:
                self._adopted = cost
        elif kind == "revoke":
            self._queue = [
                q for q in self._queue if q["shard"] != frame["shard"]
            ]
        elif kind == "stop":
            self._stop = True
            if self._engine_stop is not None:
                self._engine_stop.set("coordinator stop")

    def _drain(self) -> None:
        try:
            while self._conn.poll():
                frame = self._conn.recv(timeout=0.0)
                if frame is None:
                    break
                self._handle(frame)
        except TransportClosed:
            raise _WorkerDied() from None

    def _maybe_heartbeat(self, polls: int = 0) -> None:
        now = time.monotonic()
        if now - self._last_hb < self._hb_interval:
            return
        self._last_hb = now
        self._explored_approx = polls * 64
        try:
            self._conn.send(
                protocol.heartbeat(
                    self._running_shard, self._explored_approx, 0.0
                )
            )
        except TransportClosed:
            raise _WorkerDied() from None

    # -- the shard loop -----------------------------------------------------

    def run(self) -> int:
        """Serve shards until stop/EOF; returns shards completed."""
        self._conn = self._connect()
        try:
            problem, params, fused, fingerprint = self._handshake()
            self._serve(problem, params, fused, fingerprint)
        except (_WorkerDied, TransportClosed):
            pass  # injected death or coordinator gone: just exit
        finally:
            try:
                self._conn.close()
            except Exception:
                pass
        return self.shards_done

    def _serve(self, problem, params, fused, fingerprint) -> None:
        elim = params.elimination
        engine = BranchAndBound(params, fused=fused)
        while not self._stop:
            if not self._queue:
                self._maybe_heartbeat()
                frame = self._conn.recv(timeout=self._hb_interval)
                if frame is not None:
                    self._handle(frame)
                continue
            job = self._queue.pop(0)
            self._run_one(engine, elim, problem, params, job, fingerprint)
            if (
                self.max_shards is not None
                and self.shards_done >= self.max_shards
            ):
                return  # voluntary mid-solve leave (elasticity tests)
        try:
            self._conn.send(protocol.bye())
        except TransportClosed:
            pass

    def _run_one(
        self, engine, elim, problem, params, job: dict, fingerprint: str
    ) -> None:
        index, attempt = job["shard"], job["attempt"]
        if job["fingerprint"] != fingerprint:
            return  # straggler from another solve on a reused address
        fault = (
            self.fault_plan.match(index, attempt)
            if self.fault_plan is not None
            else None
        )
        if fault is not None and fault.kind == "crash":
            raise _WorkerDied()
        if fault is not None and fault.kind == "hang":
            # No heartbeats while asleep — the lease must expire — then
            # finish the shard anyway to exercise duplicate-result dedup.
            time.sleep(fault.hang_seconds)
        self._epoch = job["epoch"]
        self._running_shard = index
        # Frames that arrived while idle count iff their epoch is valid
        # for this dispatch.
        bound_epoch, bound_cost = self._last_bound
        self._adopted = bound_cost if bound_epoch >= self._epoch else _INF
        incumbent = min(job["incumbent"], self._adopted)
        try:
            if elim.should_prune(
                job["lb"], pruning_threshold(incumbent, params.inaccuracy)
            ):
                self._finished.add(index)
                self.shards_stale += 1
                self._conn.send(protocol.stale_frame(index, fingerprint))
                return
            channel = _ClusterBoundChannel(self, incumbent)
            if fault is not None and fault.kind == "crash-mid":
                channel = _CrashMid(channel, fault.after_polls)
            self._engine_stop = StopToken()
            result = engine.solve(
                problem,
                subtree=SubtreeSpec(
                    job["state"], job["lb"], incumbent, job["budget"]
                ),
                bound_channel=channel,
                stop=self._engine_stop,
            )
            if self._stop:
                return  # coordinator no longer wants results
            self._finished.add(index)
            self.shards_done += 1
            self._conn.send(
                protocol.result_frame(
                    index,
                    attempt,
                    result.stats,
                    result.best_cost if result.proc_of is not None else _INF,
                    result.proc_of,
                    result.start,
                    result.status is SolveStatus.TARGET_REACHED,
                    fingerprint,
                )
            )
        except TransportClosed:
            raise _WorkerDied() from None
        finally:
            self._running_shard = -1
            self._engine_stop = None
