"""The cluster coordinator: shallow collect, dispatch, survive.

:class:`ClusterCoordinator` is the networked generalization of the
throughput supervisor in :mod:`repro.core.parallel`: the same shallow
:class:`~repro.core.shards.FrontierCollector` pass decomposes the tree,
the same :class:`~repro.core.shards.RetryQueue` re-queues shards whose
worker died (capped exponential backoff with decorrelated jitter) and
quarantines poison shards so the run ends TRUNCATED instead of falsely
OPTIMAL.  What is new is everything a network demands:

* **Leases, not pipes.**  Workers prove liveness by sending frames;
  a silent worker's lease expires and its shards go back to the queue.
  A lease is the PR 5 heartbeat watchdog made symmetric — the monotonic
  clock on the coordinator is the only clock that matters.
* **Safe incumbent broadcast.**  The broadcast bound is the CAS-min of
  every *acknowledged* cost (schedule in hand) and every cost published
  by a shard still in flight.  When a worker dies with published-but-
  unacked improvements, those publishes are dropped, the bound is
  recomputed (it may rise), and the **epoch** is bumped: retries are
  dispatched under the new epoch and ignore stale lower bounds, so a
  duplicated or delayed frame can never prune the very cost the retry
  exists to re-find.  Stale bounds at live workers are harmless — they
  were achievable costs.
* **Elastic membership.**  Workers may join mid-solve (they receive the
  problem in the welcome frame) and leave at any time; randomized work
  stealing re-balances a drained queue by revoking prefetch backlog
  from a random loaded member.  Duplicate results — a stolen shard
  finishing twice, a hung worker waking up — are deduplicated by index;
  the first result counts, identical cost either way.
* **Checkpoint-backed recovery.**  The pending + in-flight frontier is
  periodically written as a PR 5 :class:`~repro.core.checkpoint.SearchCheckpoint`
  (unacknowledged shards conservatively included), so a SIGKILLed
  coordinator resumes to the same optimal cost, re-exploring at most
  what was in flight.
"""

from __future__ import annotations

import math
import random
import time
from dataclasses import dataclass

from ..core.checkpoint import (
    Checkpointer,
    SearchCheckpoint,
    StopToken,
    problem_fingerprint,
)
from ..core.elimination import pruning_threshold
from ..core.engine import BnBResult, BranchAndBound, SolveStatus
from ..core.params import BnBParameters
from ..core.shards import BackoffPolicy, FrontierCollector, RetryQueue, Shard
from ..core.stats import SearchStats
from ..errors import CheckpointError, ClusterError, ConfigurationError, TransportClosed
from ..obs import Observability
from . import protocol
from .membership import Member, MembershipTable
from .transport import TcpTransport, Transport

__all__ = ["ClusterCoordinator", "ClusterReport"]

_INF = math.inf


@dataclass(frozen=True)
class ClusterReport:
    """How a cluster solve went (``ClusterCoordinator.last_report``)."""

    workers: int
    joins: int
    leaves: int
    lease_expiries: int
    steals: int
    shards: int
    shards_stale: int
    shard_retries: int
    quarantined: tuple
    resumed: bool
    checkpoint_writes: int

    def summary(self) -> str:
        extra = ""
        if self.quarantined:
            extra = f" quarantined={len(self.quarantined)}"
        return (
            f"cluster: workers={self.workers} joins={self.joins} "
            f"leaves={self.leaves} lease_expiries={self.lease_expiries} "
            f"steals={self.steals} shards={self.shards} "
            f"stale={self.shards_stale} retries={self.shard_retries}"
            f"{extra}"
        )


class _Loop:
    """Mutable state of one coordinator event loop (solve-scoped)."""

    def __init__(self) -> None:
        self.completed: set[int] = set()
        self.stale: set[int] = set()
        self.published: dict[int, float] = {}
        self.epoch = 0
        self.broadcast = _INF
        self.target = False
        self.interrupted = False
        self.halt = False
        self.steals = 0
        self.shard_retries = 0
        self.quarantined: list[int] = []
        self.handshakes: list[tuple] = []  # (conn, deadline)


class ClusterCoordinator:
    """Owns the solve; dispatches frontier shards to remote workers."""

    def __init__(
        self,
        params: BnBParameters | None = None,
        *,
        bind: str = "127.0.0.1:0",
        transport: Transport | None = None,
        split_depth: int = 2,
        fused: bool | None = None,
        lease: float = 10.0,
        min_workers: int = 1,
        worker_timeout: float = 60.0,
        prefetch: int = 2,
        max_shard_attempts: int = 3,
        retry_backoff: float = 0.05,
        backoff_rng: random.Random | None = None,
        steal: bool = True,
        steal_rng: random.Random | None = None,
        checkpoint_path: str | None = None,
        checkpoint_every: float = 5.0,
        resume: SearchCheckpoint | None = None,
        obs: Observability | None = None,
        stop: StopToken | None = None,
    ) -> None:
        if split_depth < 1:
            raise ConfigurationError(f"split_depth must be >= 1, got {split_depth}")
        if lease <= 0:
            raise ConfigurationError(f"lease must be > 0, got {lease}")
        if min_workers < 1:
            raise ConfigurationError(f"min_workers must be >= 1, got {min_workers}")
        if prefetch < 1:
            raise ConfigurationError(f"prefetch must be >= 1, got {prefetch}")
        if max_shard_attempts < 1:
            raise ConfigurationError(
                f"max_shard_attempts must be >= 1, got {max_shard_attempts}"
            )
        self.params = params or BnBParameters()
        self.bind = bind
        self.transport = transport if transport is not None else TcpTransport()
        self.split_depth = split_depth
        self.fused = fused
        self.lease = lease
        self.min_workers = min_workers
        self.worker_timeout = worker_timeout
        self.prefetch = prefetch
        self.max_shard_attempts = max_shard_attempts
        self.retry_backoff = retry_backoff
        self.backoff_rng = backoff_rng
        self.steal = steal
        self._steal_rng = steal_rng if steal_rng is not None else random.Random()
        self.checkpoint_path = checkpoint_path
        self.checkpoint_every = checkpoint_every
        self.resume = resume
        self.obs = obs
        self.stop = stop
        self.last_report: ClusterReport | None = None
        #: The actual listen address (useful with port 0); set by
        #: :meth:`bind_now` or at solve time.
        self.bound_address: str | None = None
        self._listener = None

    def bind_now(self) -> str:
        """Bind the listen address immediately (idempotent).

        ``solve`` binds lazily after the shallow collect; the CLI calls
        this first so it can print the actual port (``--bind host:0``)
        before workers need it — early connections queue in the listen
        backlog until the dispatch loop starts accepting.
        """
        if self._listener is None:
            self._listener = self.transport.listen(self.bind)
            self.bound_address = self._listener.address
        return self.bound_address

    # ------------------------------------------------------------------

    def solve(self, problem) -> BnBResult:
        t0 = time.perf_counter()
        params = self.params
        fingerprint = problem_fingerprint(problem, params)
        merged = SearchStats()
        elapsed_base = 0.0
        resumed = self.resume is not None

        if resumed:
            snap = self.resume
            if snap.fingerprint != fingerprint:
                raise CheckpointError(
                    "checkpoint does not match this problem/parametrization "
                    f"(snapshot fingerprint {snap.fingerprint[:12]}…, "
                    f"expected {fingerprint[:12]}…)"
                )
            merged = SearchStats.from_dict(snap.stats)
            elapsed_base = merged.elapsed
            best_cost = snap.found_cost
            best_proc = snap.best_proc
            best_start = snap.best_start
            incumbent_source = snap.incumbent_source
            initial_ub = snap.initial_upper_bound
            incumbent0 = snap.incumbent_cost
            shards = [
                Shard(int(seq), state, lb, incumbent0, _INF)
                for state, lb, seq in snap.frontier
            ]
            self._ckpt_base_version = snap.version + 1
        else:
            collector = FrontierCollector(self.split_depth, problem, params)
            engine = BranchAndBound(params, obs=self.obs, fused=self.fused)
            shallow = engine.solve(problem, dispatcher=collector)
            shards = collector.shards
            if not shards or shallow.status is SolveStatus.TARGET_REACHED:
                self.last_report = ClusterReport(
                    0, 0, 0, 0, 0, len(shards), 0, 0, (), False, 0
                )
                return shallow
            best_cost = shallow.best_cost
            best_proc = shallow.proc_of
            best_start = shallow.start
            incumbent_source = shallow.incumbent_source
            initial_ub = shallow.initial_upper_bound
            incumbent0 = min(shallow.best_cost, shallow.initial_upper_bound)
            merged.absorb(shallow.stats)
            self._ckpt_base_version = 0

        elim = params.elimination
        threshold0 = pruning_threshold(incumbent0, params.inaccuracy)
        live = [
            s for s in shards if not elim.should_prune(s.lower_bound, threshold0)
        ]
        merged.pruned_active += len(shards) - len(live)
        budget = params.resources.max_vertices - merged.generated

        members = MembershipTable()
        loop = _Loop()
        pending = RetryQueue(
            max_attempts=self.max_shard_attempts,
            backoff=BackoffPolicy(
                base=self.retry_backoff,
                rng=self.backoff_rng
                if self.backoff_rng is not None
                else random.Random(),
            ),
        )

        if live and budget > 0:
            outcome = self._run(
                problem, fingerprint, live, budget, incumbent0,
                (best_cost, best_proc, best_start),
                merged, elapsed_base, t0, members, loop, pending, resumed,
            )
            best_cost, best_proc, best_start = outcome
        elif budget <= 0:
            merged.truncated = True

        if loop.quarantined or (pending and not loop.target):
            merged.truncated = True
        if loop.interrupted:
            merged.interrupted = True
        merged.elapsed = elapsed_base + (time.perf_counter() - t0)

        found = best_proc is not None
        status = BranchAndBound._status(params, merged, loop.target, found)
        monitor = self.obs.live if self.obs is not None else None
        if monitor is not None:
            monitor.bus.update(
                phase="done",
                result_status=status.value,
                incumbent=best_cost if found else None,
                explored=merged.explored,
                generated=merged.generated,
                elapsed=round(merged.elapsed, 3),
            )
            monitor.bus.record_event(
                "cluster_done",
                {"status": status.value, "workers": members.joins},
            )
        self.last_report = ClusterReport(
            workers=members.joins,
            joins=members.joins,
            leaves=members.leaves,
            lease_expiries=members.lease_expiries,
            steals=loop.steals,
            shards=len(shards),
            shards_stale=(len(shards) - len(live)) + len(loop.stale),
            shard_retries=loop.shard_retries,
            quarantined=tuple(loop.quarantined),
            resumed=resumed,
            checkpoint_writes=getattr(self, "_ckpt_writes", 0),
        )
        return BnBResult(
            problem=problem,
            params=params,
            status=status,
            best_cost=best_cost if found else _INF,
            proc_of=best_proc,
            start=best_start,
            incumbent_source=(
                "search"
                if found and best_cost < initial_ub
                else incumbent_source
            ),
            initial_upper_bound=initial_ub,
            stats=merged,
        )

    # ------------------------------------------------------------------

    def _run(
        self, problem, fingerprint, live, budget, incumbent0, best,
        merged, elapsed_base, t0, members: MembershipTable, loop: _Loop,
        pending: RetryQueue, resumed: bool,
    ):
        """The event loop; returns the final (cost, proc, start)."""
        params = self.params
        best_cost, best_proc, best_start = best
        acked_cost = best_cost if best_proc is not None else _INF
        loop.broadcast = min(incumbent0, acked_cost)
        remaining = budget
        for s in live:
            pending.add(s)
        total = len(live)

        user_sink = self.obs.sink if self.obs is not None else None
        monitor = self.obs.live if self.obs is not None else None
        progress = self.obs.progress if self.obs is not None else None
        sink = (
            user_sink if monitor is None else monitor.compose_sink(user_sink)
        )
        metrics = self.obs.metrics if self.obs is not None else None

        def emit(kind, payload):
            if sink is not None and sink.accepts(kind):
                sink.emit(kind, payload)

        def count(name):
            if metrics is not None:
                metrics.counter(name).inc()

        listener = (
            self._listener
            if self._listener is not None
            else self.transport.listen(self.bind)
        )
        self._listener = None  # consumed; a later solve rebinds
        self.bound_address = listener.address
        checkpointer = None
        self._ckpt_writes = 0
        if self.checkpoint_path is not None:
            checkpointer = Checkpointer(self.checkpoint_path, every=1)
            checkpointer.version = self._ckpt_base_version
        if resumed:
            emit("resume", {"mode": "cluster", "shards": total})
        next_ckpt = time.monotonic() + self.checkpoint_every
        next_sample = 0.0
        loop_start = time.monotonic()
        memberless_since = loop_start
        ever_joined = False
        member_seq = 0

        def rebroadcast():
            """Push the current broadcast bound to every member."""
            for m in members:
                try:
                    m.conn.send(
                        protocol.bound_frame(loop.broadcast, loop.epoch)
                    )
                except (TransportClosed, ClusterError):
                    pass  # best-effort: a lost bound only costs pruning

        def recompute_broadcast():
            """Safe bound: acked costs + publishes of in-flight shards."""
            floor = min(incumbent0, acked_cost)
            for idx, cost in loop.published.items():
                if cost < floor:
                    floor = cost
            if floor > loop.broadcast:
                # A publisher died unacked: the bound rises, and the
                # epoch fences off its stale broadcasts so the retry
                # can re-find the lost cost.
                loop.epoch += 1
            loop.broadcast = floor

        def drop_member(member: Member, cause: str, *, expired: bool) -> None:
            members.remove(member.worker_id, expired=expired)
            try:
                member.conn.close()
            except Exception:
                pass
            if expired:
                count("bnb_cluster_lease_expired_total")
                emit(
                    "lease_expired",
                    {
                        "worker": member.worker_id,
                        "lease_age": round(member.lease_age(), 3),
                        "shards_held": len(member.assigned),
                    },
                )
            emit(
                "worker_leave",
                {
                    "worker": member.worker_id,
                    "cause": cause,
                    "done": member.done,
                    "shards_requeued": len(member.assigned),
                },
            )
            if monitor is not None:
                monitor.on_worker_down(member.slot, 0)
            now = time.monotonic()
            requeued = False
            for shard, attempt in member.assigned.values():
                if shard.index in loop.completed or shard.index in loop.stale:
                    continue
                if shard.index in loop.published:
                    # Published but never acknowledged: this cost's
                    # schedule died with the worker.
                    del loop.published[shard.index]
                    requeued = True
                delay = pending.requeue(shard, attempt, now)
                if delay is None:
                    loop.quarantined.append(shard.index)
                    emit(
                        "quarantine",
                        {
                            "shard": shard.index,
                            "attempts": attempt,
                            "cause": cause,
                        },
                    )
                else:
                    loop.shard_retries += 1
                    count("bnb_shard_retry_total")
                    emit(
                        "shard_retry",
                        {
                            "shard": shard.index,
                            "attempt": attempt + 1,
                            "delay": round(delay, 4),
                            "cause": cause,
                        },
                    )
            member.assigned.clear()
            if requeued:
                recompute_broadcast()

        def write_snapshot(final: bool = False) -> None:
            if checkpointer is None:
                return
            frontier = [
                (s.state, s.lower_bound, s.index)
                for s, _attempt, _eligible in pending
            ]
            for m in members:
                for shard, _attempt in m.assigned.values():
                    if (
                        shard.index not in loop.completed
                        and shard.index not in loop.stale
                    ):
                        frontier.append(
                            (shard.state, shard.lower_bound, shard.index)
                        )
            stats_now = merged.as_dict()
            stats_now["elapsed"] = elapsed_base + (time.perf_counter() - t0)
            snapshot = SearchCheckpoint(
                fingerprint=fingerprint,
                frontier=frontier,
                seq=(max((idx for _s, _lb, idx in frontier), default=0) + 1),
                incumbent_cost=min(incumbent0, acked_cost),
                found_cost=acked_cost,
                best_proc=best_proc,
                best_start=best_start,
                incumbent_source=(
                    "search" if best_proc is not None else "initial-upper-bound"
                ),
                initial_upper_bound=incumbent0,
                stats=stats_now,
            )
            checkpointer.write(snapshot)
            self._ckpt_writes = checkpointer.writes
            emit(
                "checkpoint",
                {
                    "mode": "cluster",
                    "path": self.checkpoint_path,
                    "frontier": len(frontier),
                    "final": final,
                },
            )

        def handle_frame(member: Member, frame: dict) -> None:
            nonlocal best_cost, best_proc, best_start, acked_cost, remaining
            member.renew()
            kind = protocol.frame_type(frame)
            if kind == "hb":
                member.running = frame["shard"]
                member.explored = frame["explored"]
                member.vps = frame["vps"]
                if monitor is not None:
                    monitor.on_cluster_member(
                        member.slot,
                        name=member.worker_id,
                        shard=frame["shard"] if frame["shard"] >= 0 else None,
                        explored=frame["explored"],
                        vps=frame["vps"],
                        lease_age=0.0,
                        done=member.done,
                        retried=member.retried,
                        stolen=member.stolen_from,
                    )
            elif kind == "bound":
                idx, cost = frame["shard"], frame["cost"]
                if idx >= 0 and idx not in loop.completed:
                    prev = loop.published.get(idx, _INF)
                    if cost < prev:
                        loop.published[idx] = cost
                if cost < loop.broadcast:
                    loop.broadcast = cost
                    rebroadcast()
                    if monitor is not None:
                        monitor.bus.record_event(
                            "incumbent",
                            {
                                "cost": cost,
                                "elapsed": round(
                                    time.monotonic() - loop_start, 3
                                ),
                                "source": member.worker_id,
                            },
                        )
            elif kind == "result":
                if frame["fingerprint"] != fingerprint:
                    return  # straggler from another solve
                idx = frame["shard"]
                member.assigned.pop(idx, None)
                if idx in loop.completed or idx in loop.stale:
                    return  # duplicate (steal or woken hang): first wins
                loop.completed.add(idx)
                loop.published.pop(idx, None)
                member.done += 1
                wstats = frame["stats"]
                merged.absorb(wstats)
                remaining -= wstats.generated
                cost = frame["cost"]
                if frame["proc"] is not None and cost < acked_cost:
                    acked_cost = cost
                    if cost < best_cost or best_proc is None:
                        best_cost = cost
                        best_proc = frame["proc"]
                        best_start = frame["start"]
                if frame["proc"] is not None and cost < loop.broadcast:
                    loop.broadcast = cost
                    rebroadcast()
                if frame["target"]:
                    loop.target = True
                    loop.halt = True
                if remaining <= 0:
                    merged.truncated = True
                    loop.halt = True
            elif kind == "stale":
                if frame["fingerprint"] != fingerprint:
                    return
                idx = frame["shard"]
                member.assigned.pop(idx, None)
                if idx in loop.completed or idx in loop.stale:
                    return
                loop.stale.add(idx)
                loop.published.pop(idx, None)
                member.stale += 1
                merged.pruned_active += 1
            elif kind == "bye":
                raise TransportClosed("worker said bye")

        def drain(member: Member) -> bool:
            """Pump a member's frames; False when the member died."""
            try:
                while member.conn.poll():
                    frame = member.conn.recv(timeout=0.0)
                    if frame is None:
                        break
                    handle_frame(member, frame)
            except TransportClosed as exc:
                cause = str(exc) or "connection lost"
                drop_member(member, cause, expired=False)
                return False
            return True

        def accept_new() -> None:
            nonlocal ever_joined, member_seq, memberless_since
            while True:
                try:
                    conn = listener.accept(timeout=0.0)
                except TransportClosed:
                    return
                if conn is None:
                    break
                loop.handshakes.append(
                    (conn, time.monotonic() + 10.0)
                )
            still = []
            for conn, deadline in loop.handshakes:
                done = False
                try:
                    if conn.poll():
                        frame = conn.recv(timeout=0.0)
                        if frame is not None:
                            done = True
                            worker_id = protocol.check_hello(frame)
                            if worker_id in members:
                                # A reconnect under the same id: the old
                                # link is dead, this one supersedes it.
                                drop_member(
                                    members.get(worker_id),
                                    "superseded by reconnect",
                                    expired=False,
                                )
                            conn.send(
                                protocol.welcome(
                                    fingerprint, problem, params,
                                    self.lease, self.fused,
                                )
                            )
                            member = members.add(worker_id, conn)
                            member.slot = member_seq
                            member_seq += 1
                            ever_joined = True
                            emit(
                                "worker_join",
                                {
                                    "worker": worker_id,
                                    "members": len(members),
                                },
                            )
                            count("bnb_cluster_join_total")
                except TransportClosed:
                    done = True
                except ClusterError as exc:
                    done = True
                    try:
                        conn.send(protocol.reject(str(exc)))
                    except (TransportClosed, ClusterError):
                        pass
                    try:
                        conn.close()
                    except Exception:
                        pass
                if not done:
                    if time.monotonic() > deadline:
                        try:
                            conn.close()
                        except Exception:
                            pass
                    else:
                        still.append((conn, deadline))
            loop.handshakes = still

        def dispatch() -> None:
            if loop.halt:
                return
            now = time.monotonic()
            for member in members:
                while len(member.assigned) < self.prefetch:
                    task = pending.pop_eligible(now)
                    if task is None:
                        return
                    shard, attempt = task
                    try:
                        member.conn.send(
                            protocol.shard_frame(
                                shard, attempt, remaining,
                                loop.broadcast, loop.epoch, fingerprint,
                            )
                        )
                    except (TransportClosed, ClusterError):
                        # Give the shard back untouched (the worker
                        # never held it) and bury the member.
                        pending.add(shard, attempt)
                        drop_member(member, "send failed", expired=False)
                        break
                    member.assigned[shard.index] = (shard, attempt)

        def try_steal() -> None:
            if not self.steal or loop.halt or pending:
                return
            idle = [m for m in members if not m.assigned]
            victims = [m for m in members if len(m.assigned) >= 2]
            if not idle or not victims:
                return
            thief = idle[0]
            victim = self._steal_rng.choice(victims)
            idx, (shard, attempt) = list(victim.assigned.items())[-1]
            try:
                thief.conn.send(
                    protocol.shard_frame(
                        shard, attempt, remaining,
                        loop.broadcast, loop.epoch, fingerprint,
                    )
                )
            except (TransportClosed, ClusterError):
                drop_member(thief, "send failed", expired=False)
                return
            del victim.assigned[idx]
            victim.stolen_from += 1
            thief.assigned[idx] = (shard, attempt)
            loop.steals += 1
            count("bnb_cluster_steal_total")
            emit(
                "steal",
                {
                    "shard": idx,
                    "victim": victim.worker_id,
                    "thief": thief.worker_id,
                },
            )
            try:
                victim.conn.send(protocol.revoke(idx))
            except (TransportClosed, ClusterError):
                pass  # revoke is advisory; duplicates dedupe anyway

        try:
            while True:
                accounted = (
                    len(loop.completed)
                    + len(loop.stale)
                    + len(loop.quarantined)
                )
                if accounted >= total or loop.halt:
                    break
                if self.stop is not None and self.stop.is_set():
                    loop.interrupted = True
                    break
                now = time.monotonic()
                accept_new()
                for member in list(members):
                    drain(member)
                for member in members.expired(self.lease):
                    drop_member(member, "lease expired", expired=True)
                if len(members) == 0:
                    if now - memberless_since > self.worker_timeout:
                        if not ever_joined:
                            raise ClusterError(
                                f"no worker joined within "
                                f"{self.worker_timeout}s"
                            )
                        # Every worker is gone and none came back:
                        # truncate rather than spin forever.
                        while True:
                            task = pending.pop_eligible(_INF)
                            if task is None:
                                break
                            loop.quarantined.append(task[0].index)
                            emit(
                                "quarantine",
                                {
                                    "shard": task[0].index,
                                    "attempts": task[1],
                                    "cause": "no workers left",
                                },
                            )
                        break
                else:
                    memberless_since = now
                if len(members) >= self.min_workers or loop.completed:
                    dispatch()
                    try_steal()
                if checkpointer is not None and now >= next_ckpt:
                    next_ckpt = now + self.checkpoint_every
                    write_snapshot()
                if (monitor is not None or progress is not None) and (
                    now >= next_sample
                ):
                    next_sample = now + (
                        monitor.interval
                        if monitor is not None
                        else progress.interval
                    )
                    open_lb = pending.min_lower_bound()
                    for m in members:
                        for shard, _attempt in m.assigned.values():
                            if open_lb is None or shard.lower_bound < open_lb:
                                open_lb = shard.lower_bound
                    inc = loop.broadcast
                    gap = None
                    if open_lb is not None and not math.isinf(inc):
                        gap = max(0.0, inc - open_lb)
                    if monitor is not None:
                        for m in members:
                            monitor.on_cluster_member(
                                m.slot,
                                name=m.worker_id,
                                shard=m.running if m.running >= 0 else None,
                                explored=m.explored,
                                vps=m.vps,
                                lease_age=m.lease_age(),
                                done=m.done,
                                retried=m.retried,
                                stolen=m.stolen_from,
                            )
                        monitor.bus.update(
                            phase="solving",
                            incumbent=None if math.isinf(inc) else inc,
                            open_lower_bound=open_lb,
                            gap=gap,
                            workers_alive=len(members),
                            queue_depth=len(pending),
                            shards_done=len(loop.completed),
                            explored=merged.explored,
                            generated=merged.generated,
                            elapsed=round(
                                elapsed_base + time.perf_counter() - t0, 3
                            ),
                            cluster={
                                "members": len(members),
                                "joins": members.joins,
                                "leaves": members.leaves,
                                "lease_expiries": members.lease_expiries,
                                "steals": loop.steals,
                                "retries": loop.shard_retries,
                            },
                        )
                        _, vps_total = monitor.bus.worker_totals()
                        monitor.bus.add_sample(
                            elapsed_base + time.perf_counter() - t0,
                            gap,
                            vps_total,
                        )
                        monitor.last_gap = gap
                    if progress is not None:
                        progress.maybe_emit(
                            explored=merged.explored,
                            generated=merged.generated,
                            active=len(pending),
                            incumbent=inc,
                            gap=gap,
                            workers_alive=len(members),
                        )
                # The accept timeout doubles as the loop tick.
                conn = listener.accept(timeout=0.005)
                if conn is not None:
                    loop.handshakes.append((conn, time.monotonic() + 10.0))
        finally:
            write_snapshot(final=True)
            for conn, _deadline in loop.handshakes:
                try:
                    conn.close()
                except Exception:
                    pass
            loop.handshakes = []
            for member in members:
                try:
                    member.conn.send(protocol.stop_frame())
                except (TransportClosed, ClusterError):
                    pass
            deadline = time.monotonic() + 1.0
            for member in members:
                try:
                    while time.monotonic() < deadline:
                        frame = member.conn.recv(
                            timeout=max(0.0, deadline - time.monotonic())
                        )
                        if frame is None or protocol.frame_type(frame) == "bye":
                            break
                except (TransportClosed, ClusterError):
                    pass
                try:
                    member.conn.close()
                except Exception:
                    pass
            listener.close()
        return best_cost, best_proc, best_start
