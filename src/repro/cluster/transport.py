"""Transport seam: real TCP sockets, or an in-memory fake with faults.

The coordinator and worker are written against three tiny interfaces —
:class:`Connection` (send/recv/poll/close), :class:`Listener`
(accept/close) and :class:`Transport` (listen/connect) — so the entire
failure matrix is unit-testable without networking:

* :class:`TcpTransport` frames pickled dicts with a 4-byte big-endian
  length prefix over stdlib sockets.  ``recv`` buffers partial reads
  across calls, so a timeout mid-frame never loses stream sync.
* :class:`MemoryTransport` connects endpoints through thread-safe
  in-process queues.  Every frame still takes a pickle round-trip
  (serialization bugs surface in unit tests, not deployments), and a
  per-link :class:`LinkFaults` script can drop, duplicate or delay
  individual frames, or partition the link wholesale.

EOF and broken pipes surface as :class:`~repro.errors.TransportClosed`
everywhere, which the cluster layer treats as a membership event.
"""

from __future__ import annotations

import pickle
import socket
import struct
import threading
import time
from collections import deque
from dataclasses import dataclass, field

from ..errors import ClusterError, TransportClosed

__all__ = [
    "Connection",
    "LinkFaults",
    "Listener",
    "MemoryTransport",
    "TcpTransport",
    "Transport",
    "parse_address",
]

#: Frames larger than this are a protocol bug, not a workload.
MAX_FRAME = 1 << 30


def parse_address(address: str) -> tuple[str, int]:
    """Split ``"host:port"``, defaulting a bare port to localhost."""
    if ":" not in address:
        raise ClusterError(
            f"cluster address must be host:port, got {address!r}"
        )
    host, _, port = address.rpartition(":")
    try:
        return host or "127.0.0.1", int(port)
    except ValueError as exc:
        raise ClusterError(f"bad port in cluster address {address!r}") from exc


class Connection:
    """One bidirectional frame stream."""

    def send(self, frame: dict) -> None:
        raise NotImplementedError

    def recv(self, timeout: float | None = None):
        """Next frame, or None on timeout; TransportClosed on EOF."""
        raise NotImplementedError

    def poll(self) -> bool:
        """Whether a frame is deliverable right now."""
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError


class Listener:
    def accept(self, timeout: float | None = None) -> Connection | None:
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError

    @property
    def address(self) -> str:
        raise NotImplementedError


class Transport:
    def listen(self, address: str) -> Listener:
        raise NotImplementedError

    def connect(self, address: str) -> Connection:
        raise NotImplementedError


# ---------------------------------------------------------------------------
# TCP
# ---------------------------------------------------------------------------


class _TcpConnection(Connection):
    def __init__(self, sock: socket.socket) -> None:
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sock = sock
        self._buf = bytearray()
        self._closed = False
        self._send_lock = threading.Lock()

    def send(self, frame: dict) -> None:
        payload = pickle.dumps(frame, protocol=pickle.HIGHEST_PROTOCOL)
        if len(payload) > MAX_FRAME:
            raise ClusterError(f"frame too large: {len(payload)} bytes")
        try:
            with self._send_lock:
                self._sock.sendall(struct.pack("!I", len(payload)) + payload)
        except OSError as exc:
            raise TransportClosed(f"send failed: {exc}") from exc

    def _frame_ready(self):
        if len(self._buf) < 4:
            return None
        (length,) = struct.unpack_from("!I", self._buf)
        if length > MAX_FRAME:
            raise ClusterError(f"oversized frame announced: {length} bytes")
        if len(self._buf) < 4 + length:
            return None
        payload = bytes(self._buf[4 : 4 + length])
        del self._buf[: 4 + length]
        return pickle.loads(payload)

    def recv(self, timeout: float | None = None):
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            frame = self._frame_ready()
            if frame is not None:
                return frame
            if self._closed:
                raise TransportClosed("connection closed")
            remaining = (
                None if deadline is None else deadline - time.monotonic()
            )
            if remaining is not None and remaining <= 0:
                return None
            self._sock.settimeout(remaining)
            try:
                chunk = self._sock.recv(65536)
            except (socket.timeout, BlockingIOError, InterruptedError):
                return None
            except OSError as exc:
                raise TransportClosed(f"recv failed: {exc}") from exc
            if not chunk:
                raise TransportClosed("peer closed the connection")
            self._buf.extend(chunk)

    def poll(self) -> bool:
        if self._frame_peek():
            return True
        self._sock.settimeout(0.0)
        try:
            chunk = self._sock.recv(65536)
        except (BlockingIOError, socket.timeout, InterruptedError):
            return False
        except OSError as exc:
            raise TransportClosed(f"poll failed: {exc}") from exc
        if not chunk:
            raise TransportClosed("peer closed the connection")
        self._buf.extend(chunk)
        return self._frame_peek()

    def _frame_peek(self) -> bool:
        if len(self._buf) < 4:
            return False
        (length,) = struct.unpack_from("!I", self._buf)
        return len(self._buf) >= 4 + length

    def close(self) -> None:
        self._closed = True
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass


class _TcpListener(Listener):
    def __init__(self, host: str, port: int) -> None:
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        try:
            self._sock.bind((host, port))
        except OSError as exc:
            raise ClusterError(f"cannot bind {host}:{port}: {exc}") from exc
        self._sock.listen(64)

    def accept(self, timeout: float | None = None) -> Connection | None:
        self._sock.settimeout(timeout)
        try:
            conn, _addr = self._sock.accept()
        except (socket.timeout, BlockingIOError, InterruptedError):
            # timeout=0 puts the socket in non-blocking mode, where
            # "nothing pending" is BlockingIOError rather than timeout.
            return None
        except OSError as exc:
            raise TransportClosed(f"listener closed: {exc}") from exc
        return _TcpConnection(conn)

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass

    @property
    def address(self) -> str:
        host, port = self._sock.getsockname()[:2]
        return f"{host}:{port}"


class TcpTransport(Transport):
    """Real sockets; addresses are ``"host:port"`` strings."""

    def listen(self, address: str) -> Listener:
        host, port = parse_address(address)
        return _TcpListener(host, port)

    def connect(self, address: str) -> Connection:
        host, port = parse_address(address)
        try:
            sock = socket.create_connection((host, port), timeout=10.0)
        except OSError as exc:
            raise TransportClosed(
                f"cannot connect to {address}: {exc}"
            ) from exc
        sock.settimeout(None)
        return _TcpConnection(sock)


# ---------------------------------------------------------------------------
# In-memory fake with scripted faults
# ---------------------------------------------------------------------------


@dataclass
class LinkFaults:
    """Per-link fault script for :class:`MemoryTransport` connections.

    ``script(direction, index, frame)`` is consulted for each frame
    (``direction`` is ``"c2w"`` coordinator→worker or ``"w2c"``,
    ``index`` counts that direction's sends) and returns ``"ok"``,
    ``"drop"``, ``"dup"``, or a float delay in seconds.  ``partitioned``
    is a live toggle that silently drops everything in both directions
    — flip it mid-test to sever and heal the link.  Counters record
    what actually fired so tests can assert the fault occurred.
    """

    script: object | None = None
    partitioned: bool = False
    dropped: int = 0
    duplicated: int = 0
    delayed: int = 0

    def decide(self, direction: str, index: int, frame: dict):
        if self.partitioned:
            self.dropped += 1
            return "drop"
        if self.script is None:
            return "ok"
        action = self.script(direction, index, frame)
        if action == "drop":
            self.dropped += 1
        elif action == "dup":
            self.duplicated += 1
        elif isinstance(action, (int, float)) and action > 0:
            self.delayed += 1
        return action


class _MemoryEndpoint(Connection):
    """One end of an in-memory link; peer delivery honors LinkFaults."""

    def __init__(self, direction: str, faults: LinkFaults | None) -> None:
        self._direction = direction  # of frames *sent from* this end
        self._faults = faults
        self._peer: _MemoryEndpoint | None = None
        self._inbox: deque = deque()  # (deliver_at, frame)
        self._cond = threading.Condition()
        self._closed = False
        self._sent = 0

    def send(self, frame: dict) -> None:
        peer = self._peer
        if self._closed or peer is None or peer._closed:
            raise TransportClosed("connection closed")
        # The same fidelity as the wire: catch unpicklable frames here.
        frame = pickle.loads(pickle.dumps(frame, pickle.HIGHEST_PROTOCOL))
        index = self._sent
        self._sent += 1
        action = (
            self._faults.decide(self._direction, index, frame)
            if self._faults is not None
            else "ok"
        )
        if action == "drop":
            return
        delay = float(action) if isinstance(action, (int, float)) else 0.0
        peer._deliver(frame, delay)
        if action == "dup":
            peer._deliver(frame, 0.0)

    def _deliver(self, frame: dict, delay: float) -> None:
        with self._cond:
            self._inbox.append((time.monotonic() + delay, frame))
            self._cond.notify_all()

    def _pop_ready(self):
        now = time.monotonic()
        for _ in range(len(self._inbox)):
            deliver_at, frame = self._inbox.popleft()
            if deliver_at <= now:
                return frame
            self._inbox.append((deliver_at, frame))
        return None

    def recv(self, timeout: float | None = None):
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while True:
                frame = self._pop_ready()
                if frame is not None:
                    return frame
                if self._closed or (
                    self._peer is not None and self._peer._closed
                ):
                    if not self._inbox:
                        raise TransportClosed("peer closed the connection")
                wait = None if deadline is None else deadline - time.monotonic()
                if wait is not None and wait <= 0:
                    return None
                if self._inbox:  # delayed frames: wake when the next lands
                    next_at = min(at for at, _ in self._inbox)
                    dt = max(0.0, next_at - time.monotonic())
                    wait = dt if wait is None else min(wait, dt)
                    wait = max(wait, 1e-4)
                self._cond.wait(timeout=wait if wait is not None else 0.1)

    def poll(self) -> bool:
        with self._cond:
            frame = self._pop_ready()
            if frame is not None:
                self._inbox.appendleft((0.0, frame))
                return True
            if not self._inbox and (
                self._closed
                or (self._peer is not None and self._peer._closed)
            ):
                raise TransportClosed("peer closed the connection")
            return False

    def close(self) -> None:
        with self._cond:
            self._closed = True
            self._cond.notify_all()
        peer = self._peer
        if peer is not None:
            with peer._cond:
                peer._cond.notify_all()


class _MemoryListener(Listener):
    def __init__(self, address: str) -> None:
        self._address = address
        self._backlog: deque = deque()
        self._cond = threading.Condition()
        self._closed = False

    def accept(self, timeout: float | None = None) -> Connection | None:
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while not self._backlog:
                if self._closed:
                    raise TransportClosed("listener closed")
                wait = None if deadline is None else deadline - time.monotonic()
                if wait is not None and wait <= 0:
                    return None
                self._cond.wait(timeout=wait)
            return self._backlog.popleft()

    def _offer(self, conn: Connection) -> None:
        with self._cond:
            if self._closed:
                raise TransportClosed(f"{self._address}: listener closed")
            self._backlog.append(conn)
            self._cond.notify_all()

    def close(self) -> None:
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    @property
    def address(self) -> str:
        return self._address


class MemoryTransport(Transport):
    """In-process transport; share one instance between both sides.

    ``with_faults(faults)`` returns a view on the same address registry
    whose *outgoing connections* carry the given fault script — give
    one worker a lossy link while the rest stay clean.
    """

    def __init__(self) -> None:
        self._listeners: dict[str, _MemoryListener] = {}
        self._lock = threading.Lock()

    def listen(self, address: str) -> Listener:
        with self._lock:
            if address in self._listeners and not self._listeners[address]._closed:
                raise ClusterError(f"address already in use: {address}")
            listener = _MemoryListener(address)
            self._listeners[address] = listener
            return listener

    def connect(self, address: str, faults: LinkFaults | None = None) -> Connection:
        with self._lock:
            listener = self._listeners.get(address)
        if listener is None or listener._closed:
            raise TransportClosed(f"nothing listening on {address}")
        client = _MemoryEndpoint("w2c", faults)
        server = _MemoryEndpoint("c2w", faults)
        client._peer = server
        server._peer = client
        listener._offer(server)
        return client

    def with_faults(self, faults: LinkFaults) -> "Transport":
        return _FaultView(self, faults)


class _FaultView(Transport):
    def __init__(self, inner: MemoryTransport, faults: LinkFaults) -> None:
        self._inner = inner
        self._faults = faults

    def listen(self, address: str) -> Listener:
        return self._inner.listen(address)

    def connect(self, address: str) -> Connection:
        return self._inner.connect(address, faults=self._faults)
