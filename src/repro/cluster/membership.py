"""Lease-based cluster membership, owned by the coordinator.

A worker is a member from the moment its handshake completes until its
lease expires or its connection drops.  The lease is renewed by *any*
frame the worker sends (results and bound publishes prove liveness as
well as heartbeats do), always against the monotonic clock — wall-time
jumps must never expire a healthy worker.  Expiry is the cluster
generalization of the PR 5 heartbeat watchdog: the member's in-flight
and backlog shards go back to the retry queue, and the member is gone;
a hung worker that later wakes finds its connection closed and its
results deduplicated away.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["Member", "MembershipTable"]


@dataclass
class Member:
    """One registered worker and everything dispatched to it."""

    worker_id: str
    conn: object
    joined_at: float
    lease_renewed: float
    #: Telemetry slot (monotone join ordinal) — keys the live monitor's
    #: per-worker row; never reused, so a rejoining worker gets a fresh row.
    slot: int = -1
    #: ``shard_index -> (Shard, attempt)`` in dispatch order; the first
    #: entry is presumed running, the rest are prefetch backlog (and
    #: therefore stealable).
    assigned: dict = field(default_factory=dict)
    #: Shard the worker last reported actively searching (-1: idle).
    running: int = -1
    done: int = 0
    stale: int = 0
    retried: int = 0
    stolen_from: int = 0
    explored: int = 0
    vps: float = 0.0

    def renew(self, now: float | None = None) -> None:
        self.lease_renewed = now if now is not None else time.monotonic()

    def lease_age(self, now: float | None = None) -> float:
        now = now if now is not None else time.monotonic()
        return now - self.lease_renewed

    def backlog(self) -> list:
        """Stealable (shard, attempt) pairs: everything but the head."""
        return list(self.assigned.values())[1:]


class MembershipTable:
    """The coordinator's view of who is alive and what they hold."""

    def __init__(self) -> None:
        self._members: dict[str, Member] = {}
        self.joins = 0
        self.leaves = 0
        self.lease_expiries = 0

    def __len__(self) -> int:
        return len(self._members)

    def __iter__(self):
        return iter(list(self._members.values()))

    def __contains__(self, worker_id: str) -> bool:
        return worker_id in self._members

    def get(self, worker_id: str) -> Member | None:
        return self._members.get(worker_id)

    def add(self, worker_id: str, conn, now: float | None = None) -> Member:
        now = now if now is not None else time.monotonic()
        member = Member(
            worker_id=worker_id, conn=conn, joined_at=now, lease_renewed=now
        )
        self._members[worker_id] = member
        self.joins += 1
        return member

    def remove(self, worker_id: str, *, expired: bool = False) -> Member | None:
        member = self._members.pop(worker_id, None)
        if member is not None:
            self.leaves += 1
            if expired:
                self.lease_expiries += 1
        return member

    def expired(self, lease: float, now: float | None = None) -> list[Member]:
        now = now if now is not None else time.monotonic()
        return [m for m in self._members.values() if m.lease_age(now) > lease]
