"""Wire protocol for the coordinator/worker cluster.

Everything on the wire is a *frame*: a plain dict with a ``"t"`` key
naming its type, pickled and length-prefixed (``!I`` big-endian byte
count) by the TCP transport.  The in-memory transport ships the same
dicts through a pickle round-trip, so the fake-network test suite
exercises exactly the serialization the real sockets do.

Two invariants keep a worker from ever computing against the wrong
instance:

* the **handshake** (``hello``/``welcome``) carries the protocol
  version and the coordinator's :func:`~repro.core.checkpoint.problem_fingerprint`;
  the worker recompiles the shipped problem and refuses to proceed when
  its own fingerprint disagrees (corrupted transfer, version skew);
* every ``shard``/``result``/``stale`` frame repeats the fingerprint,
  so a straggler frame from a previous solve on a reused address is
  discarded instead of polluting the current one.

Incumbent ``bound`` frames additionally carry an **epoch**: the
coordinator bumps it when a worker dies with published-but-unacked
improvements (the only time the safe broadcast bound can move *up*),
and a worker ignores bound frames older than the epoch its current
shard was dispatched under — a duplicated or delayed stale frame can
therefore never re-prune the very cost a retry exists to re-find.
"""

from __future__ import annotations

from ..errors import ClusterError

__all__ = [
    "MAGIC",
    "PROTOCOL_VERSION",
    "check_hello",
    "frame_type",
    "hello",
    "welcome",
    "reject",
    "shard_frame",
    "result_frame",
    "stale_frame",
    "bound_frame",
    "heartbeat",
    "revoke",
    "stop_frame",
    "bye",
]

MAGIC = "repro-cluster"
PROTOCOL_VERSION = 1


def frame_type(frame) -> str:
    """The frame's type tag, raising :class:`ClusterError` on junk."""
    if not isinstance(frame, dict) or "t" not in frame:
        raise ClusterError(f"malformed frame: {type(frame).__name__}")
    return frame["t"]


# -- handshake --------------------------------------------------------------


def hello(worker_id: str) -> dict:
    return {
        "t": "hello",
        "magic": MAGIC,
        "proto": PROTOCOL_VERSION,
        "worker": worker_id,
    }


def welcome(
    fingerprint: str, problem, params, lease: float, fused
) -> dict:
    return {
        "t": "welcome",
        "proto": PROTOCOL_VERSION,
        "fingerprint": fingerprint,
        "problem": problem,
        "params": params,
        "lease": lease,
        "fused": fused,
    }


def reject(reason: str) -> dict:
    return {"t": "reject", "reason": reason}


def check_hello(frame) -> str:
    """Validate a worker's hello; returns its id or raises ClusterError."""
    if frame.get("magic") != MAGIC:
        raise ClusterError(f"not a cluster worker: magic={frame.get('magic')!r}")
    if frame.get("proto") != PROTOCOL_VERSION:
        raise ClusterError(
            f"protocol version mismatch: worker speaks "
            f"{frame.get('proto')!r}, coordinator speaks {PROTOCOL_VERSION}"
        )
    worker = frame.get("worker")
    if not isinstance(worker, str) or not worker:
        raise ClusterError("hello frame carries no worker id")
    return worker


# -- work -------------------------------------------------------------------


def shard_frame(
    shard, attempt: int, budget: float, incumbent: float, epoch: int,
    fingerprint: str,
) -> dict:
    return {
        "t": "shard",
        "shard": shard.index,
        "state": shard.state,
        "lb": shard.lower_bound,
        "attempt": attempt,
        "budget": budget,
        "incumbent": incumbent,
        "epoch": epoch,
        "fingerprint": fingerprint,
    }


def result_frame(
    shard_index: int, attempt: int, stats, cost: float, proc, start,
    target: bool, fingerprint: str,
) -> dict:
    return {
        "t": "result",
        "shard": shard_index,
        "attempt": attempt,
        "stats": stats,
        "cost": cost,
        "proc": proc,
        "start": start,
        "target": target,
        "fingerprint": fingerprint,
    }


def stale_frame(shard_index: int, fingerprint: str) -> dict:
    return {"t": "stale", "shard": shard_index, "fingerprint": fingerprint}


def bound_frame(cost: float, epoch: int, shard_index: int = -1) -> dict:
    """``shard_index`` is the publisher's running shard (worker→coordinator
    provenance); coordinator→worker broadcasts leave it at -1."""
    return {"t": "bound", "cost": cost, "epoch": epoch, "shard": shard_index}


def heartbeat(shard_index: int = -1, explored: int = 0, vps: float = 0.0) -> dict:
    return {"t": "hb", "shard": shard_index, "explored": explored, "vps": vps}


def revoke(shard_index: int) -> dict:
    return {"t": "revoke", "shard": shard_index}


def stop_frame() -> dict:
    return {"t": "stop"}


def bye() -> dict:
    return {"t": "bye"}
