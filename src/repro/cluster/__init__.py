"""Fault-tolerant distributed cluster mode for the B&B engine.

One :class:`ClusterCoordinator` owns a solve; any number of
:class:`ClusterWorker` processes connect over TCP (or the in-memory
:class:`MemoryTransport` in tests), receive the problem in the
handshake, and search frontier shards.  Membership is elastic —
workers join and leave mid-solve, leases expire the silent ones, the
retry queue re-explores whatever they held — and the whole thing is
checkpoint-backed, so a SIGKILLed coordinator resumes to the same
optimal cost.  See ``docs/CLUSTER.md`` for the operational story and
the soundness argument (epoch-fenced incumbent broadcast).
"""

from .coordinator import ClusterCoordinator, ClusterReport
from .membership import Member, MembershipTable
from .protocol import MAGIC, PROTOCOL_VERSION
from .transport import (
    LinkFaults,
    MemoryTransport,
    TcpTransport,
    Transport,
    parse_address,
)
from .worker import ClusterWorker

__all__ = [
    "MAGIC",
    "PROTOCOL_VERSION",
    "ClusterCoordinator",
    "ClusterReport",
    "ClusterWorker",
    "LinkFaults",
    "Member",
    "MembershipTable",
    "MemoryTransport",
    "TcpTransport",
    "Transport",
    "parse_address",
]
