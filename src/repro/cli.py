"""Command-line interface: ``python -m repro`` / the ``repro`` script.

Subcommands
-----------
``generate``
    Generate a random task graph (Section 4.1 parameters) to JSON, STG
    and/or DOT.
``solve``
    Run the parametrized B&B on a task-graph file (JSON or STG); can
    print Gantt charts, simulate the shared bus explicitly, and dump
    the search trace.
``convert``
    Translate between the JSON, STG and DOT graph formats.
``experiment``
    Run any registered experiment (fig3a/fig3b/fig3c, the Section 6
    discussion sweeps, scaling, or an ablation) and print the plot
    tables.
``report``
    Render a JSONL search trace (written by ``solve --trace-jsonl``):
    event inventory, anytime profile, phase table, final stats.
``bench``
    Run the regression-tracked hot-path benchmark suite: fused vs
    reference engine on fixed-seed instances, with golden vertex-count
    checking and a JSON throughput report.
``list``
    List registered experiments.
"""

from __future__ import annotations

import argparse
import sys

from . import __version__
from .core.bounds import LOWER_BOUNDS
from .core.branching import BRANCHING_RULES
from .core.dominance import (
    DOMINANCE_RULES,
    ChainedDominance,
    DominanceRule,
    StateDominance,
)
from .core.checkpoint import (
    Checkpointer,
    StopToken,
    graceful_interrupts,
    load_checkpoint,
)
from .core.engine import BranchAndBound, SolveStatus
from .core.transposition import (
    TT_POLICIES,
    TranspositionDominance,
    find_transposition,
)
from .core.params import ENGINES, BnBParameters
from .core.resources import ResourceBounds
from .core.selection import SELECTION_RULES
from .errors import ConfigurationError, ReproError
from .model.compile import compile_problem
from .experiments.registry import EXPERIMENTS, run_by_name
from .experiments.report import render
from .experiments.runner import EDF_LABEL
from .analysis.gantt import render_gantt
from .core.trace import TraceRecorder
from .obs import (
    JsonlSink,
    LiveMonitor,
    MetricsRegistry,
    MonitorServer,
    Observability,
    PhaseProfiler,
    ProgressReporter,
    load_trace,
    render_trace_report,
    write_flight_dump,
)
from .io.dot import graph_to_dot
from .io.json_io import save_experiment, save_graph, load_graph
from .io.stg import load_stg, save_stg
from .model.bussim import simulate_bus
from .workload.deadline import assign_deadlines
from .model.platform import shared_bus_platform
from .workload.generator import generate_task_graph
from .workload.suites import spec_for_profile

__all__ = ["main", "build_parser"]


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _workers_arg(text: str) -> int | str:
    """Worker count for process pools: an integer or ``auto`` (= CPUs)."""
    if text.strip().lower() == "auto":
        return "auto"
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer or 'auto', got {text!r}"
        ) from None
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return value


def _search_flags() -> argparse.ArgumentParser:
    """Search-shaping flags shared by ``solve`` and the cluster coordinator."""
    p = argparse.ArgumentParser(add_help=False)
    p.add_argument(
        "--laxity", type=float, default=1.5,
        help="laxity ratio used to slice deadlines onto STG inputs "
        "(STG carries none)",
    )
    p.add_argument("--processors", "-m", type=int, default=2)
    p.add_argument(
        "--selection", choices=sorted(SELECTION_RULES), default="LIFO"
    )
    p.add_argument(
        "--frontier-cap", type=_positive_int, default=None, metavar="K",
        help="open-set size cap for --selection ML: best-first while at "
        "most K vertices are open, depth-first drain of the newest above "
        "(default 65536; nothing is dropped, results stay exact)",
    )
    p.add_argument(
        "--branching", choices=sorted(BRANCHING_RULES), default="BFn"
    )
    p.add_argument("--bound", choices=sorted(LOWER_BOUNDS), default="LB1")
    p.add_argument(
        "--dominance", choices=sorted(DOMINANCE_RULES), default="none",
        help="dominance rule D (default none, the paper's choice)",
    )
    p.add_argument(
        "--max-front", type=_positive_int, default=64, metavar="K",
        help="Pareto-front size bound per key for --dominance state "
        "(oldest entry evicted first; default 64)",
    )
    p.add_argument(
        "--transposition", action="store_true",
        help="prune duplicate states via the memory-bounded transposition "
        "table (chains with --dominance when one is set)",
    )
    p.add_argument(
        "--tt-bytes", type=_positive_int, default=16 << 20, metavar="BYTES",
        help="transposition-table memory budget in bytes (default 16 MiB)",
    )
    p.add_argument(
        "--tt-policy", choices=TT_POLICIES, default="depth",
        help="replacement policy once the table fills (default depth: "
        "keep shallow entries, whose subtrees are largest)",
    )
    p.add_argument(
        "--engine", choices=ENGINES, default="object",
        help="search-core implementation: 'array' (struct-of-arrays "
        "arena + compiled chunk driver where eligible), 'array-numpy' "
        "(arena + numpy batch expansion only) or 'object' (default); "
        "results are identical across engines",
    )
    p.add_argument("--br", type=float, default=0.0, help="inaccuracy limit")
    p.add_argument("--time-limit", type=float, default=None)
    p.add_argument("--max-vertices", type=float, default=None)
    p.add_argument(
        "--max-memory-mb", type=float, default=None, metavar="MB",
        help="stop gracefully when resident memory exceeds this many MiB "
        "(anytime result, status 'memory')",
    )
    return p


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Parametrized branch-and-bound multiprocessor scheduling "
            "(reproduction of Jonsson & Shin, ICPP 1997)"
        ),
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a random task graph")
    gen.add_argument("--profile", default="paper", help="workload profile")
    gen.add_argument("--seed", type=int, default=0)
    gen.add_argument("--ccr", type=float, default=None)
    gen.add_argument(
        "--output", "-o", default=None,
        help="output path (.json or .stg by extension)",
    )
    gen.add_argument("--dot", default=None, help="also write a DOT rendering")

    search = _search_flags()
    slv = sub.add_parser(
        "solve", parents=[search],
        help="solve a task-graph file (JSON or STG)",
    )
    slv.add_argument("graph", help="task-graph path (.json or .stg)")
    slv.add_argument(
        "--checkpoint", default=None, metavar="PATH",
        help="periodically write an atomic search snapshot to PATH; a "
        "killed run continues from it with --resume",
    )
    slv.add_argument(
        "--checkpoint-every", type=_positive_int, default=2000, metavar="N",
        help="explored-vertex interval between snapshots (default 2000)",
    )
    slv.add_argument(
        "--resume", default=None, metavar="PATH",
        help="resume a checkpointed search: the graph and the "
        "search-shaping flags must match the original run (fingerprint "
        "checked); resource limits may differ",
    )
    slv.add_argument("--gantt", action="store_true", help="print the schedule")
    slv.add_argument(
        "--chart", action="store_true", help="print an ASCII Gantt chart"
    )
    slv.add_argument(
        "--bus", action="store_true",
        help="simulate the shared bus explicitly and report contention",
    )
    slv.add_argument(
        "--trace-csv", default=None,
        help="write the search's explore log to this CSV file",
    )
    slv.add_argument(
        "--trace-jsonl", default=None,
        help="stream structured search events to this JSON-lines file",
    )
    slv.add_argument(
        "--trace-sample", type=_positive_int, default=1, metavar="N",
        help="record every Nth high-frequency event in the JSONL trace "
        "(explore/prune/goal; default 1 = all)",
    )
    slv.add_argument(
        "--profile", action="store_true",
        help="time the engine's inner-loop phases and print the breakdown",
    )
    slv.add_argument(
        "--metrics-out", default=None,
        help="write a metrics snapshot (.json => JSON, else Prometheus "
        "textfile format)",
    )
    slv.add_argument(
        "--progress", action="store_true",
        help="emit heartbeat progress lines to stderr during the solve",
    )
    slv.add_argument(
        "--serve-status", type=int, nargs="?", const=0, default=None,
        metavar="PORT",
        help="serve a live solve monitor over HTTP on 127.0.0.1 while "
        "the search runs: GET /status (JSON snapshot), /metrics "
        "(Prometheus), /events (SSE), / (dashboard); PORT defaults to "
        "an ephemeral one, printed to stderr",
    )
    slv.add_argument(
        "--flight-recorder", type=_positive_int, default=None, metavar="N",
        help="keep the last N solve events in a crash flight recorder, "
        "dumped to <checkpoint>.flight.json (or repro-flight.json) when "
        "the run is interrupted, hits the memory limit, or crashes",
    )
    slv.add_argument(
        "--workers", type=_workers_arg, default=0,
        help="solve in parallel across this many worker processes "
        "(an integer, or 'auto' for one per CPU; default 0 = in-process)",
    )
    slv.add_argument(
        "--parallel-mode", choices=("deterministic", "throughput"),
        default="deterministic",
        help="deterministic replays the sequential search bit-for-bit; "
        "throughput races shards and guarantees only the optimal cost",
    )
    slv.add_argument(
        "--split-depth", type=_positive_int, default=2, metavar="D",
        help="tree level at which subtrees are sharded to workers "
        "(default 2)",
    )
    slv.add_argument(
        "--cluster", default=None, metavar="HOST:PORT",
        help="solve on a worker cluster: bind a coordinator at this "
        "address and dispatch shards to 'repro cluster worker' processes "
        "that connect to it (tuning knobs live on 'repro cluster "
        "coordinator')",
    )
    slv.set_defaults(
        cluster_lease=10.0,
        cluster_min_workers=1,
        cluster_wait=60.0,
        cluster_prefetch=2,
        cluster_attempts=3,
        cluster_backoff=0.05,
        cluster_steal=True,
        cluster_checkpoint_seconds=5.0,
    )

    clu = sub.add_parser(
        "cluster", help="distributed coordinator/worker cluster mode"
    )
    clu_sub = clu.add_subparsers(dest="role", required=True)
    cco = clu_sub.add_parser(
        "coordinator", parents=[search],
        help="own a solve: bind, dispatch shards, survive worker churn",
    )
    cco.add_argument("graph", help="task-graph path (.json or .stg)")
    cco.add_argument(
        "--bind", dest="cluster", default="127.0.0.1:0", metavar="HOST:PORT",
        help="address to listen on (default 127.0.0.1 with an ephemeral "
        "port; pass an explicit port so workers know where to connect)",
    )
    cco.add_argument(
        "--lease", dest="cluster_lease", type=float, default=10.0,
        metavar="SECONDS",
        help="worker lease: a member silent for longer is expired and "
        "its shards re-queued (default 10)",
    )
    cco.add_argument(
        "--min-workers", dest="cluster_min_workers", type=_positive_int,
        default=1, metavar="N",
        help="hold dispatch until this many workers joined (default 1)",
    )
    cco.add_argument(
        "--worker-timeout", dest="cluster_wait", type=float, default=60.0,
        metavar="SECONDS",
        help="give up when no worker is connected for this long "
        "(no worker ever joined: error; all workers died: TRUNCATED)",
    )
    cco.add_argument(
        "--prefetch", dest="cluster_prefetch", type=_positive_int, default=2,
        metavar="N",
        help="shards buffered per worker beyond the running one "
        "(the backlog is what work-stealing rebalances; default 2)",
    )
    cco.add_argument(
        "--max-shard-attempts", dest="cluster_attempts", type=_positive_int,
        default=3, metavar="N",
        help="attempts before a worker-killing shard is quarantined and "
        "the run reports TRUNCATED (default 3)",
    )
    cco.add_argument(
        "--retry-backoff", dest="cluster_backoff", type=float, default=0.05,
        metavar="SECONDS",
        help="base of the capped exponential retry backoff with "
        "decorrelated jitter (default 0.05)",
    )
    cco.add_argument(
        "--no-steal", dest="cluster_steal", action="store_false",
        help="disable randomized work-stealing from loaded members",
    )
    cco.add_argument(
        "--split-depth", type=_positive_int, default=2, metavar="D",
        help="tree level at which subtrees are sharded (default 2)",
    )
    cco.add_argument(
        "--checkpoint", default=None, metavar="PATH",
        help="periodically snapshot the pending+in-flight frontier; a "
        "killed coordinator continues from it with --resume",
    )
    cco.add_argument(
        "--checkpoint-seconds", dest="cluster_checkpoint_seconds",
        type=float, default=5.0, metavar="SECONDS",
        help="wall-clock interval between cluster snapshots (default 5)",
    )
    cco.add_argument(
        "--resume", default=None, metavar="PATH",
        help="resume a cluster checkpoint (fingerprint checked; unacked "
        "in-flight shards are conservatively re-explored)",
    )
    cco.add_argument(
        "--trace-jsonl", default=None,
        help="stream structured solve events to this JSON-lines file",
    )
    cco.add_argument(
        "--metrics-out", default=None,
        help="write a metrics snapshot (.json => JSON, else Prometheus "
        "textfile format)",
    )
    cco.add_argument(
        "--progress", action="store_true",
        help="emit heartbeat progress lines to stderr during the solve",
    )
    cco.add_argument(
        "--serve-status", type=int, nargs="?", const=0, default=None,
        metavar="PORT",
        help="serve the live monitor over HTTP while the cluster solve "
        "runs (per-worker liveness, lease ages, steal counts)",
    )
    cco.set_defaults(
        workers=0, parallel_mode="deterministic", gantt=False, chart=False,
        bus=False, trace_csv=None, profile=False, checkpoint_every=2000,
        trace_sample=1, flight_recorder=None,
    )
    cwk = clu_sub.add_parser(
        "worker", help="serve shards for a coordinator until told to stop"
    )
    cwk.add_argument("address", metavar="HOST:PORT", help="coordinator address")
    cwk.add_argument(
        "--id", dest="worker_id", default=None,
        help="worker id shown in coordinator telemetry "
        "(default hostname-pid)",
    )
    cwk.add_argument(
        "--max-shards", type=_positive_int, default=None, metavar="N",
        help="leave voluntarily after completing N shards "
        "(elasticity drills; default: serve until stopped)",
    )
    cwk.add_argument(
        "--connect-timeout", type=float, default=30.0, metavar="SECONDS",
        help="keep retrying the initial connect for this long (a worker "
        "may be started before its coordinator; default 30)",
    )
    cwk.add_argument(
        "--drill-slow", dest="poll_delay", type=float, default=0.0,
        metavar="SECONDS",
        help="fault drill: sleep this long on every bound-channel poll, "
        "stretching shard wall-clock so kill/lease scenarios land "
        "mid-shard (default 0 = full speed)",
    )

    cnv = sub.add_parser("convert", help="convert between graph formats")
    cnv.add_argument("input", help="input graph (.json or .stg)")
    cnv.add_argument("output", help="output path (.json, .stg or .dot)")

    exp = sub.add_parser("experiment", help="run a registered experiment")
    exp.add_argument("name", choices=sorted(EXPERIMENTS))
    exp.add_argument("--profile", default="scaled")
    exp.add_argument("--graphs", type=int, default=None, help="graphs per point")
    exp.add_argument("--seed", type=int, default=0)
    exp.add_argument(
        "--workers", type=_workers_arg, default=0,
        help="process-pool size for replications (an integer, or 'auto' "
        "for one worker per CPU)",
    )
    exp.add_argument("--output", "-o", default=None, help="save JSON results")
    exp.add_argument(
        "--metrics", action="store_true",
        help="collect per-solve metrics snapshots into the report",
    )

    rep = sub.add_parser(
        "report", help="render a JSONL search trace written by solve"
    )
    rep.add_argument("trace", help="path to a .jsonl trace file")

    ben = sub.add_parser(
        "bench", help="run the regression-tracked hot-path benchmark suite"
    )
    ben.add_argument(
        "--quick", action="store_true",
        help="CI smoke subset (one instance per preset)",
    )
    ben.add_argument(
        "--repeats", type=_positive_int, default=None,
        help="timing repetitions per configuration (best-of; "
             "default 3, or 1 for the parallel suite)",
    )
    ben.add_argument(
        "--out", "-o", default=None,
        help="write the JSON report to this path (e.g. BENCH_PR2.json)",
    )
    ben.add_argument(
        "--golden", default="benchmarks/golden_counts.json",
        help="golden vertex-count file (default benchmarks/golden_counts.json)",
    )
    ben.add_argument(
        "--baseline", default=None,
        help="pre-PR throughput baseline JSON "
             "(default benchmarks/baseline_pre_pr.json when present)",
    )
    ben.add_argument(
        "--parallel", action="store_true",
        help="run the parallel suite instead: deterministic-replay "
             "parity gates plus throughput-mode timings (BENCH_PR3)",
    )
    ben.add_argument(
        "--transposition", action="store_true",
        help="run the duplicate-detection suite instead: per-cell "
             "vertex-reduction and wall-clock deltas with the "
             "transposition table on vs off, cost-parity gated "
             "(BENCH_PR4)",
    )
    ben.add_argument(
        "--tt-bytes", type=_positive_int, default=64 << 20, metavar="BYTES",
        help="table budget for the transposition suite (default 64 MiB, "
             "sized so the table never fills on the committed cells)",
    )
    ben.add_argument(
        "--tt-policy", choices=TT_POLICIES, default="depth",
        help="replacement policy for the transposition suite",
    )
    ben.add_argument(
        "--split-depth", type=_positive_int, default=2,
        help="frontier split depth for the parallel suite (default 2)",
    )
    ben.add_argument(
        "--array", action="store_true",
        help="run the array-engine suite instead: every cell "
             "quadruple-solved (reference oracle, fused object engine, "
             "numpy batch expander, compiled chunk driver) with all "
             "four parity-gated, plus the ablation speedup geomeans "
             "(BENCH_PR7)",
    )
    ben.add_argument(
        "--target-speedup", type=float, default=3.0,
        help="geomean array-vs-object speedup the --array suite must "
             "reach for a zero exit (default 3.0, the PR contract)",
    )
    ben.add_argument(
        "--dupfree", action="store_true",
        help="run the duplicate-free head-to-head suite instead: "
             "default+TT vs the allocation-ordered tree (plus its "
             "memory-limited variant) on the same exhaustive cells, "
             "cost-parity and zero-duplicate gated (BENCH_PR8)",
    )
    ben.add_argument(
        "--ml-cap", type=_positive_int, default=256, metavar="K",
        help="open-vertex cap for the memory-limited run of the "
             "--dupfree suite (default 256)",
    )
    ben.add_argument(
        "--live", action="store_true",
        help="run the live-monitor overhead suite instead: each cell "
             "bare vs with LiveMonitor attached, gated on a geomean "
             "overhead budget (BENCH_PR6)",
    )
    ben.add_argument(
        "--interval", type=float, default=1.0, metavar="SECONDS",
        help="sampling interval for the live overhead suite (default 1.0)",
    )
    ben.add_argument(
        "--compare", nargs=2, metavar=("OLD.json", "NEW.json"),
        default=None,
        help="diff two committed bench reports instead of running "
             "anything: per-cell wall-clock and vertex ratios, geomean "
             "summary, nonzero exit on regression",
    )
    ben.add_argument(
        "--time-threshold", type=float, default=0.20,
        help="fractional wall-clock increase tolerated per cell by "
             "--compare (default 0.20)",
    )
    ben.add_argument(
        "--vertex-threshold", type=float, default=0.01,
        help="fractional generated-vertex increase tolerated per cell "
             "by --compare (default 0.01; counts are deterministic)",
    )
    ben.add_argument(
        "--strict-cells", action="store_true",
        help="make --compare treat cells present in only one report as "
             "regressions instead of warnings (use when both reports "
             "cover the same suite)",
    )
    ben.add_argument(
        "--check", action="store_true",
        help="fail when vertex counts drift from the golden file",
    )
    ben.add_argument(
        "--update-golden", action="store_true",
        help="rewrite the golden file from this run's counts",
    )

    sub.add_parser("list", help="list registered experiments")
    return parser


def _cmd_generate(args) -> int:
    spec = spec_for_profile(args.profile)
    if args.ccr is not None:
        spec = spec.evolve(ccr=args.ccr)
    graph = generate_task_graph(spec, seed=args.seed)
    print(
        f"generated {graph.name!r}: {len(graph)} tasks, {graph.num_arcs} arcs, "
        f"depth {graph.depth}, width {graph.width}, "
        f"CCR {graph.communication_to_computation_ratio():.2f}"
    )
    if args.output:
        _write_graph(graph, args.output)
        print(f"wrote {args.output}")
    if args.dot:
        with open(args.dot, "w") as fh:
            fh.write(graph_to_dot(graph))
        print(f"wrote {args.dot}")
    return 0


def _read_graph(path: str, laxity: float = 1.5):
    """Load a graph by extension; STG inputs get sliced deadlines."""
    if str(path).endswith(".stg"):
        graph = load_stg(path)
        return assign_deadlines(graph, laxity_ratio=laxity)
    return load_graph(path)


def _write_graph(graph, path: str) -> None:
    if str(path).endswith(".stg"):
        save_stg(graph, path)
    elif str(path).endswith(".dot"):
        with open(path, "w") as fh:
            fh.write(graph_to_dot(graph))
    else:
        save_graph(graph, path)


def _cmd_convert(args) -> int:
    graph = _read_graph(args.input) if args.input.endswith(".stg") else load_graph(args.input)
    _write_graph(graph, args.output)
    print(f"wrote {args.output}")
    return 0


def _build_dominance(args) -> DominanceRule | None:
    """Compose ``--dominance`` / ``--transposition`` into one rule D."""
    name = args.dominance
    use_tt = args.transposition or name == TranspositionDominance.name
    base: DominanceRule | None = None
    if name != "none" and name != TranspositionDominance.name:
        cls = DOMINANCE_RULES[name]
        base = (
            cls(max_front=args.max_front) if cls is StateDominance else cls()
        )
    if not use_tt:
        return base
    tt = TranspositionDominance(
        table_bytes=args.tt_bytes, policy=args.tt_policy
    )
    return tt if base is None else ChainedDominance(tt, base)


def _tt_summary(tel: dict) -> str:
    return (
        f"transposition: duplicates={tel.get('duplicate_pruned', 0)} "
        f"hits={tel.get('tt_hits', 0)} misses={tel.get('tt_misses', 0)} "
        f"inserts={tel.get('tt_inserts', 0)} "
        f"evictions={tel.get('tt_evictions', 0)} "
        f"rejects={tel.get('tt_rejects', 0)} "
        f"collisions={tel.get('tt_collisions', 0)} "
        f"filled={tel.get('tt_filled', 0)}/{tel.get('tt_capacity', 0)}"
    )


def _cmd_solve(args) -> int:
    graph = _read_graph(args.graph, laxity=args.laxity)
    rb_kwargs = {}
    if args.time_limit is not None:
        rb_kwargs["time_limit"] = args.time_limit
    if args.max_vertices is not None:
        rb_kwargs["max_vertices"] = args.max_vertices
    if args.max_memory_mb is not None:
        rb_kwargs["max_memory_bytes"] = args.max_memory_mb * (1 << 20)
    dom_kwargs = {}
    dominance = _build_dominance(args)
    if dominance is not None:
        dom_kwargs["dominance"] = dominance
    if args.selection == "ML":
        selection = SELECTION_RULES["ML"](cap=args.frontier_cap)
    elif args.frontier_cap is not None:
        raise ConfigurationError(
            "--frontier-cap only applies to --selection ML"
        )
    else:
        selection = SELECTION_RULES[args.selection]()
    params = BnBParameters(
        selection=selection,
        branching=BRANCHING_RULES[args.branching](),
        lower_bound=LOWER_BOUNDS[args.bound](),
        inaccuracy=args.br,
        resources=ResourceBounds(**rb_kwargs),
        engine=args.engine,
        **dom_kwargs,
    )
    if args.trace_csv and args.workers:
        print(
            "note: --trace-csv records the in-process search only; "
            "ignored with --workers (use --trace-jsonl instead)",
            file=sys.stderr,
        )
        args.trace_csv = None
    trace = TraceRecorder() if args.trace_csv else None
    serving = args.serve_status is not None
    live = (
        LiveMonitor(ring_size=args.flight_recorder or 256)
        if serving or args.flight_recorder
        else None
    )
    obs = Observability(
        sink=(
            JsonlSink(args.trace_jsonl, sample_every=args.trace_sample)
            if args.trace_jsonl
            else None
        ),
        profiler=PhaseProfiler() if args.profile else None,
        metrics=(
            MetricsRegistry() if (args.metrics_out or serving) else None
        ),
        progress=ProgressReporter() if args.progress else None,
        live=live,
    )
    if args.workers and (args.checkpoint or args.resume):
        raise ConfigurationError(
            "--checkpoint/--resume apply to the in-process engine only; "
            "drop --workers (parallel workers recover via the "
            "supervision layer instead)"
        )
    if args.cluster and args.workers:
        raise ConfigurationError(
            "--cluster and --workers are mutually exclusive: the cluster "
            "dispatches to remote 'repro cluster worker' processes"
        )
    parallel = None
    coordinator = None
    snapshot = load_checkpoint(args.resume) if args.resume else None
    server = None
    if serving:
        server = MonitorServer(
            live.bus, metrics=obs.metrics, port=args.serve_status
        )
        server.start()
        print(f"monitor: {server.url}/ (status, metrics, events)",
              file=sys.stderr)
    try:
        if args.cluster:
            from .cluster import ClusterCoordinator

            problem = compile_problem(
                graph, shared_bus_platform(args.processors)
            )
            token = StopToken()
            coordinator = ClusterCoordinator(
                params,
                bind=args.cluster,
                split_depth=args.split_depth,
                lease=args.cluster_lease,
                min_workers=args.cluster_min_workers,
                worker_timeout=args.cluster_wait,
                prefetch=args.cluster_prefetch,
                max_shard_attempts=args.cluster_attempts,
                retry_backoff=args.cluster_backoff,
                steal=args.cluster_steal,
                checkpoint_path=args.checkpoint,
                checkpoint_every=args.cluster_checkpoint_seconds,
                resume=snapshot,
                obs=obs if obs.enabled else None,
                stop=token,
            )
            print(
                f"cluster: coordinating on {coordinator.bind_now()} "
                f"(lease {args.cluster_lease:g}s); workers join with "
                f"'repro cluster worker {coordinator.bound_address}'",
                file=sys.stderr,
            )
            with graceful_interrupts(token):
                result = coordinator.solve(problem)
        elif args.workers:
            from .core.parallel import ParallelBnB

            workers = None if args.workers == "auto" else args.workers
            parallel = ParallelBnB(
                params,
                workers=workers,
                split_depth=args.split_depth,
                deterministic=args.parallel_mode == "deterministic",
                obs=obs if obs.enabled else None,
            )
            result = parallel.solve_graph(
                graph, shared_bus_platform(args.processors)
            )
        else:
            checkpointer = (
                Checkpointer(args.checkpoint, every=args.checkpoint_every)
                if args.checkpoint
                else None
            )
            problem = compile_problem(
                graph, shared_bus_platform(args.processors)
            )
            token = StopToken()
            with graceful_interrupts(token):
                result = BranchAndBound(params, trace=trace, obs=obs).solve(
                    problem,
                    checkpoint=checkpointer,
                    resume=snapshot,
                    stop=token,
                )
    except BaseException:
        # A crash is exactly what the flight recorder exists for: dump
        # the event ring before the traceback unwinds, then re-raise.
        if live is not None:
            path = write_flight_dump(
                live, checkpoint_path=args.checkpoint, reason="crash"
            )
            if path:
                print(f"flight recorder: wrote {path}", file=sys.stderr)
        raise
    finally:
        if server is not None:
            server.stop()
        obs.close()
    if live is not None and result.status in (
        SolveStatus.INTERRUPTED, SolveStatus.MEMORY
    ):
        path = write_flight_dump(
            live,
            checkpoint_path=args.checkpoint,
            reason=result.status.value,
        )
        if path:
            print(f"flight recorder: wrote {path}", file=sys.stderr)
    print(f"parameters: {params.describe()}")
    if snapshot is not None:
        stats0 = snapshot.stats
        print(
            f"resumed: {args.resume} (version {snapshot.version}, "
            f"{stats0.get('explored', 0)} explored / "
            f"{stats0.get('generated', 0)} generated before the restart)"
        )
    if parallel is not None and parallel.last_report is not None:
        rep = parallel.last_report
        extra = (
            f" speculative={rep.speculative_hits} reruns={rep.reruns}"
            if rep.mode == "deterministic"
            else f" stale={rep.shards_stale}"
        )
        print(
            f"parallel: mode={rep.mode} workers={rep.workers} "
            f"split-depth={rep.split_depth} shards={rep.shards}{extra}"
        )
        if rep.worker_restarts or rep.shard_retries or rep.quarantined:
            quarantined = (
                ",".join(str(i) for i in rep.quarantined)
                if rep.quarantined
                else "none"
            )
            print(
                f"supervision: restarts={rep.worker_restarts} "
                f"retries={rep.shard_retries} quarantined={quarantined}"
            )
    if coordinator is not None and coordinator.last_report is not None:
        rep = coordinator.last_report
        print(rep.summary())
        if rep.quarantined:
            print(
                "quarantined shards (run is TRUNCATED, not proven "
                f"optimal): {','.join(str(i) for i in rep.quarantined)}"
            )
        if rep.resumed:
            print("resumed cluster solve from checkpoint")
    tt_rule = find_transposition(params.dominance)
    if tt_rule is not None:
        if parallel is not None and parallel.last_report is not None:
            tt_tel = parallel.last_report.tt_stats
        else:
            tt_tel = tt_rule.telemetry_total()
        if tt_tel:
            print(_tt_summary(tt_tel))
    print(result.summary())
    schedule = result.schedule() if result.found_solution else None
    if args.gantt and schedule is not None:
        print(schedule.as_table())
    if args.chart and schedule is not None:
        print(render_gantt(schedule))
    if args.bus and schedule is not None:
        print(simulate_bus(schedule).summary())
    if args.trace_csv and trace is not None:
        trace.write_csv(args.trace_csv)
        print(f"wrote {args.trace_csv}")
    if args.trace_jsonl:
        print(f"wrote {args.trace_jsonl}")
    if args.metrics_out and obs.metrics is not None:
        obs.metrics.write(args.metrics_out)
        print(f"wrote {args.metrics_out}")
    if result.status is SolveStatus.INTERRUPTED:
        return 130  # conventional signal exit; the summary above is anytime
    return 0 if result.found_solution else 1


def _cmd_cluster(args) -> int:
    if args.role == "coordinator":
        return _cmd_solve(args)
    from .cluster import ClusterWorker

    worker = ClusterWorker(
        args.address,
        worker_id=args.worker_id,
        connect_timeout=args.connect_timeout,
        max_shards=args.max_shards,
        poll_delay=args.poll_delay,
    )
    print(
        f"worker {worker.worker_id}: connecting to {args.address}",
        file=sys.stderr,
    )
    try:
        done = worker.run()
    except KeyboardInterrupt:
        print(
            f"worker {worker.worker_id}: interrupted after "
            f"{worker.shards_done} shard(s)",
            file=sys.stderr,
        )
        return 130
    print(
        f"worker {worker.worker_id}: done ({done} shard(s) searched, "
        f"{worker.shards_stale} already stale)",
        file=sys.stderr,
    )
    return 0


def _cmd_report(args) -> int:
    report = load_trace(args.trace)
    print(render_trace_report(report))
    return 0


def _cmd_bench(args) -> int:
    from .bench import (
        BASELINE_PATH,
        check_against_golden,
        golden_from_report,
        load_baseline,
        load_golden,
        pin_thread_env,
        run_suite,
        write_json,
    )

    # Satellite contract: every timed suite runs with the BLAS/OpenMP
    # pools pinned (single-core numbers must not depend on machine-wide
    # thread defaults).  --compare only reads files, so it is exempt.
    if not args.compare:
        pin_thread_env()
    if args.compare:
        return _cmd_bench_compare(args)
    if args.parallel:
        return _cmd_bench_parallel(args)
    if args.transposition:
        return _cmd_bench_transposition(args)
    if args.dupfree:
        return _cmd_bench_dupfree(args)
    if args.live:
        return _cmd_bench_live(args)
    if args.array:
        return _cmd_bench_array(args)
    baseline = load_baseline(args.baseline or BASELINE_PATH)
    if args.baseline and baseline is None:
        print(
            f"error: cannot read baseline file {args.baseline!r}",
            file=sys.stderr,
        )
        return 2
    report = run_suite(
        quick=args.quick, repeats=args.repeats or 3, baseline=baseline
    )
    report["thread_env"] = pin_thread_env()
    header = (
        f"{'instance':28s} {'gen':>9s} {'ref s':>8s} {'opt s':>8s} "
        f"{'speedup':>7s} {'opt v/s':>9s} {'vs pre-PR':>9s}"
    )
    print(header)
    print("-" * len(header))
    for row in report["instances"]:
        vs = row.get("speedup_vs_pre_pr")
        vs_s = f"{vs:>8.2f}x" if vs is not None else f"{'-':>9s}"
        print(
            f"{row['name']:28s} {row['generated']:>9d} "
            f"{row['ref_seconds']:>8.3f} {row['opt_seconds']:>8.3f} "
            f"{row['speedup']:>6.2f}x {row['opt_vertices_per_sec']:>9d} "
            f"{vs_s}"
        )
    s = report["summary"]
    print(
        f"total: {s['total_generated']} vertices, "
        f"{s['ref_seconds']:.3f}s reference vs {s['opt_seconds']:.3f}s fused "
        f"({s['overall_speedup']:.2f}x)"
    )
    for preset, geo in s.get("speedup_vs_pre_pr_geomean", {}).items():
        print(f"vs pre-PR engine, {preset}: {geo:.2f}x geomean")
    if args.out:
        write_json(report, args.out)
        print(f"wrote {args.out}")
    if args.update_golden:
        write_json(golden_from_report(report), args.golden)
        print(f"wrote {args.golden}")
    elif args.check:
        try:
            golden = load_golden(args.golden)
        except OSError as exc:
            print(f"error: cannot read golden file: {exc}", file=sys.stderr)
            return 2
        drift = check_against_golden(report, golden)
        if drift:
            for line in drift:
                print(f"golden drift: {line}", file=sys.stderr)
            return 1
        print(f"golden counts OK ({args.golden})")
    return 0


def _cmd_bench_parallel(args) -> int:
    from .bench import pin_thread_env, run_parallel_suite, write_json

    report = run_parallel_suite(
        quick=args.quick,
        split_depth=args.split_depth,
        repeats=args.repeats or 1,
    )
    report["thread_env"] = pin_thread_env()
    header = (
        f"{'instance':28s} {'gen':>9s} {'seq s':>8s} {'det s':>8s} "
        f"{'replay':>12s} {'thr@4 s':>8s} {'speedup':>7s}"
    )
    print(header)
    print("-" * len(header))
    for row in report["instances"]:
        det = row["deterministic"]
        thr = (row["throughput"] or {}).get("4")
        thr_s = f"{thr['seconds']:>8.3f}" if thr else f"{'-':>8s}"
        sp = (
            f"{thr['speedup']:>6.2f}x"
            if thr and thr["speedup"] is not None
            else f"{'-':>7s}"
        )
        print(
            f"{row['name']:28s} {row['generated']:>9d} "
            f"{row['seq_seconds']:>8.3f} {det['seconds']:>8.3f} "
            f"{det['replay']:>12s} {thr_s} {sp}"
        )
    s = report["summary"]
    print(
        f"{s['cells']} cells deterministic-verified "
        f"({s['exact_replay_cells']} bit-identical, rest reproducible); "
        f"{s['throughput_cells']} cells timed in throughput mode "
        f"on {report['cpus']} cpu(s)"
    )
    if s["best_throughput"]:
        b = s["best_throughput"]
        print(
            f"best throughput: {b['speedup']:.2f}x on {b['name']} "
            f"at {b['workers']} workers"
        )
    if args.out:
        write_json(report, args.out)
        print(f"wrote {args.out}")
    return 0


def _cmd_bench_transposition(args) -> int:
    from .bench import pin_thread_env, run_transposition_suite, write_json

    report = run_transposition_suite(
        quick=args.quick,
        table_bytes=args.tt_bytes,
        policy=args.tt_policy,
        repeats=args.repeats or 3,
    )
    report["thread_env"] = pin_thread_env()
    header = (
        f"{'instance':28s} {'base gen':>9s} {'tt gen':>9s} {'reduct':>7s} "
        f"{'base s':>8s} {'tt s':>8s} {'ratio':>6s} {'dups':>8s}"
    )
    print(header)
    print("-" * len(header))
    for row in report["instances"]:
        red = row["vertex_reduction"]
        print(
            f"{row['name']:28s} {row['base']['generated']:>9d} "
            f"{row['tt']['generated']:>9d} "
            f"{red:>6.2f}x "
            f"{row['base']['seconds']:>8.3f} {row['tt']['seconds']:>8.3f} "
            f"{row['time_ratio']:>6.2f} {row['tt']['duplicates_pruned']:>8d}"
            f"{'  [capped]' if row['capped'] else ''}"
            f"{'  [filled]' if row['table_filled'] else ''}"
        )
    s = report["summary"]
    print(
        f"{s['cells']} cells parity-verified (table on, fused == "
        f"reference); {s['duplicates_pruned']} duplicates pruned"
    )
    if s["vertex_reduction_geomean"] is not None:
        print(
            f"vertex reduction geomean (exhaustive cells): "
            f"{s['vertex_reduction_geomean']:.2f}x"
        )
    if s["time_ratio_geomean_unfilled"] is not None:
        print(
            f"wall-clock ratio geomean (table never filled): "
            f"{s['time_ratio_geomean_unfilled']:.2f}"
        )
    if args.out:
        write_json(report, args.out)
        print(f"wrote {args.out}")
    return 0


def _cmd_bench_array(args) -> int:
    from .bench import run_array_suite, write_json

    report = run_array_suite(
        quick=args.quick,
        repeats=args.repeats or 3,
        target=args.target_speedup,
    )
    header = (
        f"{'instance':28s} {'gen':>9s} {'obj s':>8s} {'numpy s':>8s} "
        f"{'array s':>8s} {'arr v/s':>10s} {'numpy x':>8s} {'array x':>8s}"
    )
    print(header)
    print("-" * len(header))
    for row in report["instances"]:
        print(
            f"{row['name']:28s} {row['generated']:>9d} "
            f"{row['object_seconds']:>8.3f} {row['numpy_seconds']:>8.3f} "
            f"{row['opt_seconds']:>8.3f} {row['opt_vertices_per_sec']:>10d} "
            f"{row['numpy_speedup_vs_object']:>7.2f}x "
            f"{row['speedup_vs_object']:>7.2f}x"
            f"{'  [capped]' if row['capped'] else ''}"
        )
    s = report["summary"]
    ab = s["ablation"]
    print(
        f"{s['cells']} cells quadruple-solved, all parity-gated against "
        f"the reference oracle"
    )
    print(
        f"ablation geomeans vs fused object engine: arena+numpy "
        f"{ab['arena_numpy_speedup_geomean']:.2f}x, arena+native driver "
        f"{ab['arena_native_speedup_geomean']:.2f}x "
        f"(target {s['target_speedup']:.1f}x -> "
        f"{'MET' if s['target_met'] else 'MISSED'})"
    )
    if args.out:
        write_json(report, args.out)
        print(f"wrote {args.out}")
    return 0 if s["target_met"] else 1


def _cmd_bench_dupfree(args) -> int:
    from .bench import pin_thread_env, run_dupfree_suite, write_json

    report = run_dupfree_suite(
        quick=args.quick,
        table_bytes=args.tt_bytes,
        policy=args.tt_policy,
        ml_cap=args.ml_cap,
        repeats=args.repeats or 3,
    )
    report["thread_env"] = pin_thread_env()
    header = (
        f"{'instance':16s} {'tt gen':>8s} {'ao gen':>8s} {'reduct':>7s} "
        f"{'tt s':>8s} {'ao s':>8s} {'ratio':>6s} {'ml gen':>8s} "
        f"{'ml peak':>7s}"
    )
    print(header)
    print("-" * len(header))
    for row in report["instances"]:
        red = row["vertex_reduction"]
        print(
            f"{row['name']:16s} {row['tt']['generated']:>8d} "
            f"{row['ao']['generated']:>8d} "
            f"{red:>6.2f}x "
            f"{row['tt']['seconds']:>8.3f} {row['ao']['seconds']:>8.3f} "
            f"{row['time_ratio']:>6.2f} {row['ao_ml']['generated']:>8d} "
            f"{row['ao_ml']['peak_active']:>7d}"
            f"{'' if row['expect_win'] else '  [no gate]'}"
        )
    s = report["summary"]
    print(
        f"{s['cells']} cells exhaustive, cost-parity and zero-duplicate "
        f"verified (array fallback bit-for-bit); TT pruned "
        f"{s['duplicates_pruned_by_tt']} duplicates, AO pruned 0"
    )
    print(
        f"vertex reduction geomean: all cells "
        f"{s['vertex_reduction_geomean']:.2f}x, gated cells "
        f"{s['vertex_reduction_geomean_wins']:.2f}x "
        f"(ML cap {report['ml_cap']}, peak open {s['ml_peak_active_max']})"
    )
    if args.out:
        write_json(report, args.out)
        print(f"wrote {args.out}")
    return 0


def _cmd_bench_compare(args) -> int:
    from .bench import compare_benchmarks, render_comparison

    old_path, new_path = args.compare
    comparison = compare_benchmarks(
        old_path,
        new_path,
        time_threshold=args.time_threshold,
        vertex_threshold=args.vertex_threshold,
        strict_cells=args.strict_cells,
    )
    print(render_comparison(comparison))
    return 0 if comparison.ok else 1


def _cmd_bench_live(args) -> int:
    from .bench import pin_thread_env, run_live_overhead_suite, write_json

    report = run_live_overhead_suite(
        quick=args.quick,
        repeats=args.repeats or 3,
        interval=args.interval,
    )
    report["thread_env"] = pin_thread_env()
    header = (
        f"{'instance':28s} {'gen':>9s} {'bare s':>8s} {'live s':>8s} "
        f"{'overhead':>8s} {'samples':>7s}"
    )
    print(header)
    print("-" * len(header))
    for row in report["instances"]:
        ov = row["overhead"]
        ov_s = f"{ov * 100:>7.2f}%" if ov is not None else f"{'-':>8s}"
        print(
            f"{row['name']:28s} {row['generated']:>9d} "
            f"{row['base_seconds']:>8.3f} {row['live_seconds']:>8.3f} "
            f"{ov_s} {row['samples']:>7d}"
        )
    s = report["summary"]
    if s["geomean_overhead"] is not None:
        print(
            f"geomean overhead: {s['geomean_overhead'] * 100:.2f}% "
            f"(budget {s['budget'] * 100:.0f}%) -> "
            f"{'OK' if s['within_budget'] else 'OVER BUDGET'}"
        )
    if args.out:
        write_json(report, args.out)
        print(f"wrote {args.out}")
    return 0 if s["within_budget"] else 1


def _cmd_experiment(args) -> int:
    kwargs = {"profile": args.profile, "base_seed": args.seed}
    if args.graphs is not None:
        kwargs["num_graphs"] = args.graphs
    if args.workers:
        kwargs["workers"] = args.workers
    if args.metrics:
        kwargs["collect_metrics"] = True
    output = run_by_name(args.name, **kwargs)
    reference = EDF_LABEL if any(
        s.label == EDF_LABEL for s in output.series
    ) else output.series[0].label
    print(render(output, reference=reference))
    if args.output:
        save_experiment(output, args.output)
        print(f"wrote {args.output}")
    return 0


def _cmd_list() -> int:
    for name in sorted(EXPERIMENTS):
        doc = (EXPERIMENTS[name].__doc__ or "").strip().splitlines()
        print(f"{name:18s} {doc[0] if doc else ''}")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "generate":
            return _cmd_generate(args)
        if args.command == "solve":
            return _cmd_solve(args)
        if args.command == "convert":
            return _cmd_convert(args)
        if args.command == "cluster":
            return _cmd_cluster(args)
        if args.command == "experiment":
            return _cmd_experiment(args)
        if args.command == "report":
            return _cmd_report(args)
        if args.command == "bench":
            return _cmd_bench(args)
        if args.command == "list":
            return _cmd_list()
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
