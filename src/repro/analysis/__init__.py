"""Analysis utilities: metrics, confidence intervals, aggregation."""

from .aggregate import PointAccumulator, Series, SeriesPoint
from .gantt import render_gantt
from .confidence import (
    ConfidenceTarget,
    RunningStats,
    confidence_interval,
    run_until_confident,
    student_t_quantile,
)
from .metrics import (
    ScheduleMetrics,
    geometric_mean,
    lateness_improvement,
    schedule_metrics,
    vertex_ratio,
)

__all__ = [
    "ConfidenceTarget",
    "PointAccumulator",
    "RunningStats",
    "ScheduleMetrics",
    "Series",
    "SeriesPoint",
    "confidence_interval",
    "render_gantt",
    "geometric_mean",
    "lateness_improvement",
    "run_until_confident",
    "schedule_metrics",
    "student_t_quantile",
    "vertex_ratio",
]
