"""ASCII Gantt charts for schedules.

A proportional text rendering — one row per processor, one optional row
for the simulated bus — suitable for terminals, logs and doctests.

::

    t=0                                                            98.6
    p0 |RR|CCC|rr|SSSSSSS|..FFFFF|..LLL|...MMMMMM|....TTT|..AA|
    p1 |LLL|lllll|......OOOO|
    legend: R=radar C=camera_R r=radar_track ...
"""

from __future__ import annotations

from ..model.schedule import Schedule

__all__ = ["render_gantt"]

_FILL = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"


def _symbol_map(names: list[str]) -> dict[str, str]:
    """Assign each task a distinct single-character symbol.

    Prefers the first letter of the task name; collisions fall back to a
    rotating alphabet.
    """
    used: set[str] = set()
    out: dict[str, str] = {}
    pool = iter(_FILL)
    for name in names:
        candidate = next((c for c in name if c.isalnum()), "")
        if candidate and candidate not in used:
            out[name] = candidate
            used.add(candidate)
            continue
        for c in pool:
            if c not in used:
                out[name] = c
                used.add(c)
                break
        else:  # more tasks than symbols: reuse '#'
            out[name] = "#"
    return out


def render_gantt(
    schedule: Schedule, width: int = 72, show_legend: bool = True
) -> str:
    """Render the (possibly partial) schedule as a text Gantt chart.

    ``width`` is the number of character cells representing the makespan;
    idle time is drawn as ``.``, execution as the task's symbol.  Tasks
    shorter than one cell still get one cell (clipped at the row end), so
    every placed task is visible.
    """
    if width < 10:
        raise ValueError(f"width must be >= 10, got {width}")
    makespan = schedule.makespan()
    names = [e.task for e in schedule.entries]
    symbols = _symbol_map(names)
    lines: list[str] = [f"t=0{' ' * max(0, width - len(f'{makespan:g}') - 3)}{makespan:g}"]

    if makespan <= 0:
        lines.append("(empty schedule)")
        return "\n".join(lines)
    scale = width / makespan

    for p in schedule.platform.processors:
        row = ["."] * width
        for e in schedule.timeline(p):
            lo = min(width - 1, int(e.start * scale))
            hi = min(width, max(lo + 1, int(round(e.finish * scale))))
            for i in range(lo, hi):
                row[i] = symbols[e.task]
        lines.append(f"p{p} |{''.join(row)}|")

    if show_legend and names:
        pairs = [f"{symbols[n]}={n}" for n in names]
        legend = "legend: "
        line = legend
        for pair in pairs:
            if len(line) + len(pair) + 1 > width + 12:
                lines.append(line.rstrip())
                line = " " * len(legend)
            line += pair + " "
        lines.append(line.rstrip())
    return "\n".join(lines)
