"""Confidence-interval machinery for experiment replication.

The paper reports every data point as an average over enough simulation
runs that a 90% (95%) confidence level is achieved for a maximum error
within 10% (0.5%) of the reported average for vertex counts (lateness).
:func:`run_until_confident` implements the same adaptive-replication
rule with a hard cap, and :class:`RunningStats`/:func:`confidence_interval`
provide the underlying Student-t statistics (implemented directly — no
SciPy dependency in the hot path — with a table-backed t quantile).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterable

from ..errors import ConfigurationError

__all__ = [
    "RunningStats",
    "student_t_quantile",
    "confidence_interval",
    "ConfidenceTarget",
    "run_until_confident",
]


class RunningStats:
    """Welford online mean/variance accumulator."""

    __slots__ = ("count", "mean", "_m2", "minimum", "maximum")

    def __init__(self, values: Iterable[float] = ()) -> None:
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf
        for v in values:
            self.add(v)

    def add(self, value: float) -> None:
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def variance(self) -> float:
        """Unbiased sample variance (0 for fewer than two samples)."""
        return self._m2 / (self.count - 1) if self.count > 1 else 0.0

    @property
    def stddev(self) -> float:
        return math.sqrt(self.variance)

    @property
    def stderr(self) -> float:
        return self.stddev / math.sqrt(self.count) if self.count else 0.0

    def __repr__(self) -> str:
        return f"RunningStats(n={self.count}, mean={self.mean:g}, sd={self.stddev:g})"


# Two-sided Student-t quantiles t_{(1+level)/2, df}, tabulated for the
# confidence levels the paper uses; df beyond the table falls back to the
# normal quantile.
_T_TABLE: dict[float, list[float]] = {
    # df:        1      2      3      4      5      6      7      8      9     10
    0.90: [6.314, 2.920, 2.353, 2.132, 2.015, 1.943, 1.895, 1.860, 1.833, 1.812,
           # 11..20
           1.796, 1.782, 1.771, 1.761, 1.753, 1.746, 1.740, 1.734, 1.729, 1.725,
           # 21..30
           1.721, 1.717, 1.714, 1.711, 1.708, 1.706, 1.703, 1.701, 1.699, 1.697],
    0.95: [12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
           2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
           2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042],
    0.99: [63.657, 9.925, 5.841, 4.604, 4.032, 3.707, 3.499, 3.355, 3.250, 3.169,
           3.106, 3.055, 3.012, 2.977, 2.947, 2.921, 2.898, 2.878, 2.861, 2.845,
           2.831, 2.819, 2.807, 2.797, 2.787, 2.779, 2.771, 2.763, 2.756, 2.750],
}
_Z_NORMAL = {0.90: 1.645, 0.95: 1.960, 0.99: 2.576}


def student_t_quantile(level: float, df: int) -> float:
    """Two-sided Student-t critical value for the given confidence level."""
    if df < 1:
        raise ConfigurationError(f"degrees of freedom must be >= 1, got {df}")
    table = _T_TABLE.get(round(level, 2))
    if table is None:
        raise ConfigurationError(
            f"unsupported confidence level {level}; choose from "
            f"{sorted(_T_TABLE)}"
        )
    if df <= len(table):
        return table[df - 1]
    return _Z_NORMAL[round(level, 2)]


def confidence_interval(stats: RunningStats, level: float = 0.90) -> float:
    """Half-width of the two-sided CI around the running mean."""
    if stats.count < 2:
        return math.inf
    return student_t_quantile(level, stats.count - 1) * stats.stderr


@dataclass(frozen=True)
class ConfidenceTarget:
    """Stop criterion: CI half-width within ``rel_error`` of |mean|.

    ``min_runs`` guards against spuriously tight early intervals;
    ``max_runs`` bounds total work (the paper instead relies on a fleet
    of SPARCstations).  ``abs_floor`` treats means near zero: when
    |mean| < abs_floor the half-width is compared against the floor
    itself rather than a vanishing relative target.
    """

    level: float = 0.90
    rel_error: float = 0.10
    min_runs: int = 5
    max_runs: int = 200
    abs_floor: float = 1e-9

    def __post_init__(self) -> None:
        if not 0 < self.rel_error:
            raise ConfigurationError(
                f"rel_error must be positive, got {self.rel_error}"
            )
        if self.min_runs < 2:
            raise ConfigurationError(
                f"min_runs must be >= 2, got {self.min_runs}"
            )
        if self.max_runs < self.min_runs:
            raise ConfigurationError(
                f"max_runs {self.max_runs} below min_runs {self.min_runs}"
            )

    def satisfied(self, stats: RunningStats) -> bool:
        if stats.count < self.min_runs:
            return False
        half = confidence_interval(stats, self.level)
        scale = max(abs(stats.mean), self.abs_floor)
        return half <= self.rel_error * scale


def run_until_confident(
    sample: Callable[[int], float],
    target: ConfidenceTarget = ConfidenceTarget(),
) -> RunningStats:
    """Draw ``sample(k)`` for k = 0, 1, ... until the target is met.

    Always runs at least ``target.min_runs`` samples and at most
    ``target.max_runs``.
    """
    stats = RunningStats()
    for k in range(target.max_runs):
        stats.add(sample(k))
        if target.satisfied(stats):
            break
    return stats
