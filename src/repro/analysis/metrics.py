"""Schedule and search quality metrics.

Small, composable helpers shared by the experiment harness and the
examples: the paper's two performance indices (maximum task lateness,
searched-vertex counts) plus the standard derived quantities a scheduling
study reports (makespan, speedup, processor utilization, deadline-miss
counts).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..model.schedule import Schedule

__all__ = [
    "ScheduleMetrics",
    "schedule_metrics",
    "lateness_improvement",
    "vertex_ratio",
    "geometric_mean",
]


@dataclass(frozen=True)
class ScheduleMetrics:
    """Summary of one complete schedule."""

    max_lateness: float
    makespan: float
    total_idle: float
    #: Mean busy fraction over processors within the makespan.
    utilization: float
    #: Number of tasks finishing after their deadline.
    missed_deadlines: int
    #: Number of messages that crossed processors.
    remote_messages: int
    #: Total time spent in interprocessor transfers.
    communication_time: float


def schedule_metrics(schedule: Schedule) -> ScheduleMetrics:
    """Compute the summary metrics of a complete schedule."""
    makespan = schedule.makespan()
    m = schedule.platform.num_processors
    busy = sum(e.duration for e in schedule.entries)
    idle = max(0.0, makespan * m - busy)
    missed = sum(
        1 for t in schedule.scheduled_tasks if schedule.lateness(t) > 1e-9
    )
    msgs = schedule.messages()
    remote = [x for x in msgs if not x.is_local]
    return ScheduleMetrics(
        max_lateness=schedule.max_lateness(),
        makespan=makespan,
        total_idle=idle,
        utilization=busy / (makespan * m) if makespan > 0 else 0.0,
        missed_deadlines=missed,
        remote_messages=len(remote),
        communication_time=sum(x.transfer_time for x in remote),
    )


def lateness_improvement(baseline: float, improved: float) -> float:
    """Relative lateness improvement, in the paper's sense.

    The paper reports the B&B yielding "5% better (more negative) task
    lateness" than EDF; we quantify that as the improvement normalized by
    the baseline magnitude: ``(baseline - improved) / |baseline|``.
    Returns 0 when the baseline is 0.
    """
    if baseline == 0:
        return 0.0
    return (baseline - improved) / abs(baseline)


def vertex_ratio(reference: float, candidate: float) -> float:
    """How many times fewer vertices the candidate searched (ref/cand)."""
    if candidate <= 0:
        return math.inf if reference > 0 else 1.0
    return reference / candidate


def geometric_mean(values) -> float:
    """Geometric mean (positive inputs), the fair average for ratios."""
    vals = list(values)
    if not vals:
        return 0.0
    if any(v <= 0 for v in vals):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))
