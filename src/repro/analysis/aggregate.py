"""Aggregation containers for experiment series.

An experiment produces, per strategy, a *series* of points indexed by the
sweep variable (system size, CCR, ...), each point carrying the two
observed performance indices — mean searched vertices and mean maximum
task lateness — with their confidence half-widths and any auxiliary
means (peak active-set size, wall-clock time).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .confidence import RunningStats, confidence_interval

__all__ = ["PointAccumulator", "SeriesPoint", "Series"]


class PointAccumulator:
    """Collects per-run observations for one (strategy, x) cell."""

    def __init__(self) -> None:
        self.vertices = RunningStats()
        self.lateness = RunningStats()
        self.extras: dict[str, RunningStats] = {}

    def add(self, vertices: float, lateness: float, **extras: float) -> None:
        self.vertices.add(vertices)
        self.lateness.add(lateness)
        for key, value in extras.items():
            self.extras.setdefault(key, RunningStats()).add(value)

    def freeze(
        self, x: float, vertex_level: float = 0.90, lateness_level: float = 0.95
    ) -> "SeriesPoint":
        """Finalize into an immutable point (paper's CI levels by default)."""
        return SeriesPoint(
            x=x,
            runs=self.vertices.count,
            mean_vertices=self.vertices.mean,
            ci_vertices=confidence_interval(self.vertices, vertex_level),
            mean_lateness=self.lateness.mean,
            ci_lateness=confidence_interval(self.lateness, lateness_level),
            extras={k: v.mean for k, v in self.extras.items()},
        )


@dataclass(frozen=True)
class SeriesPoint:
    """One aggregated cell of an experiment plot."""

    x: float
    runs: int
    mean_vertices: float
    ci_vertices: float
    mean_lateness: float
    ci_lateness: float
    extras: dict[str, float] = field(default_factory=dict)


@dataclass(frozen=True)
class Series:
    """One plotted curve: a strategy label and its points in x order."""

    label: str
    points: tuple[SeriesPoint, ...]

    def point_at(self, x: float) -> SeriesPoint:
        for p in self.points:
            if p.x == x:
                return p
        raise KeyError(f"series {self.label!r} has no point at x={x}")

    @property
    def xs(self) -> tuple[float, ...]:
        return tuple(p.x for p in self.points)
