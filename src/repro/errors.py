"""Exception hierarchy for the :mod:`repro` package.

All errors raised by the library derive from :class:`ReproError` so that
callers can catch library failures without also swallowing programming
errors such as :class:`TypeError`.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ModelError",
    "CycleError",
    "UnknownTaskError",
    "UnknownChannelError",
    "InvalidScheduleError",
    "WorkloadError",
    "SpecificationError",
    "GenerationError",
    "DeadlineAssignmentError",
    "SearchError",
    "ResourceLimitExceeded",
    "WorkerCrashed",
    "ConfigurationError",
    "SerializationError",
    "ProblemFormatError",
    "CheckpointError",
    "ClusterError",
    "TransportClosed",
]


class ReproError(Exception):
    """Base class for every exception raised by :mod:`repro`."""


# ---------------------------------------------------------------------------
# Model layer
# ---------------------------------------------------------------------------


class ModelError(ReproError):
    """A task-system or platform model is malformed."""


class CycleError(ModelError):
    """The precedence relation is not an irreflexive partial order.

    Raised when a task graph contains a directed cycle (including
    self-loops), which would make the partial order ``<`` reflexive or
    non-antisymmetric.
    """

    def __init__(self, cycle: list[str] | None = None) -> None:
        self.cycle = list(cycle) if cycle else []
        if self.cycle:
            msg = "task graph contains a cycle: " + " -> ".join(self.cycle)
        else:
            msg = "task graph contains a cycle"
        super().__init__(msg)


class UnknownTaskError(ModelError, KeyError):
    """A task name was referenced that is not part of the graph."""

    def __init__(self, name: str) -> None:
        self.name = name
        super().__init__(f"unknown task: {name!r}")

    def __str__(self) -> str:  # KeyError quotes its args; keep it readable.
        return f"unknown task: {self.name!r}"


class UnknownChannelError(ModelError, KeyError):
    """A communication channel was referenced that does not exist."""

    def __init__(self, src: str, dst: str) -> None:
        self.src = src
        self.dst = dst
        super().__init__(f"unknown channel: {src!r} -> {dst!r}")

    def __str__(self) -> str:
        return f"unknown channel: {self.src!r} -> {self.dst!r}"


class InvalidScheduleError(ModelError):
    """A schedule violates a validity condition.

    Carries the list of human-readable violations so that callers (and
    tests) can assert on the precise failure mode.
    """

    def __init__(self, violations: list[str]) -> None:
        self.violations = list(violations)
        super().__init__(
            "invalid schedule: " + "; ".join(self.violations)
            if self.violations
            else "invalid schedule"
        )


# ---------------------------------------------------------------------------
# Workload layer
# ---------------------------------------------------------------------------


class WorkloadError(ReproError):
    """Workload specification or generation failed."""


class SpecificationError(WorkloadError, ValueError):
    """A workload specification is self-contradictory or out of range."""


class GenerationError(WorkloadError):
    """The random generator could not realize the requested specification."""


class DeadlineAssignmentError(WorkloadError):
    """Deadline slicing failed (e.g. end-to-end deadline below workload)."""


# ---------------------------------------------------------------------------
# Search layer
# ---------------------------------------------------------------------------


class SearchError(ReproError):
    """The branch-and-bound engine hit an unrecoverable condition."""


class ResourceLimitExceeded(SearchError):
    """A hard resource bound was exceeded and the caller asked to fail.

    The engine normally *degrades* on resource exhaustion (returning the
    best solution found so far, per the paper's RB semantics); this is
    only raised when ``ResourceBounds.fail_on_exhaustion`` is set.

    ``partial`` carries the anytime :class:`~repro.core.engine.BnBResult`
    at the moment the bound tripped — the best incumbent found so far,
    its schedule, and the run's statistics — so callers that still catch
    the exception can recover the paid-for work instead of losing it.
    It is ``None`` only when the engine could not assemble one, and it
    is deliberately dropped when the exception crosses a process
    boundary (a partial result pins the whole compiled problem, which
    the coordinator already has).
    """

    def __init__(self, which: str, detail: str = "", partial=None) -> None:
        self.which = which
        self.detail = detail
        self.partial = partial
        msg = f"resource bound exceeded: {which}"
        if detail:
            msg += f" ({detail})"
        super().__init__(msg)

    def __reduce__(self):
        # Default exception pickling replays __init__ with ``args`` —
        # here the already-formatted message — which would double-wrap
        # the prefix and drop ``which``.  Replay the real constructor
        # arguments instead (workers raise this across process
        # boundaries); ``partial`` stays behind on purpose.
        return (type(self), (self.which, self.detail))


class WorkerCrashed(SearchError):
    """A parallel worker process died and retries were exhausted.

    Raised by the parallel driver when a shard's worker keeps dying
    (or its process pool breaks) beyond the configured attempt budget.
    """

    def __init__(self, detail: str, attempts: int = 0) -> None:
        self.detail = detail
        self.attempts = attempts
        msg = f"worker crashed: {detail}"
        if attempts:
            msg += f" (after {attempts} attempts)"
        super().__init__(msg)

    def __reduce__(self):
        return (type(self), (self.detail, self.attempts))


class ConfigurationError(ReproError, ValueError):
    """A parameter combination is invalid (e.g. BR < 0)."""


class SerializationError(ReproError):
    """Serialized data could not be parsed or written."""


class ProblemFormatError(SerializationError):
    """A problem-input file (STG, JSON graph, …) is malformed.

    Subclasses :class:`SerializationError`, so existing handlers keep
    working, and adds structured ``path``/``line`` context so tooling
    (and humans) can locate the defect without re-parsing the file.
    """

    def __init__(
        self,
        message: str,
        *,
        path: str | None = None,
        line: int | None = None,
    ) -> None:
        self.path = path
        self.line = line
        self.reason = message
        where = path or "<input>"
        if line is not None:
            where += f", line {line}"
        super().__init__(f"{where}: {message}")


class CheckpointError(ReproError):
    """A search checkpoint could not be written, read, or applied.

    Raised on corrupt/truncated snapshot files, unsupported format
    versions, and fingerprint mismatches (resuming against a different
    problem or parametrization).
    """


class ClusterError(ReproError):
    """The distributed coordinator/worker layer hit a fatal condition.

    Covers protocol violations (version or fingerprint mismatch at
    handshake), a coordinator that never sees a worker join, and
    malformed frames.  *Transient* failures — dead workers, dropped
    frames, partitions — are handled by lease expiry and shard
    re-queuing, never raised.
    """


class TransportClosed(ClusterError):
    """The peer closed the connection (EOF or broken pipe).

    The cluster layer's normal worker-death signal: callers treat it as
    a membership event, not a crash.
    """
