"""Hot-path benchmark suite: fused-vs-reference regression tracking."""

from .harness import (
    BASELINE_PATH,
    BENCH_INSTANCES,
    QUICK_INSTANCES,
    BenchInstance,
    bench_params,
    parallel_params,
    load_baseline,
    check_against_golden,
    golden_from_report,
    load_golden,
    run_instance,
    run_suite,
    run_parallel_instance,
    run_parallel_suite,
    write_json,
)

__all__ = [
    "BASELINE_PATH",
    "BENCH_INSTANCES",
    "QUICK_INSTANCES",
    "BenchInstance",
    "bench_params",
    "parallel_params",
    "load_baseline",
    "check_against_golden",
    "golden_from_report",
    "load_golden",
    "run_instance",
    "run_suite",
    "run_parallel_instance",
    "run_parallel_suite",
    "write_json",
]
