"""Machine-checkable diffs between committed ``BENCH_*.json`` reports.

The repository accumulates one benchmark report per performance PR
(``BENCH_PR2.json`` …), each with its own schema.  ``repro bench
--compare OLD.json NEW.json`` turns that trajectory into a gate:
per-cell wall-clock and vertex-count ratios, geometric means over the
shared cells, and a nonzero exit when a cell regresses beyond
threshold.

Schemas differ, so extraction is tolerant: a cell's canonical seconds
is the first of ``opt_seconds`` (PR 2), ``seq_seconds`` (PR 3),
``base_seconds`` (PR 6), ``seconds``, or the nested ``base.seconds``
(PR 4) / ``ao.seconds`` (PR 8); vertex counts come from ``generated``
(top level or under the same nesting).  Wall-clock ratios are only meaningful when both files were
measured on comparable hardware — vertex counts are deterministic and
therefore the harder signal.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from ..errors import ReproError

__all__ = ["BenchComparison", "compare_benchmarks", "render_comparison"]

_SECONDS_KEYS = ("opt_seconds", "seq_seconds", "base_seconds", "seconds")


def _extract_cells(report: dict) -> dict[str, dict]:
    cells: dict[str, dict] = {}
    for inst in report.get("instances", []):
        if not isinstance(inst, dict):
            continue
        name = inst.get("name")
        if not name:
            continue
        # PR 4 nests the untreated engine under "base"; PR 8 has no
        # untreated run, so its canonical cell is the AO engine under
        # "ao" (the thing whose counts a regression would change).
        nested = {}
        for key in ("base", "ao"):
            if isinstance(inst.get(key), dict):
                nested = inst[key]
                break
        seconds = None
        for key in _SECONDS_KEYS:
            value = inst.get(key)
            if isinstance(value, (int, float)):
                seconds = float(value)
                break
        if seconds is None and isinstance(nested.get("seconds"), (int, float)):
            seconds = float(nested["seconds"])
        generated = inst.get("generated")
        if generated is None:
            generated = nested.get("generated")
        if seconds is None and generated is None:
            continue
        cells[name] = {"seconds": seconds, "generated": generated}
    return cells


def _geomean(values: list[float]) -> float | None:
    import math

    positive = [v for v in values if v > 0]
    if not positive:
        return None
    return math.exp(sum(math.log(v) for v in positive) / len(positive))


@dataclass
class BenchComparison:
    """The diff of two bench reports over their shared cells."""

    old_path: str
    new_path: str
    old_schema: str
    new_schema: str
    #: Per shared cell: name, old/new seconds and generated, ratios.
    cells: list[dict] = field(default_factory=list)
    #: Cells present in only one file — surfaced as warnings (a silently
    #: shrinking suite hides regressions), and escalated to regressions
    #: under ``strict_cells``.
    only_old: list[str] = field(default_factory=list)
    only_new: list[str] = field(default_factory=list)
    geomean_time_ratio: float | None = None
    geomean_vertex_ratio: float | None = None
    #: Human-readable descriptions of every threshold breach.
    regressions: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.regressions


def compare_benchmarks(
    old_path: str,
    new_path: str,
    *,
    time_threshold: float = 0.20,
    vertex_threshold: float = 0.01,
    strict_cells: bool = False,
) -> BenchComparison:
    """Diff two bench JSON files; thresholds are fractional increases.

    ``time_threshold`` tolerates wall-clock noise (machines differ);
    ``vertex_threshold`` is tight because vertex counts are
    deterministic — any growth means the search genuinely does more
    work.  ``strict_cells`` escalates unmatched cells (present in only
    one report) from warnings to regressions — use it when the two
    reports are supposed to cover the same suite, where a missing cell
    means coverage silently shrank.  Raises
    :class:`~repro.errors.ReproError` on unreadable files or zero
    shared cells (a comparison that checks nothing must not pass
    silently).
    """
    reports = []
    for path in (old_path, new_path):
        try:
            with open(path) as fh:
                reports.append(json.load(fh))
        except (OSError, ValueError) as exc:
            raise ReproError(f"cannot read bench report {path}: {exc}") from exc
    old_report, new_report = reports
    old_cells = _extract_cells(old_report)
    new_cells = _extract_cells(new_report)
    shared = sorted(set(old_cells) & set(new_cells))
    if not shared:
        raise ReproError(
            f"no shared bench cells between {old_path} "
            f"({len(old_cells)} cells) and {new_path} "
            f"({len(new_cells)} cells)"
        )

    comparison = BenchComparison(
        old_path=old_path,
        new_path=new_path,
        old_schema=str(old_report.get("schema", "?")),
        new_schema=str(new_report.get("schema", "?")),
        only_old=sorted(set(old_cells) - set(new_cells)),
        only_new=sorted(set(new_cells) - set(old_cells)),
    )
    time_ratios: list[float] = []
    vertex_ratios: list[float] = []
    for name in shared:
        old = old_cells[name]
        new = new_cells[name]
        cell = {"name": name}
        if old["seconds"] and new["seconds"]:
            ratio = new["seconds"] / old["seconds"]
            cell["old_seconds"] = old["seconds"]
            cell["new_seconds"] = new["seconds"]
            cell["time_ratio"] = round(ratio, 3)
            time_ratios.append(ratio)
            if ratio > 1 + time_threshold:
                comparison.regressions.append(
                    f"{name}: wall-clock {old['seconds']:.3f}s -> "
                    f"{new['seconds']:.3f}s ({ratio:.2f}x, threshold "
                    f"{1 + time_threshold:.2f}x)"
                )
        if old["generated"] and new["generated"]:
            vratio = new["generated"] / old["generated"]
            cell["old_generated"] = old["generated"]
            cell["new_generated"] = new["generated"]
            cell["vertex_ratio"] = round(vratio, 4)
            vertex_ratios.append(vratio)
            if vratio > 1 + vertex_threshold:
                comparison.regressions.append(
                    f"{name}: generated {old['generated']:,} -> "
                    f"{new['generated']:,} ({vratio:.3f}x, threshold "
                    f"{1 + vertex_threshold:.3f}x)"
                )
        comparison.cells.append(cell)
    comparison.geomean_time_ratio = _geomean(time_ratios)
    comparison.geomean_vertex_ratio = _geomean(vertex_ratios)
    if strict_cells:
        for name in comparison.only_old:
            comparison.regressions.append(
                f"{name}: cell present in {old_path} but missing from "
                f"{new_path} (--strict-cells)"
            )
        for name in comparison.only_new:
            comparison.regressions.append(
                f"{name}: cell present in {new_path} but missing from "
                f"{old_path} (--strict-cells)"
            )
    return comparison


def render_comparison(comparison: BenchComparison) -> str:
    """The text ``repro bench --compare`` prints."""
    out = [
        f"bench compare: {comparison.old_path} ({comparison.old_schema}) "
        f"-> {comparison.new_path} ({comparison.new_schema})",
        f"shared cells: {len(comparison.cells)}",
    ]
    rows = [("cell", "old s", "new s", "time", "old gen", "new gen", "gen")]
    for cell in comparison.cells:
        rows.append(
            (
                cell["name"],
                f"{cell['old_seconds']:.3f}"
                if "old_seconds" in cell
                else "-",
                f"{cell['new_seconds']:.3f}"
                if "new_seconds" in cell
                else "-",
                f"{cell['time_ratio']:.2f}x"
                if "time_ratio" in cell
                else "-",
                f"{cell['old_generated']:,}"
                if "old_generated" in cell
                else "-",
                f"{cell['new_generated']:,}"
                if "new_generated" in cell
                else "-",
                f"{cell['vertex_ratio']:.3f}x"
                if "vertex_ratio" in cell
                else "-",
            )
        )
    out.append(_table(rows))
    if comparison.geomean_time_ratio is not None:
        out.append(
            f"geomean wall-clock ratio: {comparison.geomean_time_ratio:.3f}x"
        )
    if comparison.geomean_vertex_ratio is not None:
        out.append(
            f"geomean vertex ratio: {comparison.geomean_vertex_ratio:.4f}x"
        )
    for name in comparison.only_old:
        out.append(f"warning: cell {name} only in {comparison.old_path}")
    for name in comparison.only_new:
        out.append(f"warning: cell {name} only in {comparison.new_path}")
    if comparison.regressions:
        out.append("")
        out.append(f"REGRESSIONS ({len(comparison.regressions)}):")
        out.extend(f"  {line}" for line in comparison.regressions)
    else:
        out.append("no regressions beyond threshold")
    return "\n".join(out)


def _table(rows: list[tuple[str, ...]]) -> str:
    widths = [max(len(r[i]) for r in rows) for i in range(len(rows[0]))]
    lines = []
    for i, row in enumerate(rows):
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)
