"""Regression-tracked hot-path benchmark suite (``repro bench``).

The suite exists to keep the fused expansion path honest: every
instance is solved twice — once on the reference per-child loop
(``fused=False``, the unoptimized oracle) and once on the fused path
(``fused=True``) — and the run *fails* unless the generated/explored
vertex counts and best costs are identical.  Only then are throughput
numbers (vertices/second, seconds/solve) reported, together with a
phase split from one profiled fused run.

Two kinds of cells coexist:

* *Exhaustive* cells run to completion; any truncation is an error.
* *Capped* cells (``max_vertices`` set) bound a combinatorial search to
  a fixed work budget with ``fail_on_exhaustion=False``.  Both engines
  truncate at exactly the same point — the cap cuts the identical
  search order at the identical vertex — so counts still match to the
  vertex and vertices/second over the fixed budget is a fair
  throughput metric.

Vertex counts are machine-independent (pure-Python float arithmetic is
deterministic), so they are additionally pinned in a committed golden
file (``benchmarks/golden_counts.json``): CI runs ``repro bench --quick
--check`` and fails on any drift, catching accidental search-order
changes long before anyone inspects a plot.  Wall-clock numbers are
reported but never gated — they vary with hardware.

A second committed artifact, ``benchmarks/baseline_pre_pr.json``, pins
the throughput of the engine *before* the hot-path overhaul (the
reference loop as it existed at the pre-PR commit, measured on the same
instances).  When present, the report annotates each row with
``speedup_vs_pre_pr`` and the summary carries per-preset geometric
means; these ratios are only meaningful on hardware comparable to the
baseline's (the file records its measurement environment).

The committed ``BENCH_PR2.json`` at the repository root is the
reference report for the PR 2 hot-path overhaul; regenerate it with::

    repro bench --out BENCH_PR2.json

``repro bench --parallel`` runs the *parallel* suite instead
(:func:`run_parallel_suite`): every cell is re-solved by the
multiprocessing driver in deterministic mode and hard-gated against the
sequential engine — exact replay (cost, schedule, counters) on the
LIFO presets, cost parity plus run-to-run reproducibility on the
best-first presets, whose shard-interleaved counters legitimately
differ (see ``docs/PARALLEL.md``) — and the exhaustive cells are then
timed in throughput mode across worker counts.  The committed
``BENCH_PR3.json`` is that suite's reference report; its ``cpus`` field
records the parallelism actually available when it was measured, which
bounds any honest speedup reading.
"""

from __future__ import annotations

import gc
import json
import math
import os
import platform as _platform
import sys
import time
from dataclasses import dataclass

from ..core.engine import BranchAndBound
from ..core.params import BnBParameters
from ..core.resources import ResourceBounds
from ..errors import ReproError
from ..model.compile import CompiledProblem, compile_problem
from ..model.platform import shared_bus_platform
from ..obs import Observability, PhaseProfiler
from ..workload.generator import generate_task_graph
from ..workload.spec import WorkloadSpec
from ..workload.suites import spec_for_profile

__all__ = [
    "BenchInstance",
    "BENCH_INSTANCES",
    "QUICK_INSTANCES",
    "BASELINE_PATH",
    "bench_params",
    "parallel_params",
    "load_baseline",
    "run_instance",
    "run_suite",
    "run_parallel_instance",
    "run_parallel_suite",
    "run_transposition_instance",
    "run_transposition_suite",
    "run_live_overhead_instance",
    "run_live_overhead_suite",
    "run_array_instance",
    "run_array_suite",
    "DupfreeInstance",
    "DUPFREE_INSTANCES",
    "DUPFREE_QUICK",
    "run_dupfree_instance",
    "run_dupfree_suite",
    "pin_thread_env",
    "check_against_golden",
    "golden_from_report",
]

#: BLAS/OpenMP pool-size variables pinned by :func:`pin_thread_env`.
_THREAD_ENV_VARS = (
    "OMP_NUM_THREADS",
    "OPENBLAS_NUM_THREADS",
    "MKL_NUM_THREADS",
    "NUMEXPR_NUM_THREADS",
    "VECLIB_MAXIMUM_THREADS",
)


def pin_thread_env() -> dict[str, str]:
    """Pin numpy/BLAS thread pools for stable single-core timings.

    Vectorized kernels would otherwise let the BLAS runtime spin up a
    pool sized to the machine, adding run-to-run noise (and cross-core
    migration stalls) to benchmarks whose claim is explicitly
    *single-core* throughput.  Values already exported by the caller
    win — ``setdefault`` only fills the gaps — and the effective
    settings are returned so every bench report can record the
    environment it was measured under.
    """
    for var in _THREAD_ENV_VARS:
        os.environ.setdefault(var, "1")
    return {var: os.environ[var] for var in _THREAD_ENV_VARS}

#: Per-solve safety cap for exhaustive cells; they are sized to finish
#: well under it, so their counts are never truncated.
_RESOURCES = ResourceBounds(max_vertices=2_000_000, time_limit=300.0)

#: Default location of the committed pre-PR throughput baseline.
BASELINE_PATH = os.path.join("benchmarks", "baseline_pre_pr.json")

_PRESETS = {
    "lifo-lb1": BnBParameters.paper_default,
    "llb-lb1": BnBParameters.paper_llb,
    "lifo-lb0": BnBParameters.paper_lb0,
}


def bench_params(
    preset: str, max_vertices: int | None = None
) -> BnBParameters:
    """Resolve a preset name to parameters with the bench resource cap.

    ``max_vertices`` switches to a capped fixed-work-budget cell: the
    search truncates quietly at the cap instead of failing.
    """
    try:
        factory = _PRESETS[preset]
    except KeyError:
        raise ReproError(
            f"unknown bench preset {preset!r}; choose from {sorted(_PRESETS)}"
        ) from None
    if max_vertices is None:
        return factory(resources=_RESOURCES)
    return factory(resources=ResourceBounds(
        max_vertices=max_vertices,
        time_limit=300.0,
        fail_on_exhaustion=False,
    ))


@dataclass(frozen=True)
class BenchInstance:
    """One fixed-seed benchmark cell: a workload draw and a preset.

    ``num_tasks``/``depth`` override the profile's generator spec (the
    "large" cells draw bigger graphs than any stock profile).
    ``max_vertices`` makes the cell a capped fixed-work-budget one.
    """

    name: str
    profile: str
    seed: int
    processors: int
    preset: str
    num_tasks: tuple[int, int] | None = None
    depth: tuple[int, int] | None = None
    max_vertices: int | None = None

    def spec_changes(self) -> dict:
        changes: dict = {}
        if self.num_tasks is not None:
            changes["num_tasks"] = self.num_tasks
        if self.depth is not None:
            changes["depth"] = self.depth
        if changes:
            changes["name"] = f"{self.profile}-bench"
        return changes

    def problem(self) -> CompiledProblem:
        spec = spec_for_profile(self.profile, **self.spec_changes())
        graph = generate_task_graph(spec, self.seed)
        return compile_problem(graph, shared_bus_platform(self.processors))

    def params(self) -> BnBParameters:
        return bench_params(self.preset, self.max_vertices)


_LARGE24 = {"num_tasks": (24, 26), "depth": (9, 12)}
_LARGE26 = {"num_tasks": (26, 28), "depth": (10, 13)}

#: The full suite.  Seeds are fixed forever — the golden counts depend
#: on them — and chosen so the cells span the engine's operating range:
#: m = 2..6 processors, 13..26 tasks, exhaustive and capped searches,
#: across the three parameter presets.
BENCH_INSTANCES: tuple[BenchInstance, ...] = (
    # LLB/LB1 — the paper's best-first configuration (headline group).
    BenchInstance("paper-s9-m3-llb-lb1", "paper", 9, 3, "llb-lb1"),
    BenchInstance("paper-s1-m4-llb-lb1", "paper", 1, 4, "llb-lb1"),
    BenchInstance("paper-s9-m6-llb-lb1", "paper", 9, 6, "llb-lb1",
                  max_vertices=120_000),
    BenchInstance("scaled-s11-m3-llb-lb1", "scaled", 11, 3, "llb-lb1"),
    BenchInstance("large24-s1-m4-llb-lb1", "paper", 1, 4, "llb-lb1",
                  max_vertices=120_000, **_LARGE24),
    BenchInstance("large24-s1-m6-llb-lb1", "paper", 1, 6, "llb-lb1",
                  max_vertices=120_000, **_LARGE24),
    BenchInstance("large26-s2-m2-llb-lb1", "paper", 2, 2, "llb-lb1",
                  max_vertices=120_000, **_LARGE26),
    # LIFO/LB1 — the paper's depth-first default.
    BenchInstance("scaled-s0-m2-lifo-lb1", "scaled", 0, 2, "lifo-lb1"),
    BenchInstance("scaled-s11-m3-lifo-lb1", "scaled", 11, 3, "lifo-lb1"),
    BenchInstance("paper-s13-m2-lifo-lb1", "paper", 13, 2, "lifo-lb1"),
    # LIFO/LB0 — the cheap-bound configuration.
    BenchInstance("scaled-s0-m2-lifo-lb0", "scaled", 0, 2, "lifo-lb0"),
)

#: CI smoke subset (``--quick``): one instance per preset, small cells.
QUICK_INSTANCES: tuple[BenchInstance, ...] = (
    BENCH_INSTANCES[0],
    BENCH_INSTANCES[7],
    BENCH_INSTANCES[10],
)


def load_baseline(path: str = BASELINE_PATH) -> dict | None:
    """Read the committed pre-PR throughput baseline (None if absent)."""
    try:
        with open(path) as fh:
            data = json.load(fh)
    except OSError:
        return None
    return data if isinstance(data, dict) else None


def _timed_solve(params: BnBParameters, problem: CompiledProblem,
                 fused: bool, repeats: int):
    """Best-of-``repeats`` wall clock for one configuration.

    The cyclic collector is paused during each timed solve (and run
    between them): full collections scan every live frontier entry at
    unpredictable points, and that noise would otherwise swamp the
    per-vertex costs this suite tracks.
    """
    best = math.inf
    result = None
    for _ in range(repeats):
        solver = BranchAndBound(params, fused=fused)
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            t0 = time.perf_counter()
            result = solver.solve(problem)
            dt = time.perf_counter() - t0
        finally:
            if gc_was_enabled:
                gc.enable()
        gc.collect()
        if dt < best:
            best = dt
    return result, best


def run_instance(inst: BenchInstance, repeats: int = 3) -> dict:
    """Benchmark one instance; raises :class:`ReproError` on divergence."""
    problem = inst.problem()
    params = inst.params()

    ref, ref_s = _timed_solve(params, problem, fused=False, repeats=repeats)
    opt, opt_s = _timed_solve(params, problem, fused=True, repeats=repeats)

    oracle = (ref.stats.generated, ref.stats.explored, ref.best_cost,
              ref.proc_of, ref.start)
    fused = (opt.stats.generated, opt.stats.explored, opt.best_cost,
             opt.proc_of, opt.start)
    if oracle != fused:
        raise ReproError(
            f"bench {inst.name}: fused path diverged from the reference "
            f"oracle: {oracle[:3]} != {fused[:3]}"
        )
    if ref.stats.time_limit_hit:
        raise ReproError(
            f"bench {inst.name}: reference run hit the time limit; "
            "wall-clock truncation is not search-order deterministic"
        )
    if ref.stats.truncated and inst.max_vertices is None:
        raise ReproError(
            f"bench {inst.name}: reference run hit a resource cap; "
            "instance is too large to serve as an exhaustive oracle"
        )

    prof = PhaseProfiler()
    BranchAndBound(
        params, obs=Observability(profiler=prof), fused=True
    ).solve(problem)
    phase_split = {
        name: round(seconds, 6)
        for name, seconds in prof.totals.items()
        if seconds > 0.0
    }

    gen = opt.stats.generated
    return {
        "name": inst.name,
        "profile": inst.profile,
        "seed": inst.seed,
        "processors": inst.processors,
        "preset": inst.preset,
        "tasks": problem.n,
        "capped": inst.max_vertices,
        "generated": gen,
        "explored": opt.stats.explored,
        "best_cost": opt.best_cost,
        "ref_seconds": round(ref_s, 6),
        "opt_seconds": round(opt_s, 6),
        "speedup": round(ref_s / opt_s, 3) if opt_s > 0 else None,
        "ref_vertices_per_sec": round(gen / ref_s) if ref_s > 0 else None,
        "opt_vertices_per_sec": round(gen / opt_s) if opt_s > 0 else None,
        "phase_split": phase_split,
    }


def _geomean(values: list[float]) -> float | None:
    if not values:
        return None
    return math.exp(sum(math.log(v) for v in values) / len(values))


def run_suite(
    quick: bool = False,
    repeats: int = 3,
    baseline: dict | None = None,
) -> dict:
    """Run the (full or quick) suite; returns the JSON-ready report.

    ``baseline`` (see :func:`load_baseline`) annotates each row with the
    pre-PR engine's vertices/second and the resulting speedup.
    """
    instances = QUICK_INSTANCES if quick else BENCH_INSTANCES
    rows = [run_instance(inst, repeats=repeats) for inst in instances]
    base_rows = (baseline or {}).get("instances", {})
    for row in rows:
        base = base_rows.get(row["name"])
        if base and base.get("vertices_per_sec") and row["opt_vertices_per_sec"]:
            row["pre_pr_vertices_per_sec"] = base["vertices_per_sec"]
            row["speedup_vs_pre_pr"] = round(
                row["opt_vertices_per_sec"] / base["vertices_per_sec"], 3
            )
    total_gen = sum(r["generated"] for r in rows)
    total_ref = sum(r["ref_seconds"] for r in rows)
    total_opt = sum(r["opt_seconds"] for r in rows)
    summary = {
        "instances": len(rows),
        "total_generated": total_gen,
        "ref_seconds": round(total_ref, 6),
        "opt_seconds": round(total_opt, 6),
        "overall_speedup": (
            round(total_ref / total_opt, 3) if total_opt > 0 else None
        ),
    }
    by_preset: dict[str, list[float]] = {}
    for row in rows:
        ratio = row.get("speedup_vs_pre_pr")
        if ratio:
            by_preset.setdefault(row["preset"], []).append(ratio)
    if by_preset:
        summary["speedup_vs_pre_pr_geomean"] = {
            preset: round(_geomean(vals), 3)
            for preset, vals in sorted(by_preset.items())
        }
    report = {
        "schema": "repro-bench-pr2/1",
        "quick": quick,
        "repeats": repeats,
        "python": sys.version.split()[0],
        "machine": _platform.machine(),
        "instances": rows,
        "summary": summary,
    }
    if baseline is not None:
        report["baseline"] = {
            k: baseline.get(k)
            for k in ("commit", "measured_with", "python", "machine")
        }
    return report


# ---------------------------------------------------------------------------
# Parallel suite (``repro bench --parallel``)
# ---------------------------------------------------------------------------

#: Presets whose deterministic-mode replay must be *bit-identical* to
#: the sequential engine — schedule and per-counter.  The best-first
#: (LLB) presets are gated on cost parity and run-to-run
#: reproducibility instead: their global pop sequence interleaves
#: shard-local sequences, so counter-exact replay is impossible by
#: construction (docs/PARALLEL.md has the argument).
_EXACT_REPLAY_PRESETS = ("lifo-lb1", "lifo-lb0")


def parallel_params(inst: BenchInstance) -> BnBParameters:
    """Preset parameters with the wall-clock limit stripped.

    Deterministic parallel mode refuses timing-dependent truncation
    (a ``time_limit`` would cut the search at a non-reproducible
    vertex), so parallel cells run under the vertex cap alone.  The
    exhaustive cells finish far below the safety cap either way.
    """
    factory = _PRESETS[inst.preset]
    if inst.max_vertices is None:
        return factory(resources=ResourceBounds(max_vertices=2_000_000))
    return factory(resources=ResourceBounds(
        max_vertices=inst.max_vertices, fail_on_exhaustion=False
    ))


def _timed_parallel(make_solver, problem, repeats: int):
    """Best-of-``repeats`` wall clock for a parallel solver factory."""
    best = math.inf
    result = None
    report = None
    for _ in range(repeats):
        solver = make_solver()
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            t0 = time.perf_counter()
            result = solver.solve(problem)
            dt = time.perf_counter() - t0
        finally:
            if gc_was_enabled:
                gc.enable()
        gc.collect()
        if dt < best:
            best = dt
            report = solver.last_report
    return result, best, report


def _replay_fingerprint(result) -> tuple:
    return (
        result.best_cost,
        result.proc_of,
        result.start,
        result.stats.generated,
        result.stats.explored,
        result.stats.pruned_total,
    )


def run_parallel_instance(
    inst: BenchInstance,
    workers: tuple[int, ...] = (1, 2, 4),
    split_depth: int = 2,
    repeats: int = 1,
) -> dict:
    """Benchmark one cell under the parallel driver.

    Raises :class:`ReproError` on any parity violation; returns the
    JSON-ready row otherwise.  Throughput timings are collected only
    for exhaustive cells — a capped throughput run distributes the
    vertex budget across shards, so its work differs from the
    sequential cell and a seconds-ratio would compare unlike work.
    """
    from ..core.parallel import ParallelBnB

    problem = inst.problem()
    params = parallel_params(inst)

    seq, seq_s = _timed_solve(params, problem, fused=True, repeats=repeats)

    det, det_s, det_report = _timed_parallel(
        lambda: ParallelBnB(params, workers=2, split_depth=split_depth),
        problem, repeats,
    )
    if det.best_cost != seq.best_cost:
        raise ReproError(
            f"parallel bench {inst.name}: deterministic mode cost "
            f"{det.best_cost!r} != sequential {seq.best_cost!r}"
        )
    exact = inst.preset in _EXACT_REPLAY_PRESETS
    if exact:
        if _replay_fingerprint(det) != _replay_fingerprint(seq):
            raise ReproError(
                f"parallel bench {inst.name}: deterministic replay is "
                f"not bit-identical to the sequential search"
            )
    else:
        rerun = ParallelBnB(
            params, workers=2, split_depth=split_depth
        ).solve(problem)
        if _replay_fingerprint(rerun) != _replay_fingerprint(det):
            raise ReproError(
                f"parallel bench {inst.name}: deterministic mode is not "
                f"reproducible run-to-run"
            )

    row = {
        "name": inst.name,
        "preset": inst.preset,
        "processors": inst.processors,
        "tasks": problem.n,
        "capped": inst.max_vertices,
        "generated": seq.stats.generated,
        "best_cost": seq.best_cost,
        "seq_seconds": round(seq_s, 6),
        "deterministic": {
            "workers": 2,
            "split_depth": split_depth,
            "seconds": round(det_s, 6),
            "shards": det_report.shards,
            "speculative_hits": det_report.speculative_hits,
            "reruns": det_report.reruns,
            "replay": "exact" if exact else "reproducible",
        },
        "throughput": None,
    }

    if inst.max_vertices is None:
        timings = {}
        for w in workers:
            thr, thr_s, thr_report = _timed_parallel(
                lambda w=w: ParallelBnB(
                    params, workers=w, split_depth=split_depth,
                    deterministic=False,
                ),
                problem, repeats,
            )
            if thr.best_cost != seq.best_cost:
                raise ReproError(
                    f"parallel bench {inst.name}: throughput mode at "
                    f"{w} workers found {thr.best_cost!r}, sequential "
                    f"found {seq.best_cost!r}"
                )
            timings[str(w)] = {
                "seconds": round(thr_s, 6),
                "speedup": round(seq_s / thr_s, 3) if thr_s > 0 else None,
                "shards": thr_report.shards,
                "shards_stale": thr_report.shards_stale,
            }
        row["throughput"] = timings
    return row


def run_parallel_suite(
    quick: bool = False,
    workers: tuple[int, ...] = (1, 2, 4),
    split_depth: int = 2,
    repeats: int = 1,
) -> dict:
    """Run the parallel bench suite; returns the JSON-ready report.

    The report's ``cpus`` field records the cores actually available to
    this process — speedups are only meaningful relative to it (a
    1-CPU container cannot show wall-clock gains, only overhead).
    """
    instances = QUICK_INSTANCES if quick else BENCH_INSTANCES
    rows = [
        run_parallel_instance(
            inst, workers=workers, split_depth=split_depth, repeats=repeats
        )
        for inst in instances
    ]
    best = None
    for row in rows:
        for w, cell in (row["throughput"] or {}).items():
            if cell["speedup"] is not None and (
                best is None or cell["speedup"] > best["speedup"]
            ):
                best = {
                    "name": row["name"],
                    "workers": int(w),
                    "speedup": cell["speedup"],
                }
    try:
        cpus = len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        cpus = os.cpu_count() or 1
    return {
        "schema": "repro-bench-pr3/1",
        "quick": quick,
        "repeats": repeats,
        "workers": list(workers),
        "split_depth": split_depth,
        "python": sys.version.split()[0],
        "machine": _platform.machine(),
        "cpus": cpus,
        "instances": rows,
        "summary": {
            "cells": len(rows),
            "deterministic_verified": len(rows),
            "exact_replay_cells": sum(
                1 for r in rows if r["deterministic"]["replay"] == "exact"
            ),
            "throughput_cells": sum(
                1 for r in rows if r["throughput"] is not None
            ),
            "best_throughput": best,
        },
    }


# ---------------------------------------------------------------------------
# Transposition suite (``repro bench --transposition``)
# ---------------------------------------------------------------------------


def run_transposition_instance(
    inst: BenchInstance,
    table_bytes: int = 64 << 20,
    policy: str = "depth",
    repeats: int = 3,
) -> dict:
    """Benchmark one cell with the transposition table off vs on.

    Three hard gates per cell (each a :class:`ReproError`):

    * fused/reference parity with the table ON — both engine paths must
      report identical counters, cost and schedule, proving the probe
      contract holds on a real workload;
    * cost parity OFF vs ON for exhaustive cells — duplicate pruning
      must not change the optimum (capped cells truncate at different
      vertices once pruning shrinks the stream, so only the gates above
      apply there);
    * ``generated(tt) <= generated(no-tt)`` for exhaustive cells — the
      table must never *add* work.

    Table telemetry is read from the reference parity run (one solve,
    windowed via ``spawn_mark``); by the parity gate the fused run's
    counters are identical.
    """
    problem = inst.problem()
    base_params = inst.params()
    tt_params = base_params.with_transposition(
        table_bytes=table_bytes, policy=policy
    )

    base, base_s = _timed_solve(base_params, problem, fused=True,
                                repeats=repeats)
    tt, tt_s = _timed_solve(tt_params, problem, fused=True, repeats=repeats)

    from ..core.transposition import find_transposition

    tt_rule = find_transposition(tt_params.dominance)
    mark = tt_rule.spawn_mark()
    ref = BranchAndBound(tt_params, fused=False).solve(problem)
    tel = tt_rule.telemetry_total(mark) or {}

    def fingerprint(res):
        return (
            res.stats.generated, res.stats.explored,
            res.stats.pruned_duplicate, res.best_cost,
            res.proc_of, res.start,
        )

    if fingerprint(ref) != fingerprint(tt):
        raise ReproError(
            f"tt bench {inst.name}: fused path diverged from the "
            f"reference oracle with the table on: "
            f"{fingerprint(ref)[:4]} != {fingerprint(tt)[:4]}"
        )
    exhaustive = inst.max_vertices is None and not base.stats.truncated
    if exhaustive:
        if tt.best_cost != base.best_cost:
            raise ReproError(
                f"tt bench {inst.name}: duplicate pruning changed the "
                f"optimum: {tt.best_cost!r} != {base.best_cost!r}"
            )
        if tt.stats.generated > base.stats.generated:
            raise ReproError(
                f"tt bench {inst.name}: table increased the search "
                f"({tt.stats.generated} > {base.stats.generated} vertices)"
            )

    filled = int(tel.get("tt_filled", 0))
    capacity = int(tel.get("tt_capacity", 0))
    return {
        "name": inst.name,
        "preset": inst.preset,
        "processors": inst.processors,
        "tasks": problem.n,
        "capped": inst.max_vertices,
        "exhaustive": exhaustive,
        "base": {
            "generated": base.stats.generated,
            "explored": base.stats.explored,
            "best_cost": base.best_cost,
            "seconds": round(base_s, 6),
        },
        "tt": {
            "generated": tt.stats.generated,
            "explored": tt.stats.explored,
            "best_cost": tt.best_cost,
            "seconds": round(tt_s, 6),
            "duplicates_pruned": tt.stats.pruned_duplicate,
            "telemetry": {k: int(v) for k, v in sorted(tel.items())},
        },
        "vertex_reduction": (
            round(base.stats.generated / tt.stats.generated, 3)
            if tt.stats.generated else None
        ),
        "time_ratio": round(tt_s / base_s, 3) if base_s > 0 else None,
        "table_filled": bool(
            capacity and (filled >= capacity or tel.get("tt_evictions")
                          or tel.get("tt_rejects"))
        ),
    }


def run_transposition_suite(
    quick: bool = False,
    table_bytes: int = 64 << 20,
    policy: str = "depth",
    repeats: int = 3,
) -> dict:
    """Run the duplicate-detection suite; returns the JSON-ready report.

    The OFF timings are the PR 3 engine unchanged (the fused path with
    ``NoDominance``), so ``time_ratio`` per cell *is* the wall-clock
    delta vs the pre-PR baseline on this hardware.  The committed
    ``BENCH_PR4.json`` at the repository root is this suite's reference
    report; regenerate it with::

        repro bench --transposition --out BENCH_PR4.json
    """
    instances = QUICK_INSTANCES if quick else BENCH_INSTANCES
    rows = [
        run_transposition_instance(
            inst, table_bytes=table_bytes, policy=policy, repeats=repeats
        )
        for inst in instances
    ]
    exhaustive = [r for r in rows if r["exhaustive"]]
    unfilled = [r for r in rows if not r["table_filled"]]
    summary = {
        "cells": len(rows),
        "exhaustive_cells": len(exhaustive),
        "total_base_generated": sum(r["base"]["generated"] for r in rows),
        "total_tt_generated": sum(r["tt"]["generated"] for r in rows),
        "duplicates_pruned": sum(
            r["tt"]["duplicates_pruned"] for r in rows
        ),
        "vertex_reduction_geomean": (
            round(_geomean(
                [r["vertex_reduction"] for r in exhaustive
                 if r["vertex_reduction"]]
            ), 3) if exhaustive else None
        ),
        "time_ratio_geomean_unfilled": (
            round(_geomean(
                [r["time_ratio"] for r in unfilled if r["time_ratio"]]
            ), 3) if unfilled else None
        ),
    }
    return {
        "schema": "repro-bench-pr4/1",
        "quick": quick,
        "repeats": repeats,
        "table_bytes": table_bytes,
        "policy": policy,
        "python": sys.version.split()[0],
        "machine": _platform.machine(),
        "instances": rows,
        "summary": summary,
    }


# ---------------------------------------------------------------------------
# Live-monitor overhead suite (``repro bench --live``)
# ---------------------------------------------------------------------------


def run_live_overhead_instance(
    inst: BenchInstance,
    repeats: int = 3,
    interval: float = 1.0,
) -> dict:
    """Time one cell bare vs with a :class:`~repro.obs.LiveMonitor`.

    The monitored run must be the *same search*: identical generated /
    explored counts and best cost, or the cell fails — a monitor that
    changes the search is a bug, not overhead.  The live sink rejects
    the sampled hot-path kinds, so the engine keeps the fused path; the
    residual cost is the ``accepts()`` predicate plus one sampled
    snapshot per ``interval`` seconds.
    """
    from ..obs import LiveMonitor

    problem = inst.problem()
    params = inst.params()

    base, base_s = _timed_solve(params, problem, fused=True, repeats=repeats)

    best = math.inf
    live_result = None
    samples = 0
    for _ in range(repeats):
        monitor = LiveMonitor(interval=interval)
        solver = BranchAndBound(
            params, obs=Observability(live=monitor), fused=True
        )
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            t0 = time.perf_counter()
            live_result = solver.solve(problem)
            dt = time.perf_counter() - t0
        finally:
            if gc_was_enabled:
                gc.enable()
        gc.collect()
        if dt < best:
            best = dt
            samples = monitor.samples

    bare = (base.stats.generated, base.stats.explored, base.best_cost)
    monitored = (live_result.stats.generated, live_result.stats.explored,
                 live_result.best_cost)
    if bare != monitored:
        raise ReproError(
            f"live bench {inst.name}: monitored search diverged from "
            f"the bare one: {bare} != {monitored}"
        )

    overhead = (best / base_s - 1.0) if base_s > 0 else None
    return {
        "name": inst.name,
        "preset": inst.preset,
        "processors": inst.processors,
        "tasks": problem.n,
        "capped": inst.max_vertices,
        "generated": base.stats.generated,
        "explored": base.stats.explored,
        "best_cost": base.best_cost,
        "base_seconds": round(base_s, 6),
        "live_seconds": round(best, 6),
        "overhead": round(overhead, 4) if overhead is not None else None,
        "samples": samples,
    }


def run_live_overhead_suite(
    quick: bool = False,
    repeats: int = 3,
    interval: float = 1.0,
    budget: float = 0.02,
) -> dict:
    """Measure monitor overhead across the suite (``BENCH_PR6.json``).

    ``budget`` is the acceptance gate from the PR contract: the geomean
    of per-cell wall-clock ratios (live/bare) must stay within
    ``1 + budget``.  The report records both the geomean and the
    verdict; the CLI exits nonzero when the budget is blown.  Regenerate
    the committed report with::

        repro bench --live --out BENCH_PR6.json
    """
    instances = QUICK_INSTANCES if quick else BENCH_INSTANCES
    rows = [
        run_live_overhead_instance(inst, repeats=repeats, interval=interval)
        for inst in instances
    ]
    ratios = [
        row["live_seconds"] / row["base_seconds"]
        for row in rows
        if row["base_seconds"] > 0
    ]
    geomean = _geomean(ratios)
    overhead = (geomean - 1.0) if geomean is not None else None
    return {
        "schema": "repro-bench-pr6/1",
        "quick": quick,
        "repeats": repeats,
        "interval": interval,
        "python": sys.version.split()[0],
        "machine": _platform.machine(),
        "instances": rows,
        "summary": {
            "cells": len(rows),
            "geomean_time_ratio": (
                round(geomean, 4) if geomean is not None else None
            ),
            "geomean_overhead": (
                round(overhead, 4) if overhead is not None else None
            ),
            "budget": budget,
            "within_budget": (
                overhead is not None and overhead <= budget
            ),
        },
    }


# ---------------------------------------------------------------------------
# Array-engine suite (``repro bench --array``)
# ---------------------------------------------------------------------------


def _solve_fingerprint(result) -> tuple:
    return (
        result.stats.generated,
        result.stats.explored,
        result.stats.goals_evaluated,
        result.stats.pruned_children,
        result.stats.pruned_active,
        result.best_cost,
        result.proc_of,
        result.start,
    )


def run_array_instance(inst: BenchInstance, repeats: int = 3) -> dict:
    """Benchmark one cell across all three engine implementations.

    Four solves per cell: the unfused reference oracle (the PR 3
    exhaustive ground truth), the PR 2 fused object engine (the
    throughput baseline this PR is measured against), the numpy batch
    expander (``engine='array-numpy'``, the arena-only ablation arm)
    and the full array engine with the compiled chunk driver
    (``engine='array'``).  All four must report identical counters,
    cost and schedule — any divergence is a :class:`ReproError`, not a
    number in a table.
    """
    problem = inst.problem()
    params = inst.params()

    ref, ref_s = _timed_solve(params, problem, fused=False, repeats=1)
    obj, obj_s = _timed_solve(params, problem, fused=True, repeats=repeats)
    npy, npy_s = _timed_solve(
        params.evolve(engine="array-numpy"), problem, fused=True,
        repeats=repeats,
    )
    arr, arr_s = _timed_solve(
        params.evolve(engine="array"), problem, fused=True, repeats=repeats
    )

    oracle = _solve_fingerprint(ref)
    for label, res in (("object", obj), ("array-numpy", npy),
                       ("array", arr)):
        if _solve_fingerprint(res) != oracle:
            raise ReproError(
                f"array bench {inst.name}: {label} engine diverged from "
                f"the reference oracle: {oracle[:6]} != "
                f"{_solve_fingerprint(res)[:6]}"
            )
    if ref.stats.time_limit_hit:
        raise ReproError(
            f"array bench {inst.name}: reference run hit the time limit; "
            "wall-clock truncation is not search-order deterministic"
        )
    if ref.stats.truncated and inst.max_vertices is None:
        raise ReproError(
            f"array bench {inst.name}: reference run hit a resource cap; "
            "instance is too large to serve as an exhaustive oracle"
        )

    gen = arr.stats.generated
    return {
        "name": inst.name,
        "profile": inst.profile,
        "seed": inst.seed,
        "processors": inst.processors,
        "preset": inst.preset,
        "tasks": problem.n,
        "capped": inst.max_vertices,
        "generated": gen,
        "explored": arr.stats.explored,
        "best_cost": arr.best_cost,
        "ref_seconds": round(ref_s, 6),
        "object_seconds": round(obj_s, 6),
        "numpy_seconds": round(npy_s, 6),
        # ``opt_seconds`` is the canonical key ``--compare`` extracts, so
        # diffs against BENCH_PR2.json read fused-object -> array.
        "opt_seconds": round(arr_s, 6),
        "object_vertices_per_sec": round(gen / obj_s) if obj_s > 0 else None,
        "numpy_vertices_per_sec": round(gen / npy_s) if npy_s > 0 else None,
        "opt_vertices_per_sec": round(gen / arr_s) if arr_s > 0 else None,
        "speedup_vs_object": (
            round(obj_s / arr_s, 3) if arr_s > 0 else None
        ),
        "numpy_speedup_vs_object": (
            round(obj_s / npy_s, 3) if npy_s > 0 else None
        ),
    }


def run_array_suite(
    quick: bool = False,
    repeats: int = 3,
    target: float = 3.0,
) -> dict:
    """Run the array-engine suite; returns the JSON-ready report.

    Every cell is quadruple-solved and parity-gated (see
    :func:`run_array_instance`); the summary carries the ablation
    geomeans — arena + numpy batching alone vs arena + batching + the
    compiled chunk driver, both against the PR 2 fused object engine —
    and the verdict against ``target`` (the PR contract's >= 3x geomean
    single-core throughput).  The committed ``BENCH_PR7.json`` is this
    suite's reference report; regenerate it with::

        repro bench --array --out BENCH_PR7.json
    """
    thread_env = pin_thread_env()
    instances = QUICK_INSTANCES if quick else BENCH_INSTANCES
    rows = [run_array_instance(inst, repeats=repeats) for inst in instances]
    array_ratios = [
        r["speedup_vs_object"] for r in rows if r["speedup_vs_object"]
    ]
    numpy_ratios = [
        r["numpy_speedup_vs_object"] for r in rows
        if r["numpy_speedup_vs_object"]
    ]
    geomean_array = _geomean(array_ratios)
    geomean_numpy = _geomean(numpy_ratios)
    return {
        "schema": "repro-bench-pr7/1",
        "quick": quick,
        "repeats": repeats,
        "python": sys.version.split()[0],
        "machine": _platform.machine(),
        "thread_env": thread_env,
        "instances": rows,
        "summary": {
            "cells": len(rows),
            "parity_gated_cells": len(rows),
            "total_generated": sum(r["generated"] for r in rows),
            "ablation": {
                "arena_numpy_speedup_geomean": (
                    round(geomean_numpy, 3)
                    if geomean_numpy is not None else None
                ),
                "arena_native_speedup_geomean": (
                    round(geomean_array, 3)
                    if geomean_array is not None else None
                ),
            },
            "target_speedup": target,
            "target_met": (
                geomean_array is not None and geomean_array >= target
            ),
        },
    }


# ---------------------------------------------------------------------------
# Duplicate-free (allocation-ordered) suite (``repro bench --dupfree``)
# ---------------------------------------------------------------------------

#: Generator settings for the dupfree suite (mirrors the fault-suite's
#: "hard" draw): tight deadlines and real communication, so the EDF
#: incumbent is not already optimal and the trees are duplicate-rich.
#: Smaller than ``BENCH_INSTANCES`` — the AO tree multiplies each
#: partial placement by its compatible allocations, so the 20+-task
#: cells there are out of its reach by design.
_DUPFREE_SPEC = {
    "num_tasks": (8, 10),
    "depth": (3, 5),
    "ccr": 1.0,
    "laxity_ratio": 1.05,
}


@dataclass(frozen=True)
class DupfreeInstance:
    """One head-to-head cell: default+TT vs the AO duplicate-free tree.

    ``expect_win`` pins the cells where ``generated(AO) <=
    generated(default+TT)`` is part of the suite's hard gate; the
    remaining cells are the honest counter-examples (duplicate-light
    trees where the allocation prefix overhead dominates) and are
    reported without a vertex gate.
    """

    name: str
    seed: int
    processors: int
    expect_win: bool

    def problem(self) -> CompiledProblem:
        spec = WorkloadSpec(name=f"dupfree-{self.name}", **_DUPFREE_SPEC)
        graph = generate_task_graph(spec, self.seed)
        return compile_problem(graph, shared_bus_platform(self.processors))


DUPFREE_INSTANCES: tuple[DupfreeInstance, ...] = (
    DupfreeInstance("hard-s0-m2", 0, 2, expect_win=True),
    DupfreeInstance("hard-s1-m2", 1, 2, expect_win=True),
    DupfreeInstance("hard-s4-m2", 4, 2, expect_win=True),
    DupfreeInstance("hard-s9-m2", 9, 2, expect_win=True),
    DupfreeInstance("hard-s0-m3", 0, 3, expect_win=True),
    DupfreeInstance("hard-s3-m3", 3, 3, expect_win=True),
    DupfreeInstance("hard-s4-m3", 4, 3, expect_win=True),
    DupfreeInstance("hard-s9-m3", 9, 3, expect_win=True),
    DupfreeInstance("hard-s5-m2", 5, 2, expect_win=False),
    DupfreeInstance("hard-s8-m2", 8, 2, expect_win=False),
    DupfreeInstance("hard-s5-m3", 5, 3, expect_win=False),
)

DUPFREE_QUICK: tuple[DupfreeInstance, ...] = (
    DUPFREE_INSTANCES[0],
    DUPFREE_INSTANCES[6],
    DUPFREE_INSTANCES[8],
)


def run_dupfree_instance(
    inst: DupfreeInstance,
    table_bytes: int = 64 << 20,
    policy: str = "depth",
    ml_cap: int = 256,
    repeats: int = 3,
) -> dict:
    """Benchmark one cell: default+TT vs AO vs AO with a memory cap.

    Hard gates per cell (each a :class:`ReproError`):

    * every run completes exhaustively and reports the same optimum
      (AO searches a structurally different tree, so cost parity is the
      soundness claim — compared to 1e-9, the oracle-suite tolerance);
    * the AO runs prune **zero** duplicates (nothing to prune in a
      duplicate-free space) while the TT run prunes at least one on
      duplicate-rich cells (``expect_win``), proving the comparison is
      not vacuous;
    * the array engine falls back to the object core for AO
      bit-for-bit (identical cost, schedule and counters);
    * on ``expect_win`` cells, ``generated(AO) <= generated(TT)``.

    The memory-limited run re-solves the AO cell with ``S = ML`` at
    ``ml_cap`` open vertices: exactness at a bounded frontier is the
    degrade-mode story (vs the TT's degrade-on-full), and its
    ``peak_active`` is reported alongside.
    """
    from ..core.selection import MemoryLimitedSelection

    problem = inst.problem()
    tt_params = BnBParameters.paper_default(
        resources=_RESOURCES
    ).with_transposition(table_bytes=table_bytes, policy=policy)
    ao_params = BnBParameters.dupfree(resources=_RESOURCES)
    ml_params = BnBParameters.dupfree(
        selection=MemoryLimitedSelection(cap=ml_cap), resources=_RESOURCES
    )

    tt, tt_s = _timed_solve(tt_params, problem, fused=True, repeats=repeats)
    ao, ao_s = _timed_solve(ao_params, problem, fused=True, repeats=repeats)
    ml, ml_s = _timed_solve(ml_params, problem, fused=True, repeats=repeats)

    for label, res in (("tt", tt), ("ao", ao), ("ml", ml)):
        if res.stats.truncated or res.stats.time_limit_hit:
            raise ReproError(
                f"dupfree bench {inst.name}: {label} run truncated; "
                "every cell must be exhaustive for cost parity to gate"
            )
    if abs(ao.best_cost - tt.best_cost) > 1e-9:
        raise ReproError(
            f"dupfree bench {inst.name}: AO optimum diverged from the "
            f"default+TT optimum: {ao.best_cost!r} != {tt.best_cost!r}"
        )
    if abs(ml.best_cost - ao.best_cost) > 1e-9:
        raise ReproError(
            f"dupfree bench {inst.name}: memory-limited AO changed the "
            f"optimum: {ml.best_cost!r} != {ao.best_cost!r}"
        )
    if ao.stats.pruned_duplicate or ml.stats.pruned_duplicate:
        raise ReproError(
            f"dupfree bench {inst.name}: duplicate prunes reported in a "
            f"duplicate-free space ({ao.stats.pruned_duplicate})"
        )
    if inst.expect_win and tt.stats.pruned_duplicate == 0:
        raise ReproError(
            f"dupfree bench {inst.name}: the classic tree pruned no "
            "duplicates; cell cannot witness the head-to-head claim"
        )
    if inst.expect_win and ao.stats.generated > tt.stats.generated:
        raise ReproError(
            f"dupfree bench {inst.name}: AO generated more vertices than "
            f"default+TT ({ao.stats.generated} > {tt.stats.generated})"
        )

    fb = BranchAndBound(ao_params.evolve(engine="array")).solve(problem)
    if (
        (fb.best_cost, fb.proc_of, fb.start, fb.stats.generated,
         fb.stats.explored)
        != (ao.best_cost, ao.proc_of, ao.start, ao.stats.generated,
            ao.stats.explored)
    ):
        raise ReproError(
            f"dupfree bench {inst.name}: array-engine fallback diverged "
            "from the object core on the AO cell"
        )

    return {
        "name": inst.name,
        "seed": inst.seed,
        "processors": inst.processors,
        "tasks": problem.n,
        "expect_win": inst.expect_win,
        "tt": {
            "generated": tt.stats.generated,
            "explored": tt.stats.explored,
            "best_cost": tt.best_cost,
            "seconds": round(tt_s, 6),
            "duplicates_pruned": tt.stats.pruned_duplicate,
        },
        "ao": {
            "generated": ao.stats.generated,
            "explored": ao.stats.explored,
            "best_cost": ao.best_cost,
            "seconds": round(ao_s, 6),
            "peak_active": ao.stats.peak_active,
        },
        "ao_ml": {
            "cap": ml_cap,
            "generated": ml.stats.generated,
            "explored": ml.stats.explored,
            "seconds": round(ml_s, 6),
            "peak_active": ml.stats.peak_active,
        },
        "vertex_reduction": (
            round(tt.stats.generated / ao.stats.generated, 3)
            if ao.stats.generated else None
        ),
        "time_ratio": round(ao_s / tt_s, 3) if tt_s > 0 else None,
    }


def run_dupfree_suite(
    quick: bool = False,
    table_bytes: int = 64 << 20,
    policy: str = "depth",
    ml_cap: int = 256,
    repeats: int = 3,
) -> dict:
    """Run the duplicate-free head-to-head suite (JSON-ready report).

    ``vertex_reduction`` per cell is ``generated(default+TT) /
    generated(AO)``; the expected-win cells gate ``>= 1`` hard, and the
    remaining cells document where the classic tree (plus table) still
    wins, so the summary geomean is an honest aggregate, not a curated
    one.  The committed ``BENCH_PR8.json`` at the repository root is
    this suite's reference report; regenerate it with::

        repro bench --dupfree --out BENCH_PR8.json
    """
    instances = DUPFREE_QUICK if quick else DUPFREE_INSTANCES
    rows = [
        run_dupfree_instance(
            inst, table_bytes=table_bytes, policy=policy,
            ml_cap=ml_cap, repeats=repeats,
        )
        for inst in instances
    ]
    wins = [r for r in rows if r["expect_win"]]
    reductions = [r["vertex_reduction"] for r in rows if r["vertex_reduction"]]
    return {
        "schema": "repro-bench-pr8/1",
        "quick": quick,
        "repeats": repeats,
        "table_bytes": table_bytes,
        "policy": policy,
        "ml_cap": ml_cap,
        "python": sys.version.split()[0],
        "machine": _platform.machine(),
        "instances": rows,
        "summary": {
            "cells": len(rows),
            "expected_win_cells": len(wins),
            "total_tt_generated": sum(r["tt"]["generated"] for r in rows),
            "total_ao_generated": sum(r["ao"]["generated"] for r in rows),
            "duplicates_pruned_by_tt": sum(
                r["tt"]["duplicates_pruned"] for r in rows
            ),
            "ao_duplicates_pruned": 0,
            "vertex_reduction_geomean": (
                round(_geomean(reductions), 3) if reductions else None
            ),
            "vertex_reduction_geomean_wins": (
                round(_geomean(
                    [r["vertex_reduction"] for r in wins
                     if r["vertex_reduction"]]
                ), 3) if wins else None
            ),
            "ml_peak_active_max": max(
                r["ao_ml"]["peak_active"] for r in rows
            ),
        },
    }


def golden_from_report(report: dict) -> dict:
    """Extract the machine-independent counts worth pinning."""
    return {
        "schema": "repro-bench-golden/1",
        "instances": {
            r["name"]: {
                "generated": r["generated"],
                "explored": r["explored"],
                "best_cost": r["best_cost"],
            }
            for r in report["instances"]
        },
    }


def check_against_golden(report: dict, golden: dict) -> list[str]:
    """Compare a report to pinned counts; returns drift descriptions."""
    problems: list[str] = []
    pinned = golden.get("instances", {})
    for row in report["instances"]:
        expect = pinned.get(row["name"])
        if expect is None:
            problems.append(f"{row['name']}: no golden entry")
            continue
        for key in ("generated", "explored", "best_cost"):
            if expect[key] != row[key]:
                problems.append(
                    f"{row['name']}: {key} drifted "
                    f"(golden {expect[key]!r}, got {row[key]!r})"
                )
    return problems


def load_golden(path: str) -> dict:
    with open(path) as fh:
        return json.load(fh)


def write_json(data: dict, path: str) -> None:
    with open(path, "w") as fh:
        json.dump(data, fh, indent=2, sort_keys=False)
        fh.write("\n")
