"""The greedy EDF heuristic of Section 4.4.

Used both as the reference baseline in every plot of the paper and as the
initial upper-bound solution cost ``U`` of the B&B algorithm:

    "For each scheduling step, the EDF algorithm selected one task from
    all schedulable tasks.  The task with the closest absolute deadline
    was selected, and then scheduled on the processor that yielded the
    earliest start time.  The set of schedulable tasks was then updated."

Runs in O(n^2 * m) on the compiled problem.
"""

from __future__ import annotations

from ..model.compile import CompiledProblem
from .listsched import HeuristicResult, SchedulingState, best_processor

__all__ = ["edf_schedule"]


def edf_schedule(problem: CompiledProblem) -> HeuristicResult:
    """Greedy earliest-deadline-first schedule of the whole task set.

    Ready tasks (all predecessors placed) compete by absolute deadline;
    ties are broken by arrival time, then task index, keeping the
    baseline deterministic.  Each winner is appended to the processor
    giving it the earliest start time.
    """
    state = SchedulingState(problem)
    order: list[int] = []
    deadline = problem.deadline
    arrival = problem.arrival
    for _ in range(problem.n):
        ready = state.ready_tasks()
        task = min(ready, key=lambda i: (deadline[i], arrival[i], i))
        proc, _ = best_processor(state, task)
        state.place(task, proc)
        order.append(task)
    return HeuristicResult(
        problem=problem,
        proc_of=tuple(state.proc_of),
        start=tuple(state.start),
        finish=tuple(state.finish),
        max_lateness=state.max_lateness(),
        order=tuple(order),
    )
