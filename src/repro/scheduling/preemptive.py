"""Preemptive single-machine scheduling (Baker et al. [12]).

The paper's related-work pivot: the B&B algorithms of Peng & Shin [1]
and Hou & Shin [4] rely on the *commutative* optimal preemptive
uniprocessor strategy of Baker, Lawler, Lenstra and Rinnooy Kan —
"Preemptive Scheduling of a Single Machine to Minimize Maximum Cost
Subject to Release Dates and Precedence Constraints" (Oper. Res. 1983).
Our paper deliberately moves to a *non-preemptive, non-commutative*
operation (context switches are not free and the single-machine
non-preemptive problem is NP-complete), which is why its search must
consider schedule orderings.

This module implements the [12] strategy for maximum lateness so the
two worlds can be compared:

* release times and deadlines are made precedence-consistent
  (``r'_j = max(r_j, max_pred r'_p)``;
  ``d'_j = min(d_j, min_succ d'_s)``), after which preemptive EDF over
  the modified dates is optimal for ``1 | pmtn, prec, r_j | L_max``;
* the resulting schedule is a list of execution *slices* per task
  (tasks may be split across slices — that is the point of preemption).

Because it is a relaxation of the non-preemptive single-processor
problem (every non-preemptive schedule is a preemptive one), its
``L_max`` lower-bounds the non-preemptive single-machine optimum — a
property the test suite checks against the B&B.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass

from ..errors import ModelError
from ..model.taskgraph import TaskGraph

__all__ = ["Slice", "PreemptiveResult", "preemptive_edf"]


@dataclass(frozen=True, slots=True)
class Slice:
    """One contiguous execution interval of one task."""

    task: str
    start: float
    end: float

    @property
    def length(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class PreemptiveResult:
    """Outcome of the preemptive single-machine schedule."""

    slices: tuple[Slice, ...]
    finish: dict[str, float]
    max_lateness: float
    #: Number of preemptions (a task resumed after being interrupted).
    preemptions: int

    def slices_of(self, task: str) -> list[Slice]:
        return [s for s in self.slices if s.task == task]

    def validate(self, graph: TaskGraph) -> None:
        """Check machine exclusivity, work conservation and precedence."""
        problems: list[str] = []
        for a, b in zip(self.slices, self.slices[1:]):
            if b.start < a.end - 1e-9:
                problems.append(f"slices overlap: {a} / {b}")
        for task in graph:
            total = sum(s.length for s in self.slices_of(task.name))
            if abs(total - task.wcet) > 1e-6:
                problems.append(
                    f"{task.name}: executed {total}, wcet {task.wcet}"
                )
            first = min(
                (s.start for s in self.slices_of(task.name)), default=None
            )
            if first is not None and first < task.arrival(1) - 1e-9:
                problems.append(f"{task.name}: starts before release")
        for ch in graph.channels:
            pred_finish = self.finish[ch.src]
            succ_start = min(s.start for s in self.slices_of(ch.dst))
            if succ_start < pred_finish - 1e-9:
                problems.append(
                    f"{ch.dst} starts at {succ_start} before predecessor "
                    f"{ch.src} completes at {pred_finish}"
                )
        if problems:
            raise ModelError("invalid preemptive schedule: " + "; ".join(problems))


def _modified_dates(graph: TaskGraph) -> tuple[dict[str, float], dict[str, float]]:
    release: dict[str, float] = {}
    deadline: dict[str, float] = {}
    topo = graph.topological_order()
    for name in topo:
        t = graph.task(name)
        r = t.arrival(1)
        for p in graph.predecessors(name):
            r = max(r, release[p])
        release[name] = r
    for name in reversed(topo):
        t = graph.task(name)
        d = t.absolute_deadline(1)
        for s in graph.successors(name):
            d = min(d, deadline[s])
        deadline[name] = d
    return release, deadline


def preemptive_edf(graph: TaskGraph) -> PreemptiveResult:
    """Optimal preemptive single-machine schedule minimizing ``L_max``.

    Communication costs are irrelevant on one machine (shared-memory
    communication is free in the paper's model), so channel weights are
    ignored.  Lateness is measured against the *original* deadlines; the
    modified dates only steer EDF.
    """
    if len(graph) == 0:
        raise ModelError("cannot schedule an empty graph")
    release, mod_deadline = _modified_dates(graph)
    topo_pos = {n: i for i, n in enumerate(graph.topological_order())}
    remaining = {t.name: t.wcet for t in graph}
    unfinished_preds = {n: graph.in_degree(n) for n in graph.task_names}
    finish: dict[str, float] = {}
    slices: list[Slice] = []
    preemptions = 0
    started: set[str] = set()

    # Ready heap keyed by (modified deadline, topo position) — the topo
    # tie-break keeps EDF precedence-consistent when dates tie.
    ready: list[tuple[float, int, str]] = []
    # Tasks whose predecessors are complete, waiting for their release.
    pending: list[tuple[float, int, str]] = []
    for n in graph.input_tasks:
        heapq.heappush(pending, (release[n], topo_pos[n], n))

    clock = 0.0
    current: str | None = None
    current_start = 0.0

    def cut_current(now: float) -> None:
        nonlocal current
        if current is not None and now > current_start + 1e-15:
            slices.append(Slice(task=current, start=current_start, end=now))
        current = None

    while ready or pending or current is not None:
        # Move released tasks into the ready heap.
        while pending and pending[0][0] <= clock + 1e-12:
            _, pos, name = heapq.heappop(pending)
            heapq.heappush(ready, (mod_deadline[name], pos, name))
        if current is None and not ready:
            if not pending:
                break
            clock = pending[0][0]
            continue

        # Preempt if a strictly more urgent task became ready.
        if current is not None and ready and ready[0][:2] < (
            mod_deadline[current],
            topo_pos[current],
        ):
            interrupted = current
            cut_current(clock)  # clears `current`
            preemptions += 1
            heapq.heappush(
                ready,
                (mod_deadline[interrupted], topo_pos[interrupted], interrupted),
            )
        if current is None:
            _, _, name = heapq.heappop(ready)
            if name in started:
                pass  # resuming after preemption
            started.add(name)
            current = name
            current_start = clock

        # Run until the task completes or the next release arrives.
        completion = clock + remaining[current]
        next_release = pending[0][0] if pending else math.inf
        if completion <= next_release + 1e-12:
            done = current
            clock = completion
            remaining[done] = 0.0
            cut_current(clock)
            finish[done] = clock
            for s in graph.successors(done):
                unfinished_preds[s] -= 1
                if unfinished_preds[s] == 0:
                    heapq.heappush(
                        pending, (max(release[s], clock), topo_pos[s], s)
                    )
        else:
            remaining[current] -= next_release - clock
            clock = next_release

    lateness = max(
        finish[t.name] - t.absolute_deadline(1) for t in graph
    )
    return PreemptiveResult(
        slices=tuple(slices),
        finish=finish,
        max_lateness=lateness,
        preemptions=preemptions,
    )
