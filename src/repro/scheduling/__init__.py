"""Polynomial-time scheduling substrate.

Implements the paper's Section 4.3 non-preemptive list-scheduling
operation, the Section 4.4 greedy EDF baseline/upper-bound generator, and
additional list-scheduling heuristics used by the ablation benchmarks.
"""

from .edf import edf_schedule
from .heuristics import (
    HEURISTICS,
    best_heuristic_schedule,
    depth_first_schedule,
    hlfet_schedule,
    least_laxity_schedule,
    level_order_schedule,
    random_order_schedule,
)
from .preemptive import PreemptiveResult, Slice, preemptive_edf
from .listsched import (
    HeuristicResult,
    SchedulingState,
    best_processor,
    schedule_in_order,
)

__all__ = [
    "HEURISTICS",
    "HeuristicResult",
    "PreemptiveResult",
    "Slice",
    "SchedulingState",
    "best_heuristic_schedule",
    "best_processor",
    "depth_first_schedule",
    "edf_schedule",
    "hlfet_schedule",
    "least_laxity_schedule",
    "level_order_schedule",
    "preemptive_edf",
    "random_order_schedule",
    "schedule_in_order",
]
