"""The non-preemptive list-scheduling operation (Section 4.3).

The processor scheduling strategy assumed throughout the paper is
time-driven and non-preemptive: a new task is placed on a processor at
the earliest time that is

* no earlier than its arrival time,
* no earlier than each scheduled predecessor's finish time plus the
  interprocessor message cost (zero when co-located), and
* no earlier than the finish of **every task previously scheduled on that
  processor** (tasks are appended; the operation never back-fills gaps).

The append-only third condition is what makes the operation
*non-commutative*: the order in which tasks are handed to the scheduler
changes the result, which is why the B&B search must consider schedule
orderings and not only assignments.

This module provides a mutable :class:`SchedulingState` used by the
greedy heuristics (the B&B keeps its own immutable state in
:mod:`repro.core.state`) and a generic priority-list scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from ..errors import ModelError
from ..model.compile import CompiledProblem
from ..model.schedule import Schedule

__all__ = [
    "SchedulingState",
    "HeuristicResult",
    "best_processor",
    "schedule_in_order",
]


class SchedulingState(object):
    """Mutable partial schedule for greedy construction.

    Tracks task placements, per-processor availability (finish time of
    the last appended task) and the ready set via predecessor-remaining
    counters.
    """

    __slots__ = ("problem", "proc_of", "start", "finish", "avail", "n_placed", "_npred")

    def __init__(self, problem: CompiledProblem) -> None:
        self.problem = problem
        self.proc_of = [-1] * problem.n
        self.start = [0.0] * problem.n
        self.finish = [0.0] * problem.n
        self.avail = [0.0] * problem.m
        self.n_placed = 0
        self._npred = [len(problem.pred_edges[i]) for i in range(problem.n)]

    # -- queries --------------------------------------------------------

    def is_ready(self, task: int) -> bool:
        """All direct predecessors placed and the task itself not placed."""
        return self.proc_of[task] < 0 and self._npred[task] == 0

    def ready_tasks(self) -> list[int]:
        return [i for i in range(self.problem.n) if self.is_ready(i)]

    @property
    def is_complete(self) -> bool:
        return self.n_placed == self.problem.n

    def earliest_start(self, task: int, proc: int) -> float:
        """Earliest start of a ready task on one processor."""
        return self.problem.earliest_start(
            task, proc, self.proc_of, self.finish, self.avail[proc]
        )

    def max_lateness(self) -> float:
        """Max lateness over placed tasks (-inf when empty)."""
        best = float("-inf")
        d = self.problem.deadline
        for i in range(self.problem.n):
            if self.proc_of[i] >= 0:
                lat = self.finish[i] - d[i]
                if lat > best:
                    best = lat
        return best

    # -- mutation ---------------------------------------------------------

    def place(self, task: int, proc: int) -> float:
        """Append a ready task to a processor; returns its start time."""
        if not self.is_ready(task):
            raise ModelError(
                f"task {self.problem.names[task]!r} is not ready "
                "(already placed or has unplaced predecessors)"
            )
        s = self.earliest_start(task, proc)
        f = s + self.problem.wcet[task]
        self.proc_of[task] = proc
        self.start[task] = s
        self.finish[task] = f
        self.avail[proc] = f
        self.n_placed += 1
        for j, _ in self.problem.succ_edges[task]:
            self._npred[j] -= 1
        return s

    def to_schedule(self) -> Schedule:
        return self.problem.make_schedule(self.proc_of, self.start)


@dataclass(frozen=True)
class HeuristicResult:
    """Outcome of a polynomial-time scheduling heuristic."""

    problem: CompiledProblem
    proc_of: tuple[int, ...]
    start: tuple[float, ...]
    finish: tuple[float, ...]
    max_lateness: float
    #: Order in which tasks were handed to the scheduling operation.
    order: tuple[int, ...]

    def to_schedule(self) -> Schedule:
        return self.problem.make_schedule(self.proc_of, self.start)

    @property
    def is_feasible(self) -> bool:
        """Whether every deadline is met (``L_max <= 0``)."""
        return self.max_lateness <= 0.0


def best_processor(state: SchedulingState, task: int) -> tuple[int, float]:
    """Processor yielding the earliest start for a ready task.

    Ties are broken toward the lowest processor index, which keeps the
    heuristics deterministic.
    """
    best_p, best_s = 0, float("inf")
    for p in range(state.problem.m):
        s = state.earliest_start(task, p)
        if s < best_s:
            best_p, best_s = p, s
    return best_p, best_s


ProcessorRule = Callable[[SchedulingState, int], tuple[int, float]]


def schedule_in_order(
    problem: CompiledProblem,
    order: Iterable[int],
    processor_rule: ProcessorRule = best_processor,
) -> HeuristicResult:
    """Feed tasks to the scheduling operation in a fixed permutation.

    ``order`` must be a topological permutation of all task indices; the
    processor for each task is chosen by ``processor_rule`` (default:
    earliest start).  This is the engine behind the priority-list
    baselines and the ``B_DF``/``B_BF1`` intuition.
    """
    state = SchedulingState(problem)
    order = list(order)
    if sorted(order) != list(range(problem.n)):
        raise ModelError("order must be a permutation of all task indices")
    for task in order:
        if not state.is_ready(task):
            raise ModelError(
                f"order is not topological: task {problem.names[task]!r} "
                "reached before its predecessors"
            )
        proc, _ = processor_rule(state, task)
        state.place(task, proc)
    return HeuristicResult(
        problem=problem,
        proc_of=tuple(state.proc_of),
        start=tuple(state.start),
        finish=tuple(state.finish),
        max_lateness=state.max_lateness(),
        order=tuple(order),
    )
