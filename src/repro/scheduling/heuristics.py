"""Additional polynomial-time list-scheduling baselines.

These are not part of the paper's evaluation (which uses only EDF as the
greedy reference), but they exercise the same Section 4.3 scheduling
operation and are used by the upper-bound ablation benchmarks: the
quality of the initial upper bound ``U`` strongly affects B&B pruning
(Section 6 reports a >200% improvement from seeding with a greedy
solution).
"""

from __future__ import annotations

import random
from typing import Callable

from ..model.compile import CompiledProblem
from .edf import edf_schedule
from .listsched import HeuristicResult, SchedulingState, best_processor, schedule_in_order

__all__ = [
    "hlfet_schedule",
    "least_laxity_schedule",
    "depth_first_schedule",
    "level_order_schedule",
    "random_order_schedule",
    "best_heuristic_schedule",
    "HEURISTICS",
]


def hlfet_schedule(problem: CompiledProblem) -> HeuristicResult:
    """Highest-Level-First (HLFET-style) list scheduling.

    Priority = computation bottom level (longest execution-time path to
    an output task); ready task with the highest level goes first, on the
    earliest-start processor.
    """
    graph = problem.graph
    bot = graph.bottom_level(include_comm=False)
    level = [bot[name] for name in problem.names]
    state = SchedulingState(problem)
    order: list[int] = []
    for _ in range(problem.n):
        ready = state.ready_tasks()
        task = max(ready, key=lambda i: (level[i], -problem.arrival[i], -i))
        proc, _ = best_processor(state, task)
        state.place(task, proc)
        order.append(task)
    return HeuristicResult(
        problem=problem,
        proc_of=tuple(state.proc_of),
        start=tuple(state.start),
        finish=tuple(state.finish),
        max_lateness=state.max_lateness(),
        order=tuple(order),
    )


def least_laxity_schedule(problem: CompiledProblem) -> HeuristicResult:
    """Least-laxity-first: ready task with the smallest D_i - now - c_i.

    "now" is approximated by the task's earliest possible start over all
    processors, so the rule adapts to the partially built schedule.
    """
    state = SchedulingState(problem)
    order: list[int] = []
    for _ in range(problem.n):
        ready = state.ready_tasks()
        best_task, best_key, best_proc = -1, None, 0
        for i in ready:
            proc, s = best_processor(state, i)
            laxity = problem.deadline[i] - s - problem.wcet[i]
            key = (laxity, problem.deadline[i], i)
            if best_key is None or key < best_key:
                best_task, best_key, best_proc = i, key, proc
        state.place(best_task, best_proc)
        order.append(best_task)
    return HeuristicResult(
        problem=problem,
        proc_of=tuple(state.proc_of),
        start=tuple(state.start),
        finish=tuple(state.finish),
        max_lateness=state.max_lateness(),
        order=tuple(order),
    )


def depth_first_schedule(problem: CompiledProblem) -> HeuristicResult:
    """Schedule tasks in the fixed depth-first topological order.

    The greedy analogue of branching rule ``B_DF`` (the search over
    processor assignments collapsed to earliest-start placement).
    """
    order = [problem.index[name] for name in problem.graph.depth_first_order()]
    return schedule_in_order(problem, order)


def level_order_schedule(problem: CompiledProblem) -> HeuristicResult:
    """Schedule tasks in the fixed breadth-first (level) order.

    The greedy analogue of branching rule ``B_BF1``.
    """
    order = [problem.index[name] for name in problem.graph.level_order()]
    return schedule_in_order(problem, order)


def random_order_schedule(
    problem: CompiledProblem, rng: random.Random | None = None
) -> HeuristicResult:
    """Schedule tasks in a random topological order (earliest-start procs).

    Useful as a noise floor in upper-bound ablations.
    """
    rng = rng or random.Random(0)
    state = SchedulingState(problem)
    order: list[int] = []
    for _ in range(problem.n):
        ready = state.ready_tasks()
        task = rng.choice(ready)
        proc, _ = best_processor(state, task)
        state.place(task, proc)
        order.append(task)
    return HeuristicResult(
        problem=problem,
        proc_of=tuple(state.proc_of),
        start=tuple(state.start),
        finish=tuple(state.finish),
        max_lateness=state.max_lateness(),
        order=tuple(order),
    )


#: Registry of deterministic heuristics by name.
HEURISTICS: dict[str, Callable[[CompiledProblem], HeuristicResult]] = {
    "edf": edf_schedule,
    "hlfet": hlfet_schedule,
    "least-laxity": least_laxity_schedule,
    "depth-first": depth_first_schedule,
    "level-order": level_order_schedule,
}


def best_heuristic_schedule(problem: CompiledProblem) -> HeuristicResult:
    """Run every registered heuristic and keep the best (lowest lateness).

    A cheap way to seed the B&B with a tighter upper bound than EDF
    alone; Kohler & Steiglitz prove one cannot lose by starting from a
    better initial solution.
    """
    results = [h(problem) for h in HEURISTICS.values()]
    return min(results, key=lambda r: r.max_lateness)
