"""Phase profiler for the branch-and-bound inner loop.

Lively et al. attribute most B&B runtime differences to *where* time is
spent — bounding vs. branching vs. pruning — so the engine can attribute
its wall clock to named phases:

``setup``
    upper-bound computation, branching preparation, root evaluation;
``select``
    frontier pops, stop-condition checks, resource/time checks;
``branch``
    placement enumeration and child-state creation;
``bound``
    lower-bound evaluation of children;
``filter``
    the characteristic function F;
``dominance``
    the dominance rule D;
``goal-eval``
    incumbent comparison/update and active-set sweeps;
``eliminate``
    child elimination, ordering, pushes, resource caps;
``telemetry``
    event-sink / metrics / progress emission (so observability's own
    cost is visible, not smeared over the real phases);
``finalize``
    status classification and result assembly.

The engine takes contiguous ``perf_counter`` timestamps at phase
boundaries, so the phase totals tile the solve's wall clock: their sum
is within a few percent of ``SearchStats.elapsed`` (the residual is the
timestamping itself).  Profiling is *off by default* and costs exactly
one ``is not None`` check per hook when off.

Use::

    prof = PhaseProfiler()
    result = BranchAndBound(params, obs=Observability(profiler=prof)).solve(p)
    print(result.profile.as_table())     # also folded into result.summary()
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

__all__ = ["PHASES", "PhaseProfiler", "PhaseBreakdown"]

#: Canonical phase order (reports follow it; unknown phases append).
PHASES = (
    "setup",
    "select",
    "branch",
    "bound",
    "expand",
    "filter",
    "dominance",
    "goal-eval",
    "eliminate",
    "telemetry",
    "finalize",
)


class PhaseProfiler:
    """Accumulates seconds per phase; one instance per solve.

    The engine calls :meth:`add` with pre-computed deltas — the profiler
    itself never reads the clock, keeping the hot path free of extra
    indirection.  ``totals`` may be read at any time (e.g. from another
    thread driving a live display).
    """

    __slots__ = ("totals", "counts")

    def __init__(self) -> None:
        self.totals: dict[str, float] = {p: 0.0 for p in PHASES}
        self.counts: dict[str, int] = {p: 0 for p in PHASES}

    def add(self, phase: str, seconds: float) -> None:
        """Attribute ``seconds`` to ``phase`` (creates unknown phases)."""
        try:
            self.totals[phase] += seconds
            self.counts[phase] += 1
        except KeyError:
            self.totals[phase] = seconds
            self.counts[phase] = 1

    def reset(self) -> None:
        for p in self.totals:
            self.totals[p] = 0.0
            self.counts[p] = 0

    @property
    def total(self) -> float:
        return sum(self.totals.values())

    def freeze(self) -> PhaseBreakdown:
        """Immutable snapshot for embedding in a :class:`BnBResult`."""
        order = [p for p in PHASES if p in self.totals]
        order += [p for p in self.totals if p not in PHASES]
        return PhaseBreakdown(
            phases=tuple(
                (p, self.totals[p], self.counts[p])
                for p in order
            )
        )


@dataclass(frozen=True)
class PhaseBreakdown:
    """Per-phase ``(name, seconds, hits)`` timing snapshot of one solve."""

    phases: tuple[tuple[str, float, int], ...]

    @property
    def total(self) -> float:
        return sum(s for _, s, _ in self.phases)

    def seconds(self, phase: str) -> float:
        for name, s, _ in self.phases:
            if name == phase:
                return s
        return 0.0

    def fraction_of(self, elapsed: float) -> float:
        """Share of ``elapsed`` wall clock the phase totals account for."""
        return self.total / elapsed if elapsed > 0 else 0.0

    def to_dict(self) -> dict[str, float]:
        return {name: s for name, s, _ in self.phases}

    def __iter__(self) -> Iterator[tuple[str, float, int]]:
        return iter(self.phases)

    def summary(self) -> str:
        """One-line breakdown, hottest phases first, for result summaries."""
        total = self.total
        if total <= 0:
            return "profile: (no time recorded)"
        parts = [
            f"{name}={s:.3f}s/{100 * s / total:.0f}%"
            for name, s, _ in sorted(
                self.phases, key=lambda r: -r[1]
            )
            if s >= 0.0005 or s / total >= 0.01
        ]
        return "profile: " + " ".join(parts) if parts else "profile: ~0s"

    def as_table(self, elapsed: float | None = None) -> str:
        """Multi-line phase table (used by ``repro report``)."""
        total = self.total
        denom = elapsed if elapsed and elapsed > 0 else total
        # Breakdowns reconstructed from traces carry no hit counts.
        with_hits = any(h for _, _, h in self.phases)
        header = ("phase", "seconds", "share") + (("hits",) if with_hits else ())
        rows = [header]
        for name, s, hits in sorted(self.phases, key=lambda r: -r[1]):
            share = f"{100 * s / denom:5.1f}%" if denom > 0 else "-"
            row = (name, f"{s:.4f}", share)
            rows.append(row + ((str(hits),) if with_hits else ()))
        total_row = ("total", f"{total:.4f}",
                     f"{100 * total / denom:5.1f}%" if denom > 0 else "-")
        rows.append(total_row + (("",) if with_hits else ()))
        widths = [max(len(r[i]) for r in rows) for i in range(len(header))]
        lines = []
        for i, row in enumerate(rows):
            lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
            if i == 0:
                lines.append("  ".join("-" * w for w in widths))
        return "\n".join(lines)
