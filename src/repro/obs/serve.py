"""Stdlib-only HTTP monitor for live solves (``--serve-status``).

A :class:`MonitorServer` wraps a :class:`~repro.obs.live.TelemetryBus`
in a ``ThreadingHTTPServer`` (daemon threads, ephemeral port by
default) with four endpoints:

* ``GET /status`` — the bus snapshot as JSON: incumbent, optimality
  gap, vertices/second, frontier depth profile, TT occupancy, per-rule
  prune counts, per-worker gauges and the sparkline history.
* ``GET /metrics`` — the attached
  :class:`~repro.obs.metrics.MetricsRegistry` in Prometheus text
  exposition format (the existing exporter, served instead of written
  to a textfile).
* ``GET /events`` — Server-Sent Events: the bus ring is replayed on
  connect (so a late subscriber still sees the incumbents so far) and
  new low-frequency events (incumbent / checkpoint / worker_restart /
  resource / summary …) stream as they happen.
* ``GET /`` — a self-contained HTML dashboard (no external assets):
  stat tiles, gap-vs-time and vps sparklines, the worker table and a
  live event log.

The server never touches the solve: it only reads bus copies, so a
slow or hostile client cannot stall the engine.  Binding defaults to
loopback; the dashboard is diagnostics, not a public surface.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from .live import TelemetryBus
from .metrics import MetricsRegistry

__all__ = ["MonitorServer", "DASHBOARD_HTML"]


class _MonitorHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True
    # Attached by MonitorServer before serving:
    bus: TelemetryBus
    metrics: MetricsRegistry | None
    stopping: threading.Event


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-monitor/1"

    # The monitor is diagnostics; request logging would fight the
    # stderr heartbeat for the terminal.
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        path = self.path.split("?", 1)[0]
        try:
            if path == "/status":
                self._serve_status()
            elif path == "/metrics":
                self._serve_metrics()
            elif path == "/events":
                self._serve_events()
            elif path in ("/", "/index.html"):
                self._serve_body(DASHBOARD_HTML.encode(), "text/html")
            else:
                self.send_error(404, "unknown endpoint")
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away; nothing to clean up

    def _serve_body(self, body: bytes, content_type: str) -> None:
        self.send_response(200)
        self.send_header("Content-Type", f"{content_type}; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.send_header("Cache-Control", "no-store")
        self.end_headers()
        self.wfile.write(body)

    def _serve_status(self) -> None:
        snapshot = self.server.bus.snapshot()
        snapshot["server_time"] = round(time.time(), 3)
        self._serve_body(
            json.dumps(snapshot).encode(), "application/json"
        )

    def _serve_metrics(self) -> None:
        registry = self.server.metrics
        text = (
            registry.to_prometheus()
            if registry is not None
            else "# no metrics registry attached\n"
        )
        self._serve_body(text.encode(), "text/plain; version=0.0.4")

    def _serve_events(self) -> None:
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-store")
        self.end_headers()
        bus = self.server.bus
        stopping = self.server.stopping
        seq = 0
        while not stopping.is_set():
            events = bus.events_since(seq, timeout=1.0)
            if events:
                seq = events[-1]["seq"]
                chunks = []
                for event in events:
                    data = json.dumps(event, separators=(",", ":"))
                    chunks.append(
                        f"id: {event['seq']}\n"
                        f"event: {event['ev']}\n"
                        f"data: {data}\n\n"
                    )
                self.wfile.write("".join(chunks).encode())
            else:
                self.wfile.write(b": keepalive\n\n")
            self.wfile.flush()


class MonitorServer:
    """Owns the HTTP thread serving one bus (and optional registry).

    ``port=0`` binds an ephemeral port; read :attr:`port` (or
    :attr:`url`) after :meth:`start`.  ``stop`` is idempotent and
    unblocks open SSE streams within their keepalive interval.
    """

    def __init__(
        self,
        bus: TelemetryBus,
        *,
        metrics: MetricsRegistry | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.bus = bus
        self.metrics = metrics
        self.host = host
        self._requested_port = port
        self._server: _MonitorHTTPServer | None = None
        self._thread: threading.Thread | None = None

    @property
    def port(self) -> int:
        if self._server is None:
            return self._requested_port
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> int:
        """Bind and serve on a daemon thread; returns the bound port."""
        server = _MonitorHTTPServer(
            (self.host, self._requested_port), _Handler
        )
        server.bus = self.bus
        server.metrics = self.metrics
        server.stopping = threading.Event()
        self._server = server
        self._thread = threading.Thread(
            target=server.serve_forever,
            name="repro-monitor",
            daemon=True,
        )
        self._thread.start()
        return self.port

    def stop(self) -> None:
        server = self._server
        if server is None:
            return
        server.stopping.set()
        server.shutdown()
        server.server_close()
        self._server = None

    def __enter__(self) -> MonitorServer:
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()


#: The dashboard: one self-contained page, zero external requests
#: beyond its own /status polls and /events stream.  Colors follow the
#: repo's validated reference palette (categorical slots 1-2, light and
#: dark steps); text wears text tokens, never series color.
DASHBOARD_HTML = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>repro live monitor</title>
<style>
  :root {
    color-scheme: light;
    --surface: #fcfcfb; --panel: #f3f2ef;
    --text-primary: #0b0b0b; --text-secondary: #52514e;
    --grid: #dddcd6;
    --series-vps: #2a78d6;   /* categorical slot 1 (blue)   */
    --series-gap: #eb6834;   /* categorical slot 2 (orange) */
  }
  @media (prefers-color-scheme: dark) {
    :root {
      color-scheme: dark;
      --surface: #1a1a19; --panel: #242422;
      --text-primary: #ffffff; --text-secondary: #c3c2b7;
      --grid: #3a3935;
      --series-vps: #3987e5; --series-gap: #d95926;
    }
  }
  body { margin: 0; padding: 1rem 1.25rem; background: var(--surface);
         color: var(--text-primary);
         font: 14px/1.45 system-ui, -apple-system, sans-serif; }
  h1 { font-size: 1.05rem; margin: 0 0 .75rem; font-weight: 600; }
  h1 small { color: var(--text-secondary); font-weight: 400; }
  .tiles { display: flex; flex-wrap: wrap; gap: .6rem; margin-bottom: 1rem; }
  .tile { background: var(--panel); border-radius: 8px;
          padding: .5rem .8rem; min-width: 7.5rem; }
  .tile .k { color: var(--text-secondary); font-size: .72rem;
             text-transform: uppercase; letter-spacing: .04em; }
  .tile .v { font-size: 1.25rem; font-variant-numeric: tabular-nums; }
  .charts { display: flex; flex-wrap: wrap; gap: 1rem; margin-bottom: 1rem; }
  .chart { background: var(--panel); border-radius: 8px; padding: .6rem .8rem;
           position: relative; }
  .chart .k { color: var(--text-secondary); font-size: .72rem;
              text-transform: uppercase; letter-spacing: .04em;
              margin-bottom: .25rem; }
  .chart .latest { position: absolute; top: .6rem; right: .8rem;
                   color: var(--text-secondary); font-size: .8rem;
                   font-variant-numeric: tabular-nums; }
  svg { display: block; }
  .tip { position: absolute; pointer-events: none; display: none;
         background: var(--surface); color: var(--text-primary);
         border: 1px solid var(--grid); border-radius: 4px;
         padding: .15rem .4rem; font-size: .72rem; white-space: nowrap; }
  table { border-collapse: collapse; font-variant-numeric: tabular-nums;
          margin-bottom: 1rem; }
  th, td { text-align: right; padding: .2rem .7rem; }
  th { color: var(--text-secondary); font-weight: 500; font-size: .75rem;
       text-transform: uppercase; letter-spacing: .04em;
       border-bottom: 1px solid var(--grid); }
  td.dead { color: var(--text-secondary); }
  #log { background: var(--panel); border-radius: 8px; padding: .6rem .8rem;
         max-height: 16rem; overflow-y: auto;
         font: 12px/1.5 ui-monospace, monospace; }
  #log .t { color: var(--text-secondary); }
  .sec { color: var(--text-secondary); font-size: .72rem;
         text-transform: uppercase; letter-spacing: .04em;
         margin: 0 0 .3rem; }
</style>
</head>
<body>
<h1>repro live monitor <small id="phase"></small></h1>
<div class="tiles" id="tiles"></div>
<div class="charts">
  <div class="chart"><div class="k">optimality gap vs time</div>
    <span class="latest" id="gap-latest"></span>
    <svg id="spark-gap" width="340" height="72"></svg>
    <div class="tip" id="tip-gap"></div></div>
  <div class="chart"><div class="k">vertices / second vs time</div>
    <span class="latest" id="vps-latest"></span>
    <svg id="spark-vps" width="340" height="72"></svg>
    <div class="tip" id="tip-vps"></div></div>
</div>
<div id="workers-box" style="display:none">
  <p class="sec">workers</p>
  <table id="workers"><thead><tr>
    <th>slot</th><th>shard</th><th>~explored</th><th>v/s</th>
    <th>restarts</th><th>beat age</th><th>state</th>
  </tr></thead><tbody></tbody></table>
</div>
<p class="sec">events</p>
<div id="log"></div>
<script>
"use strict";
const fmt = (x, d) => x == null ? "–"
  : Number(x).toLocaleString("en-US", {maximumFractionDigits: d ?? 2});

function tiles(s) {
  const items = [
    ["incumbent", fmt(s.incumbent, 4)],
    ["gap", fmt(s.gap, 4)],
    ["v/s", fmt(s.vps, 0)],
    ["explored", fmt(s.explored, 0)],
    ["active", fmt(s.active, 0)],
    ["tt fill", s.tt_occupancy == null ? "–"
       : (100 * s.tt_occupancy).toFixed(1) + "%"],
    ["tt hits", s.tt_hit_rate == null ? "–"
       : (100 * s.tt_hit_rate).toFixed(1) + "%"],
  ];
  document.getElementById("tiles").innerHTML = items.map(
    ([k, v]) => `<div class="tile"><div class="k">${k}</div>` +
                `<div class="v">${v}</div></div>`).join("");
  document.getElementById("phase").textContent =
    s.phase ? `· ${s.result_status || s.phase}` : "";
}

function spark(svgId, tipId, pts, cssVar) {
  const svg = document.getElementById(svgId);
  const tip = document.getElementById(tipId);
  const W = svg.width.baseVal.value, H = svg.height.baseVal.value;
  const P = 4;
  svg.replaceChildren();
  if (pts.length < 2) return;
  const xs = pts.map(p => p[0]), ys = pts.map(p => p[1]);
  const x0 = Math.min(...xs), x1 = Math.max(...xs);
  const ylo = Math.min(...ys), yhi = Math.max(...ys);
  const sx = t => P + (W - 2 * P) * (x1 > x0 ? (t - x0) / (x1 - x0) : 0);
  const sy = v => H - P - (H - 2 * P) *
    (yhi > ylo ? (v - ylo) / (yhi - ylo) : 0.5);
  const NS = "http://www.w3.org/2000/svg";
  const mid = document.createElementNS(NS, "line");  // recessive midline
  mid.setAttribute("x1", P); mid.setAttribute("x2", W - P);
  mid.setAttribute("y1", H / 2); mid.setAttribute("y2", H / 2);
  mid.setAttribute("stroke", "var(--grid)");
  svg.appendChild(mid);
  const line = document.createElementNS(NS, "polyline");
  line.setAttribute("points",
    pts.map(p => `${sx(p[0]).toFixed(1)},${sy(p[1]).toFixed(1)}`).join(" "));
  line.setAttribute("fill", "none");
  line.setAttribute("stroke", `var(${cssVar})`);
  line.setAttribute("stroke-width", "2");
  line.setAttribute("stroke-linejoin", "round");
  svg.appendChild(line);
  const cross = document.createElementNS(NS, "line");
  cross.setAttribute("y1", P); cross.setAttribute("y2", H - P);
  cross.setAttribute("stroke", "var(--text-secondary)");
  cross.setAttribute("visibility", "hidden");
  svg.appendChild(cross);
  svg.onmousemove = ev => {
    const r = svg.getBoundingClientRect();
    const mx = ev.clientX - r.left;
    let best = 0, dist = Infinity;
    pts.forEach((p, i) => {
      const d = Math.abs(sx(p[0]) - mx);
      if (d < dist) { dist = d; best = i; }
    });
    const p = pts[best], px = sx(p[0]);
    cross.setAttribute("x1", px); cross.setAttribute("x2", px);
    cross.setAttribute("visibility", "visible");
    tip.style.display = "block";
    tip.style.left = Math.min(px + 10, r.width - 90) + "px";
    tip.style.top = "1.6rem";
    tip.textContent = `${p[0].toFixed(1)}s · ${fmt(p[1], 3)}`;
  };
  svg.onmouseleave = () => {
    cross.setAttribute("visibility", "hidden");
    tip.style.display = "none";
  };
}

function workers(list) {
  const box = document.getElementById("workers-box");
  if (!list.length) { box.style.display = "none"; return; }
  box.style.display = "";
  document.querySelector("#workers tbody").innerHTML = list.map(w =>
    `<tr class="${w.alive ? "" : "dead"}"><td>${w.slot}</td>` +
    `<td>${w.shard ?? "–"}</td><td>${fmt(w.explored, 0)}</td>` +
    `<td>${fmt(w.vps, 0)}</td><td>${w.restarts}</td>` +
    `<td>${w.heartbeat_age.toFixed(1)}s</td>` +
    `<td>${w.alive ? "alive" : "down"}</td></tr>`).join("");
}

async function poll() {
  try {
    const r = await fetch("/status");
    const snap = await r.json();
    tiles(snap.status);
    workers(snap.workers);
    const gap = snap.history.filter(h => h.gap != null)
                            .map(h => [h.elapsed, h.gap]);
    const vps = snap.history.map(h => [h.elapsed, h.vps]);
    spark("spark-gap", "tip-gap", gap, "--series-gap");
    spark("spark-vps", "tip-vps", vps, "--series-vps");
    const last = snap.history.at(-1);
    document.getElementById("gap-latest").textContent =
      last && last.gap != null ? fmt(last.gap, 4) : "";
    document.getElementById("vps-latest").textContent =
      last ? fmt(last.vps, 0) + " v/s" : "";
  } catch (e) { /* solve (and server) may be gone; keep trying */ }
}
poll();
setInterval(poll, 1000);

const log = document.getElementById("log");
const es = new EventSource("/events");
es.onmessage = () => {};
["start", "incumbent", "checkpoint", "resume", "resource", "tt",
 "worker_restart", "shard_retry", "quarantine", "summary",
 "worker_join", "worker_leave", "lease_expired", "steal", "cluster_done",
].forEach(kind => es.addEventListener(kind, ev => {
  const e = JSON.parse(ev.data);
  const line = document.createElement("div");
  const detail = Object.entries(e)
    .filter(([k]) => !["seq", "t", "ev"].includes(k))
    .map(([k, v]) => `${k}=${typeof v === "number" ? fmt(v, 4) : v}`)
    .join(" ");
  line.innerHTML = `<span class="t">${e.t.toFixed(1)}s</span> ` +
                   `<b>${e.ev}</b> ${detail}`;
  log.prepend(line);
  while (log.childElementCount > 200) log.lastChild.remove();
}));
</script>
</body>
</html>
"""
