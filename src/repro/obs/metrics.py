"""Counters, gauges, histograms and a Prometheus-style exporter.

A :class:`MetricsRegistry` holds named instruments:

* :class:`Counter` — monotone totals (generated vertices, prunes);
* :class:`Gauge` — last-value signals (active-set size, incumbent cost);
* :class:`Histogram` — bucketed distributions (lower-bound gap,
  active-set size over the run).

Two export formats, both dependency-free:

* :meth:`MetricsRegistry.to_prometheus` — the Prometheus *textfile
  collector* format, suitable for a node-exporter textfile directory;
* :meth:`MetricsRegistry.snapshot` / :meth:`write_json` — a plain JSON
  snapshot for experiment reports and ad-hoc analysis.

The engine populates a standard instrument set (``bnb_*``) when a
registry is attached via
:class:`~repro.obs.Observability`; see `docs/API.md`.
"""

from __future__ import annotations

import json
import math
from bisect import bisect_left
from typing import Any, Iterable

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_GAP_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
]

#: Default buckets for lower-bound-gap histograms (lateness units).
DEFAULT_GAP_BUCKETS = (0.0, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0)

#: Default buckets for active-set-size histograms (vertex counts).
DEFAULT_SIZE_BUCKETS = (1.0, 10.0, 100.0, 1_000.0, 10_000.0, 100_000.0)


def _valid_name(name: str) -> str:
    if not name or not all(c.isalnum() or c in "_:" for c in name):
        raise ValueError(f"invalid metric name {name!r}")
    return name


class Counter:
    """Monotonically increasing total."""

    __slots__ = ("name", "help", "value")
    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = _valid_name(name)
        self.help = help
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self.value += amount

    def snapshot(self) -> dict[str, Any]:
        return {"type": self.kind, "value": self.value}

    def lines(self) -> Iterable[str]:
        yield f"{self.name} {_fmt(self.value)}"


class Gauge:
    """Last-observed value (may go up or down)."""

    __slots__ = ("name", "help", "value")
    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = _valid_name(name)
        self.help = help
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def snapshot(self) -> dict[str, Any]:
        return {"type": self.kind, "value": self.value}

    def lines(self) -> Iterable[str]:
        yield f"{self.name} {_fmt(self.value)}"


class Histogram:
    """Fixed-bucket histogram with Prometheus cumulative semantics."""

    __slots__ = ("name", "help", "buckets", "bucket_counts", "sum", "count")
    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: tuple[float, ...] = DEFAULT_GAP_BUCKETS,
    ) -> None:
        self.name = _valid_name(name)
        self.help = help
        bs = tuple(sorted(buckets))
        if not bs:
            raise ValueError("histogram needs at least one bucket bound")
        self.buckets = bs
        # One slot per finite bucket plus the +Inf overflow slot.
        self.bucket_counts = [0] * (len(bs) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect_left(self.buckets, value)] += 1
        self.sum += value
        self.count += 1

    def snapshot(self) -> dict[str, Any]:
        return {
            "type": self.kind,
            "buckets": {
                **{
                    _fmt(b): n
                    for b, n in zip(self.buckets, self.bucket_counts)
                },
                "+Inf": self.bucket_counts[-1],
            },
            "sum": self.sum,
            "count": self.count,
        }

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else math.nan

    def lines(self) -> Iterable[str]:
        cumulative = 0
        for bound, n in zip(self.buckets, self.bucket_counts):
            cumulative += n
            yield f'{self.name}_bucket{{le="{_fmt(bound)}"}} {cumulative}'
        cumulative += self.bucket_counts[-1]
        yield f'{self.name}_bucket{{le="+Inf"}} {cumulative}'
        yield f"{self.name}_sum {_fmt(self.sum)}"
        yield f"{self.name}_count {self.count}"


def _fmt(v: float) -> str:
    if v == math.inf:
        return "+Inf"
    if v == -math.inf:
        return "-Inf"
    if float(v).is_integer():
        return str(int(v))
    return repr(float(v))


class MetricsRegistry:
    """Name → instrument map with get-or-create accessors.

    Accessors are idempotent: asking twice for the same name returns the
    same instrument (and raises if the kinds conflict), so the engine
    and user code can share a registry without coordination.
    """

    def __init__(self) -> None:
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}

    def _get_or_create(self, cls, name: str, **kwargs):
        inst = self._instruments.get(name)
        if inst is None:
            inst = cls(name, **kwargs)
            self._instruments[name] = inst
        elif not isinstance(inst, cls):
            raise ValueError(
                f"metric {name!r} already registered as {inst.kind}"
            )
        return inst

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help=help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help=help)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: tuple[float, ...] = DEFAULT_GAP_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help=help, buckets=buckets)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def __getitem__(self, name: str) -> Counter | Gauge | Histogram:
        return self._instruments[name]

    def __iter__(self):
        return iter(self._instruments.values())

    def __len__(self) -> int:
        return len(self._instruments)

    # -- export ---------------------------------------------------------

    def snapshot(self) -> dict[str, dict[str, Any]]:
        """JSON-ready ``{name: {type, value|buckets/sum/count}}`` map."""
        return {
            name: inst.snapshot()
            for name, inst in sorted(self._instruments.items())
        }

    def to_prometheus(self) -> str:
        """Prometheus textfile-collector exposition of every instrument."""
        out: list[str] = []
        for name, inst in sorted(self._instruments.items()):
            if inst.help:
                out.append(f"# HELP {name} {inst.help}")
            out.append(f"# TYPE {name} {inst.kind}")
            out.extend(inst.lines())
        return "\n".join(out) + "\n" if out else ""

    def write_textfile(self, path: str) -> None:
        with open(path, "w") as fh:
            fh.write(self.to_prometheus())

    def write_json(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.snapshot(), fh, indent=2, sort_keys=True)
            fh.write("\n")

    def write(self, path: str) -> None:
        """Write by extension: ``.json`` → snapshot, else Prometheus text."""
        if str(path).endswith(".json"):
            self.write_json(path)
        else:
            self.write_textfile(path)
