"""Live solve telemetry: an in-process bus the engines publish to.

Offline observability (JSONL traces, the metrics registry) answers
questions after the run; this module answers them *during* it.  Two
pieces:

* :class:`TelemetryBus` — a thread-safe store holding the latest solve
  snapshot (incumbent, optimality gap, vertices/second, frontier depth
  profile, transposition-table occupancy, per-rule prune counts,
  per-worker gauges), a bounded history of ``(elapsed, gap, vps)``
  samples for sparklines, and a bounded ring of the most recent
  low-frequency events.  The ring doubles as the crash *flight
  recorder*: :meth:`TelemetryBus.flight_events` returns the last N
  events for a post-mortem dump.  Readers (the HTTP server in
  :mod:`repro.obs.serve`, tests) only ever see copies.
* :class:`LiveMonitor` — the engine-facing adapter.  It owns a bus,
  exposes an :class:`~repro.obs.events.EventSink` that forwards only
  low-frequency events (``accepts`` rejects the sampled explore/prune/
  goal kinds, so the hot loop never builds payloads for it), and a
  time-rate-limited :meth:`LiveMonitor.on_sample` hook the engine calls
  every few dozen explored vertices.  Between the cheap gate and the
  sampling interval the monitor's measured overhead is within the
  repo's ≤2% budget (see ``repro bench --live`` / BENCH_PR6.json).

The monitor is wired through :class:`repro.obs.Observability` like
every other facility: absent by default, one ``is not None`` check when
off.  Crucially, attaching a monitor does *not* disable the engine's
fused hot path — the engine decides fusion from the user's sink alone.
"""

from __future__ import annotations

import json
import math
import os
import threading
import time
from typing import Any

from .events import SAMPLED_KINDS, BaseSink, EventSink, MultiSink

__all__ = ["TelemetryBus", "LiveMonitor", "WorkerStats", "write_flight_dump"]

#: Depth histogram levels beyond this are folded into the last bucket.
_MAX_DEPTH_BUCKETS = 64


class WorkerStats:
    """Per-worker gauges aggregated by the parallel coordinator.

    Built from the periodic ``("stats", …)`` frames throughput workers
    ship over their supervision pipes (see
    :func:`repro.core.parallel._supervised_worker`): approximate counts
    derived from bound-channel polls, a windowed vertices/second rate,
    plus coordinator-side facts (restarts, heartbeat age, liveness).
    """

    __slots__ = (
        "slot", "shard", "explored", "vps",
        "restarts", "heartbeat", "alive",
        "name", "lease_age", "done", "retried", "stolen",
    )

    def __init__(
        self,
        slot: int,
        *,
        shard: int | None = None,
        explored: int = 0,
        vps: float = 0.0,
        restarts: int = 0,
        heartbeat: float | None = None,
        alive: bool = True,
        name: str | None = None,
        lease_age: float | None = None,
        done: int = 0,
        retried: int = 0,
        stolen: int = 0,
    ) -> None:
        self.slot = slot
        self.shard = shard
        self.explored = explored
        self.vps = vps
        self.restarts = restarts
        self.heartbeat = heartbeat if heartbeat is not None else time.monotonic()
        self.alive = alive
        # Cluster-mode extras (None/0 for in-process workers): the
        # worker's self-chosen id, its coordinator-side lease age, and
        # its shard accounting.  ``as_dict`` includes them only when a
        # name is set, so single-machine /status payloads are unchanged.
        self.name = name
        self.lease_age = lease_age
        self.done = done
        self.retried = retried
        self.stolen = stolen

    def as_dict(self) -> dict[str, Any]:
        row = {
            "slot": self.slot,
            "shard": self.shard,
            "explored": self.explored,
            "vps": round(self.vps, 1),
            "restarts": self.restarts,
            "heartbeat_age": round(
                max(0.0, time.monotonic() - self.heartbeat), 3
            ),
            "alive": self.alive,
        }
        if self.name is not None:
            row["name"] = self.name
            row["lease_age"] = (
                round(self.lease_age, 3) if self.lease_age is not None else None
            )
            row["done"] = self.done
            row["retried"] = self.retried
            row["stolen"] = self.stolen
        return row


class TelemetryBus:
    """Thread-safe latest-state store + bounded event ring + history.

    One writer (the solving thread, or the parallel coordinator) and
    any number of readers (HTTP handler threads).  All methods take the
    internal lock; snapshots are deep-enough copies that readers can
    serialize them without racing the writer.
    """

    def __init__(
        self, *, ring_size: int = 256, history_size: int = 600
    ) -> None:
        if ring_size < 1:
            raise ValueError(f"ring_size must be >= 1, got {ring_size}")
        self.ring_size = ring_size
        self.history_size = history_size
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._status: dict[str, Any] = {}
        self._workers: dict[int, WorkerStats] = {}
        self._events: list[dict[str, Any]] = []
        self._seq = 0
        self._history: list[tuple[float, float | None, float]] = []
        self._t0 = time.perf_counter()

    # -- writer side ---------------------------------------------------

    def update(self, **fields: Any) -> None:
        """Merge fields into the latest status snapshot."""
        with self._lock:
            self._status.update(fields)

    def set_worker(self, stats: WorkerStats) -> None:
        with self._lock:
            self._workers[stats.slot] = stats

    def add_sample(
        self, elapsed: float, gap: float | None, vps: float
    ) -> None:
        """Append one sparkline point, trimming to ``history_size``."""
        with self._lock:
            self._history.append((elapsed, gap, vps))
            if len(self._history) > self.history_size:
                del self._history[: -self.history_size]

    def record_event(self, kind: str, payload: dict[str, Any]) -> None:
        """Append an event to the ring and wake any SSE waiters."""
        with self._cond:
            self._seq += 1
            record = {
                "seq": self._seq,
                "t": round(time.perf_counter() - self._t0, 6),
                "ev": kind,
            }
            record.update(payload)
            self._events.append(record)
            if len(self._events) > self.ring_size:
                del self._events[: -self.ring_size]
            self._cond.notify_all()

    # -- reader side ---------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """The current status, workers and sparkline history (a copy)."""
        with self._lock:
            return {
                "status": dict(self._status),
                "workers": [
                    self._workers[slot].as_dict()
                    for slot in sorted(self._workers)
                ],
                "history": [
                    {"elapsed": round(e, 3), "gap": g, "vps": round(v, 1)}
                    for e, g, v in self._history
                ],
                "events_seen": self._seq,
            }

    def workers_alive(self) -> int:
        with self._lock:
            return sum(1 for w in self._workers.values() if w.alive)

    def worker_totals(self) -> tuple[int, float]:
        """(alive workers, summed vps) — the coordinator's aggregate."""
        with self._lock:
            alive = [w for w in self._workers.values() if w.alive]
            return len(alive), sum(w.vps for w in alive)

    def events_since(
        self, seq: int, timeout: float | None = None
    ) -> list[dict[str, Any]]:
        """Events with ``seq`` greater than the given one.

        Blocks up to ``timeout`` seconds for fresh events (None polls
        without blocking); returns copies.  The SSE endpoint drives its
        stream off this.
        """
        with self._cond:
            if timeout is not None and self._seq <= seq:
                self._cond.wait(timeout)
            return [dict(e) for e in self._events if e["seq"] > seq]

    def flight_events(self) -> list[dict[str, Any]]:
        """The full ring, oldest first — the flight-recorder content."""
        with self._lock:
            return [dict(e) for e in self._events]


class _LiveEventSink(BaseSink):
    """Engine-facing sink forwarding low-frequency events to the bus.

    ``accepts`` rejects every sampled kind, so explore/prune/goal events
    cost the engine one set-membership test and nothing else.  Close is
    a no-op — the bus outlives the solve (dashboards read the terminal
    state; the flight recorder dumps after the engine returns).
    """

    #: Statically true — no per-event state backs the rejection, so the
    #: engine may skip this sink on sampled kinds without ever calling
    #: :meth:`accepts` (the hot loop drops it from per-vertex checks).
    rejects_sampled_kinds = True

    def __init__(self, bus: TelemetryBus) -> None:
        self.bus = bus

    def accepts(self, kind: str) -> bool:
        return kind not in SAMPLED_KINDS

    def emit(self, kind: str, payload: dict[str, Any]) -> None:
        self.bus.record_event(kind, payload)
        if kind == "incumbent":
            self.bus.update(
                incumbent=payload.get("cost"),
                incumbent_at=payload.get("elapsed"),
            )
        elif kind == "summary":
            self.bus.update(
                phase="done",
                result_status=payload.get("status"),
                best_cost=payload.get("best_cost"),
            )
        elif kind == "start":
            self.bus.update(
                phase="solving",
                n=payload.get("n"),
                m=payload.get("m"),
                incumbent=payload.get("initial_bound"),
            )


class LiveMonitor:
    """The engine's live-telemetry hook: a bus plus a sampling policy.

    ``interval``
        Minimum seconds between full snapshot samples (the frontier
        scan, gap computation and history point).  The engine calls
        :meth:`on_sample` every 64 explored vertices; everything beyond
        a clock read is gated behind this interval.
    ``ring_size``
        Flight-recorder depth: how many recent events survive a crash.
    """

    def __init__(
        self, *, interval: float = 1.0, ring_size: int = 256
    ) -> None:
        if interval < 0:
            raise ValueError(f"interval must be >= 0, got {interval}")
        self.interval = interval
        self.bus = TelemetryBus(ring_size=ring_size)
        self._sink = _LiveEventSink(self.bus)
        self._next_sample = 0.0
        #: Last computed optimality gap (None before the first sample
        #: or when the incumbent/open bound is missing).  The stderr
        #: heartbeat reads this.
        self.last_gap: float | None = None
        self.samples = 0

    @property
    def event_sink(self) -> EventSink:
        return self._sink

    def compose_sink(self, user_sink: EventSink | None) -> EventSink:
        """The sink the engine should emit to when this monitor is on.

        Fan-in preserves the user's sink untouched; the engine must
        still decide its fused/reference path from the *user* sink so
        attaching a monitor never changes the search's performance
        class.
        """
        if user_sink is None:
            return self._sink
        return MultiSink(user_sink, self._sink)

    def on_sample(
        self,
        *,
        stats,
        incumbent: float,
        frontier,
        vertex_lb: float | None = None,
        stop_on_bound: bool = False,
        dominance=None,
    ) -> bool:
        """Engine check-in: snapshot the solve if the interval elapsed.

        Returns True when a sample was taken (tests key off this).
        ``vertex_lb`` is the in-hand vertex's bound — under best-first
        selection it *is* the minimum open bound, making the gap exact
        without scanning the frontier.
        """
        now = time.perf_counter()
        if now < self._next_sample:
            return False
        self._next_sample = now + self.interval

        elapsed = stats.time_since_start()
        vps = stats.generated / elapsed if elapsed > 0 else 0.0

        depths: dict[int, int] = {}
        if stop_on_bound and vertex_lb is not None:
            open_lb: float | None = vertex_lb
            for vertex in frontier.iter_open():
                level = vertex.level
                if level >= _MAX_DEPTH_BUCKETS:
                    level = _MAX_DEPTH_BUCKETS - 1
                depths[level] = depths.get(level, 0) + 1
        else:
            open_lb = vertex_lb
            for vertex in frontier.iter_open():
                lb = vertex.lower_bound
                if open_lb is None or lb < open_lb:
                    open_lb = lb
                level = vertex.level
                if level >= _MAX_DEPTH_BUCKETS:
                    level = _MAX_DEPTH_BUCKETS - 1
                depths[level] = depths.get(level, 0) + 1

        gap: float | None = None
        if open_lb is not None and not math.isinf(incumbent):
            gap = max(0.0, incumbent - open_lb)
        self.last_gap = gap

        tt: dict[str, Any] = {}
        if dominance is not None:
            tel = dominance.telemetry()
            if tel:
                cap = int(tel.get("tt_capacity", 0) or 0)
                filled = int(tel.get("tt_filled", 0) or 0)
                probes = int(tel.get("tt_hits", 0)) + int(
                    tel.get("tt_misses", 0)
                )
                tt = {
                    "tt_filled": filled,
                    "tt_capacity": cap,
                    "tt_occupancy": round(filled / cap, 4) if cap else None,
                    "tt_hit_rate": (
                        round(int(tel.get("tt_hits", 0)) / probes, 4)
                        if probes
                        else None
                    ),
                }

        self.bus.update(
            phase="solving",
            elapsed=round(elapsed, 3),
            explored=stats.explored,
            generated=stats.generated,
            active=len(frontier),
            incumbent=None if math.isinf(incumbent) else incumbent,
            open_lower_bound=open_lb,
            gap=gap,
            vps=round(vps, 1),
            depth_profile={str(k): v for k, v in sorted(depths.items())},
            prunes={
                "bound": stats.pruned_children,
                "stale_active": stats.pruned_active,
                "dominated": stats.pruned_dominated,
                "duplicate": stats.pruned_duplicate,
                "infeasible": stats.pruned_infeasible,
            },
            **tt,
        )
        self.bus.add_sample(elapsed, gap, vps)
        self.samples += 1
        return True

    # -- parallel coordinator hooks ------------------------------------

    def on_worker_frame(
        self,
        slot: int,
        *,
        shard: int | None,
        explored: int,
        vps: float,
        restarts: int = 0,
    ) -> None:
        """Absorb one worker ``("stats", …)`` frame."""
        self.bus.set_worker(
            WorkerStats(
                slot,
                shard=shard,
                explored=explored,
                vps=vps,
                restarts=restarts,
            )
        )

    def on_worker_down(self, slot: int, restarts: int) -> None:
        """Mark a slot dead-until-respawned after a reclaim."""
        with self.bus._lock:
            prev = self.bus._workers.get(slot)
        stats = WorkerStats(
            slot,
            shard=prev.shard if prev is not None else None,
            explored=prev.explored if prev is not None else 0,
            vps=0.0,
            restarts=restarts,
            alive=False,
            name=prev.name if prev is not None else None,
            done=prev.done if prev is not None else 0,
            retried=prev.retried if prev is not None else 0,
            stolen=prev.stolen if prev is not None else 0,
        )
        self.bus.set_worker(stats)

    def on_cluster_member(
        self,
        slot: int,
        *,
        name: str,
        shard: int | None,
        explored: int,
        vps: float,
        lease_age: float,
        done: int,
        retried: int,
        stolen: int,
        alive: bool = True,
    ) -> None:
        """Absorb one cluster member's liveness row (coordinator-side).

        The cluster coordinator refreshes every member on its sampling
        cadence, so ``/status`` shows per-worker lease age and shard
        accounting alongside the usual explored/vps gauges.
        """
        self.bus.set_worker(
            WorkerStats(
                slot,
                shard=shard,
                explored=explored,
                vps=vps,
                alive=alive,
                name=name,
                lease_age=lease_age,
                done=done,
                retried=retried,
                stolen=stolen,
            )
        )

    # -- flight recorder ----------------------------------------------

    def dump_flight(self, path: str, *, reason: str = "crash") -> str:
        """Write the flight-recorder dump (last-N events + final state).

        Atomic (tmp + rename) so a dump racing a second signal never
        leaves a half-written post-mortem.  Returns the path written.
        """
        dump = {
            "schema": "repro-flight/1",
            "reason": reason,
            "status": self.bus.snapshot(),
            "events": self.bus.flight_events(),
        }
        tmp = f"{path}.tmp"
        with open(tmp, "w") as fh:
            json.dump(dump, fh, indent=2)
            fh.write("\n")
        os.replace(tmp, path)
        return path


def write_flight_dump(
    monitor: LiveMonitor | None,
    *,
    checkpoint_path: str | None,
    reason: str,
    default_path: str = "repro-flight.json",
) -> str | None:
    """CLI helper: dump the flight recorder next to the final checkpoint.

    With a checkpoint the dump lands at ``<checkpoint>.flight.json`` —
    alongside the snapshot a resume would load — otherwise at
    ``default_path``.  Returns the path, or None when no monitor is
    attached.
    """
    if monitor is None:
        return None
    path = (
        f"{checkpoint_path}.flight.json"
        if checkpoint_path
        else default_path
    )
    return monitor.dump_flight(path, reason=reason)
