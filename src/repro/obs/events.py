"""Structured search events and pluggable sinks.

The engine narrates a solve as a stream of typed events — ``start``,
``explore``, ``incumbent``, ``goal``, ``prune``, ``resource`` and a
final ``summary`` — each a flat JSON-serializable mapping.  Anything implementing the :class:`EventSink` protocol can
receive them; the stock sinks are

* :class:`JsonlSink` — buffered JSON-lines writer for on-disk traces of
  arbitrarily long runs (bounded overhead via an event sampling rate and
  a buffer flush size), the replacement for
  :class:`~repro.core.trace.TraceRecorder`'s grow-only in-memory lists;
* :class:`MemorySink` — keeps events in a list (tests, notebooks);
* :class:`CallbackSink` — forwards every event to a callable;
* :class:`MultiSink` — fans one stream out to several sinks.

High-frequency kinds (:data:`SAMPLED_KINDS`: explore / prune / goal) are
*sampled*: the engine asks :meth:`EventSink.accepts` before it even
builds the payload dict, so a sink recording every 1000th explore event
costs 999 cheap counter bumps and one dict per thousand vertices.
Low-frequency kinds (start, incumbent, resource, summary) are always
delivered — they are the events analyses cannot afford to lose.
"""

from __future__ import annotations

import json
import time
from typing import IO, Any, Callable, Protocol, runtime_checkable

__all__ = [
    "SAMPLED_KINDS",
    "EventSink",
    "BaseSink",
    "JsonlSink",
    "MemorySink",
    "CallbackSink",
    "MultiSink",
    "TaggedSink",
]

#: Event kinds subject to sampling (one per explored/generated vertex).
SAMPLED_KINDS = frozenset({"explore", "prune", "goal"})


@runtime_checkable
class EventSink(Protocol):
    """What the engine needs from an event consumer."""

    def accepts(self, kind: str) -> bool:
        """Whether the next event of ``kind`` should be built and emitted.

        Called *before* the payload dict is constructed, so sinks can
        implement sampling at near-zero cost for skipped events.  Must
        be called exactly once per candidate event of a sampled kind.
        """
        ...

    def emit(self, kind: str, payload: dict[str, Any]) -> None:
        """Receive one event.  ``payload`` must be JSON-serializable."""
        ...

    def close(self) -> None:
        """Flush buffered events and release resources."""
        ...


class BaseSink:
    """Accept-everything base: subclasses override :meth:`emit`."""

    def accepts(self, kind: str) -> bool:  # noqa: ARG002 - protocol
        return True

    def emit(self, kind: str, payload: dict[str, Any]) -> None:
        raise NotImplementedError

    def close(self) -> None:
        pass

    # Sinks are context managers so CLI code can ``with`` them.
    def __enter__(self):
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class JsonlSink(BaseSink):
    """Buffered JSON-lines event writer.

    Each line is one event: ``{"t": <seconds since sink creation>,
    "ev": <kind>, ...payload}``.  Overhead is bounded two ways:

    * ``sample_every`` — record only every Nth event of each sampled
      kind (explore/prune/goal); unsampled kinds are always recorded.
      Skipped events cost one integer increment, no allocation.
    * ``buffer_events`` — lines are buffered and written in batches of
      this size (and on :meth:`close`), so a million-event trace does a
      few thousand writes, not a million.

    ``path_or_file`` may be a path (opened and owned by the sink) or an
    open text file (borrowed; ``close()`` flushes but does not close it).
    """

    def __init__(
        self,
        path_or_file: str | IO[str],
        *,
        sample_every: int = 1,
        buffer_events: int = 1024,
    ) -> None:
        if sample_every < 1:
            raise ValueError(f"sample_every must be >= 1, got {sample_every}")
        if buffer_events < 1:
            raise ValueError(f"buffer_events must be >= 1, got {buffer_events}")
        if isinstance(path_or_file, (str, bytes)) or hasattr(
            path_or_file, "__fspath__"
        ):
            self._fh: IO[str] = open(path_or_file, "w")
            self._owns_fh = True
        else:
            self._fh = path_or_file
            self._owns_fh = False
        self.sample_every = sample_every
        self.buffer_events = buffer_events
        self._buffer: list[str] = []
        self._seen: dict[str, int] = {}
        self._t0 = time.perf_counter()
        #: Events actually written (post-sampling).
        self.events_written = 0
        #: Events offered (pre-sampling), per kind.
        self.events_seen = 0
        self._closed = False

    def accepts(self, kind: str) -> bool:
        self.events_seen += 1
        if kind not in SAMPLED_KINDS or self.sample_every == 1:
            return True
        n = self._seen.get(kind, 0)
        self._seen[kind] = n + 1
        return n % self.sample_every == 0

    def emit(self, kind: str, payload: dict[str, Any]) -> None:
        record = {"t": round(time.perf_counter() - self._t0, 6), "ev": kind}
        record.update(payload)
        self._buffer.append(json.dumps(record, separators=(",", ":")))
        self.events_written += 1
        if len(self._buffer) >= self.buffer_events:
            self.flush()

    def flush(self) -> None:
        if self._buffer:
            self._fh.write("\n".join(self._buffer) + "\n")
            self._buffer.clear()
        self._fh.flush()

    def close(self) -> None:
        if self._closed:
            return
        self.flush()
        if self._owns_fh:
            self._fh.close()
        self._closed = True


class MemorySink(BaseSink):
    """Collects ``(kind, payload)`` pairs in memory; sampling optional."""

    def __init__(self, *, sample_every: int = 1) -> None:
        self.events: list[tuple[str, dict[str, Any]]] = []
        self.sample_every = sample_every
        self._seen: dict[str, int] = {}

    def accepts(self, kind: str) -> bool:
        if kind not in SAMPLED_KINDS or self.sample_every == 1:
            return True
        n = self._seen.get(kind, 0)
        self._seen[kind] = n + 1
        return n % self.sample_every == 0

    def emit(self, kind: str, payload: dict[str, Any]) -> None:
        self.events.append((kind, dict(payload)))

    def of_kind(self, kind: str) -> list[dict[str, Any]]:
        return [p for k, p in self.events if k == kind]

    def __len__(self) -> int:
        return len(self.events)


class CallbackSink(BaseSink):
    """Forwards every event to ``fn(kind, payload)``."""

    def __init__(self, fn: Callable[[str, dict[str, Any]], None]) -> None:
        self.fn = fn

    def emit(self, kind: str, payload: dict[str, Any]) -> None:
        self.fn(kind, payload)


class TaggedSink(BaseSink):
    """Wraps a sink, stamping fixed fields onto every event's payload.

    The parallel driver gives each worker's event stream a ``worker``
    (and ``shard``) tag before folding it into the coordinator's sink,
    so one merged trace still attributes every event to its origin.
    Sampling decisions are delegated to the wrapped sink; ``close`` is
    *not* forwarded (the coordinator owns the underlying sink and may
    tag several streams into it).
    """

    def __init__(self, inner: EventSink, **tags: Any) -> None:
        self.inner = inner
        self.tags = dict(tags)

    def accepts(self, kind: str) -> bool:
        return self.inner.accepts(kind)

    def emit(self, kind: str, payload: dict[str, Any]) -> None:
        record = dict(payload)
        record.update(self.tags)
        self.inner.emit(kind, record)


class MultiSink(BaseSink):
    """Fans events out to several sinks (an event goes to every sink
    that accepts it)."""

    def __init__(self, *sinks: EventSink) -> None:
        self.sinks = tuple(sinks)
        self._pending: tuple[EventSink, ...] = ()

    def accepts(self, kind: str) -> bool:
        self._pending = tuple(s for s in self.sinks if s.accepts(kind))
        return bool(self._pending)

    def emit(self, kind: str, payload: dict[str, Any]) -> None:
        for sink in self._pending:
            sink.emit(kind, payload)

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()
