"""Heartbeat progress reporting for long solves.

A :class:`ProgressReporter` turns the engine's periodic check-in into
human-readable one-liners::

    [repro] 12.0s explored=402,113 generated=1,204,551 active=8,911
            incumbent=14.5 36,214 v/s eta=8.2s

The engine consults the reporter every few dozen explored vertices (so
an idle reporter costs a bitmask test per vertex); the reporter itself
rate-limits to ``interval`` seconds between lines.  Lines go to the
``emit`` callable — ``stderr`` by default, so heartbeats never corrupt
machine-readable stdout — which makes the reporter equally usable from
the CLI, the experiment runner, or a notebook cell.

ETA is honest-best-effort: branch-and-bound has no meaningful completion
fraction, so the ETA is derived from whichever resource bound (vertex
cap or time limit) will trip first at the current rate, and omitted when
the search is unbounded.
"""

from __future__ import annotations

import math
import sys
import time
from typing import Callable

__all__ = ["ProgressReporter", "format_progress_line"]


def format_progress_line(
    *,
    elapsed: float,
    explored: int,
    generated: int,
    active: int,
    incumbent: float,
    vertices_per_second: float,
    eta: float | None,
    gap: float | None = None,
    workers_alive: int | None = None,
) -> str:
    inc = "-" if math.isinf(incumbent) else f"{incumbent:g}"
    gap_s = "" if gap is None else f" gap={gap:g}"
    workers_s = (
        "" if workers_alive is None else f" workers={workers_alive}"
    )
    eta_s = "" if eta is None else f" eta={eta:.1f}s"
    return (
        f"[repro] {elapsed:.1f}s explored={explored:,} "
        f"generated={generated:,} active={active:,} incumbent={inc}"
        f"{gap_s}{workers_s} {vertices_per_second:,.0f} v/s{eta_s}"
    )


class ProgressReporter:
    """Rate-limited heartbeat line emitter.

    ``interval``
        Minimum seconds between lines (0 emits on every check-in).
    ``emit``
        Callable receiving each formatted line; defaults to writing to
        ``sys.stderr``.
    """

    def __init__(
        self,
        interval: float = 1.0,
        emit: Callable[[str], None] | None = None,
    ) -> None:
        if interval < 0:
            raise ValueError(f"interval must be >= 0, got {interval}")
        self.interval = interval
        self.emit = emit if emit is not None else self._to_stderr
        self.lines_emitted = 0
        self._t0 = time.perf_counter()
        self._last = self._t0 - interval  # first check-in may emit

    @staticmethod
    def _to_stderr(line: str) -> None:
        print(line, file=sys.stderr, flush=True)

    def start(self) -> None:
        """Re-arm the clock at solve start (engine calls this)."""
        self._t0 = time.perf_counter()
        self._last = self._t0 - self.interval

    def maybe_emit(
        self,
        *,
        explored: int,
        generated: int,
        active: int,
        incumbent: float,
        max_vertices: float = math.inf,
        time_limit: float = math.inf,
        gap: float | None = None,
        workers_alive: int | None = None,
    ) -> bool:
        """Emit a heartbeat if ``interval`` seconds have passed.

        Returns True when a line was emitted (tests key off this).
        ``gap`` (the live optimality gap) and ``workers_alive`` (the
        parallel coordinator's live worker count) appear in the line
        only when the caller can supply them.
        """
        now = time.perf_counter()
        if now - self._last < self.interval:
            return False
        self._last = now
        elapsed = now - self._t0
        vps = generated / elapsed if elapsed > 0 else 0.0
        eta = self._eta(generated, elapsed, vps, max_vertices, time_limit)
        self.emit(
            format_progress_line(
                elapsed=elapsed,
                explored=explored,
                generated=generated,
                active=active,
                incumbent=incumbent,
                vertices_per_second=vps,
                eta=eta,
                gap=gap,
                workers_alive=workers_alive,
            )
        )
        self.lines_emitted += 1
        return True

    @staticmethod
    def _eta(
        generated: int,
        elapsed: float,
        vps: float,
        max_vertices: float,
        time_limit: float,
    ) -> float | None:
        """Seconds until the tighter resource bound trips, if any."""
        candidates = []
        if not math.isinf(max_vertices) and vps > 0:
            candidates.append(max(0.0, (max_vertices - generated) / vps))
        if not math.isinf(time_limit):
            candidates.append(max(0.0, time_limit - elapsed))
        return min(candidates) if candidates else None

    def finish(self, summary_line: str) -> None:
        """Emit one final line (the engine sends the result summary)."""
        self.emit(f"[repro] done: {summary_line}")
        self.lines_emitted += 1
