"""Offline analysis of JSONL trace files (the ``repro report`` command).

:func:`load_trace` parses a file written by
:class:`~repro.obs.events.JsonlSink` into a :class:`TraceReport`;
:func:`render_trace_report` turns it into the text the CLI prints:
event inventory, the anytime (incumbent-convergence) profile, the
per-phase time table when the run was profiled, and the final search
statistics.  Parsing is line-tolerant — blank and malformed lines are
counted and skipped, so a trace truncated by a crash still reports.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import IO, Any

from .profile import PhaseBreakdown

__all__ = ["TraceReport", "load_trace", "render_trace_report"]


@dataclass
class TraceReport:
    """Everything ``repro report`` needs from one JSONL trace."""

    path: str
    #: Events per kind (post-sampling — what is actually in the file).
    counts: dict[str, int] = field(default_factory=dict)
    #: The ``start`` event payload, if present.
    start: dict[str, Any] | None = None
    #: The final ``summary`` event payload, if present.
    summary: dict[str, Any] | None = None
    #: (generated, cost) incumbent improvements, in file order.
    incumbents: list[tuple[int, float]] = field(default_factory=list)
    #: (t, generated, level, lower_bound, active) sampled explore events.
    explores: list[tuple[float, int, int, float, int]] = field(
        default_factory=list
    )
    #: Resource events (TIMELIMIT / MAXSZAS / MAXSZDB / MAXVERT).
    resources: list[dict[str, Any]] = field(default_factory=list)
    #: The post-solve transposition-table telemetry event, if present.
    tt: dict[str, Any] | None = None
    #: Checkpoint-written events, in file order.
    checkpoints: list[dict[str, Any]] = field(default_factory=list)
    #: The resume event, if this run restarted from a snapshot.
    resume: dict[str, Any] | None = None
    #: Worker-restart events from the parallel supervisor.
    worker_restarts: list[dict[str, Any]] = field(default_factory=list)
    #: Shard-retry events (requeues after a worker death).
    shard_retries: list[dict[str, Any]] = field(default_factory=list)
    #: Quarantine events (shards abandoned after repeated failures).
    quarantines: list[dict[str, Any]] = field(default_factory=list)
    #: Wall-clock seconds from solve start to the first incumbent.
    first_incumbent_elapsed: float | None = None
    #: Lines that failed to parse as JSON objects.
    malformed_lines: int = 0

    @property
    def total_events(self) -> int:
        return sum(self.counts.values())

    def anytime_profile(self) -> list[tuple[int, float]]:
        """(generated, best cost) steps, starting at the initial bound."""
        profile: list[tuple[int, float]] = []
        if self.start is not None and self.start.get("initial_bound") is not None:
            profile.append((0, float(self.start["initial_bound"])))
        profile.extend(self.incumbents)
        return profile

    def phase_breakdown(self) -> PhaseBreakdown | None:
        if self.summary is None or not self.summary.get("profile"):
            return None
        prof = self.summary["profile"]
        return PhaseBreakdown(
            phases=tuple((name, float(s), 0) for name, s in prof.items())
        )


def load_trace(path_or_file: str | IO[str]) -> TraceReport:
    """Parse a JSONL trace file into a :class:`TraceReport`."""
    if hasattr(path_or_file, "read"):
        return _parse(path_or_file, getattr(path_or_file, "name", "<stream>"))
    with open(path_or_file) as fh:
        return _parse(fh, str(path_or_file))


def _parse(fh: IO[str], path: str) -> TraceReport:
    report = TraceReport(path=path)
    for line in fh:
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
            kind = record["ev"]
        except (ValueError, KeyError, TypeError):
            report.malformed_lines += 1
            continue
        report.counts[kind] = report.counts.get(kind, 0) + 1
        if kind == "start":
            report.start = record
        elif kind == "summary":
            report.summary = record
        elif kind == "incumbent":
            report.incumbents.append(
                (int(record.get("generated", 0)), float(record["cost"]))
            )
            if (
                report.first_incumbent_elapsed is None
                and record.get("elapsed") is not None
            ):
                report.first_incumbent_elapsed = float(record["elapsed"])
        elif kind == "explore":
            report.explores.append(
                (
                    float(record.get("t", 0.0)),
                    int(record.get("generated", 0)),
                    int(record.get("level", 0)),
                    float(record.get("lb", 0.0)),
                    int(record.get("active", 0)),
                )
            )
        elif kind == "resource":
            report.resources.append(record)
        elif kind == "tt":
            report.tt = record
        elif kind == "checkpoint":
            report.checkpoints.append(record)
        elif kind == "resume":
            report.resume = record
        elif kind == "worker_restart":
            report.worker_restarts.append(record)
        elif kind == "shard_retry":
            report.shard_retries.append(record)
        elif kind == "quarantine":
            report.quarantines.append(record)
    return report


#: Per-rule attribution of the engine's pruning counters: the stats key
#: and which of the 9-tuple's knobs (or engine mechanism) discarded the
#: vertex.
_PRUNE_RULES = (
    ("pruned_children", "elimination E (bound vs threshold)"),
    ("pruned_active", "incumbent sweep (U/DBAS)"),
    ("pruned_dominated", "dominance D"),
    ("pruned_duplicate", "transposition (duplicate state)"),
    ("pruned_infeasible", "characteristic F"),
)


def _simple_table(rows: list[tuple[str, ...]]) -> str:
    widths = [max(len(r[i]) for r in rows) for i in range(len(rows[0]))]
    lines = []
    for i, row in enumerate(rows):
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def _render_robustness(report: TraceReport) -> list[str]:
    """The fault-tolerance section: empty when the run had none of it."""
    any_fault = (
        report.checkpoints
        or report.resume is not None
        or report.worker_restarts
        or report.shard_retries
        or report.quarantines
    )
    if not any_fault and report.first_incumbent_elapsed is None:
        return []
    out = ["robustness:"]
    if report.first_incumbent_elapsed is not None:
        out.append(
            "  time to first incumbent: "
            f"{report.first_incumbent_elapsed:.3f}s"
        )
    if report.checkpoints:
        last = report.checkpoints[-1]
        out.append(
            f"  checkpoints written: {len(report.checkpoints)} "
            f"(last: version {last.get('version', '?')} at "
            f"{last.get('explored', '?')} explored)"
        )
    if report.resume is not None:
        res = report.resume
        out.append(
            f"  resumed from: version {res.get('version', '?')} "
            f"({res.get('explored', '?')} explored / "
            f"{res.get('generated', '?')} generated before the restart)"
        )
    if report.worker_restarts:
        causes = sorted(
            {str(r.get("cause", "?")) for r in report.worker_restarts}
        )
        out.append(
            f"  worker restarts: {len(report.worker_restarts)} "
            f"({', '.join(causes)})"
        )
    if report.shard_retries:
        out.append(f"  shard retries: {len(report.shard_retries)}")
    if report.quarantines:
        shards = ", ".join(
            str(q.get("shard", "?")) for q in report.quarantines
        )
        out.append(
            f"  quarantined shards: {len(report.quarantines)} "
            f"({shards}) — result is a bound, not proven optimal"
        )
    return out


def render_trace_report(report: TraceReport, max_profile_rows: int = 20) -> str:
    """Human-readable rendering of one trace (anytime + phases + stats)."""
    out: list[str] = [f"trace: {report.path}"]

    if report.start is not None:
        bits = []
        if report.start.get("n") is not None:
            bits.append(f"{report.start['n']} tasks")
        if report.start.get("m") is not None:
            bits.append(f"{report.start['m']} processors")
        if report.start.get("initial_bound") is not None:
            bits.append(f"U={report.start['initial_bound']:g}")
        if bits:
            out.append("run: " + ", ".join(bits))
        if report.start.get("params"):
            out.append(f"parameters: {report.start['params']}")

    kinds = ", ".join(
        f"{k}={report.counts[k]}" for k in sorted(report.counts)
    )
    out.append(f"events: {report.total_events} ({kinds})")
    if report.malformed_lines:
        out.append(f"warning: skipped {report.malformed_lines} malformed lines")

    profile = report.anytime_profile()
    if profile:
        out.append("")
        out.append("anytime profile (incumbent cost by generated vertices):")
        rows = [("generated", "cost")]
        shown = profile
        if len(shown) > max_profile_rows:
            head = shown[: max_profile_rows - 1]
            rows_src = head + [shown[-1]]
            omitted = len(shown) - len(rows_src)
        else:
            rows_src = shown
            omitted = 0
        rows += [(f"{g:,}", f"{c:g}") for g, c in rows_src]
        out.append(_simple_table(rows))
        if omitted:
            out.append(f"(… {omitted} intermediate improvements omitted)")

    breakdown = report.phase_breakdown()
    if breakdown is not None:
        elapsed = None
        if report.summary is not None:
            elapsed = (report.summary.get("stats") or {}).get("elapsed")
        out.append("")
        out.append("phase profile:")
        out.append(breakdown.as_table(elapsed))

    if report.resources:
        out.append("")
        out.append("resource events:")
        for rec in report.resources:
            kind = rec.get("kind", "?")
            detail = rec.get("detail", "")
            out.append(f"  {kind} {detail}".rstrip())

    robustness = _render_robustness(report)
    if robustness:
        out.append("")
        out.extend(robustness)

    stats_for_pruning = (report.summary or {}).get("stats") or {}
    pruned_total = sum(
        int(stats_for_pruning.get(key, 0)) for key, _ in _PRUNE_RULES
    )
    if pruned_total:
        out.append("")
        out.append("pruning breakdown by rule:")
        rows = [("rule", "pruned", "share")]
        for key, label in _PRUNE_RULES:
            count = int(stats_for_pruning.get(key, 0))
            if count:
                rows.append(
                    (label, f"{count:,}", f"{count / pruned_total:.1%}")
                )
        out.append(_simple_table(rows))

    if report.tt is not None:
        tt = report.tt
        probes = int(tt.get("tt_hits", 0)) + int(tt.get("tt_misses", 0))
        hit_rate = (
            f" ({tt.get('tt_hits', 0) / probes:.1%} hit rate)"
            if probes else ""
        )
        out.append("")
        out.append("transposition table:")
        out.append(
            f"  duplicates pruned: {tt.get('duplicate_pruned', 0):,}"
            f"{hit_rate}"
        )
        out.append(
            f"  probes: {probes:,} "
            f"(hits={tt.get('tt_hits', 0):,} "
            f"misses={tt.get('tt_misses', 0):,} "
            f"collisions={tt.get('tt_collisions', 0):,})"
        )
        out.append(
            f"  store: {tt.get('tt_filled', 0):,}/"
            f"{tt.get('tt_capacity', 0):,} entries "
            f"(inserts={tt.get('tt_inserts', 0):,} "
            f"evictions={tt.get('tt_evictions', 0):,} "
            f"rejects={tt.get('tt_rejects', 0):,})"
        )

    if report.summary is not None:
        out.append("")
        status = report.summary.get("status", "?")
        cost = report.summary.get("best_cost")
        cost_s = "-" if cost is None else f"{cost:g}"
        out.append(f"result: {status} L_max={cost_s}")
        stats = report.summary.get("stats") or {}
        if stats:
            pairs = " ".join(
                f"{k}={stats[k]}" for k in sorted(stats) if k != "elapsed"
            )
            if stats.get("elapsed") is not None:
                pairs += f" elapsed={stats['elapsed']:.3f}s"
            out.append(f"stats: {pairs}")

    return "\n".join(out)
