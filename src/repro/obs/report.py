"""Offline analysis of JSONL trace files (the ``repro report`` command).

:func:`load_trace` parses a file written by
:class:`~repro.obs.events.JsonlSink` into a :class:`TraceReport`;
:func:`render_trace_report` turns it into the text the CLI prints:
event inventory, the anytime (incumbent-convergence) profile, the
per-phase time table when the run was profiled, and the final search
statistics.  Parsing is line-tolerant — blank and malformed lines are
counted and skipped, so a trace truncated by a crash still reports.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import IO, Any

from .profile import PhaseBreakdown

__all__ = ["TraceReport", "load_trace", "render_trace_report"]


@dataclass
class TraceReport:
    """Everything ``repro report`` needs from one JSONL trace."""

    path: str
    #: Events per kind (post-sampling — what is actually in the file).
    counts: dict[str, int] = field(default_factory=dict)
    #: The ``start`` event payload, if present.
    start: dict[str, Any] | None = None
    #: The final ``summary`` event payload, if present.
    summary: dict[str, Any] | None = None
    #: (generated, cost) incumbent improvements, in file order.
    incumbents: list[tuple[int, float]] = field(default_factory=list)
    #: (elapsed, generated, cost) for incumbent events carrying a
    #: timestamp — the improvement timeline.
    incumbent_timeline: list[tuple[float, int, float]] = field(
        default_factory=list
    )
    #: (cause, level, count) from sampled prune events; ``level`` is
    #: None for events that span depths (active-sweep).
    prunes: list[tuple[str, int | None, int]] = field(default_factory=list)
    #: (t, generated, level, lower_bound, active) sampled explore events.
    explores: list[tuple[float, int, int, float, int]] = field(
        default_factory=list
    )
    #: Resource events (TIMELIMIT / MAXSZAS / MAXSZDB / MAXVERT).
    resources: list[dict[str, Any]] = field(default_factory=list)
    #: The post-solve transposition-table telemetry event, if present.
    tt: dict[str, Any] | None = None
    #: Checkpoint-written events, in file order.
    checkpoints: list[dict[str, Any]] = field(default_factory=list)
    #: The resume event, if this run restarted from a snapshot.
    resume: dict[str, Any] | None = None
    #: Worker-restart events from the parallel supervisor.
    worker_restarts: list[dict[str, Any]] = field(default_factory=list)
    #: Shard-retry events (requeues after a worker death).
    shard_retries: list[dict[str, Any]] = field(default_factory=list)
    #: Quarantine events (shards abandoned after repeated failures).
    quarantines: list[dict[str, Any]] = field(default_factory=list)
    #: Cluster membership events from the distributed coordinator.
    worker_joins: list[dict[str, Any]] = field(default_factory=list)
    worker_leaves: list[dict[str, Any]] = field(default_factory=list)
    #: Lease expiries (silent workers whose shards were re-queued).
    lease_expiries: list[dict[str, Any]] = field(default_factory=list)
    #: Work-steal events (backlog shards revoked and reassigned).
    steals: list[dict[str, Any]] = field(default_factory=list)
    #: Wall-clock seconds from solve start to the first incumbent.
    first_incumbent_elapsed: float | None = None
    #: Lines that failed to parse as JSON objects.
    malformed_lines: int = 0

    @property
    def total_events(self) -> int:
        return sum(self.counts.values())

    def anytime_profile(self) -> list[tuple[int, float]]:
        """(generated, best cost) steps, starting at the initial bound."""
        profile: list[tuple[int, float]] = []
        if self.start is not None and self.start.get("initial_bound") is not None:
            profile.append((0, float(self.start["initial_bound"])))
        profile.extend(self.incumbents)
        return profile

    def pruning_by_depth(self) -> dict[str, dict[int, int]]:
        """``cause -> {level: count}`` from the sampled prune events.

        Counts are post-sampling (what the trace actually holds), so
        with ``--trace-sample > 1`` they attribute *where* pruning
        happens rather than totalling it — the summary's exact counters
        remain the totals of record.
        """
        out: dict[str, dict[int, int]] = {}
        for cause, level, count in self.prunes:
            if level is None:
                continue
            per_level = out.setdefault(cause, {})
            per_level[level] = per_level.get(level, 0) + count
        return out

    def explored_by_level(self) -> dict[int, int]:
        """``level -> sampled explore-event count`` (branching shape)."""
        out: dict[int, int] = {}
        for _t, _generated, level, _lb, _active in self.explores:
            out[level] = out.get(level, 0) + 1
        return out

    def branching_decay(self) -> list[tuple[int, int, float | None]]:
        """(level, sampled explores, growth vs previous level).

        The growth column is the per-level ratio of sampled explore
        counts — a proxy for how fast pruning collapses the effective
        branching factor as the search deepens.
        """
        by_level = self.explored_by_level()
        rows: list[tuple[int, int, float | None]] = []
        prev: int | None = None
        for level in sorted(by_level):
            count = by_level[level]
            growth = count / prev if prev else None
            rows.append((level, count, growth))
            prev = count
        return rows

    def phase_breakdown(self) -> PhaseBreakdown | None:
        if self.summary is None or not self.summary.get("profile"):
            return None
        prof = self.summary["profile"]
        return PhaseBreakdown(
            phases=tuple((name, float(s), 0) for name, s in prof.items())
        )


def load_trace(path_or_file: str | IO[str]) -> TraceReport:
    """Parse a JSONL trace file into a :class:`TraceReport`."""
    if hasattr(path_or_file, "read"):
        return _parse(path_or_file, getattr(path_or_file, "name", "<stream>"))
    with open(path_or_file) as fh:
        return _parse(fh, str(path_or_file))


def _parse(fh: IO[str], path: str) -> TraceReport:
    report = TraceReport(path=path)
    for line in fh:
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
            kind = record["ev"]
        except (ValueError, KeyError, TypeError):
            report.malformed_lines += 1
            continue
        report.counts[kind] = report.counts.get(kind, 0) + 1
        if kind == "start":
            report.start = record
        elif kind == "summary":
            report.summary = record
        elif kind == "incumbent":
            generated = int(record.get("generated", 0))
            cost = float(record["cost"])
            report.incumbents.append((generated, cost))
            if record.get("elapsed") is not None:
                elapsed = float(record["elapsed"])
                report.incumbent_timeline.append(
                    (elapsed, generated, cost)
                )
                if report.first_incumbent_elapsed is None:
                    report.first_incumbent_elapsed = elapsed
        elif kind == "prune":
            level = record.get("level")
            report.prunes.append(
                (
                    str(record.get("cause", "?")),
                    int(level) if level is not None else None,
                    int(record.get("count", 1)),
                )
            )
        elif kind == "explore":
            report.explores.append(
                (
                    float(record.get("t", 0.0)),
                    int(record.get("generated", 0)),
                    int(record.get("level", 0)),
                    float(record.get("lb", 0.0)),
                    int(record.get("active", 0)),
                )
            )
        elif kind == "resource":
            report.resources.append(record)
        elif kind == "tt":
            report.tt = record
        elif kind == "checkpoint":
            report.checkpoints.append(record)
        elif kind == "resume":
            report.resume = record
        elif kind == "worker_restart":
            report.worker_restarts.append(record)
        elif kind == "shard_retry":
            report.shard_retries.append(record)
        elif kind == "quarantine":
            report.quarantines.append(record)
        elif kind == "worker_join":
            report.worker_joins.append(record)
        elif kind == "worker_leave":
            report.worker_leaves.append(record)
        elif kind == "lease_expired":
            report.lease_expiries.append(record)
        elif kind == "steal":
            report.steals.append(record)
    return report


#: Per-rule attribution of the engine's pruning counters: the stats key
#: and which of the 9-tuple's knobs (or engine mechanism) discarded the
#: vertex.
_PRUNE_RULES = (
    ("pruned_children", "elimination E (bound vs threshold)"),
    ("pruned_active", "incumbent sweep (U/DBAS)"),
    ("pruned_dominated", "dominance D"),
    ("pruned_duplicate", "transposition (duplicate state)"),
    ("pruned_infeasible", "characteristic F"),
)


def _simple_table(rows: list[tuple[str, ...]]) -> str:
    widths = [max(len(r[i]) for r in rows) for i in range(len(rows[0]))]
    lines = []
    for i, row in enumerate(rows):
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def _render_robustness(report: TraceReport) -> list[str]:
    """The fault-tolerance section: empty when the run had none of it."""
    any_fault = (
        report.checkpoints
        or report.resume is not None
        or report.worker_restarts
        or report.shard_retries
        or report.quarantines
        or report.worker_joins
        or report.worker_leaves
        or report.lease_expiries
        or report.steals
    )
    if not any_fault and report.first_incumbent_elapsed is None:
        return []
    out = ["robustness:"]
    if report.first_incumbent_elapsed is not None:
        out.append(
            "  time to first incumbent: "
            f"{report.first_incumbent_elapsed:.3f}s"
        )
    if report.checkpoints:
        last = report.checkpoints[-1]
        out.append(
            f"  checkpoints written: {len(report.checkpoints)} "
            f"(last: version {last.get('version', '?')} at "
            f"{last.get('explored', '?')} explored)"
        )
    if report.resume is not None:
        res = report.resume
        out.append(
            f"  resumed from: version {res.get('version', '?')} "
            f"({res.get('explored', '?')} explored / "
            f"{res.get('generated', '?')} generated before the restart)"
        )
    if report.worker_restarts:
        causes = sorted(
            {str(r.get("cause", "?")) for r in report.worker_restarts}
        )
        out.append(
            f"  worker restarts: {len(report.worker_restarts)} "
            f"({', '.join(causes)})"
        )
    if report.worker_joins or report.worker_leaves:
        names = sorted(
            {str(j.get("worker", "?")) for j in report.worker_joins}
        )
        shown = ", ".join(names[:8]) + ("…" if len(names) > 8 else "")
        out.append(
            f"  cluster membership: {len(report.worker_joins)} join(s), "
            f"{len(report.worker_leaves)} leave(s) ({shown})"
        )
    if report.lease_expiries:
        workers = sorted(
            {str(e.get("worker", "?")) for e in report.lease_expiries}
        )
        out.append(
            f"  lease expiries: {len(report.lease_expiries)} "
            f"({', '.join(workers)}) — in-flight shards re-queued"
        )
    if report.steals:
        out.append(
            f"  work steals: {len(report.steals)} "
            "(idle workers re-balanced the prefetch backlog)"
        )
    if report.shard_retries:
        out.append(f"  shard retries: {len(report.shard_retries)}")
    if report.quarantines:
        shards = ", ".join(
            str(q.get("shard", "?")) for q in report.quarantines
        )
        out.append(
            f"  quarantined shards: {len(report.quarantines)} "
            f"({shards}) — result is a bound, not proven optimal"
        )
    return out


def _render_analytics(report: TraceReport, max_rows: int = 20) -> list[str]:
    """Search-tree analytics: where vertices went, rule by depth band."""
    out: list[str] = []

    timeline = report.incumbent_timeline
    if timeline:
        out.append("")
        out.append("incumbent timeline:")
        rows = [("elapsed", "generated", "cost")]
        shown = timeline
        omitted = 0
        if len(shown) > max_rows:
            shown = timeline[: max_rows - 1] + [timeline[-1]]
            omitted = len(timeline) - len(shown)
        rows += [
            (f"{t:.3f}s", f"{g:,}", f"{c:g}") for t, g, c in shown
        ]
        out.append(_simple_table(rows))
        if omitted:
            out.append(f"(… {omitted} intermediate improvements omitted)")

    by_depth = report.pruning_by_depth()
    if by_depth:
        levels = [
            level for per in by_depth.values() for level in per
        ]
        max_level = max(levels)
        band = max(1, -(-(max_level + 1) // 6))  # ceil: at most 6 bands
        causes = sorted(
            by_depth, key=lambda c: -sum(by_depth[c].values())
        )
        out.append("")
        out.append("pruning by depth band (sampled events):")
        rows = [("levels",) + tuple(causes)]
        for lo in range(0, max_level + 1, band):
            hi = min(lo + band - 1, max_level)
            label = f"{lo}" if lo == hi else f"{lo}-{hi}"
            cells = []
            for cause in causes:
                per = by_depth[cause]
                total = sum(
                    count
                    for level, count in per.items()
                    if lo <= level <= hi
                )
                cells.append(f"{total:,}" if total else "-")
            rows.append((label,) + tuple(cells))
        out.append(_simple_table(rows))

    decay = report.branching_decay()
    if len(decay) > 1:
        out.append("")
        out.append("branching-factor decay (sampled explores per level):")
        rows = [("level", "explored", "growth")]
        for level, count, growth in decay:
            rows.append(
                (
                    str(level),
                    f"{count:,}",
                    "-" if growth is None else f"{growth:.2f}x",
                )
            )
        out.append(_simple_table(rows))

    return out


def render_trace_report(report: TraceReport, max_profile_rows: int = 20) -> str:
    """Human-readable rendering of one trace (anytime + phases + stats)."""
    out: list[str] = [f"trace: {report.path}"]

    if report.start is not None:
        bits = []
        if report.start.get("n") is not None:
            bits.append(f"{report.start['n']} tasks")
        if report.start.get("m") is not None:
            bits.append(f"{report.start['m']} processors")
        if report.start.get("initial_bound") is not None:
            bits.append(f"U={report.start['initial_bound']:g}")
        if bits:
            out.append("run: " + ", ".join(bits))
        if report.start.get("params"):
            out.append(f"parameters: {report.start['params']}")

    kinds = ", ".join(
        f"{k}={report.counts[k]}" for k in sorted(report.counts)
    )
    out.append(f"events: {report.total_events} ({kinds})")
    if report.malformed_lines:
        out.append(f"warning: skipped {report.malformed_lines} malformed lines")

    profile = report.anytime_profile()
    if profile:
        out.append("")
        out.append("anytime profile (incumbent cost by generated vertices):")
        rows = [("generated", "cost")]
        shown = profile
        if len(shown) > max_profile_rows:
            head = shown[: max_profile_rows - 1]
            rows_src = head + [shown[-1]]
            omitted = len(shown) - len(rows_src)
        else:
            rows_src = shown
            omitted = 0
        rows += [(f"{g:,}", f"{c:g}") for g, c in rows_src]
        out.append(_simple_table(rows))
        if omitted:
            out.append(f"(… {omitted} intermediate improvements omitted)")

    breakdown = report.phase_breakdown()
    if breakdown is not None:
        elapsed = None
        if report.summary is not None:
            elapsed = (report.summary.get("stats") or {}).get("elapsed")
        out.append("")
        out.append("phase profile:")
        out.append(breakdown.as_table(elapsed))

    if report.resources:
        out.append("")
        out.append("resource events:")
        for rec in report.resources:
            kind = rec.get("kind", "?")
            detail = rec.get("detail", "")
            out.append(f"  {kind} {detail}".rstrip())

    robustness = _render_robustness(report)
    if robustness:
        out.append("")
        out.extend(robustness)

    stats_for_pruning = (report.summary or {}).get("stats") or {}
    pruned_total = sum(
        int(stats_for_pruning.get(key, 0)) for key, _ in _PRUNE_RULES
    )
    if pruned_total:
        out.append("")
        out.append("pruning breakdown by rule:")
        rows = [("rule", "pruned", "share")]
        for key, label in _PRUNE_RULES:
            count = int(stats_for_pruning.get(key, 0))
            if count:
                rows.append(
                    (label, f"{count:,}", f"{count / pruned_total:.1%}")
                )
        out.append(_simple_table(rows))

    out.extend(_render_analytics(report, max_rows=max_profile_rows))

    if report.tt is not None:
        tt = report.tt
        probes = int(tt.get("tt_hits", 0)) + int(tt.get("tt_misses", 0))
        hit_rate = (
            f" ({tt.get('tt_hits', 0) / probes:.1%} hit rate)"
            if probes else ""
        )
        out.append("")
        out.append("transposition table:")
        out.append(
            f"  duplicates pruned: {tt.get('duplicate_pruned', 0):,}"
            f"{hit_rate}"
        )
        out.append(
            f"  probes: {probes:,} "
            f"(hits={tt.get('tt_hits', 0):,} "
            f"misses={tt.get('tt_misses', 0):,} "
            f"collisions={tt.get('tt_collisions', 0):,})"
        )
        out.append(
            f"  store: {tt.get('tt_filled', 0):,}/"
            f"{tt.get('tt_capacity', 0):,} entries "
            f"(inserts={tt.get('tt_inserts', 0):,} "
            f"evictions={tt.get('tt_evictions', 0):,} "
            f"rejects={tt.get('tt_rejects', 0):,})"
        )

    if report.summary is not None:
        out.append("")
        status = report.summary.get("status", "?")
        cost = report.summary.get("best_cost")
        cost_s = "-" if cost is None else f"{cost:g}"
        out.append(f"result: {status} L_max={cost_s}")
        stats = report.summary.get("stats") or {}
        if stats:
            pairs = " ".join(
                f"{k}={stats[k]}" for k in sorted(stats) if k != "elapsed"
            )
            if stats.get("elapsed") is not None:
                pairs += f" elapsed={stats['elapsed']:.3f}s"
            out.append(f"stats: {pairs}")

    return "\n".join(out)
