"""repro.obs — structured telemetry for the branch-and-bound engine.

Four orthogonal facilities, each off by default and individually
attachable to a solve via the :class:`Observability` bundle:

* :mod:`repro.obs.events` — structured event stream (``EventSink``
  protocol, buffered :class:`JsonlSink` for on-disk traces);
* :mod:`repro.obs.profile` — per-phase wall-clock profiler for the
  engine inner loop;
* :mod:`repro.obs.metrics` — counter/gauge/histogram registry with
  Prometheus-textfile and JSON exporters;
* :mod:`repro.obs.progress` — heartbeat progress lines for long solves;
* :mod:`repro.obs.live` — in-process telemetry bus for live monitoring
  (sampled solve snapshots, per-worker gauges, the crash flight
  recorder);
* :mod:`repro.obs.serve` — stdlib HTTP/SSE server over the bus
  (``/status``, ``/metrics``, ``/events``, and an HTML dashboard);
* :mod:`repro.obs.report` — offline rendering of JSONL traces
  (the ``repro report`` subcommand).

Use::

    from repro.obs import Observability, JsonlSink, PhaseProfiler

    obs = Observability(sink=JsonlSink("trace.jsonl"),
                        profiler=PhaseProfiler())
    result = BranchAndBound(params, obs=obs).solve(problem)
    obs.close()
"""

from __future__ import annotations

from dataclasses import dataclass

from .events import (
    SAMPLED_KINDS,
    BaseSink,
    CallbackSink,
    EventSink,
    JsonlSink,
    MemorySink,
    MultiSink,
    TaggedSink,
)
from .live import LiveMonitor, TelemetryBus, WorkerStats, write_flight_dump
from .metrics import (
    DEFAULT_GAP_BUCKETS,
    DEFAULT_SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .profile import PHASES, PhaseBreakdown, PhaseProfiler
from .progress import ProgressReporter, format_progress_line
from .report import TraceReport, load_trace, render_trace_report
from .serve import MonitorServer

__all__ = [
    "Observability",
    # events
    "SAMPLED_KINDS",
    "EventSink",
    "BaseSink",
    "JsonlSink",
    "MemorySink",
    "CallbackSink",
    "MultiSink",
    "TaggedSink",
    # profile
    "PHASES",
    "PhaseProfiler",
    "PhaseBreakdown",
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_GAP_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
    # progress
    "ProgressReporter",
    "format_progress_line",
    # live monitoring
    "LiveMonitor",
    "TelemetryBus",
    "WorkerStats",
    "MonitorServer",
    "write_flight_dump",
    # report
    "TraceReport",
    "load_trace",
    "render_trace_report",
]


@dataclass
class Observability:
    """Everything the engine may report to, bundled.

    All fields default to ``None`` (off); the engine pays one ``is not
    None`` check per hook for absent components.  The bundle does not
    own the sink's file handle lifecycle beyond :meth:`close`, which
    closes the sink if present (profiler/metrics/progress have no
    resources to release).
    """

    sink: EventSink | None = None
    profiler: PhaseProfiler | None = None
    metrics: MetricsRegistry | None = None
    progress: ProgressReporter | None = None
    live: LiveMonitor | None = None

    @property
    def enabled(self) -> bool:
        return (
            self.sink is not None
            or self.profiler is not None
            or self.metrics is not None
            or self.progress is not None
            or self.live is not None
        )

    def close(self) -> None:
        if self.sink is not None:
            self.sink.close()

    def __enter__(self) -> Observability:
        return self

    def __exit__(self, *exc) -> None:
        self.close()
