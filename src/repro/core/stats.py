"""Search statistics.

The paper's secondary performance measure is the number of searched
(generated active) vertices; :class:`SearchStats` tracks that plus the
full breakdown needed by the figures and ablations: explored vertices,
per-cause pruning counters, incumbent updates, peak active-set size (the
memory-locality proxy behind the paper's Section 6 thrashing discussion)
and wall-clock timing.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["SearchStats"]


@dataclass
class SearchStats:
    """Mutable counters filled in by one engine run."""

    #: Vertices created by branching (the paper's "generated active
    #: vertices" — its primary complexity measure).  The root vertex
    #: counts as generated.
    generated: int = 0
    #: Vertices selected from the active set and branched.
    explored: int = 0
    #: Children discarded by the elimination rule E before entering AS.
    pruned_children: int = 0
    #: Active vertices swept from AS when the incumbent improved (U/DBAS).
    pruned_active: int = 0
    #: Children discarded by the dominance rule D.
    pruned_dominated: int = 0
    #: Children discarded as duplicates of an already-seen state (the
    #: transposition layer; split out of ``pruned_dominated`` post-solve
    #: so reports can attribute pruning per rule).
    pruned_duplicate: int = 0
    #: Children discarded by the characteristic function F.
    pruned_infeasible: int = 0
    #: Vertices dropped by MAXSZAS / MAXSZDB overflow.
    dropped_resource: int = 0
    #: Goal vertices evaluated (complete schedules compared to incumbent).
    goals_evaluated: int = 0
    #: Times the incumbent improved.
    incumbent_updates: int = 0
    #: Largest active-set size observed.
    peak_active: int = 0
    #: Wall-clock duration of the solve, in seconds.  For a resumed run
    #: this includes the time accumulated before the checkpoint (see
    #: ``_elapsed_base``), so anytime plots stay monotone across kills.
    elapsed: float = 0.0
    #: Flags raised during the run.
    time_limit_hit: bool = False
    truncated: bool = False
    #: The loop was stopped cooperatively (SIGINT/SIGTERM/StopToken).
    interrupted: bool = False
    #: The resident-set ceiling (MEMLIMIT) tripped.
    memory_limit_hit: bool = False
    _t0: float = field(default=0.0, repr=False)
    _stopped: bool = field(default=False, repr=False)
    #: Seconds already spent before this process's clock started (set
    #: when resuming from a checkpoint).
    _elapsed_base: float = field(default=0.0, repr=False)

    # ------------------------------------------------------------------

    def start_clock(self) -> None:
        self._t0 = time.perf_counter()
        self._stopped = False

    def stop_clock(self) -> None:
        """Record ``elapsed``; idempotent so the engine can call it both
        on the normal path and in a ``finally:`` (exception mid-solve)
        without the second call inflating the measurement."""
        if not self._stopped:
            self.elapsed = self._elapsed_base + time.perf_counter() - self._t0
            self._stopped = True

    def time_since_start(self) -> float:
        return self._elapsed_base + time.perf_counter() - self._t0

    def absorb(self, other: "SearchStats", *, active_base: int = 0) -> None:
        """Fold a sub-search's counters into this run's totals.

        Used by the engine when a dispatched subtree resolves and by the
        parallel driver when merging per-worker results.  ``active_base``
        is the caller's own active-set size while the sub-search ran, so
        ``peak_active`` reflects the combined footprint (an upper
        estimate when the caller's set shrank mid-subtree).  ``elapsed``
        is deliberately not merged — the caller's wall clock already
        spans the sub-search (or, across processes, the sums would
        exceed the wall clock).
        """
        self.generated += other.generated
        self.explored += other.explored
        self.pruned_children += other.pruned_children
        self.pruned_active += other.pruned_active
        self.pruned_dominated += other.pruned_dominated
        self.pruned_duplicate += other.pruned_duplicate
        self.pruned_infeasible += other.pruned_infeasible
        self.dropped_resource += other.dropped_resource
        self.goals_evaluated += other.goals_evaluated
        self.incumbent_updates += other.incumbent_updates
        peak = active_base + other.peak_active
        if peak > self.peak_active:
            self.peak_active = peak
        self.time_limit_hit = self.time_limit_hit or other.time_limit_hit
        self.truncated = self.truncated or other.truncated
        self.interrupted = self.interrupted or other.interrupted
        self.memory_limit_hit = self.memory_limit_hit or other.memory_limit_hit

    @property
    def pruned_total(self) -> int:
        return (
            self.pruned_children
            + self.pruned_active
            + self.pruned_dominated
            + self.pruned_duplicate
            + self.pruned_infeasible
        )

    @property
    def vertices_per_second(self) -> float:
        return self.generated / self.elapsed if self.elapsed > 0 else 0.0

    def as_dict(self) -> dict:
        """JSON-ready snapshot (trace summary events, metrics exports)."""
        return {
            "generated": self.generated,
            "explored": self.explored,
            "pruned_children": self.pruned_children,
            "pruned_active": self.pruned_active,
            "pruned_dominated": self.pruned_dominated,
            "pruned_duplicate": self.pruned_duplicate,
            "pruned_infeasible": self.pruned_infeasible,
            "dropped_resource": self.dropped_resource,
            "goals_evaluated": self.goals_evaluated,
            "incumbent_updates": self.incumbent_updates,
            "peak_active": self.peak_active,
            "elapsed": self.elapsed,
            "time_limit_hit": self.time_limit_hit,
            "truncated": self.truncated,
            "interrupted": self.interrupted,
            "memory_limit_hit": self.memory_limit_hit,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SearchStats":
        """Rebuild counters from an :meth:`as_dict` snapshot.

        Used when resuming from a checkpoint.  The stop-reason flags are
        deliberately *not* restored — whatever ended the previous run
        (a MAXVERT cap, a SIGTERM) says nothing about how this one will
        end — except ``truncated`` when vertices were irrecoverably
        dropped by MAXSZAS/MAXSZDB, which does taint every continuation.
        The recorded ``elapsed`` becomes the resumed clock's base so the
        total spans both runs.
        """
        stats = cls()
        for key in (
            "generated",
            "explored",
            "pruned_children",
            "pruned_active",
            "pruned_dominated",
            "pruned_duplicate",
            "pruned_infeasible",
            "dropped_resource",
            "goals_evaluated",
            "incumbent_updates",
            "peak_active",
        ):
            setattr(stats, key, int(data.get(key, 0)))
        stats.truncated = stats.dropped_resource > 0
        stats._elapsed_base = float(data.get("elapsed", 0.0))
        return stats

    def summary(self) -> str:
        flags = []
        if self.time_limit_hit:
            flags.append("TIMELIMIT")
        if self.memory_limit_hit:
            flags.append("MEMLIMIT")
        if self.interrupted:
            flags.append("INTERRUPTED")
        if self.truncated:
            flags.append("TRUNCATED")
        tail = f" [{' '.join(flags)}]" if flags else ""
        return (
            f"generated={self.generated} explored={self.explored} "
            f"pruned={self.pruned_total} goals={self.goals_evaluated} "
            f"peakAS={self.peak_active} "
            f"t={self.elapsed:.3f}s ({self.vertices_per_second:,.0f} v/s){tail}"
        )
